#!/usr/bin/env sh
# Full local quality gate: tests (off + strict contracts), reprolint,
# and — when installed — ruff and mypy.  CI runs the same steps; ruff
# and mypy are skipped gracefully here so the gate works in minimal
# environments (the repo itself depends only on numpy/scipy).
set -eu

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "==> pytest"
python -m pytest -x -q

echo "==> pytest (REPRO_CHECK=strict)"
REPRO_CHECK=strict python -m pytest -x -q

echo "==> concurrency stress suite (REPRO_CHECK=strict)"
REPRO_CHECK=strict python -m pytest \
    tests/analysis/test_concurrency.py \
    tests/analysis/test_interleave.py \
    tests/dataplane/test_cache_threads.py \
    tests/dataplane/test_stream_threads.py \
    tests/nn/test_arena_threads.py \
    -x -q

echo "==> concurrency bench smoke (off-mode overhead < 1%)"
REPRO_BENCH_QUICK=1 python -m pytest benchmarks/bench_concurrency.py -x -q

echo "==> serving smoke (daemon, session races, REPRO_CHECK=strict)"
REPRO_CHECK=strict python -m pytest \
    tests/serve \
    tests/engine/test_session_threads.py \
    tests/cli/test_validation.py \
    -x -q

echo "==> serving bench smoke (quick mode)"
REPRO_BENCH_QUICK=1 python -m pytest benchmarks/bench_serve.py -x -q

echo "==> transport chaos smoke (faults, breaker, reconnect; strict)"
REPRO_CHECK=strict python -m pytest \
    tests/serve/test_transport.py \
    tests/serve/test_transport_chaos.py \
    tests/serve/test_transport_reconnect.py \
    -x -q

echo "==> transport bench smoke (quick mode)"
REPRO_BENCH_QUICK=1 python -m pytest benchmarks/bench_transport.py -x -q

echo "==> reprolint"
python -m repro.analysis.lint src tests

if python -c "import ruff" >/dev/null 2>&1 || command -v ruff >/dev/null 2>&1; then
    echo "==> ruff"
    ruff check src tests
else
    echo "==> ruff not installed; skipping (CI runs it)"
fi

if python -c "import mypy" >/dev/null 2>&1; then
    echo "==> mypy"
    python -m mypy src/repro/analysis src/repro/dataplane
else
    echo "==> mypy not installed; skipping (CI runs it)"
fi

echo "All checks passed."
