"""Tests for the content-addressed two-tier feature cache."""

import numpy as np
import pytest

from repro.dataplane import FeatureCache, feature_key
from repro.layout import Clip, Rect


def make_clip(rects, size=1200, margin=300, idx=0):
    window = Rect(0, 0, size, size)
    return Clip(window, window.expanded(-margin), rects=rects, index=idx)


class TestFeatureKey:
    def test_key_combines_all_parts(self):
        key = feature_key("abc", "g96b12c32d8", "tensor")
        assert key == "abc-g96b12c32d8-tensor"

    def test_content_key_depends_on_geometry_only(self):
        a = make_clip([Rect(100, 550, 1100, 650)], idx=0)
        b = make_clip([Rect(100, 550, 1100, 650)], idx=9)
        c = make_clip([Rect(100, 550, 1100, 651)], idx=0)
        assert a.content_key() == b.content_key()
        assert a.content_key() != c.content_key()

    def test_content_key_rect_order_invariant(self):
        rects = [Rect(100, 550, 1100, 650), Rect(200, 100, 400, 300)]
        a = make_clip(list(rects))
        b = make_clip(list(reversed(rects)))
        assert a.content_key() == b.content_key()


class TestMemoryTier:
    def test_roundtrip_identical(self):
        cache = FeatureCache(memory_items=4)
        array = np.random.default_rng(0).normal(size=(3, 4))
        cache.put("k", array)
        np.testing.assert_array_equal(cache.get("k"), array)
        assert cache.stats.memory_hits == 1

    def test_miss_returns_none_and_counts(self):
        cache = FeatureCache(memory_items=4)
        assert cache.get("absent") is None
        assert cache.stats.misses == 1

    def test_lru_evicts_oldest(self):
        cache = FeatureCache(memory_items=2)
        cache.put("a", np.zeros(1))
        cache.put("b", np.ones(1))
        cache.get("a")  # refresh a, so b is now the LRU entry
        cache.put("c", np.full(1, 2.0))
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.stats.evictions == 1

    def test_zero_memory_items_disables_tier(self):
        cache = FeatureCache(memory_items=0)
        cache.put("k", np.zeros(3))
        assert len(cache) == 0
        assert cache.get("k") is None

    def test_clear_keeps_disk(self, tmp_path):
        cache = FeatureCache(memory_items=4, disk_dir=tmp_path)
        cache.put("k", np.arange(3.0))
        cache.clear()
        assert len(cache) == 0
        np.testing.assert_array_equal(cache.get("k"), np.arange(3.0))
        assert cache.stats.disk_hits == 1


class TestDiskTier:
    def test_roundtrip_across_instances(self, tmp_path):
        array = np.random.default_rng(1).normal(size=(32, 12, 12))
        FeatureCache(memory_items=2, disk_dir=tmp_path).put("k", array)
        fresh = FeatureCache(memory_items=2, disk_dir=tmp_path)
        np.testing.assert_array_equal(fresh.get("k"), array)
        assert fresh.stats.disk_hits == 1

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        FeatureCache(disk_dir=tmp_path).put("k", np.zeros(2))
        cache = FeatureCache(disk_dir=tmp_path)
        cache.get("k")
        cache.get("k")
        assert cache.stats.disk_hits == 1
        assert cache.stats.memory_hits == 1

    def test_torn_write_is_a_miss(self, tmp_path):
        cache = FeatureCache(disk_dir=tmp_path)
        (tmp_path / "bad.npz").write_bytes(b"not an npz archive")
        assert cache.get("bad") is None
        assert cache.stats.misses == 1

    def test_no_tmp_files_left_behind(self, tmp_path):
        cache = FeatureCache(disk_dir=tmp_path)
        for i in range(5):
            cache.put(f"k{i}", np.full(4, float(i)))
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [f"k{i}.npz" for i in range(5)]


class TestCorruptQuarantine:
    def corrupt_entry(self, tmp_path, key="k"):
        FeatureCache(disk_dir=tmp_path).put(key, np.arange(8.0))
        path = tmp_path / f"{key}.npz"
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # truncated archive
        return path

    def test_truncated_archive_quarantined(self, tmp_path):
        path = self.corrupt_entry(tmp_path)
        cache = FeatureCache(disk_dir=tmp_path)
        assert cache.get("k") is None
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 1
        assert not path.exists()  # the bad file cannot fail twice

    def test_second_read_is_a_plain_miss(self, tmp_path):
        self.corrupt_entry(tmp_path)
        cache = FeatureCache(disk_dir=tmp_path)
        cache.get("k")
        assert cache.get("k") is None
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 2

    def test_emits_cache_corrupt_event(self, tmp_path):
        from repro.engine import EventBus, EventLog

        bus = EventBus()
        log = bus.subscribe(EventLog())
        path = self.corrupt_entry(tmp_path)
        cache = FeatureCache(disk_dir=tmp_path, bus=bus)
        cache.get("k")
        [event] = log.of_kind("cache_corrupt")
        assert event.payload["key"] == "k"
        assert event.payload["path"] == str(path)

    def test_entry_can_be_rewritten_after_quarantine(self, tmp_path):
        self.corrupt_entry(tmp_path)
        cache = FeatureCache(disk_dir=tmp_path)
        cache.get("k")
        cache.put("k", np.full(4, 7.0))
        fresh = FeatureCache(disk_dir=tmp_path)
        np.testing.assert_array_equal(fresh.get("k"), np.full(4, 7.0))

    def test_corrupt_counter_in_as_dict(self, tmp_path):
        self.corrupt_entry(tmp_path)
        cache = FeatureCache(disk_dir=tmp_path)
        cache.get("k")
        assert cache.stats.as_dict()["corrupt"] == 1


class TestShardedDisk:
    def test_entries_land_in_shard_dirs(self, tmp_path):
        cache = FeatureCache(disk_dir=tmp_path, disk_shards=4)
        keys = [f"{i:08x}-p-tensor" for i in range(16)]
        for key in keys:
            cache.put(key, np.arange(4.0))
        shard_dirs = sorted(p.name for p in tmp_path.iterdir())
        assert all(name.startswith("shard-") for name in shard_dirs)
        files = list(tmp_path.glob("shard-*/*.npz"))
        assert len(files) == 16
        assert not list(tmp_path.glob("*.npz"))

    def test_shard_of_key_is_stable(self, tmp_path):
        cache = FeatureCache(disk_dir=tmp_path, disk_shards=8)
        key = "00bc614e-p-tensor"  # hex prefix 0x00bc614e
        assert cache._shard_of(key) == 0x00BC614E % 8
        # non-hex prefixes still shard deterministically
        assert cache._shard_of("zzz") == cache._shard_of("zzz")

    def test_flat_legacy_entries_remain_readable(self, tmp_path):
        FeatureCache(disk_dir=tmp_path).put("aabbccdd-k", np.full(3, 7.0))
        sharded = FeatureCache(
            disk_dir=tmp_path, disk_shards=4, memory_items=0
        )
        np.testing.assert_array_equal(
            sharded.get("aabbccdd-k"), np.full(3, 7.0)
        )
        assert sharded.stats.disk_hits == 1

    def test_sharded_roundtrip_across_instances(self, tmp_path):
        FeatureCache(disk_dir=tmp_path, disk_shards=4).put(
            "0000000a-k", np.arange(5.0)
        )
        fresh = FeatureCache(
            disk_dir=tmp_path, disk_shards=4, memory_items=0
        )
        np.testing.assert_array_equal(
            fresh.get("0000000a-k"), np.arange(5.0)
        )

    def test_negative_shards_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            FeatureCache(disk_dir=tmp_path, disk_shards=-1)


class TestDiskByteBudget:
    def entry_size(self, tmp_path):
        probe = FeatureCache(disk_dir=tmp_path / "probe")
        probe.put("probe", np.arange(64.0))
        return (tmp_path / "probe" / "probe.npz").stat().st_size

    def test_eviction_honours_budget(self, tmp_path):
        size = self.entry_size(tmp_path)
        cache = FeatureCache(
            disk_dir=tmp_path, max_disk_bytes=3 * size + size // 2
        )
        for i in range(6):
            cache.put(f"{i:08x}", np.arange(64.0) + i)
        assert cache.stats.disk_evictions == 3
        assert cache.stats.disk_bytes <= 3 * size + size // 2
        remaining = sorted(p.stem for p in tmp_path.glob("*.npz"))
        assert remaining == ["00000003", "00000004", "00000005"]

    def test_eviction_is_lru_not_fifo(self, tmp_path):
        size = self.entry_size(tmp_path)
        cache = FeatureCache(
            disk_dir=tmp_path, memory_items=0,
            max_disk_bytes=2 * size + size // 2,
        )
        cache.put("00000000", np.arange(64.0))
        cache.put("00000001", np.arange(64.0) + 1)
        cache.get("00000000")  # refresh: 00000001 is now the LRU entry
        cache.put("00000002", np.arange(64.0) + 2)
        assert sorted(p.stem for p in tmp_path.glob("*.npz")) == [
            "00000000", "00000002",
        ]

    def test_newest_entry_never_evicted(self, tmp_path):
        # a budget smaller than one entry must keep the latest insert
        cache = FeatureCache(disk_dir=tmp_path, max_disk_bytes=1)
        cache.put("00000000", np.arange(64.0))
        assert (tmp_path / "00000000.npz").exists()
        cache.put("00000001", np.arange(64.0))
        assert (tmp_path / "00000001.npz").exists()
        assert not (tmp_path / "00000000.npz").exists()

    def test_emits_cache_evicted_event(self, tmp_path):
        from repro.engine import EventBus, EventLog

        bus = EventBus()
        log = bus.subscribe(EventLog())
        size = self.entry_size(tmp_path)
        cache = FeatureCache(
            disk_dir=tmp_path, max_disk_bytes=size + size // 2, bus=bus
        )
        cache.put("00000000", np.arange(64.0))
        cache.put("00000001", np.arange(64.0))
        [event] = log.of_kind("cache_evicted")
        assert event.payload["key"] == "00000000"
        assert event.payload["bytes"] > 0
        assert event.payload["max_disk_bytes"] == size + size // 2

    def test_budget_spans_cache_instances(self, tmp_path):
        size = self.entry_size(tmp_path)
        first = FeatureCache(disk_dir=tmp_path)
        for i in range(4):
            first.put(f"{i:08x}", np.arange(64.0) + i)
        fresh = FeatureCache(
            disk_dir=tmp_path, max_disk_bytes=2 * size + size // 2
        )
        # compressed sizes vary by a few bytes per entry; the rebuilt
        # index must account for all four (well over the budget)
        assert fresh.stats.disk_bytes > 2 * size + size // 2
        fresh.put("000000ff", np.arange(64.0))
        # pre-existing oldest entries were evicted to make room
        assert fresh.stats.disk_bytes <= 2 * size + size // 2

    def test_stats_in_as_dict(self, tmp_path):
        cache = FeatureCache(disk_dir=tmp_path, max_disk_bytes=1)
        cache.put("00000000", np.arange(64.0))
        cache.put("00000001", np.arange(64.0))
        stats = cache.stats.as_dict()
        assert stats["disk_evictions"] == 1
        assert stats["evicted_bytes"] > 0
        assert stats["disk_bytes"] > 0


class TestCompaction:
    def test_removes_leftover_tmp_files(self, tmp_path):
        cache = FeatureCache(disk_dir=tmp_path, disk_shards=2)
        cache.put("00000000", np.arange(4.0))
        (tmp_path / "dead.tmp").write_bytes(b"torn")
        (tmp_path / "shard-00").mkdir(exist_ok=True)
        (tmp_path / "shard-00" / "dead2.tmp").write_bytes(b"torn")
        report = cache.compact()
        assert report["removed_tmp"] == 2
        assert report["entries"] == 1
        assert not list(tmp_path.glob("**/*.tmp"))

    def test_reapplies_budget_with_override(self, tmp_path):
        cache = FeatureCache(disk_dir=tmp_path)
        for i in range(4):
            cache.put(f"{i:08x}", np.arange(64.0) + i)
        before = cache.stats.disk_bytes
        report = cache.compact(max_bytes=before // 2)
        assert report["disk_bytes"] <= before // 2
        assert cache.max_disk_bytes is None  # override did not stick

    def test_no_disk_tier_compacts_to_empty_report(self):
        report = FeatureCache().compact()
        assert report["entries"] == 0
        assert report["failed_tmp"] == 0

    def test_counts_and_reports_failed_tmp_removals(
        self, tmp_path, monkeypatch
    ):
        """An undeletable tmp file must not be silently swallowed: the
        report counts it and a ``cache_tmp_failed`` event fires."""
        from pathlib import Path

        from repro.engine.events import EventBus, EventLog

        bus = EventBus()
        log = bus.subscribe(EventLog())
        cache = FeatureCache(disk_dir=tmp_path, bus=bus)
        cache.put("00000000", np.arange(4.0))
        (tmp_path / "stuck.tmp").write_bytes(b"torn")

        real_unlink = Path.unlink

        def failing_unlink(self, *args, **kwargs):
            if self.suffix == ".tmp":
                raise OSError("unlink denied")
            return real_unlink(self, *args, **kwargs)

        monkeypatch.setattr(Path, "unlink", failing_unlink)
        report = cache.compact()
        assert report["failed_tmp"] == 1
        assert report["removed_tmp"] == 0
        failures = log.of_kind("cache_tmp_failed")
        assert len(failures) == 1
        assert failures[0].payload["path"].endswith("stuck.tmp")
        assert "unlink denied" in failures[0].payload["error"]

        # once the filesystem recovers the same compact cleans up
        monkeypatch.undo()
        report = cache.compact()
        assert report["removed_tmp"] == 1
        assert report["failed_tmp"] == 0


class TestTenantStats:
    def test_counters_attributed_per_tenant(self):
        cache = FeatureCache(memory_items=4)
        cache.put("aaaa", np.ones(2), tenant="v1")
        assert cache.get("aaaa", tenant="v1") is not None
        assert cache.get("miss", tenant="v2") is None
        assert cache.get("aaaa") is not None  # untagged: not attributed

        stats = cache.tenant_stats()
        assert stats["v1"] == {
            "memory_hits": 1, "disk_hits": 0, "misses": 0, "puts": 1,
            "hits": 1,
        }
        assert stats["v2"]["misses"] == 1
        assert stats["v2"]["hits"] == 0

    def test_disk_hits_attributed(self, tmp_path):
        cache = FeatureCache(memory_items=1, disk_dir=tmp_path)
        cache.put("aaaa", np.ones(2), tenant="v1")
        cache.put("bbbb", np.zeros(2), tenant="v1")  # evicts aaaa
        assert cache.get("aaaa", tenant="v1") is not None  # disk tier
        stats = cache.tenant_stats()["v1"]
        assert stats["disk_hits"] == 1
        assert stats["puts"] == 2

    def test_clear_resets_tenant_stats(self):
        cache = FeatureCache(memory_items=2)
        cache.put("aaaa", np.ones(2), tenant="v1")
        cache.clear()
        assert cache.tenant_stats() == {}
