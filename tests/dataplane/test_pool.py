"""Tests for the data plane's chunked/pooled execution helpers."""

import pytest

from repro.dataplane import chunked, imap_chunks, map_chunks


def _total(chunk):
    return sum(chunk)


class TestChunked:
    def test_even_split(self):
        assert chunked(list(range(6)), 2) == [[0, 1], [2, 3], [4, 5]]

    def test_ragged_tail(self):
        assert chunked(list(range(5)), 2) == [[0, 1], [2, 3], [4]]

    def test_empty(self):
        assert chunked([], 4) == []

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError, match="chunk size"):
            chunked([1, 2], 0)


class TestMapChunks:
    def test_serial_matches_manual(self):
        items = list(range(10))
        assert map_chunks(_total, items, chunk_size=3) == [3, 12, 21, 9]

    def test_threaded_matches_serial_in_order(self):
        items = list(range(20))
        serial = map_chunks(_total, items, chunk_size=4, workers=0)
        pooled = map_chunks(
            _total, items, chunk_size=4, workers=3, executor="thread"
        )
        assert pooled == serial

    def test_process_pool_matches_serial_in_order(self):
        items = list(range(20))
        serial = map_chunks(_total, items, chunk_size=4, workers=0)
        pooled = map_chunks(
            _total, items, chunk_size=4, workers=2, executor="process"
        )
        assert pooled == serial

    def test_single_chunk_skips_pool(self):
        # one chunk must not pay pool start-up even with workers set
        assert map_chunks(_total, [1, 2, 3], chunk_size=10, workers=8) == [6]

    def test_empty_items(self):
        assert map_chunks(_total, [], chunk_size=4, workers=2) == []

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            map_chunks(_total, list(range(8)), chunk_size=2, workers=2,
                       executor="fiber")


_CALL_LOG: list[tuple[int, ...]] = []


def _record_then_fail(chunk):
    _CALL_LOG.append(tuple(chunk))
    if chunk[0] >= 4:
        raise OSError("disk gone")
    return sum(chunk)


class TestTaskExceptionPropagation:
    """Regression: task-raised OSError must propagate, never trigger the
    serial fallback (which would silently re-run every chunk)."""

    @pytest.mark.parametrize("executor", ["thread"])
    def test_task_oserror_propagates(self, executor):
        _CALL_LOG.clear()
        with pytest.raises(OSError, match="disk gone"):
            map_chunks(
                _record_then_fail,
                list(range(8)),
                chunk_size=2,
                workers=2,
                executor=executor,
            )

    def test_chunks_not_rerun_after_task_failure(self):
        _CALL_LOG.clear()
        with pytest.raises(OSError):
            map_chunks(
                _record_then_fail,
                list(range(8)),
                chunk_size=2,
                workers=2,
                executor="thread",
            )
        # the old fallback re-ran every chunk serially after the failure,
        # doubling side effects; each chunk must now run at most once
        assert len(_CALL_LOG) == len(set(_CALL_LOG))

    def test_serial_task_oserror_propagates(self):
        with pytest.raises(OSError, match="disk gone"):
            map_chunks(_record_then_fail, list(range(8)), chunk_size=2)


class TestImapChunks:
    def test_is_lazy_generator(self):
        calls = []

        def spy(chunk):
            calls.append(tuple(chunk))
            return sum(chunk)

        it = imap_chunks(spy, list(range(6)), chunk_size=2)
        assert calls == []  # nothing runs until consumed
        assert next(it) == 1
        assert calls == [(0, 1)]
        assert list(it) == [5, 9]

    def test_partial_results_before_failure(self):
        """Chunks before the failing one are yielded, so callers can
        commit partial progress (the litho labeler relies on this)."""
        done = []

        def fragile(chunk):
            if chunk[0] >= 4:
                raise OSError("disk gone")
            return sum(chunk)

        it = imap_chunks(fragile, list(range(8)), chunk_size=2)
        with pytest.raises(OSError):
            for result in it:
                done.append(result)
        assert done == [1, 5]

    def test_matches_map_chunks(self):
        items = list(range(20))
        assert list(imap_chunks(_total, items, chunk_size=4, workers=3)) == (
            map_chunks(_total, items, chunk_size=4)
        )


class TestWatchdog:
    """A pooled chunk that never answers is cancelled at the deadline
    and re-run serially; the pool is then treated as compromised and
    every unfinished chunk recomputes in-process."""

    def test_hung_chunk_cancelled_and_rerun_serially(self):
        import threading
        from collections import Counter

        release = threading.Event()
        attempts = Counter()
        fired = []

        def maybe_hang(chunk):
            attempts[chunk[0]] += 1
            if chunk[0] == 2 and attempts[chunk[0]] == 1:
                release.wait(timeout=20.0)  # hang far past the deadline
            return sum(chunk)

        try:
            results = map_chunks(
                maybe_hang,
                list(range(8)),
                chunk_size=2,
                workers=2,
                executor="thread",
                timeout=0.5,
                on_timeout=fired.append,
            )
        finally:
            release.set()  # unblock the abandoned worker thread
        assert results == [1, 5, 9, 13]
        assert fired == [1]  # chunk [2, 3] hit the deadline
        assert attempts[2] == 2  # hung once, then re-ran serially

    def test_armed_watchdog_is_invisible_without_a_hang(self):
        items = list(range(20))
        fired = []
        pooled = map_chunks(
            _total, items, chunk_size=4, workers=3, executor="thread",
            timeout=30.0, on_timeout=fired.append,
        )
        assert pooled == map_chunks(_total, items, chunk_size=4)
        assert fired == []

    def test_serial_path_ignores_timeout(self):
        # workers=0 never pools, so there is nothing to watch
        assert map_chunks(
            _total, list(range(6)), chunk_size=2, timeout=0.001
        ) == [1, 5, 9]

    def test_rejects_non_positive_timeout(self):
        with pytest.raises(ValueError, match="timeout"):
            map_chunks(_total, list(range(4)), chunk_size=2, workers=2,
                       timeout=0.0)
