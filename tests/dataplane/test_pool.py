"""Tests for the data plane's chunked/pooled execution helpers."""

import pytest

from repro.dataplane import chunked, map_chunks


def _total(chunk):
    return sum(chunk)


class TestChunked:
    def test_even_split(self):
        assert chunked(list(range(6)), 2) == [[0, 1], [2, 3], [4, 5]]

    def test_ragged_tail(self):
        assert chunked(list(range(5)), 2) == [[0, 1], [2, 3], [4]]

    def test_empty(self):
        assert chunked([], 4) == []

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError, match="chunk size"):
            chunked([1, 2], 0)


class TestMapChunks:
    def test_serial_matches_manual(self):
        items = list(range(10))
        assert map_chunks(_total, items, chunk_size=3) == [3, 12, 21, 9]

    def test_threaded_matches_serial_in_order(self):
        items = list(range(20))
        serial = map_chunks(_total, items, chunk_size=4, workers=0)
        pooled = map_chunks(
            _total, items, chunk_size=4, workers=3, executor="thread"
        )
        assert pooled == serial

    def test_process_pool_matches_serial_in_order(self):
        items = list(range(20))
        serial = map_chunks(_total, items, chunk_size=4, workers=0)
        pooled = map_chunks(
            _total, items, chunk_size=4, workers=2, executor="process"
        )
        assert pooled == serial

    def test_single_chunk_skips_pool(self):
        # one chunk must not pay pool start-up even with workers set
        assert map_chunks(_total, [1, 2, 3], chunk_size=10, workers=8) == [6]

    def test_empty_items(self):
        assert map_chunks(_total, [], chunk_size=4, workers=2) == []

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            map_chunks(_total, list(range(8)), chunk_size=2, workers=2,
                       executor="fiber")
