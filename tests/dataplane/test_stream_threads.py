"""Multi-threaded stress tests of the work-stealing scheduler and the
event bus, run under ``REPRO_CHECK=strict`` so the lock-discipline
sanitizer is live throughout."""

import threading
import time

import pytest

from repro.dataplane.stream import ShardScheduler
from repro.engine.events import EventBus


@pytest.fixture(autouse=True)
def _strict(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK", "strict")


class TestShardSchedulerUnderLoad:
    def test_slow_shards_get_stolen_from(self):
        """Deal slow items onto one shard; the other workers must steal
        them rather than idle, and no item is lost or duplicated."""
        scheduler = ShardScheduler(shards=4)
        items = list(range(40))
        done = []

        def work(item):
            # shard 0 owns items 0, 4, 8, ... — make exactly those slow
            if item % 4 == 0:
                time.sleep(0.01)
            return item * 2

        def on_result(item, result):
            done.append((item, result))

        stats = scheduler.run(items, work, on_result)
        assert sorted(i for i, _ in done) == items
        assert all(r == i * 2 for i, r in done)
        assert stats["steals"] > 0
        assert sum(stats["per_shard"]) == len(items)

    def test_worker_exception_propagates(self):
        scheduler = ShardScheduler(shards=3)

        def work(item):
            if item == 7:
                raise RuntimeError("shard blew up")
            return item

        with pytest.raises(RuntimeError, match="shard blew up"):
            scheduler.run(range(20), work)

    def test_on_result_may_emit_events(self):
        """The scan path emits bus events from inside on_result while
        holding the scheduler lock — the sanitizer must see that nested
        order (shard-scheduler -> event-bus) as consistent."""
        bus = EventBus()
        seen = []
        bus.subscribe(
            lambda e: seen.append(e.payload["item"]), kinds=("tile_scanned",)
        )
        scheduler = ShardScheduler(shards=4)

        scheduler.run(
            range(24),
            lambda item: item,
            on_result=lambda item, result: bus.emit(
                "tile_scanned", item=item
            ),
        )
        assert sorted(seen) == list(range(24))


class TestEventBusCrossThread:
    def test_concurrent_emitters_keep_seq_consistent(self):
        bus = EventBus()
        received = []
        bus.subscribe(received.append, kinds=("simulation_retry",))
        n_threads, n_events = 8, 100
        barrier = threading.Barrier(n_threads)
        errors = []

        def emitter(origin: int) -> None:
            barrier.wait()
            try:
                for i in range(n_events):
                    bus.emit(
                        "simulation_retry", chunk=origin, retries=i, n_clips=0
                    )
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        threads = [
            threading.Thread(target=emitter, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert errors == []
        assert len(received) == n_threads * n_events
        # dispatch is serialized under the bus lock, so the sequence
        # numbers handlers observe are gapless and strictly increasing
        seqs = [e.seq for e in received]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_subscribe_during_emission_storm(self):
        """Handlers are added and removed while other threads emit —
        no lost updates, torn reads, or dict-mutation errors."""
        bus = EventBus()
        stop = threading.Event()
        errors = []

        def churner() -> None:
            try:
                while not stop.is_set():
                    handler = bus.subscribe(
                        lambda e: None, kinds=("cache_corrupt",)
                    )
                    bus.unsubscribe(handler)
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        def emitter() -> None:
            try:
                for _ in range(300):
                    bus.emit("cache_corrupt", key="k", path="p")
            except BaseException as exc:  # noqa: BLE001 - collected
                errors.append(exc)

        churn = threading.Thread(target=churner)
        emits = [threading.Thread(target=emitter) for _ in range(4)]
        churn.start()
        for t in emits:
            t.start()
        for t in emits:
            t.join(timeout=60.0)
        stop.set()
        churn.join(timeout=60.0)
        assert errors == []

    def test_reentrant_emit_from_handler(self):
        """A handler emitting on the same bus (the guard's escalation
        pattern) must not self-deadlock: the bus lock is re-entrant."""
        bus = EventBus()
        chained = []
        bus.subscribe(
            lambda e: bus.emit(
                "recovery_applied", policy="x", sentinel="s", stage="t"
            ),
            kinds=("health_alert",),
        )
        bus.subscribe(
            lambda e: chained.append(e.payload["policy"]),
            kinds=("recovery_applied",),
        )
        bus.emit("health_alert", sentinel="s", stage="t", detail="")
        assert chained == ["x"]
