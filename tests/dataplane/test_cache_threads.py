"""Concurrency regression tests of :class:`FeatureCache`.

The centrepiece is a *deterministic* replay of the historical
``_memory`` race: ``get()`` observed a key between another thread's
``put()`` evicting it, so ``move_to_end`` raised ``KeyError``.  The
interleaving harness reproduces that window on every run against an
unlocked cache (proving the schedule really is the race) and shows the
same adversarial schedule degrades into a legal ordering on the locked
cache (proving the fix).
"""

import threading

import numpy as np
import pytest

from repro.analysis.interleave import InterleaveScheduler
from repro.dataplane.cache import FeatureCache

#: the adversarial schedule: pause the reader right after its
#: ``key in self._memory`` check succeeds, let a put() evict the key,
#: then resume the reader into ``move_to_end``
RACE_SCHEDULE = [
    ("reader", "cache.get.hit"),
    ("scan", "cache.put.done"),
    ("reader", "cache.get.hit"),
]


class _NullLock:
    """Stand-in that deliberately provides no mutual exclusion — used
    to re-create the pre-fix cache for the regression test."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def held(self):  # satisfies guarded_by under any mode
        return True


def _unlocked_cache(**kwargs) -> FeatureCache:
    cache = FeatureCache(**kwargs)
    cache._lock = _NullLock()
    return cache


def _race_once(cache: FeatureCache) -> InterleaveScheduler:
    cache.put("k", np.ones(4))

    sched = InterleaveScheduler(RACE_SCHEDULE, timeout=10.0)
    sched.run(
        {
            "reader": lambda: cache.get("k"),
            # a second distinct key evicts "k" from the 1-item LRU
            "scan": lambda: cache.put("other", np.zeros(4)),
        }
    )
    return sched


def test_unlocked_cache_race_reproduces_every_run(monkeypatch):
    """The seeded pre-fix race is caught 100% of runs, not as a flake."""
    monkeypatch.setenv("REPRO_CHECK", "off")
    for attempt in range(5):
        sched = _race_once(_unlocked_cache(memory_items=1))
        error = sched.errors.get("reader")
        assert isinstance(error, KeyError), (
            f"run {attempt}: expected the reader to lose its key "
            f"mid-get, got errors={sched.errors!r}"
        )


def test_locked_cache_survives_the_same_schedule(monkeypatch):
    """Post-fix, lock-blocked deferral turns the adversarial schedule
    into a legal interleaving: the reader completes before the evicting
    put gets the lock."""
    monkeypatch.setenv("REPRO_CHECK", "strict")
    for attempt in range(5):
        sched = _race_once(FeatureCache(memory_items=1))
        assert sched.errors == {}, f"run {attempt}: {sched.errors!r}"
        np.testing.assert_array_equal(sched.results["reader"], np.ones(4))


def test_memory_tier_storm(monkeypatch):
    """Hammer one small cache from many threads under strict checking:
    every operation stays exception-free and the counters balance."""
    monkeypatch.setenv("REPRO_CHECK", "strict")
    cache = FeatureCache(memory_items=8)
    n_threads, n_ops = 8, 200
    errors = []
    barrier = threading.Barrier(n_threads)

    def worker(seed: int) -> None:
        rng = np.random.default_rng(seed)
        barrier.wait()
        try:
            for i in range(n_ops):
                key = f"key-{rng.integers(0, 32)}"
                if rng.random() < 0.5:
                    cache.put(key, np.full(3, seed))
                else:
                    cache.get(key)
        except BaseException as exc:  # noqa: BLE001 - collected below
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(seed,))
        for seed in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60.0)
    assert not any(t.is_alive() for t in threads)
    assert errors == []
    assert len(cache) <= 8
    total = cache.stats.hits + cache.stats.misses + cache.stats.puts
    assert total == n_threads * n_ops


def test_disk_tier_storm_with_eviction(tmp_path, monkeypatch):
    """Concurrent puts against a byte-budgeted disk tier: eviction
    accounting stays consistent because array I/O happens inside the
    critical section."""
    monkeypatch.setenv("REPRO_CHECK", "strict")
    cache = FeatureCache(
        memory_items=2,
        disk_dir=tmp_path,
        disk_shards=4,
        max_disk_bytes=4096,
    )
    errors = []

    def worker(seed: int) -> None:
        rng = np.random.default_rng(seed)
        try:
            for i in range(40):
                key = f"{seed:02d}entry{i:03d}"
                cache.put(key, rng.normal(size=64))
                cache.get(f"{(seed + 1) % 4:02d}entry{i:03d}")
        except BaseException as exc:  # noqa: BLE001 - collected below
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(seed,)) for seed in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60.0)
    assert not any(t.is_alive() for t in threads)
    assert errors == []
    # the index (single source of truth) agrees with the stats mirror
    with cache._lock:
        assert cache.stats.disk_bytes == sum(cache._disk_index.values())
    report = cache.compact()
    assert report["disk_bytes"] <= 4096


def test_guarded_attributes_reject_unlocked_access(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK", "strict")
    from repro.analysis.concurrency import LockDisciplineError
    from repro.analysis.modes import set_check_mode

    previous = set_check_mode("strict")
    try:
        cache = FeatureCache(memory_items=4)
        with pytest.raises(LockDisciplineError, match="without holding"):
            cache._memory
        with cache._lock:
            assert cache._memory == {}
    finally:
        set_check_mode(previous)
