"""Tests for the tiled streaming scan (repro.dataplane.stream)."""

import json

import numpy as np
import pytest

from repro.data.synth import DUV_RULES, generate_layout
from repro.dataplane import (
    BatchFeatureExtractor,
    DataPlaneConfig,
    ShardScheduler,
    StreamConfig,
    StreamScanner,
    TileVerdictStore,
    scan_layout,
)
from repro.engine import EventBus, EventLog
from repro.features import FeatureExtractor
from repro.layout import Layout, Rect, TileGrid

CLIP = DUV_RULES.clip_size
MARGIN = DUV_RULES.core_margin


@pytest.fixture(scope="module")
def chip():
    return generate_layout(
        DUV_RULES, tiles_x=4, tiles_y=3, stress_probability=0.4, seed=7
    )


def density_score(tensors):
    """Deterministic stand-in for a trained model: mean |DCT| energy,
    squashed into (0, 1)."""
    energy = np.abs(tensors.reshape(len(tensors), -1)).mean(axis=1)
    return np.clip(energy * 40.0, 0.0, 1.0)


def make_scanner(chip, tmp_path=None, shards=1, incremental=True,
                 bus=None, tile_clips=2):
    grid = TileGrid.for_layout(chip, CLIP, MARGIN, tile_clips=tile_clips)
    plane = BatchFeatureExtractor(
        FeatureExtractor(grid=96), DataPlaneConfig(chunk_size=8)
    )
    config = StreamConfig(
        tile_clips=tile_clips,
        shards=shards,
        state_dir=None if tmp_path is None else str(tmp_path),
        incremental=incremental,
    )
    return StreamScanner(grid, plane, density_score, config, bus=bus)


class TestShardScheduler:
    def test_processes_every_item(self):
        out = []
        stats = ShardScheduler(3).run(
            range(25), lambda x: x * x, lambda item, r: out.append(r)
        )
        assert sorted(out) == [x * x for x in range(25)]
        assert sum(stats["per_shard"]) == 25

    def test_single_shard_preserves_order(self):
        out = []
        ShardScheduler(1).run(
            range(10), lambda x: x, lambda item, r: out.append(r)
        )
        assert out == list(range(10))

    def test_on_result_is_serialized(self):
        # concurrent on_result calls would interleave these two appends
        trace = []

        def on_result(item, result):
            trace.append(("enter", item))
            trace.append(("exit", item))

        ShardScheduler(4).run(range(40), lambda x: x, on_result)
        for i in range(0, len(trace), 2):
            assert trace[i][0] == "enter"
            assert trace[i + 1] == ("exit", trace[i][1])

    def test_work_exception_propagates(self):
        def work(x):
            if x == 7:
                raise RuntimeError("boom")
            return x

        with pytest.raises(RuntimeError, match="boom"):
            ShardScheduler(2).run(range(20), work)

    def test_steals_counted_on_imbalanced_queues(self):
        import time

        # shard 0 gets slow items (round-robin), shard 1 finishes its
        # own queue and must steal to finish the job
        def work(x):
            if x % 2 == 0:
                time.sleep(0.02)
            return x

        out = []
        stats = ShardScheduler(2).run(
            range(12), work, lambda item, r: out.append(r)
        )
        assert sorted(out) == list(range(12))
        assert stats["steals"] >= 1

    def test_invalid_shards_rejected(self):
        with pytest.raises(ValueError):
            ShardScheduler(0)


class TestTileVerdictStore:
    def test_roundtrip_is_bit_exact(self, tmp_path):
        store = TileVerdictStore(tmp_path)
        scores = [0.1234567890123456789, 1 / 3, np.float64(0.7).item()]
        store.save("0001_0002", "digest", [5, 9, 12], scores, [0, 1, 1])
        loaded = store.load("0001_0002")
        assert loaded["scores"] == scores  # exact float64 round trip
        assert loaded["indices"] == [5, 9, 12]
        assert loaded["verdicts"] == [0, 1, 1]

    def test_missing_or_corrupt_entry_loads_none(self, tmp_path):
        store = TileVerdictStore(tmp_path)
        assert store.load("0000_0000") is None
        store.path("0000_0000").parent.mkdir(parents=True, exist_ok=True)
        store.path("0000_0000").write_text("{not json")
        assert store.load("0000_0000") is None
        store.path("0000_0001").write_text(json.dumps({"digest": "d"}))
        assert store.load("0000_0001") is None

    def test_keys_lists_stored_tiles(self, tmp_path):
        store = TileVerdictStore(tmp_path)
        store.save("0000_0001", "d", [], [], [])
        store.save("0000_0000", "d", [], [], [])
        assert store.keys() == ["0000_0000", "0000_0001"]


class TestStreamScanner:
    def test_matches_eager_scoring(self, chip):
        scanner = make_scanner(chip)
        report = scanner.scan(chip)
        # eager reference: extract everything, score in one batch
        from repro.layout import extract_clip_grid

        clips = extract_clip_grid(chip, CLIP, MARGIN, drop_empty=False)
        clips = [c for c in clips if c.rects]
        fx = FeatureExtractor(grid=96)
        tensors = np.stack([fx.encode(c) for c in clips])
        scores = density_score(tensors)
        expected = sorted(
            c.index for c, s in zip(clips, scores) if s >= 0.5
        )
        assert [h["index"] for h in report.hotspots] == expected
        assert report.n_clips == len(clips)
        assert report.rescored_tiles == report.n_tiles

    def test_sharded_scan_equals_serial_scan(self, chip):
        serial = make_scanner(chip).scan(chip)
        sharded = make_scanner(chip, shards=3).scan(chip)
        assert sharded.hotspots == serial.hotspots
        assert sharded.manifest == serial.manifest

    def test_second_scan_replays_everything(self, chip, tmp_path):
        first = make_scanner(chip, tmp_path).scan(chip)
        second = make_scanner(chip, tmp_path).scan(chip)
        assert first.rescored_tiles == first.n_tiles
        assert second.replayed_tiles == second.n_tiles
        assert second.rescored_tiles == 0
        assert second.hotspots == first.hotspots  # bit-identical replay

    def test_incremental_rescore_is_local(self, chip, tmp_path):
        make_scanner(chip, tmp_path).scan(chip)
        grid = TileGrid.for_layout(chip, CLIP, MARGIN, tile_clips=2)
        core = grid.window(0, 0).expanded(-MARGIN)
        edited = Layout(
            list(chip.rects)
            + [Rect(core.x0 + 12, core.y0 + 12,
                    core.x0 + 90, core.y0 + 90)],
            die=chip.die, tech_nm=chip.tech_nm, name=chip.name,
        )
        report = make_scanner(edited, tmp_path).scan(edited)
        assert report.rescored_tiles == 1
        assert report.replayed_tiles == report.n_tiles - 1
        assert report.rescored_clips <= grid.tile_clips ** 2

    def test_incremental_false_rescans_everything(self, chip, tmp_path):
        make_scanner(chip, tmp_path).scan(chip)
        report = make_scanner(
            chip, tmp_path, incremental=False
        ).scan(chip)
        assert report.rescored_tiles == report.n_tiles

    def test_kill_and_resume_mid_scan(self, chip, tmp_path):
        calls = {"n": 0}

        def dying_score(tensors):
            calls["n"] += 1
            if calls["n"] > 3:
                raise KeyboardInterrupt("killed mid-scan")
            return density_score(tensors)

        grid = TileGrid.for_layout(chip, CLIP, MARGIN, tile_clips=2)
        plane = BatchFeatureExtractor(FeatureExtractor(grid=96))
        config = StreamConfig(
            tile_clips=2, shards=2, state_dir=str(tmp_path)
        )
        dying = StreamScanner(grid, plane, dying_score, config)
        with pytest.raises(KeyboardInterrupt):
            dying.scan(chip)
        # completed tiles persisted before the crash
        survived = TileVerdictStore(tmp_path / "tiles").keys()
        assert 1 <= len(survived) < grid.n_tiles

        resumed = StreamScanner(
            grid, plane, density_score, config
        ).scan(chip)
        assert resumed.replayed_tiles == len(survived)
        assert resumed.rescored_tiles == grid.n_tiles - len(survived)
        clean = make_scanner(chip).scan(chip)
        assert resumed.hotspots == clean.hotspots

    def test_events_cover_every_tile(self, chip):
        bus = EventBus()
        log = bus.subscribe(EventLog())
        report = make_scanner(chip, bus=bus).scan(chip)
        [started] = log.of_kind("scan_started")
        assert started.payload["n_tiles"] == report.n_tiles
        tiles = log.of_kind("tile_scanned")
        assert len(tiles) == report.n_tiles
        [done] = log.of_kind("scan_completed")
        assert done.payload["n_hotspots"] == report.n_hotspots

    def test_empty_layout_scans_clean(self, tmp_path):
        blank = Layout([], die=Rect(0, 0, 4000, 4000), name="blank")
        report = scan_layout(
            blank, CLIP, MARGIN, score_fn=density_score,
            stream=StreamConfig(tile_clips=2,
                                state_dir=str(tmp_path)),
        )
        assert report.n_clips == 0
        assert report.n_hotspots == 0
        assert report.n_tiles > 0

    def test_scanner_requires_a_scoring_path(self, chip):
        grid = TileGrid.for_layout(chip, CLIP, MARGIN)
        plane = BatchFeatureExtractor(FeatureExtractor(grid=96))
        with pytest.raises(ValueError):
            StreamScanner(grid, plane, score_fn=None)

    def test_litho_labeler_verdicts(self, chip):
        from repro.litho.labeler import LithoLabeler
        from repro.litho.simulator import LithoSimulator

        grid = TileGrid.for_layout(chip, CLIP, MARGIN, tile_clips=3)
        plane = BatchFeatureExtractor(FeatureExtractor(grid=96))
        labeler = LithoLabeler(LithoSimulator.for_tech(chip.tech_nm))
        scanner = StreamScanner(
            grid, plane, score_fn=None,
            config=StreamConfig(tile_clips=3), labeler=labeler,
        )
        report = scanner.scan(chip)
        assert report.n_clips == labeler.query_count
        assert all(h["score"] == 1.0 for h in report.hotspots)


class TestStreamConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            StreamConfig(tile_clips=0)
        with pytest.raises(ValueError):
            StreamConfig(shards=0)
        with pytest.raises(ValueError):
            StreamConfig(cursor_every=0)
        with pytest.raises(ValueError):
            StreamConfig(threshold=1.5)
