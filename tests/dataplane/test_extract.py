"""Tests for the batch extractor: bit-identity, caching, events.

The data plane's contract is that chunking, pooling, deduplication and
caching change *throughput only* — every array must equal the eager
per-clip ``FeatureExtractor`` output bit for bit.
"""

import numpy as np
import pytest

from repro.dataplane import (
    BatchFeatureExtractor,
    DataPlaneConfig,
    FeatureCache,
)
from repro.engine import EventBus, EventLog
from repro.features import FeatureExtractor
from repro.layout import Clip, Rect


def make_clip(rects, size=1200, margin=300, idx=0):
    window = Rect(0, 0, size, size)
    return Clip(window, window.expanded(-margin), rects=rects, index=idx)


@pytest.fixture(scope="module")
def clips():
    """17 geometrically distinct clips (ragged against chunk_size=4)."""
    return [
        make_clip(
            [
                Rect(100, 400 + 10 * i, 1100, 520 + 14 * i),
                Rect(150 + 20 * i, 700, 450 + 20 * i, 900),
            ],
            idx=i,
        )
        for i in range(17)
    ]


@pytest.fixture(scope="module")
def eager(clips):
    fx = FeatureExtractor(grid=96)
    tensors = np.stack([fx.encode(c) for c in clips])
    flats = np.stack([fx.flat_features(c) for c in clips])
    return tensors, flats


class TestBitIdentity:
    def test_chunked_serial_equals_eager(self, clips, eager):
        plane = BatchFeatureExtractor(
            FeatureExtractor(grid=96), DataPlaneConfig(chunk_size=4)
        )
        batch = plane.extract(clips)
        np.testing.assert_array_equal(batch.tensors, eager[0])
        np.testing.assert_array_equal(batch.flats, eager[1])

    def test_thread_pool_equals_eager(self, clips, eager):
        plane = BatchFeatureExtractor(
            FeatureExtractor(grid=96),
            DataPlaneConfig(chunk_size=4, workers=3, executor="thread"),
        )
        batch = plane.extract(clips)
        np.testing.assert_array_equal(batch.tensors, eager[0])
        np.testing.assert_array_equal(batch.flats, eager[1])

    def test_process_pool_equals_eager(self, clips, eager):
        plane = BatchFeatureExtractor(
            FeatureExtractor(grid=96),
            DataPlaneConfig(chunk_size=6, workers=2, executor="process"),
        )
        np.testing.assert_array_equal(plane.encode_batch(clips), eager[0])

    def test_encode_and_flat_entrypoints(self, clips, eager):
        plane = BatchFeatureExtractor(
            FeatureExtractor(grid=96), DataPlaneConfig(chunk_size=5)
        )
        np.testing.assert_array_equal(plane.encode_batch(clips), eager[0])
        np.testing.assert_array_equal(plane.flat_batch(clips), eager[1])

    def test_empty_batch(self):
        plane = BatchFeatureExtractor(FeatureExtractor(grid=96))
        batch = plane.extract([])
        assert batch.tensors.shape == (0, 64, 12, 12)
        assert batch.flats.shape[0] == 0


class TestCaching:
    def test_warm_cache_identical_outputs(self, clips, eager):
        plane = BatchFeatureExtractor(
            FeatureExtractor(grid=96), DataPlaneConfig(chunk_size=4)
        )
        plane.extract(clips)
        warm = plane.extract(clips)  # every clip served from memory
        np.testing.assert_array_equal(warm.tensors, eager[0])
        np.testing.assert_array_equal(warm.flats, eager[1])
        assert plane.cache_stats["memory_hits"] >= len(clips)

    def test_duplicates_encoded_once(self, clips):
        plane = BatchFeatureExtractor(
            FeatureExtractor(grid=96), DataPlaneConfig(chunk_size=4)
        )
        doubled = clips + [
            make_clip([Rect(r.x0, r.y0, r.x1, r.y1) for r in c.rects],
                      idx=100 + i)
            for i, c in enumerate(clips)
        ]
        batch = plane.extract(doubled)
        n = len(clips)
        np.testing.assert_array_equal(batch.tensors[:n], batch.tensors[n:])
        assert plane.cache_stats["puts"] == 2 * n  # tensor + flat per clip

    def test_disk_tier_survives_new_plane(self, clips, eager, tmp_path):
        cfg = DataPlaneConfig(chunk_size=4, disk_cache_dir=str(tmp_path))
        BatchFeatureExtractor(FeatureExtractor(grid=96), cfg).extract(clips)
        fresh = BatchFeatureExtractor(FeatureExtractor(grid=96), cfg)
        batch = fresh.extract(clips)
        np.testing.assert_array_equal(batch.tensors, eager[0])
        np.testing.assert_array_equal(batch.flats, eager[1])
        assert fresh.cache_stats["disk_hits"] == 2 * len(clips)
        assert fresh.cache_stats["puts"] == 0

    def test_params_change_invalidates(self, clips):
        cache = FeatureCache(memory_items=256)
        coarse = BatchFeatureExtractor(
            FeatureExtractor(grid=96, coeffs=32), cache=cache
        )
        fine = BatchFeatureExtractor(FeatureExtractor(grid=96), cache=cache)
        coarse.encode_batch(clips)
        tensors = fine.encode_batch(clips)  # must NOT hit the 32-coeff keys
        assert tensors.shape[1] == 64
        assert cache.stats.hits == 0


class TestEvents:
    def test_features_extracted_payload(self, clips):
        bus = EventBus()
        log = bus.subscribe(EventLog())
        plane = BatchFeatureExtractor(
            FeatureExtractor(grid=96),
            DataPlaneConfig(chunk_size=4),
            bus=bus,
        )
        plane.extract(clips + clips[:3])
        plane.extract(clips)
        cold, warm = [e.payload for e in log.of_kind("features_extracted")]
        assert cold["n_clips"] == len(clips) + 3
        assert cold["cache_hits"] == 0
        assert cold["cache_misses"] == len(clips)
        assert cold["deduped"] == 3
        assert cold["chunks"] == 5  # ceil(17 / 4)
        assert cold["kinds"] == ["tensor", "flat"]
        assert cold["extract_seconds"] > 0
        assert warm["cache_hits"] == len(clips)
        assert warm["cache_misses"] == 0
        assert warm["chunks"] == 0
        assert warm["cache_stats"]["memory_hits"] >= 2 * len(clips)

    def test_stage_seconds_sees_extraction(self, clips):
        bus = EventBus()
        log = bus.subscribe(EventLog())
        BatchFeatureExtractor(
            FeatureExtractor(grid=96), bus=bus
        ).extract(clips)
        assert "extract" in log.stage_seconds()


class TestConfig:
    def test_defaults_are_safe(self):
        cfg = DataPlaneConfig()
        assert cfg.workers == 0  # in-process unless asked
        assert cfg.executor == "thread"

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError, match="chunk_size"):
            DataPlaneConfig(chunk_size=0)
        with pytest.raises(ValueError, match="workers"):
            DataPlaneConfig(workers=-1)
        with pytest.raises(ValueError, match="executor"):
            DataPlaneConfig(executor="fiber")
        with pytest.raises(ValueError, match="memory_cache_items"):
            DataPlaneConfig(memory_cache_items=-1)


class TestIterExtract:
    def test_batches_bit_identical_to_eager(self, clips, eager):
        plane = BatchFeatureExtractor(
            FeatureExtractor(grid=96), DataPlaneConfig(chunk_size=4)
        )
        got_tensors = []
        got_flats = []
        for batch_clips, batch in plane.iter_extract(
            iter(clips), batch_clips=5
        ):
            assert len(batch.tensors) == len(batch_clips)
            got_tensors.append(batch.tensors)
            got_flats.append(batch.flats)
        np.testing.assert_array_equal(
            np.concatenate(got_tensors), eager[0]
        )
        np.testing.assert_array_equal(
            np.concatenate(got_flats), eager[1]
        )

    def test_batch_sizes_are_bounded(self, clips):
        plane = BatchFeatureExtractor(
            FeatureExtractor(grid=96), DataPlaneConfig(chunk_size=4)
        )
        sizes = [
            len(batch_clips)
            for batch_clips, _ in plane.iter_extract(clips, batch_clips=5)
        ]
        assert sizes == [5, 5, 5, 2]  # 17 clips, bounded batches

    def test_default_batch_covers_pool_width(self, clips):
        plane = BatchFeatureExtractor(
            FeatureExtractor(grid=96),
            DataPlaneConfig(chunk_size=4, workers=2),
        )
        sizes = [
            len(batch_clips) for batch_clips, _ in plane.iter_extract(clips)
        ]
        assert sizes == [8, 8, 1]  # chunk_size * workers per batch

    def test_consumes_lazy_iterators(self, clips):
        plane = BatchFeatureExtractor(FeatureExtractor(grid=96))

        def generator():
            yield from clips[:3]

        batches = list(plane.iter_extract(generator(), batch_clips=2))
        assert [len(b) for b, _ in batches] == [2, 1]

    def test_each_batch_emits_its_own_event(self, clips):
        bus = EventBus()
        log = bus.subscribe(EventLog())
        plane = BatchFeatureExtractor(
            FeatureExtractor(grid=96), DataPlaneConfig(chunk_size=4),
            bus=bus,
        )
        list(plane.iter_extract(clips, batch_clips=5))
        events = log.of_kind("features_extracted")
        assert len(events) == 4
        assert [e.payload["n_clips"] for e in events] == [5, 5, 5, 2]

    def test_invalid_batch_clips_rejected(self, clips):
        plane = BatchFeatureExtractor(FeatureExtractor(grid=96))
        with pytest.raises(ValueError):
            list(plane.iter_extract(clips, batch_clips=0))

    def test_streaming_shares_the_cache(self, clips):
        plane = BatchFeatureExtractor(FeatureExtractor(grid=96))
        list(plane.iter_extract(clips, batch_clips=5))
        misses_after_stream = plane.cache.stats.misses
        plane.extract(clips)  # eager call over the same geometry
        assert plane.cache.stats.misses == misses_after_stream
