"""Tests for InferenceSession: cached scaling + single-pass prediction."""

import numpy as np
import pytest

from repro.engine import InferenceSession
from repro.model import HotspotClassifier


@pytest.fixture(scope="module")
def trained():
    """A small trained classifier plus the pool it was fitted against."""
    rng = np.random.default_rng(0)
    n, shape = 60, (4, 8, 8)
    pool = rng.normal(size=(n,) + shape)
    y = np.zeros(n, dtype=np.int64)
    y[n // 2 :] = 1
    pool[n // 2 :, 0] += 2.0
    clf = HotspotClassifier(input_shape=shape, arch="mlp", epochs=15, seed=0)
    clf.fit_scaler(pool)
    clf.fit(pool, y)
    return clf, pool


class TestScaledCache:
    def test_scaled_matches_direct_transform(self, trained):
        clf, pool = trained
        session = InferenceSession(clf, pool)
        np.testing.assert_array_equal(
            session.scaled, clf.scaler.transform(pool)
        )

    def test_cache_is_reused(self, trained):
        clf, pool = trained
        session = InferenceSession(clf, pool)
        assert session.scaled is session.scaled  # same object, no rescale

    def test_fit_scaler_invalidates(self, trained):
        clf, pool = trained
        clf = clf.clone_untrained()
        clf.fit_scaler(pool)
        clf.fit(pool[:20], np.arange(20) % 2, epochs=1)
        session = InferenceSession(clf, pool)
        before = session.scaled
        assert session.cache_valid
        # refit on shifted data -> different statistics -> new cache
        clf.fit_scaler(pool + 5.0)
        assert not session.cache_valid
        after = session.scaled
        assert session.cache_valid
        assert not np.array_equal(before, after)

    def test_explicit_invalidate_forces_recompute(self, trained):
        clf, pool = trained
        session = InferenceSession(clf, pool)
        first = session.scaled
        session.invalidate()
        assert not session.cache_valid
        second = session.scaled
        assert first is not second
        np.testing.assert_array_equal(first, second)


class TestSessionPrediction:
    def test_logits_match_classifier_bitwise(self, trained):
        clf, pool = trained
        session = InferenceSession(clf, pool)
        idx = np.array([3, 1, 41, 17])
        np.testing.assert_array_equal(
            session.logits(idx), clf.predict_logits(pool[idx])
        )

    def test_logits_all_rows_when_no_indices(self, trained):
        clf, pool = trained
        session = InferenceSession(clf, pool)
        np.testing.assert_array_equal(
            session.logits(), clf.predict_logits(pool)
        )

    def test_predict_full_matches_two_pass_bitwise(self, trained):
        """The single tapped pass must equal the old two-pass path
        bit-for-bit: same logits, same normalized embeddings."""
        clf, pool = trained
        session = InferenceSession(clf, pool)
        idx = np.arange(0, 50, 3)
        full = session.predict_full(idx)
        np.testing.assert_array_equal(
            full.logits, clf.predict_logits(pool[idx])
        )
        np.testing.assert_array_equal(
            full.embeddings, clf.embeddings(pool[idx])
        )

    def test_predict_full_unnormalized(self, trained):
        clf, pool = trained
        session = InferenceSession(clf, pool)
        idx = np.arange(10)
        full = session.predict_full(idx, normalize=False)
        np.testing.assert_array_equal(
            full.embeddings, clf.embeddings(pool[idx], normalize=False)
        )

    def test_embeddings_match_classifier_bitwise(self, trained):
        clf, pool = trained
        session = InferenceSession(clf, pool)
        idx = np.array([0, 7, 13])
        np.testing.assert_array_equal(
            session.embeddings(idx), clf.embeddings(pool[idx])
        )

    def test_predict_full_multi_batch_matches_two_pass(self, trained):
        """More rows than the inference batch (128) forces the internal
        batching loop; stitched output must still equal the two-pass
        path bit-for-bit."""
        clf, pool = trained
        big = np.tile(pool, (3, 1, 1, 1))  # 180 rows -> two batches
        full = clf.predict_full(big)
        np.testing.assert_array_equal(full.logits, clf.predict_logits(big))
        np.testing.assert_array_equal(full.embeddings, clf.embeddings(big))


class TestIterLogits:
    def test_single_batch_bit_identical_to_logits(self, trained):
        clf, pool = trained
        session = InferenceSession(clf, pool)
        idx = np.arange(0, len(pool), 2)
        batches = list(session.iter_logits(idx))  # default: one batch
        assert len(batches) == 1
        rows, logits = batches[0]
        np.testing.assert_array_equal(rows, idx)
        np.testing.assert_array_equal(logits, session.logits(idx))

    def test_batch_zero_means_whole_pool(self, trained):
        clf, pool = trained
        session = InferenceSession(clf, pool)
        batches = list(session.iter_logits(batch=0))
        assert len(batches) == 1
        assert len(batches[0][1]) == len(pool)

    def test_batches_are_bounded_and_cover_rows(self, trained):
        clf, pool = trained
        session = InferenceSession(clf, pool)
        idx = np.arange(0, 50)
        rows_seen = []
        for rows, logits in session.iter_logits(idx, batch=16):
            assert len(rows) <= 16
            assert len(logits) == len(rows)
            rows_seen.extend(int(r) for r in rows)
        assert rows_seen == list(range(50))

    def test_none_indices_streams_every_row(self, trained):
        clf, pool = trained
        session = InferenceSession(clf, pool)
        total = sum(
            len(rows) for rows, _ in session.iter_logits(batch=7)
        )
        assert total == len(pool)

    def test_negative_batch_rejected(self, trained):
        clf, pool = trained
        session = InferenceSession(clf, pool)
        with pytest.raises(ValueError):
            list(session.iter_logits(batch=-1))
