"""Tests for run-health supervision (sentinels, recovery, degradation)."""

import json

import numpy as np
import pytest

from repro.calibration import TemperatureScaler
from repro.core import FrameworkConfig, PSHDFramework
from repro.core.framework import SelectionContext
from repro.engine import EventBus, EventLog, GuardConfig, GuardReport, RunSupervisor
from repro.model import HotspotClassifier
from repro.stats import FitError


def make_supervisor(seed=0, **overrides):
    bus = EventBus()
    log = bus.subscribe(EventLog())
    supervisor = RunSupervisor(GuardConfig(**overrides), bus, seed=seed)
    return supervisor, log


class TestGuardConfig:
    def test_defaults_valid(self):
        cfg = GuardConfig()
        assert cfg.enabled is True
        assert cfg.max_litho is None

    @pytest.mark.parametrize("kwargs", [
        dict(max_train_retries=-1),
        dict(lr_backoff=0.0),
        dict(lr_backoff=1.5),
        dict(max_posterior_retries=-1),
        dict(t_min=0.0),
        dict(t_min=5.0, t_max=2.0),
        dict(max_litho=0),
        dict(stage_timeout=-1.0),
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            GuardConfig(**kwargs)


class TestGuardReport:
    def test_final_mode_normal_when_clean(self):
        assert GuardReport().final_mode == "normal"

    def test_final_mode_joins_distinct_degradations(self):
        report = GuardReport()
        report.degraded.append({"mode": "random_seeding"})
        report.degraded.append({"mode": "budget_exhausted"})
        report.degraded.append({"mode": "budget_exhausted"})
        assert report.final_mode == "degraded:random_seeding+budget_exhausted"

    def test_as_dict_counts(self):
        report = GuardReport()
        report.alerts.append({"sentinel": "x"})
        as_dict = report.as_dict()
        assert as_dict["n_alerts"] == 1
        assert as_dict["n_recoveries"] == 0
        assert as_dict["final_mode"] == "normal"

    def test_save_writes_json(self, tmp_path):
        report = GuardReport()
        report.degraded.append({"mode": "budget_exhausted"})
        path = report.save(tmp_path)
        assert path.name == "guard_report.json"
        loaded = json.loads(path.read_text())
        assert loaded["final_mode"] == "degraded:budget_exhausted"


class TestGuardedPosterior:
    def test_fit_error_retried_with_fresh_seed(self):
        supervisor, log = make_supervisor()
        offsets = []

        def fit(offset):
            offsets.append(offset)
            if offset == 0:
                raise FitError("collapsed")
            rng = np.random.default_rng(7)
            posterior = rng.uniform(size=20)
            return posterior, None

        posterior = supervisor.guarded_posterior(fit, n=20)
        assert offsets == [0, 7919]
        assert len(posterior) == 20
        report = supervisor.report()
        assert [a["sentinel"] for a in report.alerts] == ["gmm_degenerate"]
        assert [r["policy"] for r in report.recoveries] == ["gmm_reseed"]
        assert report.final_mode == "normal"  # recovered, not degraded
        assert log.kinds() == ["health_alert", "recovery_applied"]

    def test_degenerate_posterior_detected(self):
        supervisor, _ = make_supervisor(max_posterior_retries=0)

        def fit(offset):
            return np.full(10, 0.5), None  # no ranking signal

        posterior = supervisor.guarded_posterior(fit, n=10)
        report = supervisor.report()
        assert "constant posterior" in report.alerts[0]["detail"]
        assert report.final_mode == "degraded:random_seeding"
        # the random fallback still ranks (non-constant, in [0, 1])
        assert np.ptp(posterior) > 0
        assert len(posterior) == 10

    def test_exhausted_retries_fall_back_deterministically(self):
        def fit(offset):
            raise FitError("always degenerate")

        a, _ = make_supervisor(seed=3)
        b, _ = make_supervisor(seed=3)
        np.testing.assert_array_equal(
            a.guarded_posterior(fit, n=15), b.guarded_posterior(fit, n=15)
        )
        assert a.report().final_mode == "degraded:random_seeding"
        # retries + the final exhaustion each raised one alert
        assert len(a.report().alerts) == 3

    def test_collapsed_component_weight_detected(self):
        supervisor, _ = make_supervisor(max_posterior_retries=0)

        class FakeGMM:
            weights_ = np.array([1.0 - 1e-15, 1e-15])

        def fit(offset):
            return np.linspace(0, 1, 10), FakeGMM()

        supervisor.guarded_posterior(fit, n=10)
        assert "collapsed mixture" in supervisor.report().alerts[0]["detail"]

    def test_healthy_fit_untouched(self):
        supervisor, log = make_supervisor()
        healthy = np.linspace(0.1, 0.9, 12)

        def fit(offset):
            return healthy, None

        out = supervisor.guarded_posterior(fit, n=12)
        np.testing.assert_array_equal(out, healthy)
        assert log.kinds() == []
        assert supervisor.report().final_mode == "normal"


class TestGuardedCalibration:
    def test_fit_exception_falls_back_to_identity(self):
        supervisor, log = make_supervisor()
        scaler = TemperatureScaler()
        logits = np.full((5, 2), np.nan)  # fit_temperature raises
        supervisor.guarded_calibration(scaler, logits, np.zeros(5, dtype=int))
        assert scaler.temperature_ == 1.0
        assert scaler.converged_ is False
        report = supervisor.report()
        assert report.alerts[0]["sentinel"] == "calibration_failure"
        assert report.recoveries[0]["policy"] == "identity_temperature"
        assert log.kinds() == ["health_alert", "recovery_applied"]

    def test_out_of_range_temperature_falls_back(self):
        supervisor, _ = make_supervisor()

        class WildScaler:
            temperature_ = None
            converged_ = None

            def fit(self, logits, labels, bounds=(0.05, 20.0)):
                self.temperature_ = 100.0  # ignores bounds
                self.converged_ = True

        scaler = WildScaler()
        supervisor.guarded_calibration(
            scaler, np.zeros((4, 2)), np.zeros(4, dtype=int)
        )
        assert scaler.temperature_ == 1.0

    def test_healthy_fit_untouched(self):
        supervisor, log = make_supervisor()
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=200)
        signal = (2 * y - 1) + rng.normal(scale=1.0, size=200)
        logits = np.column_stack([-signal, signal]) * 4.0
        scaler = TemperatureScaler()
        supervisor.guarded_calibration(scaler, logits, y)
        reference = TemperatureScaler().fit(logits, y)
        assert scaler.temperature_ == reference.temperature_
        assert scaler.converged_ is True
        assert log.kinds() == []


class TestGuardSelection:
    def make_context(self, probs, embeddings, k=4, seed=0):
        return SelectionContext(
            calibrated_probs=np.asarray(probs),
            raw_probs=np.asarray(probs),
            embeddings=np.asarray(embeddings),
            k=k,
            rng=np.random.default_rng(seed),
        )

    def healthy_inputs(self, n=12):
        rng = np.random.default_rng(1)
        p1 = rng.uniform(0.05, 0.95, size=n)
        probs = np.column_stack([1 - p1, p1])
        embeddings = rng.normal(size=(n, 6))
        embeddings /= np.linalg.norm(embeddings, axis=1, keepdims=True)
        return probs, embeddings

    def test_healthy_scoring_returns_none(self):
        probs, embeddings = self.healthy_inputs()
        supervisor, log = make_supervisor()
        assert supervisor.guard_selection(
            self.make_context(probs, embeddings), iteration=1
        ) is None
        assert log.kinds() == []

    def test_nan_probs_fall_back_to_pure_diversity(self):
        probs, embeddings = self.healthy_inputs()
        probs[0, 0] = np.nan
        supervisor, _ = make_supervisor()
        outcome = supervisor.guard_selection(
            self.make_context(probs, embeddings, k=4), iteration=1
        )
        chosen, diag = outcome
        assert diag == {"fallback": "pure_diversity"}
        assert len(chosen) == 4
        assert len(set(chosen.tolist())) == 4
        report = supervisor.report()
        assert report.alerts[0]["sentinel"] == "uncertainty_collapse"

    def test_constant_embeddings_fall_back_to_uncertainty(self):
        probs, embeddings = self.healthy_inputs()
        embeddings[:] = embeddings[0]  # zero diversity spread
        supervisor, _ = make_supervisor()
        chosen, diag = supervisor.guard_selection(
            self.make_context(probs, embeddings, k=3), iteration=2
        )
        assert diag == {"fallback": "uncertainty_only"}
        assert len(chosen) == 3
        assert supervisor.report().alerts[0]["sentinel"] == "diversity_collapse"

    def test_both_collapsed_fall_back_to_random(self):
        probs, embeddings = self.healthy_inputs()
        probs[:] = np.nan
        embeddings[:] = np.inf
        supervisor, _ = make_supervisor()
        chosen, diag = supervisor.guard_selection(
            self.make_context(probs, embeddings, k=5), iteration=1
        )
        assert diag == {"fallback": "random_selection"}
        assert len(chosen) == 5
        assert len(set(chosen.tolist())) == 5
        assert supervisor.report().alerts[0]["sentinel"] == "scoring_collapse"


class TestGuardedTraining:
    def make_classifier(self, iccad16_2_small):
        classifier = HotspotClassifier(
            input_shape=iccad16_2_small.tensors.shape[1:],
            arch="mlp", seed=0,
        )
        classifier.fit_scaler(iccad16_2_small.tensors)
        return classifier

    def test_nan_trace_rolls_back_and_retrains(self, iccad16_2_small):
        classifier = self.make_classifier(iccad16_2_small)
        x = iccad16_2_small.tensors[:40]
        y = iccad16_2_small.labels[:40]
        classifier.fit(x, y, epochs=3)
        lr_before = classifier.learning_rate
        supervisor, log = make_supervisor()
        calls = []

        def train_fn():
            trace = classifier.update(x, y, epochs=2)
            calls.append(1)
            return [float("nan")] if len(calls) == 1 else trace

        trace = supervisor.guarded_training(
            classifier, train_fn, stage="update", iteration=1
        )
        assert np.isfinite(trace).all()
        assert len(calls) == 2  # poisoned attempt + successful retry
        assert classifier.learning_rate == pytest.approx(lr_before * 0.5)
        report = supervisor.report()
        assert report.recoveries[0]["policy"] == "rollback_retrain"
        assert report.final_mode == "normal"
        assert log.kinds() == ["health_alert", "recovery_applied"]

    def test_persistent_divergence_freezes_model(self, iccad16_2_small):
        classifier = self.make_classifier(iccad16_2_small)
        x = iccad16_2_small.tensors[:40]
        y = iccad16_2_small.labels[:40]
        classifier.fit(x, y, epochs=3)
        frozen_weights = {
            k: np.array(v)
            for k, v in classifier.network.get_weights().items()
        }
        supervisor, _ = make_supervisor(max_train_retries=1)

        def always_diverges():
            classifier.update(x, y, epochs=1)
            return [float("inf")]

        supervisor.guarded_training(
            classifier, always_diverges, stage="update", iteration=1
        )
        report = supervisor.report()
        assert report.recoveries[-1]["policy"] == "freeze_model"
        assert report.final_mode == "degraded:training_frozen"
        # the model was restored to the pre-stage snapshot
        for key, value in classifier.network.get_weights().items():
            np.testing.assert_array_equal(value, frozen_weights[key])

    def test_snapshotless_classifier_passes_through(self):
        class Opaque:
            pass

        supervisor, log = make_supervisor()
        trace = supervisor.guarded_training(
            Opaque(), lambda: [float("nan")], stage="seed"
        )
        assert np.isnan(trace[0])  # unsupervised: no rollback possible
        assert log.kinds() == []


def fast_config(**overrides):
    defaults = dict(
        n_query=60, k_batch=10, n_iterations=2, init_train=24,
        val_size=20, arch="mlp", epochs_initial=8, epochs_update=3,
        seed=0,
    )
    defaults.update(overrides)
    return FrameworkConfig(**defaults)


class TestBitIdentity:
    """The guard's core contract: supervision never perturbs a healthy
    run.  A guarded run must be bit-identical to an unguarded one."""

    def test_guarded_equals_unguarded(self, iccad16_2_small):
        guarded_fw = PSHDFramework(iccad16_2_small, fast_config())
        guarded = guarded_fw.run()
        unguarded_fw = PSHDFramework(
            iccad16_2_small, fast_config(guard=GuardConfig(enabled=False))
        )
        unguarded = unguarded_fw.run()

        assert guarded.accuracy == unguarded.accuracy
        assert guarded.litho == unguarded.litho
        assert guarded.history == unguarded.history
        for key, value in guarded_fw.classifier.network.get_weights().items():
            np.testing.assert_array_equal(
                value, unguarded_fw.classifier.network.get_weights()[key]
            )
        assert guarded.guard is not None
        assert guarded.guard["final_mode"] == "normal"
        assert guarded.guard["n_alerts"] == 0
        assert unguarded.guard is None

    def test_report_archived_next_to_checkpoints(
        self, iccad16_2_small, tmp_path
    ):
        cfg = fast_config(
            n_iterations=1, checkpoint_dir=str(tmp_path)
        )
        PSHDFramework(iccad16_2_small, cfg).run()
        report = json.loads((tmp_path / "guard_report.json").read_text())
        assert report["final_mode"] == "normal"
        assert report["enabled"] is True


class PoisonOnceClassifier(HotspotClassifier):
    """Reports a NaN loss trace on the first ``update`` call — the
    injected training divergence of the end-to-end recovery test."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.poisoned_updates = 0

    def update(self, x, y, epochs=None):
        trace = super().update(x, y, epochs=epochs)
        if self.poisoned_updates == 0:
            self.poisoned_updates += 1
            return [float("nan")]
        return trace


class TestEndToEndRecovery:
    """Inject three independent faults into one run: a NaN training
    loss, a failing temperature fit, and a litho budget overrun.  The
    run must complete without raising, emit all three event kinds, and
    the GuardReport must account for every fault."""

    def test_faulted_run_completes_degraded(
        self, iccad16_2_small, monkeypatch
    ):
        calls = {"n": 0}
        real_fit = TemperatureScaler.fit

        def flaky_fit(self, logits, labels, bounds=(0.05, 20.0)):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("injected calibration failure")
            return real_fit(self, logits, labels, bounds)

        monkeypatch.setattr(TemperatureScaler, "fit", flaky_fit)

        # seed charges 24 + 20 = 44 clips, each iteration 10 more:
        # iteration 1 reaches 54, iteration 2 would need 64 > 60
        cfg = fast_config(
            n_iterations=4, guard=GuardConfig(max_litho=60)
        )
        classifier = PoisonOnceClassifier(
            input_shape=iccad16_2_small.tensors.shape[1:],
            arch="mlp", lr=cfg.lr, seed=cfg.seed,
        )
        bus = EventBus()
        log = bus.subscribe(EventLog())
        result = PSHDFramework(
            iccad16_2_small, cfg, classifier=classifier, bus=bus
        ).run()

        # all three guard event kinds were emitted on the bus
        kinds = set(log.kinds())
        assert {"health_alert", "recovery_applied", "degraded_mode"} <= kinds
        # detection still ran, and the guard report trails it
        assert log.kinds()[-2:] == ["detection_done", "guard_report"]

        guard = result.guard
        assert guard is not None
        sentinels = {a["sentinel"] for a in guard["alerts"]}
        assert {"train_divergence", "calibration_failure",
                "litho_budget"} <= sentinels
        policies = {r["policy"] for r in guard["recoveries"]}
        assert {"rollback_retrain", "identity_temperature",
                "early_stop"} <= policies
        assert guard["final_mode"] == "degraded:budget_exhausted"

        # the budget was honoured: litho = train + val + false alarms,
        # and the meter itself never exceeded max_litho
        assert result.n_train + result.n_val <= 60
        assert result.litho == (
            result.n_train + result.n_val + result.false_alarms
        )
        # only iteration 1 committed a batch before the overrun
        assert result.n_train == 24 + 10
        assert 0.0 <= result.accuracy <= 1.0
