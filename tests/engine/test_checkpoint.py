"""Tests for the checkpoint payload and its atomic .npz/JSON I/O."""

import json

import numpy as np
import pytest

from repro.engine.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    RunCheckpoint,
    ScanCursor,
    checkpoint_paths,
    load_checkpoint,
    posterior_array,
    save_checkpoint,
    scaler_arrays,
)


def sample_checkpoint():
    rng = np.random.default_rng(7)
    return RunCheckpoint(
        schema={"benchmark": "iccad16_3", "seed": 0, "arch": "cnn"},
        iteration=2,
        rng_state=rng.bit_generator.state,
        shuffle_rng_state=np.random.default_rng(1).bit_generator.state,
        temperature=1.25,
        index_sets={
            "train_idx": [0, 3, 5],
            "y_train": [1, 0, 1],
            "val_idx": [7],
            "y_val": [0],
            "pool": [2, 4, 6],
            "discarded": [],
            "batch_hotspot_trace": [2, 1],
            "iterations_run": 2,
        },
        labeler_state={"cache": {"0": 1, "3": 0}, "query_count": 2},
        history=[{"iteration": 1, "accuracy": 0.5}],
        arrays={
            "net/0.W": rng.normal(size=(4, 3)),
            "state/posterior": rng.random(8),
            **scaler_arrays(np.zeros((1, 2, 2)), np.ones((1, 2, 2))),
        },
    )


class TestCheckpointPaths:
    @pytest.mark.parametrize("suffix", ["", ".npz", ".json"])
    def test_all_spellings_name_the_same_pair(self, tmp_path, suffix):
        npz, manifest = checkpoint_paths(tmp_path / f"run7{suffix}")
        assert npz == tmp_path / "run7.npz"
        assert manifest == tmp_path / "run7.json"


class TestRoundTrip:
    def test_save_load_roundtrip(self, tmp_path):
        original = sample_checkpoint()
        manifest_path = save_checkpoint(original, tmp_path / "ckpt")
        assert manifest_path == tmp_path / "ckpt.json"

        loaded = load_checkpoint(tmp_path / "ckpt")
        assert loaded.version == CHECKPOINT_VERSION
        assert loaded.schema == original.schema
        assert loaded.iteration == original.iteration
        assert loaded.rng_state == original.rng_state
        assert loaded.shuffle_rng_state == original.shuffle_rng_state
        assert loaded.temperature == original.temperature
        assert loaded.index_sets == original.index_sets
        assert loaded.labeler_state == original.labeler_state
        assert loaded.history == original.history
        assert sorted(loaded.arrays) == sorted(original.arrays)
        for key, value in original.arrays.items():
            np.testing.assert_array_equal(loaded.arrays[key], value)

    def test_save_creates_directories(self, tmp_path):
        save_checkpoint(sample_checkpoint(), tmp_path / "a" / "b" / "ckpt")
        assert (tmp_path / "a" / "b" / "ckpt.json").exists()

    def test_no_tmp_leftovers(self, tmp_path):
        save_checkpoint(sample_checkpoint(), tmp_path / "ckpt")
        leftovers = [p.name for p in tmp_path.iterdir() if ".tmp" in p.name]
        assert leftovers == []

    def test_manifest_is_plain_json(self, tmp_path):
        """The manifest must survive a strict json round trip (no numpy
        scalars leaking through)."""
        ckpt = sample_checkpoint()
        ckpt.index_sets["train_idx"] = [np.int64(0), np.int64(3)]
        ckpt.temperature = np.float64(1.5)
        manifest_path = save_checkpoint(ckpt, tmp_path / "ckpt")
        manifest = json.loads(manifest_path.read_text())
        assert manifest["index_sets"]["train_idx"] == [0, 3]
        assert manifest["temperature"] == 1.5

    def test_rejects_non_array_payload(self, tmp_path):
        ckpt = sample_checkpoint()
        ckpt.arrays["net/bad"] = [1, 2, 3]
        with pytest.raises(CheckpointError, match="not ndarray"):
            save_checkpoint(ckpt, tmp_path / "ckpt")


class TestLoadFailsLoudly:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint manifest"):
            load_checkpoint(tmp_path / "nope")

    def test_missing_archive(self, tmp_path):
        save_checkpoint(sample_checkpoint(), tmp_path / "ckpt")
        (tmp_path / "ckpt.npz").unlink()
        with pytest.raises(CheckpointError, match="archive"):
            load_checkpoint(tmp_path / "ckpt")

    def test_corrupt_manifest_json(self, tmp_path):
        save_checkpoint(sample_checkpoint(), tmp_path / "ckpt")
        (tmp_path / "ckpt.json").write_text("{not json")
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(tmp_path / "ckpt")

    def test_manifest_missing_fields(self, tmp_path):
        path = save_checkpoint(sample_checkpoint(), tmp_path / "ckpt")
        manifest = json.loads(path.read_text())
        del manifest["rng_state"]
        path.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="rng_state"):
            load_checkpoint(tmp_path / "ckpt")

    def test_version_mismatch(self, tmp_path):
        path = save_checkpoint(sample_checkpoint(), tmp_path / "ckpt")
        manifest = json.loads(path.read_text())
        manifest["version"] = CHECKPOINT_VERSION + 1
        path.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(tmp_path / "ckpt")

    def test_archive_manifest_key_disagreement(self, tmp_path):
        save_checkpoint(sample_checkpoint(), tmp_path / "ckpt")
        with np.load(tmp_path / "ckpt.npz") as archive:
            arrays = {k: archive[k] for k in archive.files}
        del arrays["net/0.W"]
        np.savez_compressed(tmp_path / "ckpt.npz", **arrays)
        with pytest.raises(CheckpointError, match="does not match"):
            load_checkpoint(tmp_path / "ckpt")


class TestContractedBoundaries:
    def test_posterior_array_coerces(self):
        out = posterior_array(np.arange(4, dtype=np.float64))
        assert out.dtype == np.float64

    def test_scaler_arrays_keys(self):
        out = scaler_arrays(np.zeros((2, 3, 3)), np.ones((2, 3, 3)))
        assert set(out) == {"scaler/mean", "scaler/std"}


class TestScanCursor:
    FP = {"die": [0, 0, 4800, 3600], "clip_size": 1200,
          "core_margin": 300, "step": 600, "tile_clips": 2}

    def test_fresh_cursor_is_empty(self, tmp_path):
        cursor = ScanCursor.load(tmp_path / "cursor.json", self.FP)
        assert cursor.done == {}
        assert not cursor.is_done("0000_0000", "abc")

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "cursor.json"
        cursor = ScanCursor(path, self.FP)
        cursor.mark("0000_0000", "d0")
        cursor.mark("0001_0000", "d1")
        cursor.save()
        loaded = ScanCursor.load(path, self.FP)
        assert loaded.done == {"0000_0000": "d0", "0001_0000": "d1"}
        assert loaded.is_done("0000_0000", "d0")
        assert not loaded.is_done("0000_0000", "other-digest")

    def test_fingerprint_mismatch_discards_progress(self, tmp_path):
        path = tmp_path / "cursor.json"
        cursor = ScanCursor(path, self.FP)
        cursor.mark("0000_0000", "d0")
        cursor.save()
        other = dict(self.FP, tile_clips=4)
        assert ScanCursor.load(path, other).done == {}

    def test_corrupt_file_is_a_fresh_cursor(self, tmp_path):
        path = tmp_path / "cursor.json"
        path.write_text("{torn write")
        assert ScanCursor.load(path, self.FP).done == {}

    def test_save_is_atomic(self, tmp_path):
        path = tmp_path / "cursor.json"
        cursor = ScanCursor(path, self.FP)
        cursor.mark("0000_0000", "d0")
        cursor.save()
        assert not list(tmp_path.glob("*.tmp"))

    def test_reset_removes_file(self, tmp_path):
        path = tmp_path / "cursor.json"
        cursor = ScanCursor(path, self.FP)
        cursor.mark("k", "d")
        cursor.save()
        cursor.reset()
        assert cursor.done == {}
        assert not path.exists()
        assert ScanCursor.load(path, self.FP).done == {}
