"""Concurrency regression tests of :class:`InferenceSession`.

The centrepiece is a *deterministic* replay of the historical
``scaled`` cache race: the refresh was an unlocked check-then-act, so
two threads could both observe a stale cache and both recompute/assign
the scaled pool.  The interleaving harness reproduces that window on
every run against an unlocked session (proving the schedule really is
the race) and shows the same adversarial schedule degrades into a legal
ordering on the locked session (proving the fix) — mirroring
``tests/dataplane/test_cache_threads.py``.
"""

import numpy as np
import pytest

from repro.analysis.interleave import InterleaveScheduler
from repro.engine.session import InferenceSession
from repro.model.classifier import HotspotClassifier
from repro.nn.runtime import PrecisionPolicy

#: the adversarial schedule: pin thread ``a`` right after its staleness
#: check succeeds (the duplicate entry holds it at the point), let
#: ``b``'s check also pass, then resume ``a`` — both recompute
RACE_SCHEDULE = [
    ("a", "session.scaled.stale"),
    ("b", "session.scaled.stale"),
    ("a", "session.scaled.stale"),
]


class _NullLock:
    """Stand-in that deliberately provides no mutual exclusion — used
    to re-create the pre-fix session for the regression test."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def held(self):  # satisfies guarded_by under any mode
        return True


class _CountingScaler:
    """Wraps the fitted scaler, counting ``transform`` calls — the
    double compute is the observable symptom of the race."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0

    def transform(self, x, policy=None):
        self.calls += 1
        return self.inner.transform(x, policy=policy)


def _pool(n=12):
    return np.random.default_rng(3).normal(size=(n, 3, 6, 6))


def _classifier(pool, precision="exact"):
    clf = HotspotClassifier(
        input_shape=pool.shape[1:], arch="mlp", precision=precision
    )
    clf.fit_scaler(pool)
    clf.scaler = _CountingScaler(clf.scaler)
    return clf


def _race_once(session) -> InterleaveScheduler:
    sched = InterleaveScheduler(RACE_SCHEDULE, timeout=10.0)
    sched.run(
        {
            "a": lambda: session.scaled,
            "b": lambda: session.scaled,
        }
    )
    return sched


def test_unlocked_session_race_reproduces_every_run(monkeypatch):
    """The seeded pre-fix race is caught 100% of runs, not as a flake:
    both threads pass the staleness check and both pay the transform."""
    monkeypatch.setenv("REPRO_CHECK", "off")
    pool = _pool()
    for attempt in range(5):
        clf = _classifier(pool)
        session = InferenceSession(clf, pool)
        session._lock = _NullLock()
        sched = _race_once(session)
        assert sched.errors == {}, f"run {attempt}: {sched.errors!r}"
        assert clf.scaler.calls == 2, (
            f"run {attempt}: expected both threads to recompute the "
            f"scaled pool, saw {clf.scaler.calls} transform call(s)"
        )


def test_locked_session_survives_the_same_schedule(monkeypatch):
    """Post-fix, lock-blocked deferral turns the adversarial schedule
    into a legal interleaving: ``b`` blocks on the session lock, enters
    after ``a`` filled the cache, and serves the cached tensor."""
    monkeypatch.setenv("REPRO_CHECK", "strict")
    pool = _pool()
    for attempt in range(5):
        clf = _classifier(pool)
        session = InferenceSession(clf, pool)
        sched = _race_once(session)
        assert sched.errors == {}, f"run {attempt}: {sched.errors!r}"
        assert clf.scaler.calls == 1, (
            f"run {attempt}: expected one transform under the lock, "
            f"saw {clf.scaler.calls}"
        )
        # both threads see the identical cached object
        assert sched.results["a"] is sched.results["b"]


def test_precision_swap_refreshes_the_cache():
    """The cache keys on compute dtype, not just scaler_version — a
    precision swap must re-scale, never serve a stale-dtype tensor."""
    pool = _pool()
    clf = _classifier(pool)
    session = InferenceSession(clf, pool)

    exact = session.scaled
    assert exact.dtype == np.float64
    assert session.cache_valid

    clf.policy = PrecisionPolicy("fast")
    assert not session.cache_valid
    fast = session.scaled
    assert fast.dtype == np.float32
    assert clf.scaler.calls == 2

    clf.policy = PrecisionPolicy("exact")
    assert session.scaled.dtype == np.float64


def test_guarded_attributes_reject_unlocked_access(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK", "strict")
    from repro.analysis.concurrency import LockDisciplineError
    from repro.analysis.modes import set_check_mode

    previous = set_check_mode("strict")
    try:
        pool = _pool(4)
        clf = _classifier(pool)
        session = InferenceSession(clf, pool)
        with pytest.raises(LockDisciplineError, match="without holding"):
            session._scaled
        with session._lock:
            assert session._scaled is None
    finally:
        set_check_mode(previous)
