"""Tests for the event bus and the framework's event emission."""

import pytest

from repro.core import FrameworkConfig, PSHDFramework
from repro.engine import (
    EVENT_KINDS,
    EventBus,
    EventLog,
    HistoryRecorder,
    ProgressPrinter,
)


class TestEventBus:
    def test_emit_reaches_subscribers_in_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(("a", e.kind)))
        bus.subscribe(lambda e: seen.append(("b", e.kind)))
        bus.emit("run_start", benchmark="x")
        assert seen == [("a", "run_start"), ("b", "run_start")]

    def test_kind_filter(self):
        bus = EventBus()
        log = bus.subscribe(EventLog(), kinds=["model_updated"])
        bus.emit("run_start")
        bus.emit("model_updated", iteration=1)
        bus.emit("detection_done")
        assert log.kinds() == ["model_updated"]

    def test_seq_numbers_are_monotone(self):
        bus = EventBus()
        log = bus.subscribe(EventLog())
        for kind in EVENT_KINDS:
            bus.emit(kind)
        assert [e.seq for e in log.events] == list(range(len(EVENT_KINDS)))

    def test_unknown_kind_rejected(self):
        bus = EventBus()
        with pytest.raises(ValueError, match="unknown event kind"):
            bus.emit("coffee_break")  # reprolint: disable=R003
        with pytest.raises(ValueError, match="unknown event kinds"):
            bus.subscribe(lambda e: None, kinds=["coffee_break"])

    def test_unsubscribe(self):
        bus = EventBus()
        log = bus.subscribe(EventLog())
        bus.emit("run_start")
        bus.unsubscribe(log)
        bus.emit("detection_done")
        assert log.kinds() == ["run_start"]

    def test_event_log_stage_seconds(self):
        bus = EventBus()
        log = bus.subscribe(EventLog())
        bus.emit("batch_selected", select_seconds=0.25, iteration=1)
        bus.emit("batch_selected", select_seconds=0.5, iteration=2)
        bus.emit("model_updated", update_seconds=1.0, iteration=2)
        totals = log.stage_seconds()
        assert totals == {"select": 0.75, "update": 1.0}

    def test_history_recorder_only_listens_to_model_updated(self):
        recorder = HistoryRecorder()
        bus = EventBus()
        bus.subscribe(recorder)
        bus.emit("run_start", benchmark="b")
        bus.emit(
            "model_updated",
            iteration=1, train_size=10, hotspots_in_train=3,
            temperature=1.5, batch_hotspots=2, litho_used=30,
            update_seconds=0.1, diagnostics={"weights": [0.5, 0.5]},
        )
        assert recorder.history == [{
            "iteration": 1, "train_size": 10, "hotspots_in_train": 3,
            "temperature": 1.5, "batch_hotspots": 2,
            "weights": [0.5, 0.5],
        }]

    def test_progress_printer_formats_each_kind(self, capsys):
        printer = ProgressPrinter()
        bus = EventBus()
        bus.subscribe(printer)
        bus.emit("run_start", method="ours", n_train=10, n_val=5,
                 pool_size=100, litho_used=15, seed_seconds=0.1,
                 benchmark="b")
        bus.emit("iteration_start", iteration=1, pool_size=100,
                 litho_used=15)
        bus.emit("model_updated", iteration=1, train_size=20,
                 hotspots_in_train=4, temperature=1.2, batch_hotspots=1,
                 litho_used=25, update_seconds=0.2, diagnostics={})
        bus.emit("detection_done", scanned=80, hits=3, false_alarms=2,
                 litho_used=27, detect_seconds=0.05)
        out = capsys.readouterr().out
        assert "seeded" in out
        assert "iteration 1" in out
        assert "T=1.200" in out
        assert "3 hits" in out


class TestFrameworkEvents:
    @pytest.fixture(scope="class")
    def run_with_log(self, iccad16_2_small):
        cfg = FrameworkConfig(
            n_query=60, k_batch=10, n_iterations=2, init_train=24,
            val_size=20, arch="mlp", epochs_initial=10, epochs_update=3,
            seed=0,
        )
        bus = EventBus()
        log = bus.subscribe(EventLog())
        result = PSHDFramework(iccad16_2_small, cfg, bus=bus).run()
        return result, log

    def test_event_ordering_across_two_iterations(self, run_with_log):
        _, log = run_with_log
        # seed-stage batched labeling (train set, then validation set)
        # reports before run_start; each iteration labels its batch
        assert log.kinds() == [
            "labels_computed", "labels_computed",
            "run_start",
            "iteration_start", "batch_selected", "labels_computed",
            "model_updated",
            "iteration_start", "batch_selected", "labels_computed",
            "model_updated",
            "detection_done",
            "guard_report",
        ]

    def test_payload_litho_accounting(self, run_with_log):
        result, log = run_with_log
        start = log.of_kind("run_start")[0].payload
        assert start["n_train"] == 24
        assert start["n_val"] == 20
        assert start["litho_used"] == 44
        updates = log.of_kind("model_updated")
        # each iteration labels k_batch more clips
        assert [u.payload["litho_used"] for u in updates] == [54, 64]
        done = log.of_kind("detection_done")[0].payload
        assert done["litho_used"] == result.litho
        assert done["hits"] == result.hits
        assert done["false_alarms"] == result.false_alarms

    def test_batch_selected_payload(self, run_with_log):
        _, log = run_with_log
        for event in log.of_kind("batch_selected"):
            payload = event.payload
            assert len(payload["selected"]) == 10
            assert payload["query_size"] == 60
            assert payload["temperature"] > 0
            assert payload["select_seconds"] >= 0

    def test_stage_timings_present(self, run_with_log):
        _, log = run_with_log
        totals = log.stage_seconds()
        assert set(totals) == {"seed", "select", "update", "detect",
                               "label", "simulated"}
        assert all(v >= 0 for v in totals.values())

    def test_history_from_bus_matches_result(self, run_with_log):
        """PSHDResult.history is the HistoryRecorder's output and keeps
        the seed implementation's exact entry layout."""
        result, log = run_with_log
        assert len(result.history) == 2
        for entry, update in zip(result.history, log.of_kind("model_updated")):
            assert set(entry) == {
                "iteration", "train_size", "hotspots_in_train",
                "temperature", "batch_hotspots", "weights",
                "mean_uncertainty", "mean_diversity",
            }
            assert entry["train_size"] == update.payload["train_size"]

    def test_external_bus_optional(self, iccad16_2_small):
        """Without an explicit bus the run still records history."""
        cfg = FrameworkConfig(
            n_query=60, k_batch=10, n_iterations=1, init_train=24,
            val_size=20, arch="mlp", epochs_initial=5, epochs_update=2,
            seed=0,
        )
        result = PSHDFramework(iccad16_2_small, cfg).run()
        assert len(result.history) == 1

    def test_history_equivalent_to_inline_reference(self, run_with_log):
        """The bus-built history must equal what the seed implementation
        recorded inline: values recomputable from the run's own result."""
        result, _ = run_with_log
        sizes = [h["train_size"] for h in result.history]
        assert sizes == [24 + 10 * (i + 1) for i in range(2)]
        for entry in result.history:
            assert entry["temperature"] > 0
            assert 0 <= entry["batch_hotspots"] <= 10
            assert sum(entry["weights"]) == pytest.approx(1.0)
        assert isinstance(result.history[-1]["hotspots_in_train"], int)
