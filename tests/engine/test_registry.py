"""Tests for the name-keyed method registry."""

import pytest

from repro.baselines import METHODS, make_config, qp_selector, ts_selector
from repro.baselines.pattern_matching import PM_MODES
from repro.core import FrameworkConfig, PSHDFramework
from repro.engine import (
    MethodSpec,
    framework_method_names,
    get_method,
    method_names,
    register_method,
    resolve_selector,
)


class TestRegistryContents:
    def test_all_al_methods_registered(self):
        names = method_names()
        for method in METHODS:
            assert method in names

    def test_all_pm_modes_registered(self):
        names = method_names()
        for mode in PM_MODES:
            assert f"pm-{mode}" in names

    def test_framework_names_exclude_pm(self):
        names = framework_method_names()
        assert "ours" in names
        assert all(not n.startswith("pm-") for n in names)

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError, match="unknown method"):
            get_method("alchemy")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_method(MethodSpec(name="ours"))

    def test_resolve_selector(self):
        assert resolve_selector("ours") is None  # built-in EntropySampling
        assert resolve_selector("ts") is ts_selector
        with pytest.raises(ValueError, match="no batch selector"):
            resolve_selector("pm-exact")


class TestBuildConfig:
    def test_qp_spec_carries_method_quirks(self):
        base = FrameworkConfig(k_batch=25)
        cfg = get_method("qp").build_config(base)
        assert cfg.selector is qp_selector
        assert cfg.method_name == "qp"
        assert cfg.discard_query_rest is True
        assert cfg.n_query == 50  # [14]'s small first-step query set

    def test_make_config_is_registry_backed(self):
        base = FrameworkConfig(seed=3)
        for method in METHODS:
            cfg = make_config(method, base)
            assert cfg == get_method(method).build_config(base)
            assert cfg.method_name == method
            assert cfg.seed == 3

    def test_build_config_rejected_for_pm(self):
        with pytest.raises(ValueError, match="standalone"):
            get_method("pm-exact").build_config()

    def test_run_rejected_for_framework_method(self, iccad16_2_small):
        with pytest.raises(ValueError, match="framework method"):
            get_method("ts").run(iccad16_2_small)


class TestConsumption:
    def test_framework_resolves_selector_by_name(self, iccad16_2_small):
        """FrameworkConfig(selector=\"ts\") runs the TS baseline."""
        cfg = FrameworkConfig(
            n_query=60, k_batch=10, n_iterations=1, init_train=24,
            val_size=20, arch="mlp", epochs_initial=5, epochs_update=2,
            seed=0, selector="ts",
        )
        framework = PSHDFramework(iccad16_2_small, cfg)
        assert framework.config.selector is ts_selector
        assert framework.config.method_name == "ts"
        result = framework.run()
        assert result.method == "ts"
        assert result.litho > 0

    def test_bench_harness_reaches_pm_by_name(self, iccad16_2_small):
        from repro.bench import run_method

        result = run_method(iccad16_2_small, "pm-a90", "iccad16-2")
        assert result.method == "pm-a90"
        assert result.litho > 0

    def test_bench_harness_reaches_al_by_name(self, iccad16_2_small):
        from repro.bench import run_method_instrumented

        cfg = FrameworkConfig(
            n_query=60, k_batch=10, n_iterations=1, init_train=24,
            val_size=20, arch="mlp", epochs_initial=5, epochs_update=2,
            seed=0,
        )
        result, log = run_method_instrumented(
            iccad16_2_small, "random", "iccad16-2", config=cfg
        )
        assert result.method == "random"
        assert "run_start" in log.kinds()
        assert log.kinds()[-2:] == ["detection_done", "guard_report"]
        assert "select" in log.stage_seconds()
        assert "label" in log.stage_seconds()

    def test_cli_parser_offers_registry_methods(self):
        from repro.cli.main import build_detect_parser

        parser = build_detect_parser()
        args = parser.parse_args(["layout.glp", "--method", "kcenter"])
        assert args.method == "kcenter"
        with pytest.raises(SystemExit):
            parser.parse_args(["layout.glp", "--method", "pm-exact"])

    def test_selector_name_determinism_matches_callable(self, iccad16_2_small):
        """Resolving by name and passing the callable directly must give
        identical runs (same seed, same selector, same results)."""
        common = dict(
            n_query=60, k_batch=10, n_iterations=2, init_train=24,
            val_size=20, arch="mlp", epochs_initial=5, epochs_update=2,
            seed=1,
        )
        from repro.baselines import random_selector

        by_name = PSHDFramework(
            iccad16_2_small,
            FrameworkConfig(selector="random", **common),
        ).run()
        by_callable = PSHDFramework(
            iccad16_2_small,
            FrameworkConfig(
                selector=random_selector, method_name="random", **common
            ),
        ).run()
        assert by_name.accuracy == by_callable.accuracy
        assert by_name.litho == by_callable.litho
        assert by_name.history == by_callable.history
