"""Runtime array-contract tests: spec grammar + check_array + @contract."""

import numpy as np
import pytest

from repro.analysis.contracts import (
    ContractError,
    ContractWarning,
    check_array,
    check_mode,
    checking,
    contract,
    set_check_mode,
)
from repro.analysis.spec import ArraySpec, SpecError, parse_spec


@pytest.fixture(autouse=True)
def _strict_mode():
    """Run every test here in strict mode unless it switches explicitly."""
    previous = set_check_mode("strict")
    yield
    set_check_mode(previous)


# ----------------------------------------------------------------------
# spec grammar
# ----------------------------------------------------------------------
class TestParseSpec:
    def test_basic(self):
        (spec,) = parse_spec("f8[N,H,W]")
        assert spec.dtype_code == "f8"
        assert spec.dims == ("N", "H", "W")
        assert not spec.optional
        assert spec.check_finite

    def test_exact_and_wildcard_dims(self):
        (spec,) = parse_spec("*[N,2,*]")
        assert spec.dims == ("N", 2, "*")

    def test_scalar(self):
        (spec,) = parse_spec("f8[]")
        assert spec.dims == ()

    def test_optional_and_nonfinite_flags(self):
        (spec,) = parse_spec("?f8![N]")
        assert spec.optional
        assert not spec.check_finite

    def test_variadic(self):
        (spec,) = parse_spec("f8[N,...]")
        assert spec.variadic
        assert spec.fixed_dims == ("N",)

    def test_alternation(self):
        alts = parse_spec("f8[N,M]|f8[N]")
        assert len(alts) == 2
        assert alts[0].dims == ("N", "M")
        assert alts[1].dims == ("N",)

    @pytest.mark.parametrize(
        "bad",
        ["", "f8", "f8[N", "q[N]", "f8[N,...,M]", "f8[-1]", "f8[N-]"],
    )
    def test_malformed(self, bad):
        with pytest.raises(SpecError):
            parse_spec(bad)

    def test_describe_roundtrips_source(self):
        (spec,) = parse_spec("  f8[N,2] ")
        assert spec.describe() == "f8[N,2]"
        rendered = ArraySpec(dtype_code="f8", dims=("N", 2)).describe()
        assert rendered == "f8[N,2]"


# ----------------------------------------------------------------------
# check_array
# ----------------------------------------------------------------------
class TestCheckArray:
    def test_accepts_matching(self):
        x = np.zeros((3, 2))
        assert check_array(x, "f8[N,2]") is x

    def test_rejects_wrong_dtype(self):
        with pytest.raises(ContractError, match="dtype"):
            check_array(np.zeros((3, 2), dtype=np.float32), "f8[N,2]")

    def test_rejects_wrong_rank(self):
        with pytest.raises(ContractError, match="rank"):
            check_array(np.zeros(3), "f8[N,2]")

    def test_rejects_wrong_exact_dim(self):
        with pytest.raises(ContractError, match="size 3, expected 2"):
            check_array(np.zeros((4, 3)), "f8[N,2]")

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ContractError, match="NaN or Inf"):
            check_array(np.array([1.0, np.nan]), "f8[N]")
        with pytest.raises(ContractError, match="NaN or Inf"):
            check_array(np.array([1.0, np.inf]), "f8[N]")

    def test_nonfinite_flag_skips_finiteness(self):
        x = np.array([1.0, np.nan])
        assert check_array(x, "f8![N]") is x

    def test_named_dims_bind_across_calls(self):
        dims = {}
        check_array(np.zeros((3, 5)), "f8[N,D]", dims)
        assert dims == {"N": 3, "D": 5}
        with pytest.raises(ContractError, match="named dim 'N'"):
            check_array(np.zeros(4), "f8[N]", dims)

    def test_named_dim_consistency_within_one_spec(self):
        assert check_array(np.zeros((2, 3, 3)), "f8[C,B,B]") is not None
        with pytest.raises(ContractError, match="named dim 'B'"):
            check_array(np.zeros((2, 3, 4)), "f8[C,B,B]")

    def test_optional_accepts_none(self):
        assert check_array(None, "?f8[N]") is None
        with pytest.raises(ContractError, match="got None"):
            check_array(None, "f8[N]")

    def test_alternation_first_match_wins(self):
        assert check_array(np.zeros(4), "f8[N,M]|f8[N]") is not None

    def test_failed_alternative_does_not_leak_bindings(self):
        dims = {}
        # first alternative f8[N,N] fails on (2, 3) but must not bind N
        check_array(np.zeros((2, 3)), "f8[N,N]|f8[N,M]", dims)
        assert dims == {"N": 2, "M": 3}

    def test_variadic_minimum_rank(self):
        check_array(np.zeros((2, 3, 4, 5)), "f8[N,...]")
        with pytest.raises(ContractError, match="rank"):
            check_array(np.zeros(()), "f8[N,...]")

    def test_lenient_dtype_codes(self):
        check_array(np.zeros(3, dtype=np.float32), "f[N]")
        check_array(np.zeros(3, dtype=np.int32), "i[N]")
        check_array(np.zeros(3, dtype=bool), "b[N]")
        check_array(np.zeros(3, dtype=np.uint8), "*[N]")

    def test_array_likes_are_coerced_for_checking(self):
        value = [[1.0, 2.0], [3.0, 4.0]]
        assert check_array(value, "f8[N,2]") is value

    def test_warn_mode_warns_and_continues(self):
        x = np.zeros((3, 3))
        with pytest.warns(ContractWarning, match="matches no"):
            out = check_array(x, "f8[N,2]", mode="warn")
        assert out is x

    def test_off_mode_is_a_noop(self):
        x = np.array([np.nan])
        assert check_array(x, "i8[2,2]", mode="off") is x


# ----------------------------------------------------------------------
# modes
# ----------------------------------------------------------------------
class TestModes:
    def test_set_and_restore(self):
        assert check_mode() == "strict"
        with checking("off"):
            assert check_mode() == "off"
        assert check_mode() == "strict"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode must be one of"):
            set_check_mode("loud")

    def test_env_resolution(self):
        import os
        import subprocess
        import sys

        import repro

        src = os.path.dirname(os.path.dirname(repro.__file__))
        code = (
            "from repro.analysis.contracts import check_mode; "
            "print(check_mode())"
        )
        env = dict(os.environ, REPRO_CHECK="warn", PYTHONPATH=src)
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "warn"


# ----------------------------------------------------------------------
# the decorator
# ----------------------------------------------------------------------
class TestContractDecorator:
    def test_accepts_and_returns(self):
        @contract(x="f8[N,D]", returns="f8[N]")
        def row_sums(x):
            return x.sum(axis=1)

        out = row_sums(np.ones((3, 4)))
        assert out.shape == (3,)

    def test_rejects_bad_argument(self):
        @contract(x="f8[N,2]")
        def f(x):
            return x

        with pytest.raises(ContractError, match=r"f\(x\)"):
            f(np.zeros((3, 4)))

    def test_rejects_bad_return(self):
        @contract(x="f8[N]", returns="f8[N,2]")
        def f(x):
            return x

        with pytest.raises(ContractError, match="return"):
            f(np.zeros(3))

    def test_named_dims_shared_between_args_and_return(self):
        @contract(x="f8[N,D]", returns="f8[N]")
        def wrong_length(x):
            return np.zeros(len(x) + 1)

        with pytest.raises(ContractError, match="named dim 'N'"):
            wrong_length(np.zeros((3, 2)))

    def test_contract_error_is_value_and_type_error(self):
        @contract(x="f8[N,2]")
        def f(x):
            return x

        with pytest.raises(ValueError):
            f(np.zeros((3, 3)))
        with pytest.raises(TypeError):
            f(np.zeros((3, 3)))

    def test_methods_are_supported(self):
        class Model:
            @contract(x="f8[N,D]", returns="f8[N]")
            def score(self, x):
                return x.mean(axis=1)

        assert Model().score(np.ones((2, 3))).shape == (2,)

    def test_off_mode_skips_validation(self):
        @contract(x="f8[N,2]")
        def f(x):
            return x

        with checking("off"):
            f(np.zeros((3, 7)))  # would fail in strict

    def test_warn_mode_warns_once_per_violation(self):
        @contract(x="f8[N,2]")
        def f(x):
            return x

        with checking("warn"), pytest.warns(ContractWarning):
            f(np.zeros((3, 7)))

    def test_unknown_parameter_rejected_at_decoration(self):
        with pytest.raises(SpecError, match="unknown"):
            @contract(nope="f8[N]")
            def f(x):
                return x

    def test_empty_contract_rejected(self):
        with pytest.raises(SpecError, match="at least one spec"):
            contract()

    def test_registry_and_metadata(self):
        @contract(x="f8[N]")
        def documented(x):
            """Docstring survives wrapping."""
            return x

        assert documented.__doc__ == "Docstring survives wrapping."
        info = documented.__contract__
        assert info.qualname.endswith("documented")
        assert "x" in info.param_specs
