"""Tests of the deterministic interleaving harness
(:mod:`repro.analysis.interleave`)."""

import threading

import pytest

from repro.analysis.concurrency import TrackedLock
from repro.analysis.interleave import (
    InterleaveError,
    InterleaveScheduler,
    ScheduleTimeout,
    active_scheduler,
    trace_point,
)
from repro.analysis.modes import set_check_mode


@pytest.fixture(autouse=True)
def _strict(monkeypatch):
    # worker threads seed their mode from the env at first access
    monkeypatch.setenv("REPRO_CHECK", "strict")
    previous = set_check_mode("strict")
    yield
    set_check_mode(previous)


def test_trace_point_is_noop_without_scheduler():
    assert active_scheduler() is None
    trace_point("anything")  # must not raise or block


def test_schedule_forces_ordering():
    order = []

    def a():
        trace_point("a.1")
        order.append("a")

    def b():
        trace_point("b.1")
        order.append("b")

    # b's point is scripted first, so b commits before a every run
    sched = InterleaveScheduler(
        [("b", "b.1"), ("a", "a.1")], timeout=5.0
    )
    sched.run({"a": a, "b": b})
    assert sched.errors == {}
    assert order == ["b", "a"]


def test_duplicate_entries_pin_thread_across_turns():
    order = []

    def writer():
        trace_point("w.point")
        order.append("writer")

    def other():
        trace_point("o.point")
        order.append("other")

    # writer blocks at w.point while its second entry is queued behind
    # other's turn, so other runs in writer's preemption window
    sched = InterleaveScheduler(
        [
            ("writer", "w.point"),
            ("other", "o.point"),
            ("writer", "w.point"),
        ],
        timeout=5.0,
    )
    sched.run({"writer": writer, "other": other})
    assert order == ["other", "writer"]


def test_bare_string_entry_matches_any_point():
    hits = []

    def walker():
        trace_point("step.one")
        trace_point("step.two")
        hits.append("done")

    sched = InterleaveScheduler(["walker", "walker"], timeout=5.0)
    sched.run({"walker": walker})
    assert hits == ["done"]
    assert sched.trace == [("walker", "step.one"), ("walker", "step.two")]


def test_unregistered_threads_pass_through():
    sched = InterleaveScheduler([("runner", "shared.point")], timeout=5.0)
    seen = []

    def runner():
        # a plain thread the scheduler never registered: free pass even
        # through a label that appears in the schedule
        bystander = threading.Thread(
            target=lambda: (trace_point("shared.point"), seen.append("by"))
        )
        bystander.start()
        bystander.join(timeout=2.0)
        trace_point("shared.point")
        return "ok"

    assert sched.run({"runner": runner}) == {"runner": "ok"}
    assert seen == ["by"]


def test_finish_drops_remaining_entries():
    def early():
        return "done"  # never visits its scripted point

    def late():
        trace_point("late.point")
        return "also done"

    sched = InterleaveScheduler(
        [("early", "early.point"), ("late", "late.point")], timeout=5.0
    )
    results = sched.run({"early": early, "late": late})
    assert results == {"early": "done", "late": "also done"}


def test_timeout_diagnoses_stuck_thread():
    def stuck():
        trace_point("p")
        trace_point("p")  # second visit waits behind nobody's turn

    sched = InterleaveScheduler(
        [("stuck", "p"), ("nobody", "q"), ("stuck", "p")], timeout=0.3
    )
    # whichever deadline fires first wins: the stuck thread's visit()
    # raises into sched.errors, or run()'s join deadline raises directly
    try:
        sched.run({"stuck": stuck})
        error = sched.errors["stuck"]
    except ScheduleTimeout as exc:
        error = exc
    assert isinstance(error, ScheduleTimeout)
    assert "stuck" in str(error) and "'p'" in str(error)


def test_errors_are_captured_not_raised():
    def boom():
        raise RuntimeError("captured race")

    sched = InterleaveScheduler([], timeout=5.0)
    results = sched.run({"boom": boom})
    assert results == {}
    assert isinstance(sched.errors["boom"], RuntimeError)


def test_nested_run_rejected():
    sched = InterleaveScheduler([("outer", "p")], timeout=5.0)

    def outer():
        inner = InterleaveScheduler([], timeout=1.0)
        inner.run({})

    sched.run({"outer": outer})
    assert isinstance(sched.errors["outer"], InterleaveError)


def test_lock_blocked_thread_defers_its_schedule_entries():
    """A scripted turn for a thread stuck on a tracked lock rotates
    behind runnable threads instead of deadlocking the schedule."""
    lock = TrackedLock("interleave-test")
    order = []

    def holder():
        with lock:
            trace_point("holder.locked")
            order.append("holder")
        trace_point("holder.released")

    def contender():
        trace_point("contender.start")
        with lock:  # blocks until holder releases
            order.append("contender")

    # contender's lock-acquisition turn is scripted *before* the holder
    # releases; deferral must rotate it so the run completes
    sched = InterleaveScheduler(
        [
            ("holder", "holder.locked"),
            ("contender", "contender.start"),
            ("contender", None),
            ("holder", "holder.released"),
        ],
        timeout=5.0,
    )
    sched.run({"holder": holder, "contender": contender})
    assert sched.errors == {}
    assert order == ["holder", "contender"]


def test_rejects_non_positive_timeout():
    with pytest.raises(ValueError):
        InterleaveScheduler([], timeout=0.0)


def test_active_scheduler_scoped_to_run():
    seen = {}

    def probe():
        seen["during"] = active_scheduler()

    sched = InterleaveScheduler([], timeout=5.0)
    sched.run({"probe": probe})
    assert seen["during"] is sched
    assert active_scheduler() is None


def test_threads_are_named_and_daemonic():
    seen = {}

    def probe():
        me = threading.current_thread()
        seen["name"] = me.name
        seen["daemon"] = me.daemon

    InterleaveScheduler([], timeout=5.0).run({"probe": probe})
    assert seen == {"name": "interleave-probe", "daemon": True}
