"""The repo gates itself: reprolint over src+tests must be clean.

Mirrors the CI step ``python -m repro.analysis.lint src tests`` so a
violation fails locally before it fails remotely.
"""

from pathlib import Path

import pytest

from repro.analysis.lint import main
from repro.analysis.linter import discover_files, harvest_event_kinds, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture()
def repo_cwd(monkeypatch):
    monkeypatch.chdir(REPO_ROOT)


def test_repo_is_lint_clean(repo_cwd):
    violations = lint_paths(["src", "tests"])
    rendered = "\n".join(v.render() for v in violations)
    assert violations == [], f"reprolint violations:\n{rendered}"


def test_event_kinds_are_harvested(repo_cwd):
    kinds = harvest_event_kinds(discover_files(["src"]))
    assert kinds is not None
    assert "features_extracted" in kinds


def test_cli_exit_codes(repo_cwd, capsys):
    assert main(["src", "tests", "--quiet"]) == 0
    # an in-tree violation flips the exit code
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("R001", "R006", "R007", "R008", "R009", "R010", "R011"):
        assert code in out
    # every rule advertises its waiver syntax
    assert out.count("waive:") == 11
    assert "# reprolint: disable=R007" in out
    assert "# reprolint: no-contract" in out


def test_cli_reports_violations(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import numpy as np\nx = np.random.rand(3)\n")
    assert main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "R001" in out
