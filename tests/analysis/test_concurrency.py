"""Unit tests of the dynamic lock-discipline sanitizer
(:mod:`repro.analysis.concurrency`)."""

import threading
import warnings

import pytest

from repro.analysis.concurrency import (
    LockDisciplineError,
    LockDisciplineWarning,
    TrackedLock,
    TrackedRLock,
    guarded_by,
    held_locks,
    iter_guarded_attributes,
    lock_order_edges,
    reset_lock_order,
)
from repro.analysis.modes import set_check_mode


@pytest.fixture(autouse=True)
def strict_mode():
    previous = set_check_mode("strict")
    reset_lock_order()
    yield
    set_check_mode(previous)
    reset_lock_order()


def run_in_thread(fn, mode="strict"):
    """Run ``fn`` on a fresh thread in ``mode``; returns its raise."""
    box = {}

    def runner():
        set_check_mode(mode)
        try:
            fn()
        except BaseException as exc:  # noqa: BLE001 - captured result
            box["exc"] = exc

    thread = threading.Thread(target=runner)
    thread.start()
    thread.join()
    return box.get("exc")


class TestTrackedLock:
    def test_with_statement_tracks_ownership(self):
        lock = TrackedLock("t1")
        assert not lock.held() and not lock.locked()
        with lock:
            assert lock.held() and lock.locked()
            assert held_locks() == (lock,)
        assert not lock.held() and not lock.locked()
        assert held_locks() == ()

    def test_held_is_per_thread(self):
        lock = TrackedLock("t2")
        with lock:
            seen = {}

            def probe():
                seen["held"] = lock.held()
                seen["locked"] = lock.locked()

            run_in_thread(probe)
        assert seen == {"held": False, "locked": True}

    def test_rlock_reentrancy(self):
        lock = TrackedRLock("t3")
        with lock:
            with lock:
                assert lock.held()
            assert lock.held()  # still held after inner release
        assert not lock.held()

    def test_self_deadlock_detected_strict(self):
        lock = TrackedLock("t4")
        lock.acquire()
        try:
            with pytest.raises(LockDisciplineError, match="self-deadlock"):
                lock.acquire()
        finally:
            lock.release()

    def test_release_by_non_owner_detected(self):
        lock = TrackedLock("t5")
        lock.acquire()
        exc = run_in_thread(lock.release)
        assert isinstance(exc, LockDisciplineError)
        assert "not held by this thread" in str(exc)
        lock.release()

    def test_off_mode_is_plain_lock(self):
        set_check_mode("off")
        lock = TrackedLock("t6")
        with lock:
            assert lock.held()
        lock.acquire(blocking=False)
        lock.release()


class TestLockOrderGraph:
    def test_consistent_order_records_edge(self):
        a, b = TrackedLock("order-a"), TrackedLock("order-b")
        with a:
            with b:
                pass
        assert ("order-a", "order-b") in lock_order_edges()

    def test_inversion_detected(self):
        a, b = TrackedLock("inv-a"), TrackedLock("inv-b")
        with a:
            with b:
                pass

        def inverted():
            with b:
                with a:
                    pass

        exc = run_in_thread(inverted)
        assert isinstance(exc, LockDisciplineError)
        assert "lock-order inversion" in str(exc)

    def test_inversion_warns_in_warn_mode(self):
        a, b = TrackedLock("warn-a"), TrackedLock("warn-b")
        with a:
            with b:
                pass

        def inverted():
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                with b:
                    with a:
                        pass
            assert any(
                issubclass(w.category, LockDisciplineWarning)
                for w in caught
            ), "expected a LockDisciplineWarning"

        assert run_in_thread(inverted, mode="warn") is None

    def test_transitive_inversion_detected(self):
        a = TrackedLock("tri-a")
        b = TrackedLock("tri-b")
        c = TrackedLock("tri-c")
        with a:
            with b:
                pass
        with b:
            with c:
                pass

        def inverted():  # c -> a closes the a -> b -> c cycle
            with c:
                with a:
                    pass

        exc = run_in_thread(inverted)
        assert isinstance(exc, LockDisciplineError)

    def test_reset_forgets_history(self):
        a, b = TrackedLock("reset-a"), TrackedLock("reset-b")
        with a:
            with b:
                pass
        reset_lock_order()

        def now_legal():
            with b:
                with a:
                    pass

        assert run_in_thread(now_legal) is None


class Box:
    _items = guarded_by("_lock")

    def __init__(self):
        self._lock = TrackedRLock("box")
        with self._lock:
            self._items = {}


class TestGuardedBy:
    def test_unlocked_read_raises(self):
        box = Box()
        with pytest.raises(LockDisciplineError, match="without holding"):
            box._items

    def test_unlocked_write_raises(self):
        box = Box()
        with pytest.raises(LockDisciplineError, match="without holding"):
            box._items = {}

    def test_locked_access_passes(self):
        box = Box()
        with box._lock:
            box._items["k"] = 1
            assert box._items == {"k": 1}

    def test_off_mode_is_plain_slot(self):
        box = Box()
        set_check_mode("off")
        box._items["k"] = 2
        assert box._items == {"k": 2}

    def test_missing_attribute_raises_attribute_error(self):
        box = Box.__new__(Box)
        box._lock = TrackedRLock("empty-box")
        with box._lock:
            with pytest.raises(AttributeError):
                box._items

    def test_works_with_stdlib_rlock(self):
        class StdBox:
            _data = guarded_by("_lock")

            def __init__(self):
                self._lock = threading.RLock()
                with self._lock:
                    self._data = []

        box = StdBox()
        with pytest.raises(LockDisciplineError):
            box._data
        with box._lock:
            box._data.append(1)

    def test_descriptor_survives_class_access(self):
        assert isinstance(Box.__dict__["_items"], guarded_by)
        assert Box._items.lock_attr == "_lock"

    def test_introspection(self):
        assert dict(iter_guarded_attributes(Box)) == {"_items": "_lock"}
