"""Golden tests for each reprolint rule: fires on a violation, silent on
the fixed/waived form."""

import textwrap

from repro.analysis.linter import lint_source

EVENT_KINDS = frozenset({"features_extracted", "inference_completed"})

SRC_PATH = "src/repro/somepkg/module.py"


def lint(source, path=SRC_PATH, **kwargs):
    return lint_source(textwrap.dedent(source), path=path, **kwargs)


def codes(violations):
    return [v.code for v in violations]


# ----------------------------------------------------------------------
# R001 — unseeded global RNG
# ----------------------------------------------------------------------
class TestR001:
    def test_fires_on_global_rng(self):
        found = lint(
            """
            import numpy as np
            x = np.random.rand(3)
            np.random.seed(0)
            """
        )
        assert codes(found) == ["R001", "R001"]
        assert "unseeded global RNG" in found[0].message

    def test_fires_on_numpy_random_import(self):
        found = lint("from numpy.random import rand\n")
        assert codes(found) == ["R001"]

    def test_silent_on_seeded_generator(self):
        found = lint(
            """
            import numpy as np
            rng = np.random.default_rng(7)
            gen = np.random.Generator(np.random.PCG64(1))
            """
        )
        assert found == []

    def test_waiver_suppresses(self):
        found = lint(
            """
            import numpy as np
            x = np.random.rand(3)  # reprolint: disable=R001
            """
        )
        assert found == []


# ----------------------------------------------------------------------
# R002 — float64 invariance of nn/features kernels
# ----------------------------------------------------------------------
class TestR002:
    KERNEL_PATH = "src/repro/nn/somekernel.py"

    def test_fires_on_np_float32(self):
        found = lint(
            """
            import numpy as np
            def f(x):
                return x.astype(np.float32)
            """,
            path=self.KERNEL_PATH,
        )
        assert codes(found) == ["R002"]

    def test_fires_on_dtype_string_argument(self):
        found = lint(
            """
            import numpy as np
            def f(x):
                return np.zeros(3, dtype="float16")
            """,
            path=self.KERNEL_PATH,
        )
        assert codes(found) == ["R002"]

    def test_scoped_to_nn_and_features(self):
        source = """
            import numpy as np
            def f(x):
                return x.astype(np.float32)
            """
        assert lint(source, path="src/repro/viz/plots.py") == []
        assert codes(lint(source, path="src/repro/features/k.py")) == ["R002"]

    def test_runtime_module_is_allowlisted(self):
        # the compute runtime is the single sanctioned float32 site
        source = """
            import numpy as np
            COMPUTE = np.float32
            def f(x):
                return x.astype(np.float32)
            """
        assert lint(source, path="src/repro/nn/runtime.py") == []
        # the allowlist is exact — sibling kernels still fire
        assert codes(lint(source, path="src/repro/nn/layers.py")) == [
            "R002", "R002",
        ]
        assert codes(lint(source, path="src/repro/features/dct.py")) == [
            "R002", "R002",
        ]

    def test_docstring_mention_is_not_flagged(self):
        found = lint(
            '''
            def f(x):
                """float32 is mentioned here but never used."""
                return x
            ''',
            path=self.KERNEL_PATH,
        )
        assert found == []

    def test_waiver_suppresses(self):
        found = lint(
            """
            import numpy as np
            def f(x):
                return x.astype(np.float32)  # reprolint: disable=R002
            """,
            path=self.KERNEL_PATH,
        )
        assert found == []


# ----------------------------------------------------------------------
# R003 — registered event names only
# ----------------------------------------------------------------------
class TestR003:
    def test_fires_on_unregistered_name(self):
        found = lint(
            """
            def go(bus):
                bus.emit("coffee_break")
            """,
            event_kinds=EVENT_KINDS,
        )
        assert codes(found) == ["R003"]
        assert "coffee_break" in found[0].message

    def test_silent_on_registered_name(self):
        found = lint(
            """
            def go(bus):
                bus.emit("features_extracted", n=3)
            """,
            event_kinds=EVENT_KINDS,
        )
        assert found == []

    def test_skipped_without_a_registry(self):
        found = lint(
            """
            def go(bus):
                bus.emit("anything_goes")
            """,
            event_kinds=None,
        )
        assert found == []

    def test_dynamic_names_are_not_checked(self):
        found = lint(
            """
            def go(bus, kind):
                bus.emit(kind)
            """,
            event_kinds=EVENT_KINDS,
        )
        assert found == []

    def test_waiver_suppresses(self):
        found = lint(
            """
            def go(bus):
                bus.emit("coffee_break")  # reprolint: disable=R003
            """,
            event_kinds=EVENT_KINDS,
        )
        assert found == []


# ----------------------------------------------------------------------
# R004 — eager FeatureExtractor calls outside the data plane
# ----------------------------------------------------------------------
class TestR004:
    SOURCE = """
        from repro.features.pipeline import FeatureExtractor

        def build(clips):
            fx = FeatureExtractor(grid=128)
            return fx.encode_batch(clips)
        """

    def test_fires_on_tracked_variable(self):
        found = lint(self.SOURCE)
        assert codes(found) == ["R004"]
        assert "BatchFeatureExtractor" in found[0].message

    def test_fires_on_ctor_chain(self):
        found = lint(
            """
            from repro.features.pipeline import FeatureExtractor

            def build(clips):
                return FeatureExtractor().flat_batch(clips)
            """
        )
        assert codes(found) == ["R004"]

    def test_exempt_inside_dataplane_and_features(self):
        assert lint(self.SOURCE, path="src/repro/dataplane/extract.py") == []
        assert lint(self.SOURCE, path="src/repro/features/pipeline.py") == []

    def test_exempt_outside_src(self):
        assert lint(self.SOURCE, path="tests/features/test_pipeline.py") == []

    def test_waiver_suppresses(self):
        found = lint(
            """
            from repro.features.pipeline import FeatureExtractor

            def build(clips):
                fx = FeatureExtractor(grid=128)
                return fx.encode_batch(clips)  # reprolint: disable=R004
            """
        )
        assert found == []


# ----------------------------------------------------------------------
# R005 — mutable default arguments
# ----------------------------------------------------------------------
class TestR005:
    def test_fires_on_literal_defaults(self):
        found = lint(
            """
            def f(a=[], b={}, c=set()):
                return a, b, c
            """
        )
        assert codes(found) == ["R005", "R005", "R005"]

    def test_fires_on_np_array_default(self):
        found = lint(
            """
            import numpy as np
            def f(w=np.zeros(2)):
                return w
            """
        )
        assert codes(found) == ["R005"]

    def test_silent_on_none_sentinel(self):
        found = lint(
            """
            def f(a=None, b=(), c=0):
                return a, b, c
            """
        )
        assert found == []

    def test_waiver_suppresses(self):
        found = lint(
            """
            def f(a=[]):  # reprolint: disable=R005
                return a
            """
        )
        assert found == []


# ----------------------------------------------------------------------
# R006 — contract coverage of public array functions
# ----------------------------------------------------------------------
class TestR006:
    MODULE = "src/repro/core/uncertainty.py"

    def test_fires_on_uncontracted_public_function(self):
        found = lint(
            """
            import numpy as np

            def score(probs: np.ndarray) -> np.ndarray:
                return probs.max(axis=1)
            """,
            path=self.MODULE,
        )
        assert codes(found) == ["R006"]
        assert "score()" in found[0].message

    def test_silent_with_contract_decorator(self):
        found = lint(
            """
            import numpy as np
            from repro.analysis.contracts import contract

            @contract(probs="f8[N,2]", returns="f8[N]")
            def score(probs: np.ndarray) -> np.ndarray:
                return probs.max(axis=1)
            """,
            path=self.MODULE,
        )
        assert found == []

    def test_only_contracted_modules(self):
        source = """
            import numpy as np

            def score(probs: np.ndarray) -> np.ndarray:
                return probs.max(axis=1)
            """
        assert lint(source, path="src/repro/viz/plots.py") == []

    def test_private_and_arrayless_functions_exempt(self):
        found = lint(
            """
            import numpy as np

            def _helper(probs: np.ndarray) -> np.ndarray:
                return probs

            def threshold() -> float:
                return 0.5
            """,
            path=self.MODULE,
        )
        assert found == []

    def test_no_contract_waiver(self):
        found = lint(
            """
            import numpy as np

            def score(probs: np.ndarray) -> np.ndarray:  # reprolint: no-contract
                return probs.max(axis=1)
            """,
            path=self.MODULE,
        )
        assert found == []


# ----------------------------------------------------------------------
# driver behaviour
# ----------------------------------------------------------------------
class TestDriver:
    def test_syntax_error_reported_as_e999(self):
        found = lint_source("def broken(:\n", path="src/repro/x.py")
        assert codes(found) == ["E999"]

    def test_blanket_disable_waives_everything(self):
        found = lint(
            """
            import numpy as np
            x = np.random.rand(3)  # reprolint: disable
            """
        )
        assert found == []

    def test_select_restricts_rules(self):
        source = """
            import numpy as np
            x = np.random.rand(3)
            def f(a=[]):
                return a
            """
        only_r005 = lint(source, select=frozenset({"R005"}))
        assert codes(only_r005) == ["R005"]

    def test_render_format(self):
        found = lint("import numpy as np\nx = np.random.rand(3)\n")
        line = found[0].render()
        assert line.startswith(f"{SRC_PATH}:2:")
        assert " R001 " in line


# ----------------------------------------------------------------------
# R007 — unguarded writes to guarded_by attributes
# ----------------------------------------------------------------------
class TestR007:
    def test_fires_on_unlocked_write_descriptor_form(self):
        found = lint(
            """
            import threading
            from repro.analysis.concurrency import guarded_by

            class Cache:
                _memory = guarded_by("_lock")

                def __init__(self):
                    self._lock = threading.RLock()
                    self._memory = {}

                def put(self, key, value):
                    self._memory[key] = value
            """
        )
        assert codes(found) == ["R007"]
        assert "_memory" in found[0].message
        assert "_lock" in found[0].message

    def test_fires_on_unlocked_mutator_comment_form(self):
        found = lint(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._memory = {}  #: guarded_by: _lock

                def drop(self):
                    self._memory.clear()
            """
        )
        assert codes(found) == ["R007"]

    def test_silent_when_lock_held(self):
        found = lint(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._memory = {}  #: guarded_by: _lock

                def put(self, key, value):
                    with self._lock:
                        self._memory[key] = value
            """
        )
        assert found == []

    def test_silent_in_requires_annotated_helper(self):
        found = lint(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._memory = {}  #: guarded_by: _lock

                def _evict(self):  #: requires: _lock
                    self._memory.pop("old", None)

                def put(self, key, value):
                    with self._lock:
                        self._memory[key] = value
                        self._evict()
            """
        )
        assert found == []

    def test_waiver_suppresses(self):
        found = lint(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._memory = {}  #: guarded_by: _lock

                def racy(self):
                    self._memory.clear()  # reprolint: disable=R007
            """
        )
        assert found == []


# ----------------------------------------------------------------------
# R008 — bare acquire() without with / try-finally
# ----------------------------------------------------------------------
class TestR008:
    def test_fires_on_bare_acquire(self):
        found = lint(
            """
            import threading
            lock = threading.Lock()

            def critical():
                lock.acquire()
                do_work()
                lock.release()
            """
        )
        assert codes(found) == ["R008"]
        assert "leaks the lock" in found[0].message

    def test_silent_with_try_finally(self):
        found = lint(
            """
            import threading
            lock = threading.Lock()

            def critical():
                lock.acquire()
                try:
                    do_work()
                finally:
                    lock.release()
            """
        )
        assert found == []

    def test_scoped_to_src(self):
        found = lint(
            """
            import threading
            lock = threading.Lock()

            def critical():
                lock.acquire()
                lock.release()
            """,
            path="tests/test_something.py",
        )
        assert found == []

    def test_waiver_suppresses(self):
        found = lint(
            """
            import threading
            lock = threading.Lock()

            def probe():
                got = lock.acquire(blocking=False)  # reprolint: disable=R008
                return got
            """
        )
        assert found == []


# ----------------------------------------------------------------------
# R009 — thread spawn without join or daemon
# ----------------------------------------------------------------------
class TestR009:
    def test_fires_on_leaked_thread(self):
        found = lint(
            """
            import threading

            def spawn(work):
                thread = threading.Thread(target=work)
                thread.start()
            """
        )
        assert codes(found) == ["R009"]
        assert "outlive" in found[0].message

    def test_silent_with_daemon(self):
        found = lint(
            """
            import threading

            def spawn(work):
                threading.Thread(target=work, daemon=True).start()
            """
        )
        assert found == []

    def test_silent_with_join(self):
        found = lint(
            """
            import threading

            def spawn(work):
                threads = [threading.Thread(target=work) for _ in range(4)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
            """
        )
        assert found == []

    def test_scoped_to_src(self):
        found = lint(
            """
            import threading

            def spawn(work):
                threading.Thread(target=work).start()
            """,
            path="tests/test_something.py",
        )
        assert found == []

    def test_waiver_suppresses(self):
        found = lint(
            """
            import threading

            def spawn(work):
                thread = threading.Thread(target=work)  # reprolint: disable=R009
                thread.start()
            """
        )
        assert found == []


# ----------------------------------------------------------------------
# R010 — blocking calls while holding a lock
# ----------------------------------------------------------------------
class TestR010:
    def test_fires_on_sleep_under_lock(self):
        found = lint(
            """
            import time
            import threading

            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()

                def poll(self):
                    with self._lock:
                        time.sleep(0.5)
            """
        )
        assert codes(found) == ["R010"]
        assert "time.sleep" in found[0].message

    def test_fires_on_file_io_under_module_lock(self):
        found = lint(
            """
            import threading
            state_lock = threading.Lock()

            def save(path, payload):
                with state_lock:
                    path.write_text(payload)
            """
        )
        assert codes(found) == ["R010"]

    def test_fires_on_future_result_under_lock(self):
        found = lint(
            """
            import threading

            class Waiter:
                def __init__(self):
                    self._lock = threading.Lock()

                def wait(self, future):
                    with self._lock:
                        return future.result()
            """
        )
        assert codes(found) == ["R010"]

    def test_silent_outside_lock(self):
        found = lint(
            """
            import time
            import threading

            class Poller:
                def __init__(self):
                    self._lock = threading.Lock()

                def poll(self):
                    with self._lock:
                        snapshot = 1
                    time.sleep(0.5)
                    return snapshot
            """
        )
        assert found == []

    def test_silent_under_non_lock_context(self):
        found = lint(
            """
            def save(path, payload, opener):
                with opener(path) as handle:
                    handle.write_text(payload)
            """
        )
        assert found == []

    def test_waiver_suppresses(self):
        found = lint(
            """
            import time
            import threading
            pace_lock = threading.Lock()

            def pace():
                with pace_lock:
                    time.sleep(0.01)  # reprolint: disable=R010
            """
        )
        assert found == []


# ----------------------------------------------------------------------
# R011 — non-atomic check-then-act on shared mappings
# ----------------------------------------------------------------------
class TestR011:
    def test_fires_on_unlocked_check_then_act(self):
        found = lint(
            """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def get(self, key):
                    if key in self._entries:
                        return self._entries[key]
                    return None
            """
        )
        assert codes(found) == ["R011"]
        assert "check-then-act" in found[0].message

    def test_silent_when_locked(self):
        found = lint(
            """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def get(self, key):
                    with self._lock:
                        if key in self._entries:
                            return self._entries[key]
                    return None
            """
        )
        assert found == []

    def test_silent_in_requires_annotated_helper(self):
        found = lint(
            """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def _lookup(self, key):  #: requires: _lock
                    if key in self._entries:
                        return self._entries[key]
                    return None
            """
        )
        assert found == []

    def test_silent_when_class_owns_no_lock(self):
        found = lint(
            """
            class PlainBag:
                def __init__(self):
                    self._entries = {}

                def get(self, key):
                    if key in self._entries:
                        return self._entries[key]
                    return None
            """
        )
        assert found == []

    def test_waiver_suppresses(self):
        found = lint(
            """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def benign(self, key):
                    if key in self._entries:  # reprolint: disable=R011
                        return self._entries[key]
                    return None
            """
        )
        assert found == []
