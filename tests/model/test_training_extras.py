"""Tests for early stopping, validation monitoring and augmentation."""

import numpy as np
import pytest

from repro.model import HotspotClassifier


def separable(rng, n=60, shape=(4, 6, 6)):
    x = rng.normal(size=(n,) + shape)
    y = np.zeros(n, dtype=np.int64)
    y[n // 2 :] = 1
    x[n // 2 :, 0] += 2.0
    return x, y


class TestEarlyStopping:
    def test_stops_before_max_epochs(self):
        rng = np.random.default_rng(0)
        x, y = separable(rng)
        xv, yv = separable(np.random.default_rng(1), n=30)
        clf = HotspotClassifier(input_shape=x.shape[1:], arch="mlp",
                                epochs=500, lr=5e-3, seed=0)
        trace = clf.fit(x, y, validation=(xv, yv), patience=3,
                        min_delta=1e-3)
        assert len(trace) < 500

    def test_restores_best_weights(self):
        """After early stop, the validation loss equals the best seen."""
        rng = np.random.default_rng(2)
        x, y = separable(rng)
        xv, yv = separable(np.random.default_rng(3), n=30)
        clf = HotspotClassifier(input_shape=x.shape[1:], arch="mlp",
                                epochs=60, lr=5e-3, seed=0)
        clf.fit(x, y, validation=(xv, yv), patience=2)
        final = clf.evaluate_loss(xv, yv)
        # retrain fully and track the minimum manually
        clf2 = HotspotClassifier(input_shape=x.shape[1:], arch="mlp",
                                 epochs=1, lr=5e-3, seed=0)
        best = np.inf
        for _ in range(60):
            clf2.fit(x, y, epochs=1)
            best = min(best, clf2.evaluate_loss(xv, yv))
        assert final <= best + 0.05

    def test_patience_requires_validation(self):
        rng = np.random.default_rng(4)
        x, y = separable(rng)
        clf = HotspotClassifier(input_shape=x.shape[1:], arch="mlp", seed=0)
        with pytest.raises(ValueError, match="validation"):
            clf.fit(x, y, patience=2)

    def test_evaluate_loss_decreases_with_training(self):
        rng = np.random.default_rng(5)
        x, y = separable(rng)
        clf = HotspotClassifier(input_shape=x.shape[1:], arch="mlp",
                                epochs=2, lr=5e-3, seed=0)
        clf.fit(x, y)
        early = clf.evaluate_loss(x, y)
        clf.fit(x, y, epochs=30)
        late = clf.evaluate_loss(x, y)
        assert late < early


class TestAugmentedTraining:
    def test_augment_runs_and_learns(self):
        rng = np.random.default_rng(6)
        # 64-channel full-spectrum tensors so transpose closure holds
        n = 30
        x = rng.normal(size=(n, 64, 4, 4))
        y = np.zeros(n, dtype=np.int64)
        y[n // 2 :] = 1
        x[n // 2 :, 0] += 2.0
        clf = HotspotClassifier(input_shape=(64, 4, 4), arch="mlp",
                                epochs=25, lr=3e-3, seed=0,
                                augment=True, augment_block_size=8)
        clf.fit(x, y)
        assert (clf.predict(x) == y).mean() > 0.9

    def test_clone_preserves_augment_settings(self):
        clf = HotspotClassifier(input_shape=(4, 4, 4), arch="mlp",
                                augment=True, augment_block_size=4)
        clone = clf.clone_untrained()
        assert clone.augment is True
        assert clone.augment_block_size == 4
