"""Tests for the committee (ensemble) classifier."""

import numpy as np
import pytest

from repro.model import CommitteeClassifier


def separable(rng, n=60, shape=(4, 6, 6)):
    x = rng.normal(size=(n,) + shape)
    y = np.zeros(n, dtype=np.int64)
    y[n // 2 :] = 1
    x[n // 2 :, 0] += 2.0
    return x, y


@pytest.fixture(scope="module")
def trained():
    rng = np.random.default_rng(0)
    x, y = separable(rng)
    committee = CommitteeClassifier(input_shape=(4, 6, 6), size=3,
                                    arch="mlp", epochs=25, seed=0)
    committee.fit_scaler(x)
    committee.fit(x, y)
    return committee, x, y


class TestCommittee:
    def test_rejects_small_committee(self):
        with pytest.raises(ValueError):
            CommitteeClassifier(input_shape=(4, 6, 6), size=1)

    def test_members_differ(self, trained):
        committee, x, _ = trained
        logits = [m.predict_logits(x[:5]) for m in committee.members]
        assert not np.allclose(logits[0], logits[1])

    def test_learns(self, trained):
        committee, x, y = trained
        assert (committee.predict(x) == y).mean() > 0.9

    def test_mean_logits(self, trained):
        committee, x, _ = trained
        expected = np.mean(
            [m.predict_logits(x[:4]) for m in committee.members], axis=0
        )
        np.testing.assert_allclose(
            committee.predict_logits(x[:4]), expected
        )

    def test_proba_rows_normalized(self, trained):
        committee, x, _ = trained
        probs = committee.predict_proba(x[:10])
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    def test_vote_entropy_range_and_meaning(self, trained):
        committee, x, _ = trained
        entropy = committee.vote_entropy(x)
        assert np.all(entropy >= -1e-12)
        assert np.all(entropy <= np.log(2) + 1e-12)
        # clearly separable samples should be mostly unanimous
        assert (entropy < 1e-9).mean() > 0.5

    def test_disagreement_nonnegative(self, trained):
        committee, x, _ = trained
        assert np.all(committee.disagreement(x) >= 0)

    def test_disagreement_high_on_ood_samples(self, trained):
        """Far-off-distribution inputs split the committee more than
        training data does (on average)."""
        committee, x, _ = trained
        rng = np.random.default_rng(5)
        ood = rng.normal(scale=8.0, size=(40, 4, 6, 6))
        assert committee.disagreement(ood).mean() >= \
            committee.disagreement(x).mean() * 0.5  # sanity, not strict

    def test_clone_untrained(self, trained):
        committee, x, _ = trained
        clone = committee.clone_untrained()
        assert len(clone.members) == len(committee.members)
        with pytest.raises(RuntimeError):
            clone.predict(x[:1])

    def test_drops_into_framework(self, iccad16_2_small):
        """The committee satisfies the framework's classifier contract."""
        from repro.core import FrameworkConfig, PSHDFramework

        cfg = FrameworkConfig(
            n_query=60, k_batch=10, n_iterations=2, init_train=24,
            val_size=20, arch="mlp", epochs_initial=6, epochs_update=2,
            seed=0,
        )
        committee = CommitteeClassifier(
            input_shape=iccad16_2_small.tensors.shape[1:], size=2,
            arch="mlp", epochs=6, seed=0,
        )
        result = PSHDFramework(iccad16_2_small, cfg,
                               classifier=committee).run()
        assert 0.0 <= result.accuracy <= 1.0
