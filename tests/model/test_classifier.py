"""Tests for the hotspot classifier, architectures and scaler."""

import numpy as np
import pytest

from repro.model import (
    HotspotClassifier,
    TensorScaler,
    build_hotspot_cnn,
    build_hotspot_mlp,
)


def synthetic_problem(rng, n=80, shape=(4, 8, 8)):
    """Separable toy data: class decided by energy in the first channel."""
    x = rng.normal(size=(n,) + shape)
    y = np.zeros(n, dtype=np.int64)
    y[n // 2 :] = 1
    x[n // 2 :, 0] += 2.0
    return x, y


class TestTensorScaler:
    def test_standardizes_channels(self):
        rng = np.random.default_rng(0)
        x = rng.normal(loc=5.0, scale=3.0, size=(50, 4, 6, 6))
        z = TensorScaler().fit_transform(x)
        np.testing.assert_allclose(z.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)
        np.testing.assert_allclose(z.std(axis=(0, 2, 3)), 1.0, atol=1e-6)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            TensorScaler().fit(np.zeros((5, 3)))
        with pytest.raises(ValueError):
            TensorScaler().fit(np.zeros((0, 3, 4, 4)))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            TensorScaler().transform(np.zeros((1, 3, 4, 4)))


class TestArchitectures:
    def test_cnn_shapes(self):
        net, emb_idx = build_hotspot_cnn((32, 12, 12))
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 32, 12, 12))
        assert net.forward(x).shape == (2, 2)
        assert net.forward_to(x, emb_idx).shape == (2, 250)

    def test_cnn_rejects_bad_spatial(self):
        with pytest.raises(ValueError, match="divisible"):
            build_hotspot_cnn((32, 10, 10))

    def test_mlp_shapes(self):
        net, emb_idx = build_hotspot_mlp((8, 6, 6), embedding_dim=16)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 8, 6, 6))
        assert net.forward(x).shape == (3, 2)
        assert net.forward_to(x, emb_idx).shape == (3, 16)

    def test_cnn_batchnorm_variant(self):
        net, emb_idx = build_hotspot_cnn((8, 12, 12), batch_norm=True)
        from repro.nn import BatchNorm

        assert sum(isinstance(l, BatchNorm) for l in net.layers) == 4
        rng = np.random.default_rng(0)
        x = rng.normal(size=(4, 8, 12, 12))
        # training and inference paths both produce logits
        assert net.forward(x, train=True).shape == (4, 2)
        assert net.forward(x, train=False).shape == (4, 2)
        assert net.forward_to(x, emb_idx).shape == (4, 250)


class TestHotspotClassifier:
    def _clf(self, shape=(4, 8, 8), **kwargs):
        defaults = dict(arch="mlp", epochs=30, lr=3e-3, seed=0)
        defaults.update(kwargs)
        return HotspotClassifier(input_shape=shape, **defaults)

    def test_learns_separable_data(self):
        rng = np.random.default_rng(1)
        x, y = synthetic_problem(rng)
        clf = self._clf()
        trace = clf.fit(x, y)
        assert trace[-1] < trace[0]
        assert (clf.predict(x) == y).mean() > 0.9

    def test_proba_rows_sum_to_one(self):
        rng = np.random.default_rng(2)
        x, y = synthetic_problem(rng)
        clf = self._clf()
        clf.fit(x, y)
        probs = clf.predict_proba(x)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    def test_embeddings_normalized(self):
        rng = np.random.default_rng(3)
        x, y = synthetic_problem(rng)
        clf = self._clf()
        clf.fit(x, y)
        emb = clf.embeddings(x)
        norms = np.linalg.norm(emb, axis=1)
        # ReLU can zero a row entirely; all others must be unit length
        nonzero = norms > 1e-9
        np.testing.assert_allclose(norms[nonzero], 1.0, atol=1e-9)

    def test_update_warm_starts(self):
        """update() continues from current weights, not from scratch."""
        rng = np.random.default_rng(4)
        x, y = synthetic_problem(rng)
        clf = self._clf(epochs=20)
        clf.fit(x, y)
        logits_before = clf.predict_logits(x)
        clf.update(x[:10], y[:10], epochs=1)
        logits_after = clf.predict_logits(x)
        # a single tiny epoch perturbs but does not reset the model
        corr = np.corrcoef(logits_before.ravel(), logits_after.ravel())[0, 1]
        assert corr > 0.9

    def test_balanced_class_weights_help_minority(self):
        """With 5% positives, balanced weighting must recall some."""
        rng = np.random.default_rng(5)
        n = 200
        x = rng.normal(size=(n, 4, 8, 8))
        y = np.zeros(n, dtype=np.int64)
        y[:10] = 1
        x[:10, 0] += 2.5
        clf = self._clf(class_weight="balanced", epochs=40)
        clf.fit(x, y)
        recall = (clf.predict(x[:10]) == 1).mean()
        assert recall >= 0.8

    def test_untrained_raises(self):
        clf = self._clf()
        with pytest.raises(RuntimeError):
            clf.predict(np.zeros((1, 4, 8, 8)))
        with pytest.raises(RuntimeError):
            clf.embeddings(np.zeros((1, 4, 8, 8)))

    def test_rejects_bad_inputs(self):
        clf = self._clf()
        with pytest.raises(ValueError):
            clf.fit(np.zeros((5, 3, 8, 8)), np.zeros(5, dtype=int))
        with pytest.raises(ValueError):
            clf.fit(np.zeros((5, 4, 8, 8)), np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            clf.fit(np.zeros((0, 4, 8, 8)), np.zeros(0, dtype=int))
        with pytest.raises(ValueError):
            HotspotClassifier(arch="transformer")

    def test_save_load_roundtrip(self, tmp_path):
        rng = np.random.default_rng(6)
        x, y = synthetic_problem(rng)
        clf = self._clf()
        clf.fit(x, y)
        path = tmp_path / "model.npz"
        clf.save(path)
        clone = clf.clone_untrained()
        clone.load(path)
        np.testing.assert_allclose(
            clone.predict_logits(x), clf.predict_logits(x), atol=1e-10
        )

    def test_save_load_restores_scaler_buffers(self, tmp_path):
        """The archive carries the fitted scaler; the loaded model must
        standardize inputs with the original statistics."""
        rng = np.random.default_rng(16)
        x, y = synthetic_problem(rng)
        clf = self._clf()
        clf.fit_scaler(x * 3.0 + 1.0)  # distinctive statistics
        clf.fit(x, y, epochs=2)
        path = tmp_path / "model.npz"
        clf.save(path)

        clone = clf.clone_untrained()
        version_before = clone.scaler_version
        clone.load(path)
        np.testing.assert_array_equal(clone.scaler.mean_, clf.scaler.mean_)
        np.testing.assert_array_equal(clone.scaler.std_, clf.scaler.std_)
        assert clone.scaler_version > version_before  # caches invalidate
        np.testing.assert_allclose(
            clone.predict_logits(x), clf.predict_logits(x), atol=1e-10
        )

    def test_scaler_version_tracks_refits(self):
        rng = np.random.default_rng(17)
        x, _ = synthetic_problem(rng)
        clf = self._clf()
        assert clf.scaler_version == 0
        clf.fit_scaler(x)
        assert clf.scaler_version == 1
        clf.fit_scaler(x + 1.0)
        assert clf.scaler_version == 2

    @staticmethod
    def _tampered(path, tmp_path, mutate):
        """Re-write the archive at ``path`` with ``mutate(payload)``."""
        with np.load(path) as archive:
            payload = {k: archive[k] for k in archive.files}
        mutate(payload)
        broken = tmp_path / "broken.npz"
        np.savez_compressed(broken, **payload)
        return broken

    def _fitted_clf(self, seed, tmp_path):
        rng = np.random.default_rng(seed)
        x, y = synthetic_problem(rng)
        clf = self._clf()
        clf.fit(x, y, epochs=1)
        path = tmp_path / "model.npz"
        clf.save(path)
        return clf, path

    def test_load_rejects_missing_weight(self, tmp_path):
        clf, path = self._fitted_clf(18, tmp_path)

        def drop_first_weight(payload):
            first = next(k for k in payload if k.startswith("net/"))
            del payload[first]

        broken = self._tampered(path, tmp_path, drop_first_weight)
        with pytest.raises(ValueError, match="does not match"):
            clf.clone_untrained().load(broken)

    def test_load_rejects_shape_mismatch(self, tmp_path):
        clf, path = self._fitted_clf(19, tmp_path)

        def reshape_first_weight(payload):
            first = next(k for k in payload if k.startswith("net/"))
            payload[first] = np.zeros((3, 3, 3))

        broken = self._tampered(path, tmp_path, reshape_first_weight)
        with pytest.raises(ValueError, match="shape mismatch"):
            clf.clone_untrained().load(broken)

    def test_load_rejects_unused_extras(self, tmp_path):
        clf, path = self._fitted_clf(20, tmp_path)

        def add_surprise(payload):
            payload["net/999.surprise"] = np.zeros(2)

        broken = self._tampered(path, tmp_path, add_surprise)
        with pytest.raises(ValueError, match="unused"):
            clf.clone_untrained().load(broken)

    def test_load_rejects_legacy_archive(self, tmp_path):
        """A raw weight dump without metadata must fail loudly, not with
        a KeyError from deep inside the weight dict."""
        rng = np.random.default_rng(28)
        x, y = synthetic_problem(rng)
        clf = self._clf()
        clf.fit(x, y, epochs=1)
        path = tmp_path / "legacy.npz"
        np.savez_compressed(path, **clf.network.get_weights())
        with pytest.raises(ValueError, match="meta/json"):
            clf.clone_untrained().load(path)

    def test_load_rejects_architecture_mismatch(self, tmp_path):
        """Loading a CNN archive into an MLP names both architectures."""
        rng = np.random.default_rng(29)
        x, y = synthetic_problem(rng)
        clf = self._clf()
        clf.fit(x, y, epochs=1)
        path = tmp_path / "mlp.npz"
        clf.save(path)
        other = HotspotClassifier(input_shape=(4, 8, 8), arch="cnn")
        with pytest.raises(ValueError, match="architecture mismatch"):
            other.load(path)

    def test_save_load_roundtrips_temperature(self, tmp_path):
        rng = np.random.default_rng(30)
        x, y = synthetic_problem(rng)
        clf = self._clf()
        clf.fit(x, y, epochs=1)
        path = tmp_path / "model.npz"
        clf.save(path, temperature=1.375)
        clone = clf.clone_untrained()
        assert clone.load(path) == 1.375
        # an archive saved without a temperature returns None
        clf.save(path)
        assert clf.clone_untrained().load(path) is None

    def test_save_load_roundtrips_optimizer_state(self, tmp_path):
        """Adam's moments and step counts are part of the archive."""
        rng = np.random.default_rng(31)
        x, y = synthetic_problem(rng)
        clf = self._clf()
        clf.fit(x, y, epochs=3)
        path = tmp_path / "model.npz"
        clf.save(path)

        clone = clf.clone_untrained()
        clone.load(path)
        original = clf.optimizer_state_arrays()
        restored = clone.optimizer_state_arrays()
        assert restored.keys() == original.keys()
        for key, value in original.items():
            np.testing.assert_array_equal(value, restored[key], err_msg=key)

    def test_continued_training_bit_identical_after_load(self, tmp_path):
        rng = np.random.default_rng(32)
        x, y = synthetic_problem(rng)
        clf = self._clf()
        clf.fit(x, y, epochs=3)
        path = tmp_path / "model.npz"
        clf.save(path)

        clone = clf.clone_untrained()
        clone.load(path)
        clone.set_shuffle_rng_state(clf.shuffle_rng_state())

        clf.fit(x, y, epochs=2)
        clone.fit(x, y, epochs=2)
        for key, value in clf.network.get_weights().items():
            np.testing.assert_array_equal(
                value, clone.network.get_weights()[key], err_msg=key
            )

    def test_predict_full_matches_two_pass(self):
        """Single tapped pass == separate logits + embeddings calls."""
        rng = np.random.default_rng(21)
        x, y = synthetic_problem(rng)
        clf = self._clf()
        clf.fit(x, y)
        full = clf.predict_full(x)
        np.testing.assert_array_equal(full.logits, clf.predict_logits(x))
        np.testing.assert_array_equal(full.embeddings, clf.embeddings(x))

    def test_predict_full_untrained_raises(self):
        with pytest.raises(RuntimeError):
            self._clf().predict_full(np.zeros((1, 4, 8, 8)))

    def test_clone_untrained_is_fresh(self):
        clf = self._clf()
        clone = clf.clone_untrained()
        assert clone is not clf
        with pytest.raises(RuntimeError):
            clone.predict(np.zeros((1, 4, 8, 8)))

    def test_cnn_arch_end_to_end_small(self):
        """The real CNN architecture trains on a tiny problem."""
        rng = np.random.default_rng(7)
        x, y = synthetic_problem(rng, n=30, shape=(8, 12, 12))
        clf = HotspotClassifier(
            input_shape=(8, 12, 12), arch="cnn", epochs=10, lr=2e-3, seed=0
        )
        clf.fit(x, y)
        assert (clf.predict(x) == y).mean() > 0.8
