"""Tests for the classifier evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import (
    ConfusionMatrix,
    auc,
    classification_report,
    confusion_matrix,
    pr_curve,
    roc_curve,
)


class TestConfusionMatrix:
    def test_counts(self):
        y = np.array([1, 1, 0, 0, 1])
        p = np.array([1, 0, 0, 1, 1])
        cm = confusion_matrix(y, p)
        assert (cm.tp, cm.fp, cm.tn, cm.fn) == (2, 1, 1, 1)

    def test_derived_metrics(self):
        cm = ConfusionMatrix(tp=8, fp=2, tn=88, fn=2)
        assert cm.accuracy == pytest.approx(0.96)
        assert cm.precision == pytest.approx(0.8)
        assert cm.recall == pytest.approx(0.8)
        assert cm.f1 == pytest.approx(0.8)
        assert cm.false_alarm_rate == pytest.approx(2 / 90)

    def test_zero_division_guarded(self):
        cm = ConfusionMatrix(tp=0, fp=0, tn=5, fn=0)
        assert cm.precision == 0.0
        assert cm.recall == 0.0
        assert cm.f1 == 0.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            confusion_matrix([1, 0], [1])
        with pytest.raises(ValueError):
            confusion_matrix([], [])

    def test_report_contains_fields(self):
        report = classification_report([1, 0, 1], [1, 0, 0])
        assert "precision" in report
        assert "false_alarm_rate" in report


class TestRocCurve:
    def test_perfect_separation_auc_one(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        fpr, tpr, _ = roc_curve(y, scores)
        assert auc(fpr, tpr) == pytest.approx(1.0)

    def test_random_scores_auc_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=4000)
        scores = rng.random(4000)
        fpr, tpr, _ = roc_curve(y, scores)
        assert auc(fpr, tpr) == pytest.approx(0.5, abs=0.03)

    def test_curve_endpoints(self):
        y = np.array([0, 1, 0, 1])
        scores = np.array([0.2, 0.9, 0.6, 0.4])
        fpr, tpr, thresholds = roc_curve(y, scores)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert thresholds[0] == np.inf

    def test_monotone(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, size=200)
        scores = rng.random(200)
        fpr, tpr, _ = roc_curve(y, scores)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_requires_both_classes(self):
        with pytest.raises(ValueError):
            roc_curve([1, 1], [0.5, 0.6])


class TestPrCurve:
    def test_perfect_separation(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        precision, recall, _ = pr_curve(y, scores)
        assert precision[0] == 1.0
        assert recall[-1] == 1.0
        assert np.all(precision[recall <= 1.0] >= 0)

    def test_all_negative_scores_low_precision_tail(self):
        y = np.array([1, 0, 0, 0])
        scores = np.array([0.1, 0.9, 0.8, 0.7])  # positive ranked last
        precision, recall, _ = pr_curve(y, scores)
        assert precision[-1] == pytest.approx(0.25)

    def test_requires_positives(self):
        with pytest.raises(ValueError):
            pr_curve([0, 0], [0.5, 0.6])


class TestAuc:
    def test_unit_square_diagonal(self):
        assert auc(np.array([0, 1]), np.array([0, 1])) == pytest.approx(0.5)

    def test_order_insensitive(self):
        x = np.array([1.0, 0.0, 0.5])
        y = np.array([1.0, 0.0, 0.5])
        assert auc(x, y) == pytest.approx(0.5)

    def test_rejects_short_input(self):
        with pytest.raises(ValueError):
            auc(np.array([1.0]), np.array([1.0]))


@settings(max_examples=30, deadline=None)
@given(st.integers(5, 60), st.integers(0, 2**31 - 1))
def test_roc_auc_bounded(n, seed):
    """Property: AUC of any score vector lies in [0, 1]."""
    rng = np.random.default_rng(seed)
    y = np.zeros(n, dtype=int)
    y[: max(1, n // 3)] = 1
    rng.shuffle(y)
    if y.sum() in (0, n):
        return
    scores = rng.random(n)
    fpr, tpr, _ = roc_curve(y, scores)
    value = auc(fpr, tpr)
    assert -1e-9 <= value <= 1.0 + 1e-9
