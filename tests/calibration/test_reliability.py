"""Tests for reliability diagrams and calibration errors (Fig. 2)."""

import numpy as np
import pytest

from repro.calibration import (
    TemperatureScaler,
    expected_calibration_error,
    max_calibration_error,
    reliability_diagram,
)
from repro.nn.losses import softmax


def perfectly_calibrated(rng, n=20000):
    """Predictions whose confidence equals their true accuracy."""
    conf = rng.uniform(0.5, 1.0, size=n)
    probs = np.column_stack([1 - conf, conf])
    labels = (rng.random(n) < conf).astype(np.int64)
    return probs, labels


class TestReliabilityDiagram:
    def test_perfect_calibration_small_ece(self):
        rng = np.random.default_rng(0)
        probs, labels = perfectly_calibrated(rng)
        diagram = reliability_diagram(probs, labels)
        assert diagram.ece < 0.02

    def test_overconfidence_detected(self):
        """Confidence 0.99 with 60% accuracy must show a large gap."""
        rng = np.random.default_rng(1)
        n = 1000
        probs = np.tile([0.01, 0.99], (n, 1))
        labels = (rng.random(n) < 0.6).astype(np.int64)
        diagram = reliability_diagram(probs, labels)
        assert diagram.ece > 0.3
        assert diagram.mce > 0.3

    def test_bin_structure(self):
        rng = np.random.default_rng(2)
        probs, labels = perfectly_calibrated(rng, n=1000)
        diagram = reliability_diagram(probs, labels, n_bins=10)
        assert diagram.bin_edges.shape == (11,)
        assert diagram.count.sum() == 1000
        # binary max-prob confidence is >= 0.5, so low bins are empty
        assert diagram.count[:5].sum() == 0
        assert np.isnan(diagram.confidence[0])

    def test_gap_matches_definition(self):
        rng = np.random.default_rng(3)
        probs, labels = perfectly_calibrated(rng, n=500)
        diagram = reliability_diagram(probs, labels)
        occupied = diagram.count > 0
        np.testing.assert_allclose(
            diagram.gap[occupied],
            np.abs(diagram.confidence - diagram.accuracy)[occupied],
        )

    def test_to_rows(self):
        rng = np.random.default_rng(4)
        probs, labels = perfectly_calibrated(rng, n=300)
        rows = reliability_diagram(probs, labels, n_bins=5).to_rows()
        assert len(rows) == 5
        assert rows[0][0] == pytest.approx(0.1)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            reliability_diagram(np.zeros((3,)), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            reliability_diagram(np.zeros((3, 2)), np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            reliability_diagram(np.zeros((0, 2)), np.zeros(0, dtype=int))
        with pytest.raises(ValueError):
            reliability_diagram(np.zeros((3, 2)), np.zeros(3, dtype=int),
                                n_bins=0)


class TestCalibrationImprovement:
    def test_temperature_scaling_reduces_ece(self):
        """End-to-end Fig. 2 behaviour: scaling shrinks the gap bars."""
        rng = np.random.default_rng(5)
        n = 4000
        y = rng.integers(0, 2, size=n)
        signal = (2 * y - 1) * 1.0 + rng.normal(scale=1.2, size=n)
        logits = np.column_stack([-signal, signal]) * 5.0  # overconfident

        before = expected_calibration_error(softmax(logits), y)
        scaler = TemperatureScaler().fit(logits, y)
        after = expected_calibration_error(scaler.transform(logits), y)
        assert after < before * 0.5

    def test_mce_bounds_ece(self):
        rng = np.random.default_rng(6)
        probs, labels = perfectly_calibrated(rng, n=2000)
        ece = expected_calibration_error(probs, labels)
        mce = max_calibration_error(probs, labels)
        assert mce >= ece
