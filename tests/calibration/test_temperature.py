"""Tests for temperature scaling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration import (
    TemperatureScaler,
    fit_temperature,
    nll,
    scaled_softmax,
)
from repro.nn.losses import softmax


def overconfident_logits(rng, n=500, scale=6.0, noise=1.5):
    """Logits that are systematically too sharp: true class signal is
    weaker than the logit magnitude suggests."""
    y = rng.integers(0, 2, size=n)
    signal = (2 * y - 1) * 1.0 + rng.normal(scale=noise, size=n)
    logits = np.column_stack([-signal, signal]) * scale
    return logits, y


class TestScaledSoftmax:
    def test_t1_matches_plain_softmax(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(10, 2))
        np.testing.assert_allclose(scaled_softmax(logits, 1.0), softmax(logits))

    def test_high_temperature_flattens(self):
        logits = np.array([[4.0, 0.0]])
        hot = scaled_softmax(logits, 100.0)
        np.testing.assert_allclose(hot, 0.5, atol=0.02)

    def test_low_temperature_sharpens(self):
        logits = np.array([[1.0, 0.0]])
        cold = scaled_softmax(logits, 0.1)
        assert cold[0, 0] > 0.999

    def test_argmax_invariant(self):
        """Calibration must never change predictions (Section III-A1)."""
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(100, 2))
        base = softmax(logits).argmax(axis=1)
        for t in (0.2, 0.7, 3.0, 9.0):
            np.testing.assert_array_equal(
                scaled_softmax(logits, t).argmax(axis=1), base
            )

    def test_rejects_bad_temperature(self):
        with pytest.raises(ValueError):
            scaled_softmax(np.zeros((1, 2)), 0.0)
        with pytest.raises(ValueError):
            nll(np.zeros((1, 2)), np.zeros(1, dtype=int), -1.0)


class TestFitTemperature:
    def test_overconfident_model_gets_t_above_one(self):
        rng = np.random.default_rng(2)
        logits, y = overconfident_logits(rng)
        t = fit_temperature(logits, y)
        assert t > 1.5

    def test_underconfident_model_gets_t_below_one(self):
        rng = np.random.default_rng(3)
        y = rng.integers(0, 2, size=500)
        # weak logits but almost always correct
        signal = (2 * y - 1) * 1.0 + rng.normal(scale=0.05, size=500)
        logits = np.column_stack([-signal, signal]) * 0.3
        t = fit_temperature(logits, y)
        assert t < 0.8

    def test_fitted_t_reduces_nll(self):
        rng = np.random.default_rng(4)
        logits, y = overconfident_logits(rng)
        t = fit_temperature(logits, y)
        assert nll(logits, y, t) < nll(logits, y, 1.0)

    def test_fitted_t_is_near_optimal_on_grid(self):
        rng = np.random.default_rng(5)
        logits, y = overconfident_logits(rng)
        t = fit_temperature(logits, y)
        grid = np.linspace(0.1, 15.0, 300)
        best = grid[np.argmin([nll(logits, y, g) for g in grid])]
        assert nll(logits, y, t) <= nll(logits, y, best) + 1e-6

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            fit_temperature(np.zeros((3,)), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            fit_temperature(np.zeros((3, 2)), np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            fit_temperature(np.zeros((0, 2)), np.zeros(0, dtype=int))


@settings(max_examples=30, deadline=None)
@given(st.floats(0.1, 10.0))
def test_scaling_preserves_probability_simplex(temperature):
    rng = np.random.default_rng(int(temperature * 1000) % 2**31)
    logits = rng.normal(size=(20, 2)) * 5
    probs = scaled_softmax(logits, temperature)
    assert np.all(probs >= 0)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)


class TestTemperatureScaler:
    def test_fit_transform_calibrates(self):
        rng = np.random.default_rng(6)
        logits, y = overconfident_logits(rng)
        scaler = TemperatureScaler()
        probs = scaler.fit_transform(logits, y)
        assert scaler.temperature_ > 1.0
        assert probs.shape == logits.shape

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            TemperatureScaler().transform(np.zeros((2, 2)))


class TestFitHardening:
    def test_non_finite_logits_rejected(self):
        # inline validation says "non-finite"; under REPRO_CHECK=strict
        # the @contract intercepts first and says "NaN or Inf"
        logits = np.zeros((4, 2))
        logits[1, 0] = np.nan
        with pytest.raises(ValueError, match="non-finite|NaN"):
            fit_temperature(logits, np.zeros(4, dtype=int))
        logits[1, 0] = np.inf
        with pytest.raises(ValueError, match="non-finite|NaN"):
            fit_temperature(logits, np.zeros(4, dtype=int))

    def test_bad_bounds_rejected(self):
        logits = np.zeros((4, 2))
        labels = np.zeros(4, dtype=int)
        with pytest.raises(ValueError, match="t_min"):
            fit_temperature(logits, labels, bounds=(0.0, 5.0))
        with pytest.raises(ValueError, match="t_min"):
            fit_temperature(logits, labels, bounds=(5.0, 2.0))

    def test_full_output_reports_convergence(self):
        rng = np.random.default_rng(7)
        logits, y = overconfident_logits(rng)
        outcome = fit_temperature(logits, y, full_output=True)
        assert outcome.temperature > 1.5
        assert outcome.converged is True
        assert isinstance(outcome.converged, bool)
        # the bare-float return path agrees
        assert outcome.temperature == fit_temperature(logits, y)

    def test_fitted_t_clamped_into_bounds(self):
        rng = np.random.default_rng(8)
        y = rng.integers(0, 2, size=400)
        # strongly underconfident data wants T well below 1
        signal = (2 * y - 1) + rng.normal(scale=0.05, size=400)
        logits = np.column_stack([-signal, signal]) * 0.3
        outcome = fit_temperature(
            logits, y, bounds=(2.0, 3.0), full_output=True
        )
        assert 2.0 <= outcome.temperature <= 3.0
        assert outcome.temperature == pytest.approx(2.0, abs=1e-3)

    def test_scaler_records_convergence(self):
        rng = np.random.default_rng(9)
        logits, y = overconfident_logits(rng)
        scaler = TemperatureScaler()
        assert scaler.converged_ is None  # unfitted
        scaler.fit(logits, y)
        assert scaler.converged_ is True
        assert 0.05 <= scaler.temperature_ <= 20.0
