"""Tests for density features and the FeatureExtractor pipeline."""

import numpy as np
import pytest

from repro.features import FeatureExtractor, density_grid, density_stats
from repro.layout import Clip, Rect


def make_clip(rects, size=1200, margin=300, idx=0):
    window = Rect(0, 0, size, size)
    return Clip(window, window.expanded(-margin), rects=rects, index=idx)


class TestDensityFeatures:
    def test_grid_values(self):
        image = np.zeros((16, 16))
        image[:8, :8] = 1.0
        grid = density_grid(image, cells=2)
        np.testing.assert_allclose(grid, [1.0, 0.0, 0.0, 0.0])

    def test_grid_rejects_nondivisible(self):
        with pytest.raises(ValueError):
            density_grid(np.zeros((10, 10)), cells=3)

    def test_stats_shape_and_values(self):
        stats = density_stats(np.ones((8, 8)))
        assert stats.shape == (5,)
        assert stats[0] == 1.0  # mean
        assert stats[1] == 0.0  # std
        assert stats[3] == 0.0  # no x-edges in constant image

    def test_stats_edge_sensitivity(self):
        striped = np.zeros((8, 8))
        striped[:, ::2] = 1.0
        assert density_stats(striped)[3] > density_stats(np.ones((8, 8)))[3]


class TestFeatureExtractor:
    def test_tensor_shape(self):
        fx = FeatureExtractor(grid=96, blocks=12, coeffs=32)
        assert fx.tensor_shape == (32, 12, 12)
        clip = make_clip([Rect(100, 100, 600, 400)])
        assert fx.encode(clip).shape == (32, 12, 12)

    def test_batch_stacking(self):
        fx = FeatureExtractor(grid=48, blocks=12, coeffs=8)
        clips = [make_clip([Rect(100, 100, 600, 400)], idx=i) for i in range(3)]
        batch = fx.encode_batch(clips)
        assert batch.shape == (3, 8, 12, 12)
        np.testing.assert_allclose(batch[0], fx.encode(clips[0]))

    def test_empty_batch(self):
        fx = FeatureExtractor(grid=48, blocks=12, coeffs=8)
        assert fx.encode_batch([]).shape == (0, 8, 12, 12)
        assert fx.flat_batch([]).shape[0] == 0

    def test_flat_features_length(self):
        fx = FeatureExtractor(grid=96, blocks=12, coeffs=32, density_cells=8)
        clip = make_clip([Rect(100, 100, 600, 400)])
        flat = fx.flat_features(clip)
        assert flat.shape == (32 * 12 * 12 + 64,)

    def test_identical_clips_identical_features(self):
        fx = FeatureExtractor(grid=48, blocks=12, coeffs=8)
        a = make_clip([Rect(100, 100, 600, 400)], idx=0)
        b = make_clip([Rect(100, 100, 600, 400)], idx=1)
        np.testing.assert_allclose(fx.encode(a), fx.encode(b))

    def test_different_clips_differ(self):
        fx = FeatureExtractor(grid=48, blocks=12, coeffs=8)
        a = make_clip([Rect(100, 100, 600, 400)])
        b = make_clip([Rect(100, 500, 600, 900)])
        assert not np.allclose(fx.encode(a), fx.encode(b))

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            FeatureExtractor(grid=100, blocks=12)
        with pytest.raises(ValueError):
            FeatureExtractor(grid=24, blocks=12, coeffs=32)

    def test_rejects_nondivisible_density_cells(self):
        with pytest.raises(ValueError, match="density_cells"):
            FeatureExtractor(grid=96, density_cells=7)
        with pytest.raises(ValueError, match="density_cells"):
            FeatureExtractor(grid=96, density_cells=0)

    def test_params_key_covers_every_knob(self):
        fx = FeatureExtractor(grid=96, blocks=12, coeffs=32, density_cells=8)
        assert fx.params_key == "g96b12c32d8"
        assert fx.params_key != FeatureExtractor(grid=96).params_key

    def test_stack_kernels_match_per_clip(self):
        """The vectorized raster/encode/flat path must be bit-identical
        to the per-clip methods it replaced."""
        fx = FeatureExtractor(grid=48, blocks=12, coeffs=8, density_cells=4)
        clips = [
            make_clip([Rect(100, 100 + 50 * i, 600, 400 + 50 * i)], idx=i)
            for i in range(4)
        ]
        rasters = fx.raster_stack(clips)
        tensors = fx.encode_rasters(rasters)
        flats = fx.flats_from_rasters(rasters, tensors)
        for i, clip in enumerate(clips):
            np.testing.assert_array_equal(rasters[i], fx.raster(clip))
            np.testing.assert_array_equal(tensors[i], fx.encode(clip))
            np.testing.assert_array_equal(flats[i], fx.flat_features(clip))
