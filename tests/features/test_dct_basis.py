"""Basis-matmul DCT kernel: bit-stability, memoization, precision modes.

The refactored encoder computes every block spectrum with one matmul
against a precomputed orthonormal DCT basis.  These tests pin the three
claims the refactor makes: (1) the result matches the scipy ``dctn``
reference to float64 rounding, (2) single-clip and stacked encodes are
bit-identical, independent of batch size, and (3) the float32 fast
policy stays within float32 rounding of exact while presenting float64
at the boundary.
"""

import numpy as np
import pytest
from scipy.fft import dctn

from repro.features.dct import (
    _dct_basis_2d,
    dct_encode,
    dct_encode_stack,
    zigzag_indices,
)
from repro.features.density import density_grid, density_grid_stack
from repro.features.pipeline import FeatureExtractor
from repro.nn.runtime import PrecisionPolicy


@pytest.fixture
def rng():
    return np.random.default_rng(3)


def _reference_encode(image, blocks, coeffs):
    """The seed formulation: per-block scipy dctn + zigzag truncation."""
    h = image.shape[0] // blocks
    order = zigzag_indices(h)[:coeffs]
    out = np.zeros((coeffs, blocks, blocks))
    for by in range(blocks):
        for bx in range(blocks):
            block = image[by * h : (by + 1) * h, bx * h : (bx + 1) * h]
            spectrum = dctn(block, norm="ortho")
            for ci, (r, c) in enumerate(order):
                out[ci, by, bx] = spectrum[r, c]
    return out


class TestBasisKernel:
    @pytest.mark.parametrize("coeffs", [4, 20, 32, 64])
    def test_matches_scipy_reference(self, rng, coeffs):
        image = rng.normal(size=(96, 96))
        got = dct_encode(image, blocks=12, coeffs=coeffs)
        want = _reference_encode(image, 12, coeffs)
        np.testing.assert_allclose(got, want, rtol=0, atol=1e-10)

    @pytest.mark.parametrize("coeffs", [20, 32, 64])
    def test_single_clip_equals_stack_row(self, rng, coeffs):
        images = rng.normal(size=(7, 96, 96))
        stacked = dct_encode_stack(images, blocks=12, coeffs=coeffs)
        for i in range(len(images)):
            single = dct_encode(images[i], blocks=12, coeffs=coeffs)
            assert np.array_equal(single, stacked[i])

    def test_stack_is_batch_size_invariant(self, rng):
        # the batched matmul keeps a fixed per-slice shape, so encoding
        # a subset must be bit-identical to the same rows of a larger
        # stack — the property the data plane's chunking relies on
        images = rng.normal(size=(7, 96, 96))
        full = dct_encode_stack(images, blocks=12, coeffs=20)
        subset = dct_encode_stack(images[:3], blocks=12, coeffs=20)
        assert np.array_equal(subset, full[:3])

    def test_basis_is_memoized_and_read_only(self):
        a = _dct_basis_2d(8, 32, "float64")
        b = _dct_basis_2d(8, 32, "float64")
        assert a is b
        assert not a.flags.writeable
        assert a.shape == (64, 32)

    def test_zigzag_returns_fresh_mutable_list(self):
        first = zigzag_indices(8)
        first.append((99, 99))
        second = zigzag_indices(8)
        assert (99, 99) not in second
        assert len(second) == 64

    def test_validation_errors_preserved(self, rng):
        with pytest.raises(ValueError, match="divisible"):
            dct_encode(rng.normal(size=(95, 96)), blocks=12)
        with pytest.raises(ValueError, match="coefficients"):
            dct_encode(rng.normal(size=(24, 24)), blocks=12, coeffs=10)


class TestFastPolicy:
    def test_fast_policy_close_to_exact_and_float64_out(self, rng):
        images = rng.normal(size=(5, 96, 96))
        exact = dct_encode_stack(images, blocks=12, coeffs=32)
        fast = dct_encode_stack(
            images, blocks=12, coeffs=32, policy=PrecisionPolicy("fast")
        )
        assert fast.dtype == np.float64
        np.testing.assert_allclose(fast, exact, rtol=1e-4, atol=1e-4)

    def test_extractor_precision_threads_through(self, rng):
        exact_fx = FeatureExtractor(grid=96)
        fast_fx = exact_fx.with_precision("fast")
        assert exact_fx.params_key != fast_fx.params_key
        assert fast_fx.params_key.endswith("pfast")
        assert exact_fx.with_precision("exact") is exact_fx

    def test_extractor_rejects_unknown_precision(self):
        with pytest.raises(ValueError, match="precision"):
            FeatureExtractor(grid=96, precision="quad")


class TestDensityDelegation:
    def test_density_grid_matches_stack_row(self, rng):
        image = rng.random((96, 96))
        single = density_grid(image, cells=12)
        stacked = density_grid_stack(image[None], cells=12)
        assert np.array_equal(single, stacked[0])
