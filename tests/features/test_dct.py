"""Tests for block-DCT encoding."""

import numpy as np
import pytest

from repro.features.dct import block_dct, dct_decode, dct_encode, zigzag_indices


class TestZigzag:
    def test_small_block_order(self):
        order = zigzag_indices(3)
        assert order[:6] == [(0, 0), (0, 1), (1, 0), (2, 0), (1, 1), (0, 2)]
        assert len(order) == 9

    def test_covers_all_cells_once(self):
        order = zigzag_indices(8)
        assert len(order) == 64
        assert len(set(order)) == 64

    def test_low_frequencies_first(self):
        """Early zigzag entries have small index sums (low frequency)."""
        order = zigzag_indices(8)
        sums = [r + c for r, c in order]
        assert sums == sorted(sums)

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            zigzag_indices(0)


class TestBlockDct:
    def test_constant_image_single_dc(self):
        image = np.full((24, 24), 0.5)
        spectra = block_dct(image, blocks=3)
        assert spectra.shape == (3, 3, 8, 8)
        # DC coefficient of an orthonormal DCT of constant c is c * block_size
        np.testing.assert_allclose(spectra[:, :, 0, 0], 0.5 * 8)
        np.testing.assert_allclose(spectra[:, :, 1:, :], 0.0, atol=1e-12)
        np.testing.assert_allclose(spectra[:, :, 0, 1:], 0.0, atol=1e-12)

    def test_energy_preserved(self):
        """Orthonormal DCT preserves L2 energy per block."""
        rng = np.random.default_rng(0)
        image = rng.random((24, 24))
        spectra = block_dct(image, blocks=3)
        assert (spectra**2).sum() == pytest.approx((image**2).sum())

    def test_rejects_non_divisible(self):
        with pytest.raises(ValueError, match="divisible"):
            block_dct(np.zeros((25, 25)), blocks=3)


class TestDctEncodeDecode:
    def test_encode_shape_channel_first(self):
        rng = np.random.default_rng(1)
        tensor = dct_encode(rng.random((96, 96)), blocks=12, coeffs=32)
        assert tensor.shape == (32, 12, 12)

    def test_dc_channel_is_block_mean(self):
        image = np.zeros((96, 96))
        image[:48] = 1.0
        tensor = dct_encode(image, blocks=12, coeffs=4)
        # DC channel ~ block mean * block_size for orthonormal norm
        np.testing.assert_allclose(tensor[0, :6, :], 8.0)
        np.testing.assert_allclose(tensor[0, 6:, :], 0.0, atol=1e-12)

    def test_full_coeffs_roundtrip(self):
        rng = np.random.default_rng(2)
        image = rng.random((24, 24))
        tensor = dct_encode(image, blocks=3, coeffs=64)
        recon = dct_decode(tensor, block_size=8)
        np.testing.assert_allclose(recon, image, atol=1e-10)

    def test_truncated_decode_approximates(self):
        """Keeping only low frequencies reconstructs smooth structure."""
        image = np.zeros((96, 96))
        image[:, :48] = 1.0
        tensor = dct_encode(image, blocks=12, coeffs=16)
        recon = dct_decode(tensor, block_size=8)
        assert np.abs(recon - image).mean() < 0.15

    def test_rejects_too_many_coeffs(self):
        with pytest.raises(ValueError, match="coefficients"):
            dct_encode(np.zeros((24, 24)), blocks=3, coeffs=65)

    def test_translation_changes_encoding(self):
        """Shifted geometry gives different features (no aliasing to same)."""
        a = np.zeros((96, 96))
        a[:, 8:24] = 1.0
        b = np.zeros((96, 96))
        b[:, 40:56] = 1.0
        assert not np.allclose(dct_encode(a, 12, 32), dct_encode(b, 12, 32))
