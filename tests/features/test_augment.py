"""Tests for DCT-domain augmentation.

The central claim — augmenting the tensor equals re-encoding the
transformed image — is checked exactly for every orientation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import (
    TENSOR_ORIENTATIONS,
    augment_tensor,
    augmentation_batch,
    dct_encode,
)

BLOCKS = 6
BLOCK_SIZE = 8
GRID = BLOCKS * BLOCK_SIZE
COEFFS = BLOCK_SIZE * BLOCK_SIZE  # full spectrum: closed under transpose


def image_transform(image: np.ndarray, orientation: str) -> np.ndarray:
    if orientation == "identity":
        return image
    if orientation == "flip_x":
        return image[:, ::-1]
    if orientation == "flip_y":
        return image[::-1, :]
    if orientation == "transpose":
        return image.T
    if orientation == "rot90":
        return image.T[::-1, :]
    if orientation == "rot180":
        return image[::-1, ::-1]
    if orientation == "rot270":
        return image.T[:, ::-1]
    if orientation == "antitranspose":
        return image[::-1, ::-1].T
    raise AssertionError(orientation)


@pytest.mark.parametrize("orientation", TENSOR_ORIENTATIONS)
def test_tensor_augment_equals_image_transform(orientation):
    """encode(transform(image)) == augment(encode(image)), exactly."""
    rng = np.random.default_rng(hash(orientation) % 2**31)
    image = rng.random((GRID, GRID))
    direct = dct_encode(
        np.ascontiguousarray(image_transform(image, orientation)),
        blocks=BLOCKS, coeffs=COEFFS,
    )
    via_tensor = augment_tensor(
        dct_encode(image, blocks=BLOCKS, coeffs=COEFFS),
        orientation, block_size=BLOCK_SIZE,
    )
    np.testing.assert_allclose(via_tensor, direct, atol=1e-10)


def test_identity_returns_copy():
    rng = np.random.default_rng(0)
    tensor = rng.random((COEFFS, BLOCKS, BLOCKS))
    out = augment_tensor(tensor, "identity", BLOCK_SIZE)
    np.testing.assert_array_equal(out, tensor)
    out[0, 0, 0] = 999.0
    assert tensor[0, 0, 0] != 999.0


def test_double_flip_is_identity():
    rng = np.random.default_rng(1)
    tensor = rng.random((COEFFS, BLOCKS, BLOCKS))
    out = augment_tensor(
        augment_tensor(tensor, "flip_x", BLOCK_SIZE), "flip_x", BLOCK_SIZE
    )
    np.testing.assert_allclose(out, tensor, atol=1e-14)


def test_rejects_bad_inputs():
    with pytest.raises(ValueError, match="unknown orientation"):
        augment_tensor(np.zeros((4, 2, 2)), "twirl", 8)
    with pytest.raises(ValueError):
        augment_tensor(np.zeros((4, 2)), "flip_x", 8)


def test_partial_zigzag_transpose_rejected():
    """A zigzag prefix not closed under transposition cannot be
    transposed in the tensor domain (documented limitation)."""
    tensor = np.zeros((2, 3, 3))  # 2 channels: (0,0) and (0,1), no (1,0)
    with pytest.raises(ValueError, match="closed under"):
        augment_tensor(tensor, "transpose", 8)


def test_partial_zigzag_flips_ok():
    """Flips never permute channels, so any prefix works."""
    rng = np.random.default_rng(2)
    tensor = rng.random((10, 4, 4))
    out = augment_tensor(tensor, "flip_x", 8)
    assert out.shape == tensor.shape


class TestAugmentationBatch:
    def test_expands_counts(self):
        rng = np.random.default_rng(3)
        tensors = rng.random((5, COEFFS, BLOCKS, BLOCKS))
        labels = np.array([0, 1, 0, 1, 1])
        big_x, big_y = augmentation_batch(tensors, labels,
                                          block_size=BLOCK_SIZE)
        assert big_x.shape[0] == 20
        assert big_y.shape[0] == 20
        np.testing.assert_array_equal(big_y[:5], labels)

    def test_first_block_is_identity(self):
        rng = np.random.default_rng(4)
        tensors = rng.random((3, COEFFS, BLOCKS, BLOCKS))
        labels = np.zeros(3, dtype=int)
        big_x, _ = augmentation_batch(tensors, labels, block_size=BLOCK_SIZE)
        np.testing.assert_array_equal(big_x[:3], tensors)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            augmentation_batch(np.zeros((3, 1, 2, 2)), np.zeros(2))


@settings(max_examples=15, deadline=None)
@given(st.sampled_from(TENSOR_ORIENTATIONS), st.integers(0, 2**31 - 1))
def test_augment_preserves_energy(orientation, seed):
    """Property: every orientation is an orthogonal transform of the
    tensor (image L2 energy is preserved by flips/rotations)."""
    rng = np.random.default_rng(seed)
    tensor = rng.random((COEFFS, BLOCKS, BLOCKS))
    out = augment_tensor(tensor, orientation, BLOCK_SIZE)
    assert np.sum(out**2) == pytest.approx(np.sum(tensor**2))
