"""Argument validation of the ``repro`` CLI parsers.

Regression tests for the silent-clamp bug: ``--shards 0``,
``--batch 0`` and friends used to be accepted at parse time and
clamped (or crash) deep inside the run — now argparse rejects them
with a clear message and exit code 2.
"""

import pytest

from repro.cli.main import (
    build_detect_parser,
    build_query_parser,
    build_serve_parser,
)


def _parse_detect(extra):
    return build_detect_parser().parse_args(["layout.glp", *extra])


class TestDetectValidation:
    @pytest.mark.parametrize(
        "flags",
        [
            ["--batch", "0"],
            ["--batch", "-3"],
            ["--shards", "0"],
            ["--shards", "-1"],
            ["--chunk-size", "0"],
            ["--iterations", "0"],
            ["--query", "0"],
            ["--init-train", "0"],
            ["--val-size", "-2"],
            ["--grid", "0"],
            ["--clip-size", "-100"],
            ["--workers", "-1"],
            ["--cache-shards", "-4"],
            ["--tile-size", "-1"],
            ["--checkpoint-every", "0"],
            ["--max-litho", "0"],
            ["--max-cache-bytes", "-5"],
            ["--stage-timeout", "0"],
            ["--stage-timeout", "-0.5"],
        ],
    )
    def test_rejects_non_positive_values(self, flags, capsys):
        with pytest.raises(SystemExit) as exc:
            _parse_detect(flags)
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert flags[0] in err
        assert "expected a" in err

    @pytest.mark.parametrize(
        "flags",
        [
            ["--batch", "two"],
            ["--shards", "1.5"],
            ["--workers", "many"],
            ["--stage-timeout", "soon"],
        ],
    )
    def test_rejects_non_numeric_values(self, flags, capsys):
        with pytest.raises(SystemExit) as exc:
            _parse_detect(flags)
        assert exc.value.code == 2
        assert "is not a" in capsys.readouterr().err

    def test_accepts_valid_values(self):
        args = _parse_detect(
            [
                "--batch", "5", "--shards", "2", "--workers", "0",
                "--tile-size", "0", "--cache-shards", "0",
                "--stage-timeout", "1.5",
            ]
        )
        assert args.batch == 5
        assert args.shards == 2
        assert args.workers == 0  # zero means in-process, still legal
        assert args.tile_size == 0
        assert args.stage_timeout == 1.5


class TestServeValidation:
    @pytest.mark.parametrize(
        "flags",
        [
            ["--clients", "0"],
            ["--requests", "-1"],
            ["--request-clips", "0"],
            ["--batch-clips", "0"],
            ["--delay-ms", "-1"],
            ["--max-pending", "0"],
            ["--train-clips", "0"],
            ["--epochs", "0"],
            ["--max-litho", "0"],
            # the transport flags: zero/negative must die at parse
            # time, never reach a half-started daemon
            ["--port", "0"],
            ["--port", "-1"],
            ["--port", "70000"],
            ["--max-connections", "0"],
            ["--max-connections", "-2"],
            ["--read-timeout", "0"],
            ["--read-timeout", "-1.5"],
            ["--write-timeout", "0"],
        ],
    )
    def test_rejects_bad_values(self, flags, capsys):
        with pytest.raises(SystemExit) as exc:
            build_serve_parser().parse_args(["layout.glp", *flags])
        assert exc.value.code == 2
        assert flags[0] in capsys.readouterr().err

    def test_defaults_parse(self):
        args = build_serve_parser().parse_args(["layout.glp"])
        assert args.clients == 2
        assert args.batch_clips == 256
        assert args.threshold == 0.5
        assert args.listen is None
        assert args.port == 7643
        assert args.max_connections == 32
        assert args.read_timeout == 30.0


class TestQueryValidation:
    @pytest.mark.parametrize(
        "flags",
        [
            ["--port", "0"],
            ["--port", "65536"],
            ["--port", "-7"],
            ["--timeout", "0"],
            ["--timeout", "-1"],
            ["--retries", "0"],
            ["--retries", "-1"],
            ["--clips", "0"],
            ["--requests", "0"],
            ["--offset", "-1"],
        ],
    )
    def test_rejects_bad_values(self, flags, capsys):
        with pytest.raises(SystemExit) as exc:
            build_query_parser().parse_args(["layout.glp", *flags])
        assert exc.value.code == 2
        assert flags[0] in capsys.readouterr().err

    def test_defaults_parse(self):
        args = build_query_parser().parse_args(["layout.glp"])
        assert args.host == "127.0.0.1"
        assert args.port == 7643
        assert args.timeout == 30.0
        assert args.retries == 5
        assert args.clips == 16
        assert args.offset == 0

    def test_health_needs_no_layout(self):
        args = build_query_parser().parse_args(["--health"])
        assert args.layout is None
        assert args.health is True
