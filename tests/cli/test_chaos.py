"""Chaos smoke test: a CLI run with injected transient litho faults and
a tight litho budget must exit 0 with a degraded — not crashed —
GuardReport.  CI runs this file as its own step."""

import pytest

from repro.cli import detect_main
from repro.data.synth import EUV_RULES, generate_layout
from repro.layout import save_layout


@pytest.fixture
def chaos_glp(tmp_path):
    layout = generate_layout(
        EUV_RULES, tiles_x=10, tiles_y=10, stress_probability=0.3,
        seed=3, name="chaos-chip", target_ratio=0.1,
    )
    path = tmp_path / "chip.glp"
    save_layout(layout, path)
    return str(path)


class TestChaosSmoke:
    def test_faulted_budgeted_run_degrades_gracefully(
        self, chaos_glp, capsys
    ):
        # seed charges 20 + 16 = 36 clips; the first 10-clip batch would
        # reach 46 > 45, so the guard must stop the loop gracefully
        code = detect_main([
            chaos_glp, "--iterations", "4", "--batch", "10",
            "--init-train", "20", "--val-size", "16", "--seed", "0",
            "--chaos-faults", "4", "--max-litho", "45", "--quiet",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos: injecting 4 transient litho faults" in out
        assert "detection accuracy" in out
        assert "degraded:budget_exhausted" in out

    def test_guard_flags_parse(self):
        from repro.cli.main import build_detect_parser

        args = build_detect_parser().parse_args(
            ["x.glp", "--no-guard", "--max-litho", "50",
             "--stage-timeout", "30"]
        )
        assert args.guard is False
        assert args.max_litho == 50
        assert args.stage_timeout == 30.0
        defaults = build_detect_parser().parse_args(["x.glp"])
        assert defaults.guard is True
        assert defaults.max_litho is None
        assert defaults.chaos_faults == 0
