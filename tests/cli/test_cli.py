"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import (
    benchmark_main,
    convert_main,
    detect_main,
    main,
    report_main,
    serve_main,
)
from repro.data.synth import EUV_RULES, generate_layout
from repro.layout import save_layout


@pytest.fixture
def small_glp(tmp_path):
    layout = generate_layout(
        EUV_RULES, tiles_x=10, tiles_y=10, stress_probability=0.3,
        seed=3, name="cli-chip", target_ratio=0.1,
    )
    path = tmp_path / "chip.glp"
    save_layout(layout, path)
    return str(path)


class TestUmbrella:
    def test_help(self, capsys):
        assert main(["--help"]) == 0
        assert "detect" in capsys.readouterr().out

    def test_no_args_fails(self):
        assert main([]) == 2

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "unknown command" in capsys.readouterr().err

    def test_dispatches_benchmark(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["benchmark", "iccad16-1"]) == 0
        assert "iccad16-1" in capsys.readouterr().out


class TestDetect:
    def test_end_to_end(self, small_glp, tmp_path, capsys):
        report = tmp_path / "hotspots.txt"
        code = detect_main(
            [small_glp, "--iterations", "3", "--batch", "10",
             "--init-train", "20", "--val-size", "16",
             "--seed", "0", "--report", str(report)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "detection accuracy" in out
        assert report.exists()
        assert report.read_text().startswith("# detected hotspot")

    def test_missing_file(self, capsys):
        assert detect_main(["/nonexistent.glp"]) == 2
        assert "error" in capsys.readouterr().err

    def test_streaming_scan_flags(self, small_glp, tmp_path, capsys):
        report = tmp_path / "hotspots.txt"
        state = tmp_path / "scan-state"
        argv = [small_glp, "--iterations", "2", "--batch", "10",
                "--init-train", "20", "--val-size", "16",
                "--seed", "0", "--tile-size", "4", "--shards", "2",
                "--scan-state", str(state),
                "--feature-cache", str(tmp_path / "fc"),
                "--cache-shards", "2",
                "--report", str(report)]
        assert detect_main(argv) == 0
        out = capsys.readouterr().out
        assert "streaming full-chip scan" in out
        assert (state / "cursor.json").exists()
        assert (state / "manifest.json").exists()
        assert report.read_text().startswith("# detected hotspot")
        assert list((tmp_path / "fc").glob("shard-*"))
        # second run replays every tile from the scan state
        assert detect_main(argv) == 0
        out = capsys.readouterr().out
        scan_line = next(
            line for line in out.splitlines()
            if line.startswith("scan:")
        )
        assert "0 scored" in scan_line

    def test_gds_input_with_svg_output(self, tmp_path, capsys):
        from repro.data.synth import EUV_RULES, generate_layout
        from repro.layout import save_gds

        layout = generate_layout(
            EUV_RULES, tiles_x=10, tiles_y=10, stress_probability=0.3,
            seed=4, name="gdschip", target_ratio=0.1,
        )
        gds_path = tmp_path / "chip.gds"
        save_gds(layout, gds_path)
        svg_path = tmp_path / "det.svg"
        code = detect_main(
            [str(gds_path), "--tech", "7", "--iterations", "2",
             "--batch", "10", "--init-train", "20", "--val-size", "16",
             "--svg", str(svg_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tech 7 nm" in out
        assert svg_path.exists()
        assert svg_path.read_text().startswith("<svg")

    def test_too_few_clips(self, tmp_path, capsys):
        layout = generate_layout(
            EUV_RULES, tiles_x=3, tiles_y=3, stress_probability=0.0, seed=0
        )
        path = tmp_path / "tiny.glp"
        save_layout(layout, path)
        assert detect_main([str(path)]) == 2
        assert "clips" in capsys.readouterr().err

    def test_checkpoint_and_resume(self, small_glp, tmp_path, capsys):
        ckpt_dir = tmp_path / "ckpts"
        common = [
            small_glp, "--iterations", "2", "--batch", "10",
            "--init-train", "20", "--val-size", "16", "--seed", "0",
            "--checkpoint-dir", str(ckpt_dir),
        ]
        assert detect_main(common) == 0
        capsys.readouterr()
        assert (ckpt_dir / "checkpoint_iter0001.json").exists()
        assert (ckpt_dir / "checkpoint_iter0001.npz").exists()

        code = detect_main(
            common + ["--resume", str(ckpt_dir / "checkpoint_iter0001")]
        )
        assert code == 0
        assert "detection accuracy" in capsys.readouterr().out

    def test_resume_missing_checkpoint(self, small_glp, tmp_path, capsys):
        code = detect_main(
            [small_glp, "--iterations", "2", "--batch", "10",
             "--init-train", "20", "--val-size", "16",
             "--resume", str(tmp_path / "nope")]
        )
        assert code == 2
        assert "checkpoint" in capsys.readouterr().err


class TestServe:
    def test_end_to_end(self, small_glp, capsys):
        code = serve_main(
            [small_glp, "--train-clips", "24", "--epochs", "2",
             "--clients", "2", "--requests", "2", "--request-clips", "4",
             "--seed", "0", "--quiet"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "served 4 requests / 16 clips" in out
        assert "latency p50" in out
        assert "clips/batch" in out

    def test_umbrella_dispatches_serve(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--help"])
        assert exc.value.code == 0
        assert "--clients" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        code = serve_main(["/nonexistent/chip.glp"])
        assert code == 2
        assert "chip.glp" in capsys.readouterr().err

    def test_too_few_clips(self, tmp_path, capsys):
        layout = generate_layout(
            EUV_RULES, tiles_x=2, tiles_y=2, stress_probability=0.3,
            seed=3, name="tiny", target_ratio=0.1,
        )
        path = tmp_path / "tiny.glp"
        save_layout(layout, path)
        code = serve_main([str(path), "--train-clips", "24"])
        assert code == 2
        assert "clips" in capsys.readouterr().err


class TestBenchmark:
    def test_builds_named_case(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = benchmark_main(["iccad16-1", "--scale", "0.5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "iccad16-1" in out
        assert "HS#=0" in out

    def test_unknown_name(self, capsys):
        assert benchmark_main(["iccad99"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err


class TestConvert:
    def test_glp_to_gds_roundtrip(self, small_glp, tmp_path, capsys):
        from repro.layout import load_layout

        gds = tmp_path / "chip.gds"
        assert convert_main([small_glp, str(gds)]) == 0
        back = tmp_path / "back.glp"
        assert convert_main([str(gds), str(back), "--tech", "7"]) == 0
        original = load_layout(small_glp)
        roundtrip = load_layout(back)
        assert sorted(roundtrip.rects) == sorted(original.rects)
        assert "shapes" in capsys.readouterr().out

    def test_bad_source(self, tmp_path, capsys):
        assert convert_main(["/missing.glp", str(tmp_path / "o.gds")]) == 2
        assert "error" in capsys.readouterr().err


class TestReport:
    def test_fig3_report(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path))
        assert report_main(["fig3"]) == 0
        assert (tmp_path / "fig3.txt").exists()
        assert "diversity runtime" in capsys.readouterr().out

    def test_rejects_unknown_artifact(self):
        with pytest.raises(SystemExit):
            report_main(["fig99"])
