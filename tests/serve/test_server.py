"""Tests of the batched hotspot-detection daemon (:mod:`repro.serve`).

The load-bearing assertions mirror the acceptance criteria: coalesced
batch results are bit-identical to sequential single-request scoring,
admission control sheds work at the queue and litho-budget limits, and
``close(drain=True)`` completes every queued request before returning.
"""

import threading
import time

import numpy as np
import pytest

from repro.calibration.temperature import TemperatureScaler
from repro.data.synth import EUV_RULES, generate_layout
from repro.dataplane import BatchFeatureExtractor, DataPlaneConfig
from repro.engine.events import EventBus, EventLog
from repro.engine.guard import GuardConfig, RunSupervisor
from repro.engine.session import InferenceSession
from repro.features import FeatureExtractor
from repro.layout import extract_clip_grid
from repro.litho import LithoLabeler, LithoSimulator
from repro.model.classifier import HotspotClassifier
from repro.serve import (
    AdmissionError,
    DetectionServer,
    RequestTimeout,
    ServeConfig,
    ServeError,
    ServerClosed,
)

GRID = 96


def _clips(seed=13):
    layout = generate_layout(
        EUV_RULES,
        tiles_x=6,
        tiles_y=6,
        stress_probability=0.3,
        seed=seed,
        name="serve-test",
        target_ratio=0.1,
    )
    return extract_clip_grid(
        layout, EUV_RULES.clip_size, EUV_RULES.core_margin, drop_empty=False
    )


def _plane(bus=None):
    return BatchFeatureExtractor(
        FeatureExtractor(grid=GRID), DataPlaneConfig(chunk_size=32), bus=bus
    )


@pytest.fixture(scope="module")
def corpus():
    """One layout + one trained classifier/temperature pair, shared by
    every test (training dominates the suite's wall time)."""
    clips = _clips()
    plane = _plane()
    train = clips[:20]
    tensors = plane.encode_batch(train)
    rng = np.random.default_rng(0)
    labels = (rng.random(len(train)) < 0.4).astype(np.int64)
    labels[0] = 1
    labels[1] = 0
    clf = HotspotClassifier(
        input_shape=plane.extractor.tensor_shape, arch="mlp", epochs=2, seed=0
    )
    clf.fit_scaler(tensors)
    clf.fit(tensors, labels)
    temperature = TemperatureScaler()
    try:
        temperature.fit(clf.predict_logits(tensors), labels)
    except (ValueError, FloatingPointError):
        temperature.temperature_ = 1.0
    # the serving pool: clips the classifier never trained on
    return {"pool": clips[20:], "clf": clf, "temperature": temperature}


def _submit_all(server, requests, model="v1", want_labels=False):
    """Queue every request from its own thread, wait for admission."""
    results = [None] * len(requests)
    errors = [None] * len(requests)

    def client(ix, req):
        try:
            results[ix] = server.submit(
                req, model=model, want_labels=want_labels, timeout=120
            )
        except Exception as exc:  # re-raised in the test body
            errors[ix] = exc

    threads = [
        threading.Thread(target=client, args=(i, req), daemon=True)
        for i, req in enumerate(requests)
    ]
    for thread in threads:
        thread.start()
    return threads, results, errors


def _await_queued(server, n, deadline_s=10.0):
    deadline = time.monotonic() + deadline_s
    while server.stats()["received"] < n:
        if time.monotonic() > deadline:
            raise AssertionError(
                f"only {server.stats()['received']}/{n} requests queued"
            )
        time.sleep(0.005)


class TestCoalescedBitIdentity:
    def test_coalesced_matches_sequential_bitwise(self, corpus):
        pool, clf, temperature = (
            corpus["pool"], corpus["clf"], corpus["temperature"],
        )
        requests = [pool[0:4], pool[4:10], pool[10:13]]

        # --- sequential reference: one request at a time, cold plane
        ref_plane = _plane()
        session = InferenceSession(
            clf, np.zeros((0,) + clf.input_shape, dtype=np.float64)
        )
        expected = []
        for request in requests:
            prediction = session.predict_tensors(
                ref_plane.encode_batch(request)
            )
            probs = temperature.transform(prediction.logits)
            expected.append((prediction.logits, probs[:, 1]))

        # --- served: all three requests coalesced into ONE dispatch
        bus = EventBus()
        log = bus.subscribe(EventLog())
        server = DetectionServer(
            _plane(bus),
            ServeConfig(max_batch_clips=64, max_delay_s=0.0),
            bus=bus,
            autostart=False,
        )
        server.register_model("v1", clf, temperature=temperature)
        threads, results, errors = _submit_all(server, requests)
        _await_queued(server, len(requests))
        server.start()
        for thread in threads:
            thread.join(120)
        assert errors == [None, None, None]
        server.close()

        total = sum(len(r) for r in requests)
        for result, (logits, scores) in zip(results, expected):
            assert result.coalesced == total  # one batch served all
            assert np.array_equal(result.logits, logits)
            assert np.array_equal(result.scores, scores)
            assert np.array_equal(result.verdicts, scores >= 0.5)

        dispatched = log.of_kind("batch_dispatched")
        assert len(dispatched) == 1
        assert dispatched[0].payload["n_requests"] == 3
        assert dispatched[0].payload["n_clips"] == total
        assert len(log.of_kind("request_received")) == 3
        completed = log.of_kind("request_completed")
        assert len(completed) == 3
        assert all(e.payload["coalesced"] == total for e in completed)
        assert all(e.payload["serve_seconds"] > 0 for e in completed)

    def test_batch_cap_splits_dispatches(self, corpus):
        """A max_batch_clips below the backlog forces multiple
        dispatches; results stay identical to the coalesced run."""
        pool = corpus["pool"]
        bus = EventBus()
        log = bus.subscribe(EventLog())
        server = DetectionServer(
            _plane(bus),
            ServeConfig(max_batch_clips=5, max_delay_s=0.0),
            bus=bus,
            autostart=False,
        )
        server.register_model("v1", corpus["clf"], corpus["temperature"])
        requests = [pool[0:4], pool[4:8], pool[8:12]]
        threads, results, errors = _submit_all(server, requests)
        _await_queued(server, len(requests))
        server.start()
        for thread in threads:
            thread.join(120)
        server.close()
        assert errors == [None, None, None]
        # 4-clip requests against a 5-clip cap: one request per batch
        assert len(log.of_kind("batch_dispatched")) == 3
        assert all(r.coalesced == 4 for r in results)


class TestAdmissionControl:
    def test_queue_overflow_sheds_with_supervisor_alert(self, corpus):
        bus = EventBus()
        log = bus.subscribe(EventLog())
        supervisor = RunSupervisor(GuardConfig(), bus)
        supervisor.attach()
        try:
            server = DetectionServer(
                _plane(bus),
                ServeConfig(max_pending_clips=4),
                bus=bus,
                supervisor=supervisor,
                autostart=False,
            )
            server.register_model("v1", corpus["clf"])
            pool = corpus["pool"]
            threads, _, errors = _submit_all(server, [pool[0:3]])
            _await_queued(server, 1)
            with pytest.raises(AdmissionError, match="max_pending_clips"):
                server.submit(pool[3:6], model="v1")
            assert server.stats()["rejected"] == 1
            alerts = log.of_kind("health_alert")
            assert any(
                e.payload["sentinel"] == "serve_overload" for e in alerts
            )
            recoveries = log.of_kind("recovery_applied")
            assert any(
                e.payload["policy"] == "shed_load" for e in recoveries
            )
            server.start()
            for thread in threads:
                thread.join(120)
            assert errors == [None]
            server.close()
        finally:
            supervisor.detach()

    def test_litho_budget_rejects_oversized_label_request(self, corpus):
        labeler = LithoLabeler(
            LithoSimulator.for_tech(28, grid=GRID), max_queries=4
        )
        server = DetectionServer(
            _plane(), labeler=labeler, autostart=False
        )
        server.register_model("v1", corpus["clf"])
        with pytest.raises(AdmissionError, match="litho budget"):
            server.submit(
                corpus["pool"][0:6], model="v1", want_labels=True
            )
        # un-labelled scoring is NOT litho-gated: admission passes
        threads, _, errors = _submit_all(server, [corpus["pool"][0:6]])
        _await_queued(server, 1)
        server.start()
        for thread in threads:
            thread.join(120)
        assert errors == [None]
        server.close()

    def test_labels_within_budget_are_served(self, corpus):
        labeler = LithoLabeler(
            LithoSimulator.for_tech(28, grid=GRID), max_queries=8
        )
        with DetectionServer(_plane(), labeler=labeler) as server:
            server.register_model("v1", corpus["clf"])
            result = server.submit(
                corpus["pool"][0:3], want_labels=True, timeout=120
            )
        assert result.labels is not None
        assert result.labels.shape == (3,)
        assert set(np.unique(result.labels)) <= {0, 1}
        assert labeler.query_count == 3


class TestLifecycle:
    def test_close_drains_queued_requests(self, corpus):
        server = DetectionServer(
            _plane(),
            ServeConfig(max_delay_s=0.05),
            autostart=False,
        )
        server.register_model("v1", corpus["clf"])
        pool = corpus["pool"]
        requests = [pool[i : i + 2] for i in range(0, 12, 2)]
        threads, results, errors = _submit_all(server, requests)
        _await_queued(server, len(requests))
        server.start()
        server.close(drain=True)  # must complete all six first
        for thread in threads:
            thread.join(120)
        assert errors == [None] * 6
        assert all(r is not None and r.scores.shape == (2,) for r in results)
        assert server.stats()["completed"] == 6

    def test_close_without_drain_fails_pending(self, corpus):
        server = DetectionServer(_plane(), autostart=False)
        server.register_model("v1", corpus["clf"])
        threads, results, errors = _submit_all(
            server, [corpus["pool"][0:2]]
        )
        _await_queued(server, 1)
        server.close(drain=False)
        for thread in threads:
            thread.join(30)
        assert results == [None]
        assert isinstance(errors[0], ServerClosed)

    def test_close_without_drain_is_prompt(self, corpus):
        # regression: close(drain=False) must fail a queued request
        # promptly — not leave the submitter blocked until its own
        # submit timeout expires
        server = DetectionServer(_plane(), autostart=False)
        server.register_model("v1", corpus["clf"])
        threads, results, errors = _submit_all(
            server, [corpus["pool"][0:2]]
        )
        _await_queued(server, 1)
        started = time.monotonic()
        server.close(drain=False)
        for thread in threads:
            thread.join(30)
        elapsed = time.monotonic() - started
        assert not any(thread.is_alive() for thread in threads)
        assert elapsed < 5.0, (
            f"queued submitter took {elapsed:.1f}s to observe close"
        )
        assert isinstance(errors[0], ServerClosed)
        assert results == [None]

    def test_submit_timeout_withdraws_queued_request(self, corpus):
        # a timed-out request is withdrawn from the queue, counted, and
        # never dispatched once the server eventually starts
        server = DetectionServer(_plane(), autostart=False)
        server.register_model("v1", corpus["clf"])
        with pytest.raises(RequestTimeout, match="withdrawn"):
            server.submit(corpus["pool"][0:2], timeout=0.2)
        stats = server.stats()
        assert stats["timed_out"] == 1
        assert stats["queue_depth"] == 0
        # starting afterwards must not resurrect the withdrawn request
        server.start()
        follow_up = server.submit(corpus["pool"][2:4], timeout=120)
        assert follow_up.scores.shape == (2,)
        assert server.stats()["completed"] == 1
        server.close(drain=True)

    def test_submit_after_close_raises(self, corpus):
        server = DetectionServer(_plane())
        server.register_model("v1", corpus["clf"])
        server.close()
        with pytest.raises(ServerClosed):
            server.submit(corpus["pool"][0:1])

    def test_rejects_bad_requests(self, corpus):
        server = DetectionServer(_plane(), autostart=False)
        with pytest.raises(ServeError, match="exactly one registered"):
            server.submit(corpus["pool"][0:1])
        server.register_model("v1", corpus["clf"])
        with pytest.raises(ServeError, match="empty request"):
            server.submit([])
        with pytest.raises(ServeError, match="unknown model"):
            server.submit(corpus["pool"][0:1], model="nope")
        with pytest.raises(ServeError, match="needs a labeler"):
            server.submit(corpus["pool"][0:1], want_labels=True)
        server.close()


class TestObservability:
    def test_tenant_attribution_and_stats(self, corpus):
        plane = _plane()
        with DetectionServer(plane) as server:
            server.register_model("v1", corpus["clf"])
            server.submit(corpus["pool"][0:4], timeout=120)
            # a second hit over the same clips is served from cache
            server.submit(corpus["pool"][0:4], timeout=120)
            stats = server.stats()
        assert stats["completed"] == 2
        tenants = stats["cache_tenants"]
        assert tenants["v1"]["puts"] == 4
        assert tenants["v1"]["hits"] >= 4
        assert plane.cache.tenant_stats() == tenants

    def test_config_validation(self):
        with pytest.raises(ValueError, match="max_batch_clips"):
            ServeConfig(max_batch_clips=0)
        with pytest.raises(ValueError, match="max_pending_clips"):
            ServeConfig(max_pending_clips=0)
        with pytest.raises(ValueError, match="max_delay_s"):
            ServeConfig(max_delay_s=-1.0)
        with pytest.raises(ValueError, match="threshold"):
            ServeConfig(threshold=1.5)
