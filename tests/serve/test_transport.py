"""Tests of the framed socket transport (:mod:`repro.serve.transport`).

Covers the wire format (framing, CRC rejection, version skew, payload
codecs), the server side (bit-identical remote scoring, connection-cap
shedding with supervisor sentinels, deadline propagation, typed error
frames, graceful drain) and the client side (pooling, typed terminal
errors, the circuit breaker's lock discipline under the deterministic
interleaving harness).  The whole module runs under
``REPRO_CHECK=strict`` so every ``guarded_by`` access is verified
lock-held.
"""

import socket
import struct
import threading
import zlib

import numpy as np
import pytest

from repro.analysis.interleave import InterleaveScheduler
from repro.analysis.modes import set_check_mode
from repro.engine.events import EventBus, EventLog
from repro.engine.guard import GuardConfig, RunSupervisor
from repro.serve import DetectionServer, ServeConfig
from repro.serve.transport import (
    CircuitBreaker,
    ClientConfig,
    ConnectionLost,
    DetectionClient,
    FrameCorrupt,
    ProtocolMismatch,
    ReadTimeout,
    RemoteClosed,
    RemoteOverloaded,
    RemoteTimeout,
    SocketTransport,
    TransportConfig,
)
from repro.serve.transport import frames

from .conftest import make_plane


@pytest.fixture(autouse=True)
def _strict(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK", "strict")
    previous = set_check_mode("strict")
    yield
    set_check_mode(previous)


# ----------------------------------------------------------------------
# wire format
# ----------------------------------------------------------------------

def _pipe():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


class TestFrames:
    def test_roundtrip(self):
        a, b = _pipe()
        try:
            frames.write_frame(
                a, frames.T_REQUEST, 42, b"payload", deadline_ms=1500
            )
            frame = frames.read_frame(b)
            assert frame.ftype == frames.T_REQUEST
            assert frame.request_id == 42
            assert frame.deadline_ms == 1500
            assert frame.payload == b"payload"
        finally:
            a.close()
            b.close()

    @pytest.mark.parametrize("position", [0, 5, 10, 27, 30])
    def test_any_flipped_byte_is_rejected(self, position):
        data = bytearray(frames.encode_frame(frames.T_RESPONSE, 7, b"abcd"))
        data[position] ^= 0xFF
        a, b = _pipe()
        try:
            a.sendall(bytes(data))
            with pytest.raises(FrameCorrupt):
                frames.read_frame(b)
        finally:
            a.close()
            b.close()

    def test_version_skew_is_terminal_only_when_crc_valid(self):
        # hand-build a frame whose version differs but whose CRC is
        # correct: must surface as ProtocolMismatch, not FrameCorrupt
        header = struct.pack(
            ">4sHBBQII", frames.MAGIC, frames.PROTOCOL_VERSION + 1,
            frames.T_REQUEST, 0, 1, 0, 0,
        )
        crc = zlib.crc32(b"", zlib.crc32(header)) & 0xFFFFFFFF
        a, b = _pipe()
        try:
            a.sendall(header + struct.pack(">I", crc))
            with pytest.raises(ProtocolMismatch):
                frames.read_frame(b)
        finally:
            a.close()
            b.close()

    def test_truncated_frame_is_connection_lost(self):
        data = frames.encode_frame(frames.T_REQUEST, 3, b"x" * 64)
        a, b = _pipe()
        try:
            a.sendall(data[: len(data) // 2])
            a.close()
            with pytest.raises(ConnectionLost):
                frames.read_frame(b)
        finally:
            b.close()

    def test_oversized_length_is_rejected_before_reading(self):
        header = struct.pack(
            ">4sHBBQII", frames.MAGIC, frames.PROTOCOL_VERSION,
            frames.T_REQUEST, 0, 1, 0, frames.MAX_FRAME_BYTES + 1,
        )
        crc = zlib.crc32(b"", zlib.crc32(header)) & 0xFFFFFFFF
        a, b = _pipe()
        try:
            a.sendall(header + struct.pack(">I", crc))
            with pytest.raises(FrameCorrupt, match="payload bytes"):
                frames.read_frame(b)
        finally:
            a.close()
            b.close()

    def test_silence_is_read_timeout(self):
        a, b = _pipe()
        try:
            b.settimeout(0.1)
            with pytest.raises(ReadTimeout):
                frames.read_frame(b)
        finally:
            a.close()
            b.close()

    def test_clip_codec_roundtrip(self, trained):
        clips = trained["pool"][:5]
        payload = frames.encode_clips(clips, "v1", True)
        decoded, model, want_labels = frames.decode_clips(payload)
        assert model == "v1"
        assert want_labels is True
        assert len(decoded) == len(clips)
        for original, rebuilt in zip(clips, decoded):
            assert rebuilt.window == original.window
            assert rebuilt.core == original.core
            assert rebuilt.rects == original.rects
            assert rebuilt.layout_name == original.layout_name
            assert rebuilt.index == original.index
            # the cache key must survive the wire: a remote clip hits
            # the same feature-cache entry as a local one
            assert rebuilt.content_key() == original.content_key()

    def test_error_codec_roundtrip(self):
        payload = frames.encode_error("admission", "queue full", True)
        assert frames.decode_error(payload) == ("admission", "queue full", True)


# ----------------------------------------------------------------------
# server + client integration
# ----------------------------------------------------------------------

@pytest.fixture()
def stack(trained):
    """A started server + transport + bus/log, torn down after."""
    bus = EventBus()
    log = EventLog()
    bus.subscribe(log)
    supervisor = RunSupervisor(GuardConfig(), bus)
    supervisor.attach()
    server = DetectionServer(make_plane(bus), ServeConfig(), bus=bus,
                             supervisor=supervisor)
    server.register_model("v1", trained["clf"], trained["temperature"])
    transport = SocketTransport(
        server, TransportConfig(read_timeout_s=10.0), bus=bus,
        supervisor=supervisor,
    ).start()
    yield {
        "server": server, "transport": transport, "bus": bus,
        "log": log, "supervisor": supervisor,
        "address": transport.address,
    }
    transport.close(drain=False)
    supervisor.detach()


def _client(stack, **overrides):
    host, port = stack["address"]
    defaults = dict(host=host, port=port, timeout_s=60.0,
                    backoff_base_s=0.01)
    defaults.update(overrides)
    return DetectionClient(ClientConfig(**defaults), bus=stack["bus"])


class TestTransportIntegration:
    def test_remote_scores_bit_identical_to_in_process(self, stack, trained):
        pool = trained["pool"]
        reference = stack["server"].submit(pool[:8], model="v1", timeout=60)
        with _client(stack) as client:
            remote = client.submit(pool[:8], model="v1")
        assert np.array_equal(remote.scores, reference.scores)
        assert remote.scores.dtype == reference.scores.dtype
        assert np.array_equal(remote.logits, reference.logits)
        assert np.array_equal(remote.verdicts, reference.verdicts)
        assert np.array_equal(remote.embeddings, reference.embeddings)
        assert remote.model == "v1"

    def test_pool_reuses_connections(self, stack, trained):
        pool = trained["pool"]
        with _client(stack, pool_size=2) as client:
            for start in range(0, 12, 4):
                client.submit(pool[start : start + 4], model="v1")
        assert stack["transport"].stats()["accepted"] == 1

    def test_health_and_stats(self, stack):
        with _client(stack) as client:
            health = client.health()
            stats = client.stats()
        assert health["status"] == "ok"
        assert health["models"] == ["v1"]
        assert health["protocol"] == frames.PROTOCOL_VERSION
        assert stats["transport"]["accepted"] >= 1
        assert "completed" in stats["server"]
        # the supervisor GuardReport rides along for remote operators
        assert stats["guard"]["final_mode"] == "normal"

    def test_connection_cap_sheds_with_sentinel(self, stack, trained):
        transport = SocketTransport(
            stack["server"],
            TransportConfig(max_connections=1),
            bus=stack["bus"],
            supervisor=stack["supervisor"],
            owns_server=False,
        ).start()
        host, port = transport.address
        holder = socket.create_connection((host, port), timeout=5.0)
        try:
            # the holder occupies the only slot before we query
            frames.write_frame(holder, frames.T_HEALTH, 1)
            frames.read_frame(holder)
            with DetectionClient(ClientConfig(
                host=host, port=port, timeout_s=3.0, retries=2,
                backoff_base_s=0.01,
            )) as client:
                with pytest.raises(RemoteOverloaded):
                    client.health()
        finally:
            holder.close()
            transport.close(drain=False)
        rejected = stack["log"].of_kind("transport_conn_rejected")
        assert rejected, "shed connection must emit its event"
        report = stack["supervisor"].report()
        assert any(
            alert["sentinel"] == "transport_overload"
            for alert in report.alerts
        )
        assert any(
            recovery["policy"] == "shed_connection"
            for recovery in report.recoveries
        )

    def test_deadline_propagates_to_server_side_wait(self, trained):
        # a server whose dispatcher never starts: the propagated
        # deadline is the only thing that can unblock the request
        bus = EventBus()
        server = DetectionServer(make_plane(), ServeConfig(), bus=bus,
                                 autostart=False)
        server.register_model("v1", trained["clf"], trained["temperature"])
        transport = SocketTransport(server, TransportConfig(), bus=bus).start()
        host, port = transport.address
        try:
            with DetectionClient(ClientConfig(
                host=host, port=port, timeout_s=2.0, retries=2,
                backoff_base_s=0.01,
            )) as client:
                with pytest.raises(RemoteTimeout):
                    client.submit(trained["pool"][:2], model="v1")
            # the withdrawn requests never linger in the queue
            assert server.stats()["queue_depth"] == 0
            assert server.stats()["timed_out"] >= 1
        finally:
            transport.close(drain=False)

    def test_closed_server_is_terminal_remote_closed(self, stack, trained):
        server = DetectionServer(make_plane(), ServeConfig())
        server.register_model("v1", trained["clf"], trained["temperature"])
        transport = SocketTransport(server, TransportConfig()).start()
        host, port = transport.address
        server.close(drain=True)
        try:
            with DetectionClient(ClientConfig(
                host=host, port=port, timeout_s=5.0, retries=3,
                backoff_base_s=0.01,
            )) as client:
                with pytest.raises(RemoteClosed):
                    client.submit(trained["pool"][:2], model="v1")
                # terminal: exactly one attempt, no retry burn
                assert client.breaker.state() == "closed"
        finally:
            transport.close(drain=False)

    def test_version_skew_is_terminal(self, stack):
        host, port = stack["address"]
        raw = socket.create_connection((host, port), timeout=5.0)
        try:
            header = struct.pack(
                ">4sHBBQII", frames.MAGIC, frames.PROTOCOL_VERSION + 9,
                frames.T_HEALTH, 0, 1, 0, 0,
            )
            crc = zlib.crc32(b"", zlib.crc32(header)) & 0xFFFFFFFF
            raw.sendall(header + struct.pack(">I", crc))
            raw.settimeout(5.0)
            frame = frames.read_frame(raw)
            assert frame.ftype == frames.T_ERROR
            code, _detail, retryable = frames.decode_error(frame.payload)
            assert code == "version"
            assert retryable is False
        finally:
            raw.close()

    def test_graceful_drain_completes_inflight_then_refuses(self, stack,
                                                            trained):
        pool = trained["pool"]
        results = {}

        def call():
            with _client(stack) as client:
                results["scores"] = client.submit(
                    pool[:4], model="v1"
                ).scores

        worker = threading.Thread(target=call, daemon=True)
        worker.start()
        worker.join(timeout=60.0)
        assert not worker.is_alive()
        stack["transport"].close(drain=True)
        assert "scores" in results
        # post-drain connects are refused -> retryable ConnectionLost
        host, port = stack["address"]
        with DetectionClient(ClientConfig(
            host=host, port=port, timeout_s=1.0, retries=2,
            backoff_base_s=0.01,
        )) as late:
            with pytest.raises((ConnectionLost, ReadTimeout)):
                late.health()
        assert stack["log"].of_kind("transport_drain")


# ----------------------------------------------------------------------
# circuit breaker under the interleaving harness
# ----------------------------------------------------------------------

class TestBreakerInterleaving:
    def test_concurrent_failures_open_exactly_once(self):
        bus = EventBus()
        log = EventLog()
        bus.subscribe(log)
        breaker = CircuitBreaker(threshold=2, cooldown_s=10.0, bus=bus)

        def fail():
            breaker.record_failure("ConnectionLost")

        # pin thread a inside record_failure (its trace point), let b
        # run the same section, then release a — the adversarial
        # window for a double-open or a lost increment
        scheduler = InterleaveScheduler(
            [
                ("a", "breaker:failure"),
                ("b", "breaker:failure"),
                ("a", "breaker:failure"),
            ],
            timeout=10.0,
        )
        scheduler.run({"a": fail, "b": fail})
        assert scheduler.errors == {}
        assert breaker.state() == "open"
        assert len(log.of_kind("serve_circuit_open")) == 1

    def test_probe_success_closes_from_half_open(self):
        bus = EventBus()
        log = EventLog()
        bus.subscribe(log)
        breaker = CircuitBreaker(threshold=1, cooldown_s=0.01, bus=bus)
        breaker.record_failure("ReadTimeout")
        assert breaker.state() == "open"
        assert not breaker.allow() or True  # may flip after cooldown
        deadline_spins = 0
        while not breaker.allow():
            deadline_spins += 1
            assert deadline_spins < 10_000
        assert breaker.state() == "half_open"
        breaker.record_success()
        assert breaker.state() == "closed"
        kinds = log.kinds()
        assert "serve_circuit_open" in kinds
        assert "serve_circuit_half_open" in kinds
        assert "serve_circuit_closed" in kinds
