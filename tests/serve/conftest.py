"""Shared fixtures of the serving tests: one trained corpus per
session (training dominates wall time, so every transport module reuses
it) and a strict-mode switch for the lock-sanitizer suites."""

import numpy as np
import pytest

from repro.calibration.temperature import TemperatureScaler
from repro.data.synth import EUV_RULES, generate_layout
from repro.dataplane import BatchFeatureExtractor, DataPlaneConfig
from repro.features import FeatureExtractor
from repro.layout import extract_clip_grid
from repro.model.classifier import HotspotClassifier

GRID = 96


def make_plane(bus=None):
    return BatchFeatureExtractor(
        FeatureExtractor(grid=GRID), DataPlaneConfig(chunk_size=32), bus=bus
    )


@pytest.fixture(scope="session")
def trained():
    """Layout clips + one trained classifier/temperature pair."""
    layout = generate_layout(
        EUV_RULES,
        tiles_x=6,
        tiles_y=6,
        stress_probability=0.3,
        seed=13,
        name="serve-test",
        target_ratio=0.1,
    )
    clips = extract_clip_grid(
        layout, EUV_RULES.clip_size, EUV_RULES.core_margin, drop_empty=False
    )
    plane = make_plane()
    train = clips[:20]
    tensors = plane.encode_batch(train)
    rng = np.random.default_rng(0)
    labels = (rng.random(len(train)) < 0.4).astype(np.int64)
    labels[0] = 1
    labels[1] = 0
    clf = HotspotClassifier(
        input_shape=plane.extractor.tensor_shape, arch="mlp", epochs=2, seed=0
    )
    clf.fit_scaler(tensors)
    clf.fit(tensors, labels)
    temperature = TemperatureScaler()
    try:
        temperature.fit(clf.predict_logits(tensors), labels)
    except (ValueError, FloatingPointError):
        temperature.temperature_ = 1.0
    return {"pool": clips[20:], "clf": clf, "temperature": temperature}
