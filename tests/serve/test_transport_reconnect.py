"""Kill-and-reconnect guarantee of the socket transport.

A daemon SIGKILLed mid-conversation and restarted on the same port must
be transparent to a retrying client: the pooled socket dies with
``ConnectionLost``, the retry reconnects, and — because training and
scoring are seeded and deterministic (:mod:`repro.serve.bootstrap`) —
the restarted daemon returns **bit-identical** scores.

These tests drive the real ``repro serve --listen`` CLI in a
subprocess, parsing its ``listening on HOST:PORT`` readiness line.
"""

import os
import signal
import socket
import subprocess
import sys
import time

import numpy as np
import pytest

import repro
from repro.data.synth import EUV_RULES, generate_layout
from repro.layout.glp import load_layout, save_layout
from repro.serve.bootstrap import bootstrap_server
from repro.serve.transport import ClientConfig, DetectionClient

TRAIN_CLIPS = 10
EPOCHS = 2
SEED = 0
STARTUP_S = 60.0

_SRC = os.path.dirname(os.path.dirname(repro.__file__))


def _free_port() -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """One saved layout + the in-process reference scores the daemons
    must reproduce bit-for-bit."""
    tmp = tmp_path_factory.mktemp("reconnect")
    layout = generate_layout(
        EUV_RULES, tiles_x=5, tiles_y=5, stress_probability=0.3,
        seed=7, name="reconnect-test", target_ratio=0.1,
    )
    glp = tmp / "reconnect.glp"
    save_layout(layout, glp)
    booted = bootstrap_server(
        load_layout(glp), train_clips=TRAIN_CLIPS, epochs=EPOCHS,
        seed=SEED,
    )
    pool = booted.serve_pool[:6]
    reference = booted.server.submit(pool, model="v1", timeout=60.0)
    booted.server.close(drain=False)
    return {"glp": glp, "pool": pool, "reference": reference}


def _spawn_daemon(glp, port: int) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=_SRC)
    env.pop("REPRO_CHECK", None)  # daemon runs at its default mode
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli.main", "serve", str(glp),
            "--listen", "127.0.0.1", "--port", str(port),
            "--train-clips", str(TRAIN_CLIPS), "--epochs", str(EPOCHS),
            "--seed", str(SEED), "--quiet",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + STARTUP_S
    lines = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        lines.append(line)
        if line.startswith("listening on "):
            return proc
    proc.kill()
    proc.wait(timeout=10)
    raise AssertionError(
        "daemon never reported listening; output was:\n" + "".join(lines)
    )


def _kill(proc: subprocess.Popen) -> None:
    if proc.poll() is None:
        proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=10)
    proc.stdout.close()


def test_sigkill_restart_retries_bit_identical(corpus):
    port = _free_port()
    reference = corpus["reference"]
    daemon = _spawn_daemon(corpus["glp"], port)
    restarted = None
    client = DetectionClient(ClientConfig(
        host="127.0.0.1", port=port, timeout_s=90.0, retries=8,
        connect_timeout_s=2.0, backoff_base_s=0.1, backoff_max_s=0.5,
    ))
    try:
        first = client.submit(corpus["pool"], model="v1")
        assert np.array_equal(first.scores, reference.scores)
        assert first.scores.dtype == reference.scores.dtype

        # hard-kill mid-conversation: the client's pooled socket now
        # points at a dead process
        _kill(daemon)
        restarted = _spawn_daemon(corpus["glp"], port)

        # same client object, no manual reset: the stale socket dies
        # with a retryable error, the retry reconnects, and the
        # restarted daemon's deterministic training reproduces the
        # exact same model
        second = client.submit(corpus["pool"], model="v1")
        assert np.array_equal(second.scores, reference.scores)
        assert second.scores.dtype == reference.scores.dtype
        assert np.array_equal(second.logits, reference.logits)
        assert np.array_equal(second.verdicts, reference.verdicts)

        health = client.health()
        assert health["status"] == "ok"
        assert health["models"] == ["v1"]
    finally:
        client.close()
        _kill(daemon)
        if restarted is not None:
            _kill(restarted)


def test_sigterm_drains_and_reports(corpus):
    # graceful path: SIGTERM → drain → exit 0 with the drain summary
    port = _free_port()
    daemon = _spawn_daemon(corpus["glp"], port)
    try:
        with DetectionClient(ClientConfig(
            host="127.0.0.1", port=port, timeout_s=60.0, retries=3,
        )) as client:
            result = client.submit(corpus["pool"], model="v1")
            assert np.array_equal(
                result.scores, corpus["reference"].scores
            )
        daemon.send_signal(signal.SIGTERM)
        out, _ = daemon.communicate(timeout=30)
    finally:
        _kill(daemon)
    assert daemon.returncode == 0
    assert "drained: served" in out
