"""Chaos suite of the socket transport: deterministic fault plans.

Every planned fault — on the request path (client sockets wrapped) or
the response path (server sockets wrapped) — must resolve to one of
exactly two outcomes: a **typed transport error** or a **retried result
bit-identical** to an uninterrupted call.  Never a hang, never silent
corruption.  Every remote call here runs under a watchdog thread whose
join-timeout *is* the zero-hang assertion.

Runs under ``REPRO_CHECK=strict`` like the rest of the transport suite.
"""

import threading
import time

import numpy as np
import pytest

from repro.analysis.modes import set_check_mode
from repro.engine.events import EventBus, EventLog
from repro.engine.guard import GuardConfig, RunSupervisor
from repro.serve import DetectionServer, ServeConfig
from repro.serve.transport import (
    CircuitOpenError,
    ClientConfig,
    DetectionClient,
    FaultInjector,
    ReadTimeout,
    RetryableTransportError,
    SocketTransport,
    TransportConfig,
    TransportFaultPlan,
)

from .conftest import make_plane

#: hard ceiling of any single chaos call — a call that outlives this is
#: a hang, which is exactly the failure class this suite exists to catch
WATCHDOG_S = 30.0


@pytest.fixture(autouse=True)
def _strict(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK", "strict")
    previous = set_check_mode("strict")
    yield
    set_check_mode(previous)


def run_with_watchdog(fn, timeout=WATCHDOG_S):
    """Run ``fn`` in a worker thread; a join past ``timeout`` fails the
    test (the worker is a daemon, so a genuine hang cannot wedge the
    whole pytest run)."""
    box = {}

    def target():
        try:
            box["result"] = fn()
        except BaseException as exc:  # re-raised on the test thread
            box["error"] = exc

    worker = threading.Thread(target=target, daemon=True, name="chaos-call")
    worker.start()
    worker.join(timeout)
    assert not worker.is_alive(), (
        f"transport call still running after {timeout}s watchdog — "
        "the chaos fault produced a hang"
    )
    if "error" in box:
        raise box["error"]
    return box["result"]


@pytest.fixture()
def stack(trained):
    """Server + bus/log, no transport — each test wires its own
    transport so it can inject faults on the response path."""
    bus = EventBus()
    log = EventLog()
    bus.subscribe(log)
    supervisor = RunSupervisor(GuardConfig(), bus)
    supervisor.attach()
    server = DetectionServer(make_plane(bus), ServeConfig(), bus=bus,
                             supervisor=supervisor)
    server.register_model("v1", trained["clf"], trained["temperature"])
    transports = []

    def make_transport(wrap_socket=None, **cfg):
        transport = SocketTransport(
            server, TransportConfig(read_timeout_s=10.0, **cfg), bus=bus,
            supervisor=supervisor, wrap_socket=wrap_socket,
            owns_server=False,
        ).start()
        transports.append(transport)
        return transport

    yield {
        "server": server, "bus": bus, "log": log,
        "supervisor": supervisor, "make_transport": make_transport,
    }
    for transport in transports:
        transport.close(drain=False)
    server.close(drain=False)
    supervisor.detach()


def _client(address, bus=None, wrap_socket=None, **overrides):
    host, port = address
    defaults = dict(host=host, port=port, timeout_s=8.0, retries=4,
                    backoff_base_s=0.01, backoff_max_s=0.05)
    defaults.update(overrides)
    return DetectionClient(
        ClientConfig(**defaults), bus=bus, wrap_socket=wrap_socket
    )


PLANS = {
    "drop": TransportFaultPlan.drop_at(0),
    "delay": TransportFaultPlan.delay_at(0, delay_s=0.1),
    "truncate": TransportFaultPlan.truncate_at(0),
    "garbage": TransportFaultPlan.garbage_at(0),
    "disconnect": TransportFaultPlan.disconnect_at(0),
}


class TestRequestPathFaults:
    """Faults injected on the client's outgoing frames."""

    @pytest.mark.parametrize("kind", sorted(PLANS))
    def test_fault_recovers_bit_identical(self, stack, trained, kind):
        pool = trained["pool"]
        reference = stack["server"].submit(pool[:6], model="v1", timeout=60)
        transport = stack["make_transport"]()
        injector = FaultInjector(PLANS[kind])
        with _client(transport.address, bus=stack["bus"],
                     wrap_socket=injector.wrap) as client:
            remote = run_with_watchdog(
                lambda: client.submit(pool[:6], model="v1")
            )
        assert injector.counts()[kind] == 1, "the planned fault must fire"
        assert np.array_equal(remote.scores, reference.scores)
        assert remote.scores.dtype == reference.scores.dtype
        assert np.array_equal(remote.verdicts, reference.verdicts)
        assert np.array_equal(remote.logits, reference.logits)

    def test_exhausted_retries_surface_typed_error(self, stack, trained):
        # every attempt's request frame is swallowed: the call must end
        # in the *typed* retryable error, within the deadline bound
        transport = stack["make_transport"]()
        injector = FaultInjector(TransportFaultPlan.drop_at(0, 1))
        with _client(transport.address, timeout_s=2.0, retries=2,
                     wrap_socket=injector.wrap) as client:
            started = time.monotonic()
            with pytest.raises(ReadTimeout):
                run_with_watchdog(
                    lambda: client.submit(trained["pool"][:2], model="v1")
                )
        assert time.monotonic() - started < 2.0 + 1.0, (
            "exhausted retries must respect the end-to-end deadline"
        )
        assert injector.counts()["drop"] == 2


class TestResponsePathFaults:
    """Faults injected on the server's outgoing frames — the request
    was scored, but the reply dies on the wire; the client must retry
    and the re-scored result must be bit-identical."""

    @pytest.mark.parametrize("kind", sorted(PLANS))
    def test_fault_recovers_bit_identical(self, stack, trained, kind):
        pool = trained["pool"]
        reference = stack["server"].submit(pool[:6], model="v1", timeout=60)
        injector = FaultInjector(PLANS[kind])
        transport = stack["make_transport"](wrap_socket=injector.wrap)
        with _client(transport.address, bus=stack["bus"]) as client:
            remote = run_with_watchdog(
                lambda: client.submit(pool[:6], model="v1")
            )
        assert injector.counts()[kind] == 1
        assert np.array_equal(remote.scores, reference.scores)
        assert remote.scores.dtype == reference.scores.dtype
        assert np.array_equal(remote.verdicts, reference.verdicts)
        assert np.array_equal(remote.logits, reference.logits)

    def test_delay_past_deadline_is_typed_error(self, stack, trained):
        # both response frames arrive later than the client can wait:
        # the call must fail with the typed timeout, not hang
        injector = FaultInjector(
            TransportFaultPlan.delay_at(0, 1, delay_s=3.0)
        )
        transport = stack["make_transport"](wrap_socket=injector.wrap)
        with _client(transport.address, timeout_s=1.0, retries=2) as client:
            with pytest.raises(ReadTimeout):
                run_with_watchdog(
                    lambda: client.submit(trained["pool"][:2], model="v1")
                )


class TestCircuitBreakerCycle:
    def test_full_cycle_open_half_open_closed(self, stack, trained):
        """Two dropped calls trip the breaker (open event), the next
        call fails fast, and after the cooldown one clean probe closes
        it again — every transition observed through its typed event."""
        pool = trained["pool"]
        reference = stack["server"].submit(pool[:4], model="v1", timeout=60)
        transport = stack["make_transport"]()
        injector = FaultInjector(TransportFaultPlan.drop_at(0, 1))
        client = _client(
            transport.address, bus=stack["bus"],
            wrap_socket=injector.wrap,
            timeout_s=0.4, retries=1,  # one attempt per call
            breaker_threshold=2, breaker_cooldown_s=0.2,
        )
        log = stack["log"]
        with client:
            for _ in range(2):  # consecutive retryable failures
                with pytest.raises(ReadTimeout):
                    run_with_watchdog(
                        lambda: client.submit(pool[:4], model="v1")
                    )
            assert client.breaker.state() == "open"
            assert len(log.of_kind("serve_circuit_open")) == 1
            # while open: fail fast, no socket I/O
            frames_before = injector.counts()["frames"]
            with pytest.raises(CircuitOpenError):
                run_with_watchdog(
                    lambda: client.submit(pool[:4], model="v1")
                )
            assert injector.counts()["frames"] == frames_before
            # past the cooldown: one half-open probe succeeds and
            # closes the circuit
            time.sleep(0.25)
            remote = run_with_watchdog(
                lambda: client.submit(pool[:4], model="v1",
                                      timeout=30.0)
            )
        assert client.breaker.state() == "closed"
        assert np.array_equal(remote.scores, reference.scores)
        cycle = [
            event.kind for event in log.events
            if event.kind.startswith("serve_circuit_")
        ]
        assert cycle == [
            "serve_circuit_open",
            "serve_circuit_half_open",
            "serve_circuit_closed",
        ]

    def test_half_open_failure_reopens(self, stack, trained):
        # the half-open probe also dies -> straight back to open
        transport = stack["make_transport"]()
        injector = FaultInjector(TransportFaultPlan.drop_at(0, 1))
        client = _client(
            transport.address, bus=stack["bus"],
            wrap_socket=injector.wrap,
            timeout_s=0.4, retries=1,
            breaker_threshold=1, breaker_cooldown_s=0.1,
        )
        with client:
            with pytest.raises(ReadTimeout):
                run_with_watchdog(
                    lambda: client.submit(trained["pool"][:2], model="v1")
                )
            assert client.breaker.state() == "open"
            time.sleep(0.15)
            with pytest.raises(RetryableTransportError):
                run_with_watchdog(
                    lambda: client.submit(trained["pool"][:2], model="v1")
                )
            assert client.breaker.state() == "open"
        opens = stack["log"].of_kind("serve_circuit_open")
        assert len(opens) == 2
