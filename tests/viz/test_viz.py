"""Tests for SVG and Netpbm visualization output."""

import numpy as np
import pytest

from repro.layout import Clip, Layout, Rect
from repro.viz import (
    render_clip_svg,
    render_detection_svg,
    render_layout_svg,
    save_intensity_ppm,
    save_pgm,
)


@pytest.fixture
def layout():
    return Layout(
        [Rect(10, 10, 200, 60), Rect(300, 100, 360, 400)],
        die=Rect(0, 0, 500, 500),
        name="viz",
    )


class TestSvg:
    def test_layout_svg_contains_geometry(self, layout, tmp_path):
        path = tmp_path / "layout.svg"
        text = render_layout_svg(layout, path)
        assert path.exists()
        assert text.startswith("<svg")
        assert text.endswith("</svg>")
        assert text.count("<rect") == 2
        assert 'viewBox="0 0 500 500"' in text

    def test_clip_svg_shows_core(self, tmp_path):
        window = Rect(0, 0, 100, 100)
        clip = Clip(window, window.expanded(-20),
                    rects=[Rect(10, 40, 90, 60)])
        text = render_clip_svg(clip, tmp_path / "clip.svg")
        assert "stroke-dasharray" in text  # the core outline style
        assert text.count("<rect") == 2

    def test_detection_svg_marks_hotspots(self, tmp_path):
        window = Rect(0, 0, 100, 100)
        clips = [
            Clip(window.shifted(100 * i, 0),
                 window.shifted(100 * i, 0).expanded(-20), rects=[], index=i)
            for i in range(4)
        ]
        from repro.data import ClipDataset

        labels = np.array([0, 1, 0, 1])
        ds = ClipDataset("v", 7, clips, labels,
                         np.zeros((4, 1, 2, 2)), np.zeros((4, 3)))
        text = render_detection_svg(ds, sampled_indices=[0, 1],
                                    path=tmp_path / "det.svg")
        assert text.count("<line") == 4  # two X marks
        assert text.count("fill:#f3d27a") == 2  # two sampled shadings

    def test_detection_rejects_empty(self, tmp_path):
        from repro.data import ClipDataset

        ds = ClipDataset("e", 7, [], np.zeros(0, dtype=int),
                         np.zeros((0, 1, 2, 2)), np.zeros((0, 3)))
        with pytest.raises(ValueError):
            render_detection_svg(ds, [], tmp_path / "x.svg")


class TestNetpbm:
    def test_pgm_format(self, tmp_path):
        image = np.linspace(0, 1, 12).reshape(3, 4)
        path = tmp_path / "img.pgm"
        save_pgm(image, path)
        data = path.read_bytes()
        assert data.startswith(b"P5\n4 3\n255\n")
        pixels = np.frombuffer(data.split(b"255\n", 1)[1], dtype=np.uint8)
        assert pixels[0] == 0
        assert pixels[-1] == 255

    def test_pgm_constant_image_safe(self, tmp_path):
        save_pgm(np.full((2, 2), 0.7), tmp_path / "c.pgm")

    def test_pgm_rejects_3d(self, tmp_path):
        with pytest.raises(ValueError):
            save_pgm(np.zeros((2, 2, 2)), tmp_path / "x.pgm")

    def test_ppm_heatmap_colors(self, tmp_path):
        intensity = np.array([[0.0, 0.35, 1.0]])
        path = tmp_path / "heat.ppm"
        save_intensity_ppm(intensity, path, threshold=0.35)
        data = path.read_bytes()
        assert data.startswith(b"P6\n3 1\n255\n")
        rgb = np.frombuffer(data.split(b"255\n", 1)[1],
                            dtype=np.uint8).reshape(1, 3, 3)
        np.testing.assert_array_equal(rgb[0, 0], [0, 0, 255])    # dark: blue
        np.testing.assert_array_equal(rgb[0, 1], [255, 255, 255])  # threshold: white
        np.testing.assert_array_equal(rgb[0, 2], [255, 0, 0])    # bright: red

    def test_ppm_on_real_aerial_image(self, tmp_path):
        from repro.litho import duv_model

        mask = np.zeros((32, 32))
        mask[:, 12:20] = 1.0
        intensity = duv_model().aerial_image(mask, 10.0)
        save_intensity_ppm(intensity, tmp_path / "aerial.ppm")
        assert (tmp_path / "aerial.ppm").stat().st_size > 32 * 32 * 3

    def test_ppm_rejects_bad_threshold(self, tmp_path):
        with pytest.raises(ValueError):
            save_intensity_ppm(np.zeros((2, 2)), tmp_path / "x.ppm",
                               threshold=0.0)
