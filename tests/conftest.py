"""Shared fixtures: small cached benchmark datasets.

Datasets are cached under the repository ``.cache`` directory so repeated
test runs skip lithography simulation; the cache key includes generator
seed and scale, so fixture data is stable.
"""

import pytest

from repro.data import build_benchmark


@pytest.fixture(scope="session")
def iccad16_2_small():
    """A small ICCAD16-2-style dataset (~300 clips, ~5% hotspots)."""
    return build_benchmark("iccad16-2", scale=0.3, seed=0)


@pytest.fixture(scope="session")
def iccad16_3_small():
    """A small ICCAD16-3-style dataset (~700 clips, ~22% hotspots)."""
    return build_benchmark("iccad16-3", scale=0.15, seed=0)


@pytest.fixture(scope="session")
def iccad12_small():
    """A small ICCAD12-style dataset (~1600 clips, ~2% hotspots)."""
    return build_benchmark("iccad12", scale=0.01, seed=0)
