"""End-to-end integration over the *physical* path.

Unlike the framework tests (which run on pre-labeled datasets through
the metered DatasetLabeler), these tests exercise the full physical
pipeline a downstream user runs: GLP round-trip -> clip extraction ->
on-demand lithography labeling through LithoLabeler -> feature
extraction -> entropy-sampling loop -> detection, charging real
simulations throughout.
"""

import numpy as np
import pytest

from repro.calibration import TemperatureScaler
from repro.core import entropy_sampling
from repro.data.synth import EUV_RULES, generate_layout
from repro.features import FeatureExtractor
from repro.layout import extract_clip_grid, load_layout, save_layout
from repro.litho import LithoLabeler, LithoSimulator
from repro.model import HotspotClassifier
from repro.stats import PCA, GaussianMixture


@pytest.fixture(scope="module")
def chip(tmp_path_factory):
    """A 12x12-tile EUV chip, persisted and reloaded through GLP."""
    layout = generate_layout(
        EUV_RULES, tiles_x=12, tiles_y=12, stress_probability=0.3,
        seed=11, name="integration-chip", target_ratio=0.1,
    )
    path = tmp_path_factory.mktemp("glp") / "chip.glp"
    save_layout(layout, path)
    return load_layout(path)


@pytest.fixture(scope="module")
def pipeline(chip):
    clips = extract_clip_grid(
        chip, EUV_RULES.clip_size, EUV_RULES.core_margin, drop_empty=False
    )
    extractor = FeatureExtractor(grid=96)
    tensors = extractor.encode_batch(clips)
    labeler = LithoLabeler(LithoSimulator.for_tech(chip.tech_nm, grid=96))
    return clips, tensors, extractor, labeler


class TestPhysicalPipeline:
    def test_glp_roundtrip_preserves_chip(self, chip):
        assert chip.name == "integration-chip"
        assert chip.tech_nm == 7
        assert len(chip) > 100

    def test_litho_in_the_loop_active_learning(self, pipeline):
        """The full AL loop with real litho charging, reaching decent
        hotspot capture at a fraction of full-chip simulation cost."""
        clips, tensors, extractor, labeler = pipeline
        labeler.reset()
        n = len(clips)

        # GMM seed on core density features
        density = np.stack(
            [extractor.flat_features(c)[-64:] for c in clips]
        )
        compressed = PCA(10).fit_transform(density)
        gmm = GaussianMixture(n_components=8, seed=0).fit(compressed)
        posterior = gmm.posterior(compressed)
        order = np.argsort(posterior)

        train = list(order[:20])
        val = list(order[np.linspace(20, n - 1, 16).astype(int)])
        pool = [i for i in range(n) if i not in set(train) | set(val)]

        y_train = [labeler.label(clips[i]) for i in train]
        y_val = np.array([labeler.label(clips[i]) for i in val])

        clf = HotspotClassifier(input_shape=tensors.shape[1:], arch="mlp",
                                epochs=15, seed=0)
        clf.fit_scaler(tensors)
        clf.fit(tensors[train], np.array(y_train))

        temperature = TemperatureScaler()
        for _ in range(4):
            query = sorted(pool, key=lambda i: posterior[i])[:60]
            temperature.fit(clf.predict_logits(tensors[val]), y_val)
            probs = temperature.transform(clf.predict_logits(tensors[query]))
            embeddings = clf.embeddings(tensors[query])
            outcome = entropy_sampling(probs, embeddings, k=10)
            batch = [query[i] for i in outcome.selected]
            labels = [labeler.label(clips[i]) for i in batch]
            train.extend(batch)
            y_train.extend(labels)
            pool = [i for i in pool if i not in set(batch)]
            clf.update(tensors[train], np.array(y_train), epochs=5)

        # cost accounting: exactly the labeled clips were charged
        assert labeler.query_count == len(train) + len(val)
        assert labeler.query_count < n  # cheaper than full-chip litho

        # the loop found hotspots (the chip has ~10%)
        assert sum(y_train) > 0

    def test_detection_on_remaining_pool(self, pipeline):
        """After the loop, the calibrated model scans the rest and its
        flags are verified by real simulation."""
        clips, tensors, extractor, labeler = pipeline
        # quick supervised surrogate (module-scope labeler already warm)
        n = len(clips)
        rng = np.random.default_rng(1)
        train = rng.choice(n, size=n // 2, replace=False)
        y_train = np.array([labeler.label(clips[i]) for i in train])
        clf = HotspotClassifier(input_shape=tensors.shape[1:], arch="mlp",
                                epochs=20, seed=0)
        clf.fit_scaler(tensors)
        clf.fit(tensors[train], y_train)

        rest = np.setdiff1d(np.arange(n), train)
        flagged = rest[clf.predict(tensors[rest]) == 1]
        verified = [labeler.label(clips[int(i)]) for i in flagged]
        # flags exist iff hotspots were learnable; most should verify
        if len(verified) >= 5:
            assert np.mean(verified) > 0.5
