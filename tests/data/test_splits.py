"""Tests for stratified splitting and k-fold utilities."""

import numpy as np
import pytest

from repro.data import ClipDataset, stratified_kfold, stratified_split
from repro.layout import Clip, Rect


def toy_dataset(n=100, hotspot_ratio=0.1, seed=0):
    rng = np.random.default_rng(seed)
    window = Rect(0, 0, 100, 100)
    clips = [
        Clip(window.shifted(i * 100, 0),
             window.shifted(i * 100, 0).expanded(-20), rects=[], index=i)
        for i in range(n)
    ]
    labels = np.zeros(n, dtype=np.int64)
    hot = rng.choice(n, size=int(n * hotspot_ratio), replace=False)
    labels[hot] = 1
    tensors = rng.normal(size=(n, 2, 2, 2))
    flats = rng.normal(size=(n, 4))
    return ClipDataset("toy", 28, clips, labels, tensors, flats)


class TestStratifiedSplit:
    def test_sizes_and_ratio_preserved(self):
        ds = toy_dataset(n=200, hotspot_ratio=0.1)
        train, test = stratified_split(ds, (0.7, 0.3), seed=0)
        assert len(train) == 140
        assert len(test) == 60
        assert train.n_hotspots == 14
        assert test.n_hotspots == 6

    def test_parts_are_disjoint_and_complete(self):
        ds = toy_dataset(n=50)
        parts = stratified_split(ds, (0.5, 0.25, 0.25), seed=1)
        indices = [c.index for p in parts for c in p.clips]
        assert sorted(indices) == list(range(50))

    def test_deterministic_per_seed(self):
        ds = toy_dataset()
        a, _ = stratified_split(ds, (0.7, 0.3), seed=5)
        b, _ = stratified_split(ds, (0.7, 0.3), seed=5)
        assert [c.index for c in a.clips] == [c.index for c in b.clips]

    def test_different_seed_changes_split(self):
        ds = toy_dataset()
        a, _ = stratified_split(ds, (0.7, 0.3), seed=1)
        b, _ = stratified_split(ds, (0.7, 0.3), seed=2)
        assert [c.index for c in a.clips] != [c.index for c in b.clips]

    def test_validation(self):
        ds = toy_dataset(n=10)
        with pytest.raises(ValueError):
            stratified_split(ds, (0.5, 0.4))
        with pytest.raises(ValueError):
            stratified_split(ds, (1.2, -0.2))


class TestKFold:
    def test_each_sample_tested_once(self):
        ds = toy_dataset(n=60)
        seen = []
        for train, test in stratified_kfold(ds, k=5, seed=0):
            assert len(train) + len(test) == 60
            seen.extend(c.index for c in test.clips)
        assert sorted(seen) == list(range(60))

    def test_folds_stratified(self):
        ds = toy_dataset(n=100, hotspot_ratio=0.2)
        for _, test in stratified_kfold(ds, k=5, seed=0):
            assert test.n_hotspots == 4

    def test_train_test_disjoint(self):
        ds = toy_dataset(n=30)
        for train, test in stratified_kfold(ds, k=3, seed=0):
            train_ids = {c.index for c in train.clips}
            test_ids = {c.index for c in test.clips}
            assert not train_ids & test_ids

    def test_validation(self):
        ds = toy_dataset(n=10)
        with pytest.raises(ValueError):
            list(stratified_kfold(ds, k=1))
        with pytest.raises(ValueError):
            list(stratified_kfold(ds, k=11))
