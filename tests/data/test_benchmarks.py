"""Tests for benchmark builders and the dataset cache."""

import numpy as np
import pytest

from repro.data import BENCHMARKS, benchmark_names, build_benchmark


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


class TestSpecs:
    def test_table1_statistics_encoded(self):
        """The specs carry the exact Table I numbers."""
        assert BENCHMARKS["iccad12"].paper_hotspots == 3728
        assert BENCHMARKS["iccad12"].paper_nonhotspots == 159672
        assert BENCHMARKS["iccad12"].rules.tech_nm == 28
        assert BENCHMARKS["iccad16-1"].paper_hotspots == 0
        assert BENCHMARKS["iccad16-2"].paper_hotspots == 56
        assert BENCHMARKS["iccad16-3"].paper_hotspots == 1100
        assert BENCHMARKS["iccad16-4"].paper_hotspots == 157
        for name in ("iccad16-1", "iccad16-2", "iccad16-3", "iccad16-4"):
            assert BENCHMARKS[name].rules.tech_nm == 7

    def test_names(self):
        assert benchmark_names() == [
            "iccad12", "iccad16-1", "iccad16-2", "iccad16-3", "iccad16-4",
        ]

    def test_tiles_for_scale(self):
        spec = BENCHMARKS["iccad16-3"]
        tx, ty = spec.tiles_for_scale(1.0)
        assert abs(tx * ty - spec.paper_total) / spec.paper_total < 0.05
        with pytest.raises(ValueError):
            spec.tiles_for_scale(0.0)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            build_benchmark("iccad99")


class TestBuild:
    def test_build_small_case(self, cache_dir):
        ds = build_benchmark("iccad16-2", scale=0.1, seed=0)
        assert len(ds) >= 16
        assert ds.tech_nm == 7
        assert ds.tensors.shape[0] == len(ds)
        assert ds.flats.shape[0] == len(ds)
        assert len(ds.meta["hashes"]) == len(ds)

    def test_iccad16_1_is_hotspot_free(self, cache_dir):
        ds = build_benchmark("iccad16-1", scale=1.0, seed=0)
        assert ds.n_hotspots == 0
        # paper size is 63 clips; scale=1.0 should be close
        assert abs(len(ds) - 63) <= 10

    def test_hotspot_ratio_tracks_table1(self, cache_dir):
        """Realized hotspot ratio is within a factor ~2 of Table I."""
        ds = build_benchmark("iccad16-3", scale=0.1, seed=0)
        target = BENCHMARKS["iccad16-3"].paper_ratio
        assert 0.4 * target < ds.hotspot_ratio < 2.0 * target

    def test_deterministic_given_seed(self, cache_dir):
        a = build_benchmark("iccad16-2", scale=0.05, seed=3, use_cache=False)
        b = build_benchmark("iccad16-2", scale=0.05, seed=3, use_cache=False)
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_allclose(a.tensors, b.tensors)

    def test_labels_match_simulator(self, cache_dir):
        """Stored ground truth equals a fresh litho run per clip."""
        from repro.litho import LithoSimulator

        ds = build_benchmark("iccad16-2", scale=0.05, seed=1, use_cache=False)
        sim = LithoSimulator.for_tech(ds.tech_nm, grid=ds.meta["grid"])
        fresh = np.array([sim.is_hotspot(c) for c in ds.clips], dtype=np.int64)
        np.testing.assert_array_equal(fresh, ds.labels)


class TestCache:
    def test_roundtrip_preserves_arrays(self, cache_dir):
        fresh = build_benchmark("iccad16-2", scale=0.05, seed=2)
        assert (cache_dir / "iccad16-2_s0.05_r2_g96.npz").exists()
        cached = build_benchmark("iccad16-2", scale=0.05, seed=2)
        np.testing.assert_array_equal(cached.labels, fresh.labels)
        np.testing.assert_allclose(cached.tensors, fresh.tensors, atol=1e-6)
        np.testing.assert_allclose(cached.flats, fresh.flats, atol=1e-5)
        np.testing.assert_array_equal(
            cached.meta["hashes"], fresh.meta["hashes"]
        )

    def test_cache_preserves_clip_windows(self, cache_dir):
        fresh = build_benchmark("iccad16-2", scale=0.05, seed=2)
        cached = build_benchmark("iccad16-2", scale=0.05, seed=2)
        assert [c.window for c in cached.clips] == [
            c.window for c in fresh.clips
        ]
        assert cached.meta["geometry_available"] is False
        assert fresh.meta["geometry_available"] is True

    def test_scale_changes_cache_key(self, cache_dir):
        build_benchmark("iccad16-1", scale=0.5, seed=0)
        build_benchmark("iccad16-1", scale=1.0, seed=0)
        assert len(list(cache_dir.glob("iccad16-1*.npz"))) == 2
