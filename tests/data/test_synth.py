"""Tests for the synthetic layout generator."""

import numpy as np
import pytest

from repro.data.synth import DUV_RULES, EUV_RULES, MOTIFS, generate_layout
from repro.layout import extract_clip_grid
from repro.litho import LithoSimulator


class TestGenerateLayout:
    def test_deterministic_per_seed(self):
        a = generate_layout(DUV_RULES, 3, 3, 0.3, seed=7)
        b = generate_layout(DUV_RULES, 3, 3, 0.3, seed=7)
        assert a.rects == b.rects

    def test_different_seeds_differ(self):
        a = generate_layout(DUV_RULES, 3, 3, 0.3, seed=1)
        b = generate_layout(DUV_RULES, 3, 3, 0.3, seed=2)
        assert a.rects != b.rects

    def test_die_size_matches_tiles(self):
        layout = generate_layout(DUV_RULES, 4, 2, 0.0, seed=0)
        core = DUV_RULES.clip_size - 2 * DUV_RULES.core_margin
        assert layout.die.width == 2 * DUV_RULES.core_margin + 4 * core
        assert layout.die.height == 2 * DUV_RULES.core_margin + 2 * core

    def test_geometry_inside_die(self):
        layout = generate_layout(EUV_RULES, 5, 5, 0.5, seed=3)
        assert all(layout.die.contains_rect(r) for r in layout.rects)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            generate_layout(DUV_RULES, 0, 3, 0.5)
        with pytest.raises(ValueError):
            generate_layout(DUV_RULES, 3, 3, 1.5)

    def test_tiles_align_with_clip_grid(self):
        """Each extracted clip core contains exactly one motif tile."""
        layout = generate_layout(DUV_RULES, 3, 3, 0.0, seed=0)
        clips = extract_clip_grid(
            layout, DUV_RULES.clip_size, DUV_RULES.core_margin, drop_empty=False
        )
        assert len(clips) == 9

    def test_unstressed_layout_mostly_clean(self):
        """stress=0 produces (almost) no hotspots under simulation."""
        layout = generate_layout(DUV_RULES, 4, 4, 0.0, seed=5)
        clips = extract_clip_grid(
            layout, DUV_RULES.clip_size, DUV_RULES.core_margin, drop_empty=False
        )
        sim = LithoSimulator.for_tech(28, grid=96)
        hotspots = sum(sim.is_hotspot(c) for c in clips)
        assert hotspots == 0

    def test_stressed_layout_has_hotspots(self):
        layout = generate_layout(DUV_RULES, 5, 5, 1.0, seed=5)
        clips = extract_clip_grid(
            layout, DUV_RULES.clip_size, DUV_RULES.core_margin, drop_empty=False
        )
        sim = LithoSimulator.for_tech(28, grid=96)
        hotspots = sum(sim.is_hotspot(c) for c in clips)
        assert hotspots >= len(clips) // 4

    def test_motif_variety(self):
        """A moderately sized chip exercises every motif."""
        rng = np.random.default_rng(0)
        # generation draws motifs uniformly; 8 motifs x 49 tiles makes
        # missing one astronomically unlikely
        layout = generate_layout(EUV_RULES, 7, 7, 0.5, seed=9)
        assert len(layout.rects) > 49  # more than one rect per tile overall
        del rng

    def test_motif_functions_stay_in_region(self):
        from repro.data.synth import _MotifContext
        from repro.layout import Rect, bounding_box

        rng = np.random.default_rng(11)
        region = Rect(1000, 1000, 1600, 1600)
        for motif in MOTIFS:
            for stressed in (False, True):
                ctx = _MotifContext(rng, DUV_RULES, stressed)
                rects = motif(ctx, region)
                assert rects, motif.__name__
                box = bounding_box(rects)
                assert region.expanded(2).contains_rect(box), motif.__name__
