"""Tests for ClipDataset and the metered DatasetLabeler."""

import numpy as np
import pytest

from repro.data import ClipDataset, DatasetLabeler
from repro.layout import Clip, Rect


def toy_dataset(n=10, hotspots=(1, 4)):
    window = Rect(0, 0, 100, 100)
    clips = [
        Clip(window.shifted(i * 100, 0), window.shifted(i * 100, 0).expanded(-20),
             rects=[], index=i)
        for i in range(n)
    ]
    labels = np.zeros(n, dtype=np.int64)
    labels[list(hotspots)] = 1
    tensors = np.arange(n * 4, dtype=np.float64).reshape(n, 1, 2, 2)
    flats = np.arange(n * 3, dtype=np.float64).reshape(n, 3)
    return ClipDataset("toy", 28, clips, labels, tensors, flats)


class TestClipDataset:
    def test_counts(self):
        ds = toy_dataset()
        assert len(ds) == 10
        assert ds.n_hotspots == 2
        assert ds.n_nonhotspots == 8
        assert ds.hotspot_ratio == pytest.approx(0.2)

    def test_subset_preserves_alignment(self):
        ds = toy_dataset()
        sub = ds.subset([4, 1, 7])
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.labels, [1, 1, 0])
        np.testing.assert_allclose(sub.tensors[0], ds.tensors[4])
        np.testing.assert_allclose(sub.flats[1], ds.flats[1])
        assert sub.clips[2].index == 7

    def test_summary_format(self):
        assert "HS#=2" in toy_dataset().summary()
        assert "28nm" in toy_dataset().summary()

    def test_rejects_misaligned_labels(self):
        ds = toy_dataset()
        with pytest.raises(ValueError):
            ClipDataset("bad", 28, ds.clips, ds.labels[:-1], ds.tensors, ds.flats)

    def test_rejects_nonbinary_labels(self):
        ds = toy_dataset()
        labels = ds.labels.copy()
        labels[0] = 3
        with pytest.raises(ValueError, match="binary"):
            ClipDataset("bad", 28, ds.clips, labels, ds.tensors, ds.flats)


class TestDatasetLabeler:
    def test_returns_ground_truth(self):
        ds = toy_dataset()
        labeler = DatasetLabeler(ds)
        assert labeler.label(1) == 1
        assert labeler.label(0) == 0

    def test_charges_once_per_index(self):
        labeler = DatasetLabeler(toy_dataset())
        labeler.label(3)
        labeler.label(3)
        labeler.label(5)
        assert labeler.query_count == 2

    def test_label_many(self):
        labeler = DatasetLabeler(toy_dataset())
        out = labeler.label_many([0, 1, 4, 1])
        np.testing.assert_array_equal(out, [0, 1, 1, 1])
        assert labeler.query_count == 3

    def test_labeled_indices_sorted(self):
        labeler = DatasetLabeler(toy_dataset())
        labeler.label_many([7, 2, 5])
        np.testing.assert_array_equal(labeler.labeled_indices, [2, 5, 7])

    def test_out_of_range_raises(self):
        labeler = DatasetLabeler(toy_dataset())
        with pytest.raises(IndexError):
            labeler.label(10)
        with pytest.raises(IndexError):
            labeler.label(-1)

    def test_reset(self):
        labeler = DatasetLabeler(toy_dataset())
        labeler.label(0)
        labeler.reset()
        assert labeler.query_count == 0
        assert not labeler.is_labeled(0)


class TestDatasetLabelerBudget:
    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError, match="max_queries"):
            DatasetLabeler(toy_dataset(), max_queries=0)

    def test_label_raises_at_budget_without_charging(self):
        from repro.litho import LithoBudgetExceeded

        labeler = DatasetLabeler(toy_dataset(), max_queries=2)
        labeler.label(0)
        labeler.label(1)
        labeler.label(0)  # already charged, free
        with pytest.raises(LithoBudgetExceeded):
            labeler.label(2)
        assert labeler.query_count == 2
        assert not labeler.is_labeled(2)

    def test_label_batch_checks_whole_request_up_front(self):
        """A rejected batch charges nothing — the budget check runs
        before any label is revealed."""
        from repro.litho import LithoBudgetExceeded

        labeler = DatasetLabeler(toy_dataset(), max_queries=3)
        with pytest.raises(LithoBudgetExceeded) as info:
            labeler.label_batch([0, 1, 2, 3])
        assert labeler.query_count == 0
        assert info.value.requested == 4
        # a batch that fits still goes through afterwards
        np.testing.assert_array_equal(
            labeler.label_batch([0, 1, 4]), [0, 1, 1]
        )
        assert labeler.query_count == 3

    def test_cached_indices_do_not_count_against_budget(self):
        labeler = DatasetLabeler(toy_dataset(), max_queries=2)
        labeler.label_batch([0, 1])
        # all already charged: fits in a zero-remaining budget
        labeler.label_batch([0, 1, 0])
        assert labeler.query_count == 2
