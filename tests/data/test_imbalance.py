"""Tests for class-imbalance utilities."""

import numpy as np
import pytest

from repro.data import class_ratio, oversample_minority


def imbalanced(rng, n=100, ratio=0.05, channels=64):
    x = rng.normal(size=(n, channels, 4, 4))
    y = np.zeros(n, dtype=np.int64)
    y[: int(n * ratio)] = 1
    return x, y


class TestClassRatio:
    def test_basic(self):
        assert class_ratio(np.array([0, 1, 1, 0])) == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            class_ratio(np.array([]))


class TestOversampleMinority:
    def test_reaches_target_ratio(self):
        rng = np.random.default_rng(0)
        x, y = imbalanced(rng)
        big_x, big_y = oversample_minority(x, y, target_ratio=0.5, seed=0)
        assert class_ratio(big_y) == pytest.approx(0.5, abs=0.01)
        assert len(big_x) == len(big_y)

    def test_originals_preserved(self):
        rng = np.random.default_rng(1)
        x, y = imbalanced(rng)
        big_x, big_y = oversample_minority(x, y, target_ratio=0.3, seed=0)
        np.testing.assert_array_equal(big_x[: len(x)], x)
        np.testing.assert_array_equal(big_y[: len(y)], y)
        # all appended samples are minority
        assert np.all(big_y[len(y):] == 1)

    def test_augmented_replicas_not_exact_copies(self):
        rng = np.random.default_rng(2)
        x, y = imbalanced(rng, n=40, ratio=0.1)
        big_x, big_y = oversample_minority(x, y, target_ratio=0.5, seed=3,
                                           augment=True)
        replicas = big_x[len(x):]
        originals = x[y == 1]
        exact = 0
        for replica in replicas:
            if any(np.allclose(replica, o) for o in originals):
                exact += 1
        assert exact < len(replicas)  # most replicas are reoriented

    def test_without_augment_replicas_are_copies(self):
        rng = np.random.default_rng(3)
        x, y = imbalanced(rng, n=40, ratio=0.1)
        big_x, _ = oversample_minority(x, y, target_ratio=0.4, seed=0,
                                       augment=False)
        originals = x[y == 1]
        for replica in big_x[len(x):]:
            assert any(np.array_equal(replica, o) for o in originals)

    def test_already_balanced_unchanged(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(10, 4, 4, 4))
        y = np.array([0, 1] * 5, dtype=np.int64)
        big_x, big_y = oversample_minority(x, y, target_ratio=0.4)
        assert len(big_x) == 10
        np.testing.assert_array_equal(big_y, y)

    def test_validation(self):
        rng = np.random.default_rng(5)
        x, y = imbalanced(rng)
        with pytest.raises(ValueError):
            oversample_minority(x, y[:-1])
        with pytest.raises(ValueError):
            oversample_minority(x, y, target_ratio=1.5)
        with pytest.raises(ValueError):
            oversample_minority(x, np.zeros(len(x), dtype=np.int64))

    def test_deterministic_per_seed(self):
        rng = np.random.default_rng(6)
        x, y = imbalanced(rng)
        a_x, _ = oversample_minority(x, y, seed=7)
        b_x, _ = oversample_minority(x, y, seed=7)
        np.testing.assert_array_equal(a_x, b_x)
