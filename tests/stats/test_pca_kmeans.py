"""Tests for PCA and KMeans."""

import numpy as np
import pytest

from repro.stats import KMeans, PCA, kmeans_pp_init


class TestPCA:
    def test_recovers_dominant_direction(self):
        rng = np.random.default_rng(0)
        t = rng.normal(size=500)
        x = np.column_stack([3 * t, t * 0.01 + rng.normal(scale=0.01, size=500)])
        pca = PCA(1).fit(x)
        direction = np.abs(pca.components_[0])
        assert direction[0] > 0.99  # variance lives on axis 0

    def test_transform_reduces_dimension(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(50, 10))
        z = PCA(3).fit_transform(x)
        assert z.shape == (50, 3)

    def test_roundtrip_full_rank(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(30, 5))
        pca = PCA(5).fit(x)
        np.testing.assert_allclose(
            pca.inverse_transform(pca.transform(x)), x, atol=1e-10
        )

    def test_explained_variance_ratio_sums_below_one(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(100, 8))
        pca = PCA(3).fit(x)
        ratio = pca.explained_variance_ratio_
        assert np.all(ratio >= 0)
        assert ratio.sum() <= 1.0 + 1e-9
        assert np.all(np.diff(ratio) <= 1e-12)  # sorted descending

    def test_caps_components_at_rank(self):
        x = np.zeros((4, 10))
        x[:, 0] = [1, 2, 3, 4]
        pca = PCA(8).fit(x)
        assert pca.components_.shape[0] == 4

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PCA(2).transform(np.zeros((3, 5)))

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            PCA(0)
        with pytest.raises(ValueError):
            PCA(2).fit(np.zeros(5))


class TestKMeans:
    def test_separates_blobs(self):
        rng = np.random.default_rng(4)
        a = rng.normal(0, 0.5, size=(100, 2))
        b = rng.normal(10, 0.5, size=(100, 2))
        km = KMeans(2, seed=0).fit(np.vstack([a, b]))
        labels_a = km.labels_[:100]
        labels_b = km.labels_[100:]
        assert (labels_a == labels_a[0]).all()
        assert (labels_b == labels_b[0]).all()
        assert labels_a[0] != labels_b[0]

    def test_inertia_decreases_with_k(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(200, 2))
        inertias = [KMeans(k, seed=0).fit(x).inertia_ for k in (1, 2, 4, 8)]
        assert all(a >= b for a, b in zip(inertias, inertias[1:]))

    def test_predict_matches_fit_labels(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(100, 3))
        km = KMeans(3, seed=0).fit(x)
        np.testing.assert_array_equal(km.predict(x), km.labels_)

    def test_pp_init_spreads_centres(self):
        rng = np.random.default_rng(7)
        a = rng.normal(0, 0.1, size=(50, 2))
        b = rng.normal(20, 0.1, size=(50, 2))
        centres = kmeans_pp_init(np.vstack([a, b]), 2, rng)
        gap = np.linalg.norm(centres[0] - centres[1])
        assert gap > 10.0

    def test_pp_init_rejects_k_too_large(self):
        with pytest.raises(ValueError):
            kmeans_pp_init(np.zeros((3, 2)), 5, np.random.default_rng(0))

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            KMeans(2).predict(np.zeros((3, 2)))
