"""Tests for the GaussianMixture EM implementation."""

import numpy as np
import pytest

from repro.stats import GaussianMixture


def two_blob_data(rng, n=200, separation=8.0):
    a = rng.normal(0.0, 1.0, size=(n, 2))
    b = rng.normal(separation, 1.0, size=(n, 2))
    return np.vstack([a, b])


class TestFit:
    def test_recovers_two_separated_blobs(self):
        rng = np.random.default_rng(0)
        x = two_blob_data(rng)
        gmm = GaussianMixture(n_components=2, seed=1).fit(x)
        means = np.sort(gmm.means_[:, 0])
        assert means[0] == pytest.approx(0.0, abs=0.5)
        assert means[1] == pytest.approx(8.0, abs=0.5)
        np.testing.assert_allclose(gmm.weights_, 0.5, atol=0.05)

    def test_converges(self):
        rng = np.random.default_rng(1)
        gmm = GaussianMixture(n_components=2, seed=0).fit(two_blob_data(rng))
        assert gmm.converged_
        assert gmm.n_iter_ < 100

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            GaussianMixture(n_components=0)
        with pytest.raises(ValueError):
            GaussianMixture(n_components=2).fit(np.zeros(10))
        with pytest.raises(ValueError):
            GaussianMixture(n_components=5).fit(np.zeros((3, 2)))

    def test_variance_floor(self):
        """Duplicated points cannot produce zero variances."""
        x = np.tile([[1.0, 2.0]], (50, 1))
        gmm = GaussianMixture(n_components=1, reg_covar=1e-6).fit(x)
        assert np.all(gmm.variances_ >= 1e-6)


class TestPosteriors:
    def test_responsibilities_sum_to_one(self):
        rng = np.random.default_rng(2)
        x = two_blob_data(rng)
        gmm = GaussianMixture(n_components=3, seed=0).fit(x)
        resp = gmm.predict_proba(x)
        assert resp.shape == (len(x), 3)
        np.testing.assert_allclose(resp.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(resp >= 0)

    def test_outliers_get_low_posterior(self):
        """Rare patterns (far from all clusters) score lowest — the
        property Algorithm 2 relies on to find hotspot-like samples."""
        rng = np.random.default_rng(3)
        x = two_blob_data(rng)
        gmm = GaussianMixture(n_components=2, seed=0).fit(x)
        inliers = gmm.posterior(x)
        outlier = gmm.posterior(np.array([[4.0, 30.0]]))
        assert outlier[0] < np.percentile(inliers, 1)

    def test_posterior_in_unit_interval(self):
        rng = np.random.default_rng(4)
        x = two_blob_data(rng)
        gmm = GaussianMixture(n_components=2, seed=0).fit(x)
        post = gmm.posterior(x)
        assert post.min() >= 0.0
        assert post.max() <= 1.0

    def test_predict_hard_assignment(self):
        rng = np.random.default_rng(5)
        x = two_blob_data(rng, n=100)
        gmm = GaussianMixture(n_components=2, seed=0).fit(x)
        labels = gmm.predict(x)
        # samples from the same blob should nearly all share a label
        first, second = labels[:100], labels[100:]
        assert (first == first[0]).mean() > 0.95
        assert (second == second[0]).mean() > 0.95
        assert first[0] != second[0]

    def test_unfitted_raises(self):
        gmm = GaussianMixture(n_components=2)
        with pytest.raises(RuntimeError):
            gmm.score_samples(np.zeros((3, 2)))

    def test_score_samples_matches_density_ordering(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(300, 2))
        gmm = GaussianMixture(n_components=1, seed=0).fit(x)
        near = gmm.score_samples(np.array([[0.0, 0.0]]))
        far = gmm.score_samples(np.array([[5.0, 5.0]]))
        assert near[0] > far[0]


class TestFitErrorPaths:
    def test_nan_input_raises_fit_error(self):
        from repro.stats import FitError

        rng = np.random.default_rng(0)
        x = two_blob_data(rng)
        x[3, 1] = np.nan
        # inline validation raises FitError("non-finite"); under
        # REPRO_CHECK=strict the @contract intercepts first (ValueError)
        with pytest.raises((FitError, ValueError), match="non-finite|NaN"):
            GaussianMixture(n_components=2, seed=0).fit(x)

    def test_inf_input_raises_fit_error(self):
        from repro.stats import FitError

        rng = np.random.default_rng(1)
        x = two_blob_data(rng)
        x[0, 0] = np.inf
        # same strict-mode interception as the NaN case above
        with pytest.raises((FitError, ValueError), match="non-finite|NaN"):
            GaussianMixture(n_components=2, seed=0).fit(x)

    def test_fit_error_is_value_error(self):
        """Backward compatibility: callers catching ValueError on bad
        input keep working."""
        from repro.stats import FitError

        assert issubclass(FitError, ValueError)
        with pytest.raises(ValueError):
            GaussianMixture(n_components=2, seed=0).fit(
                np.full((30, 2), np.nan)
            )

    def test_too_few_samples_raises_fit_error(self):
        from repro.stats import FitError

        with pytest.raises(FitError, match="at least 5 samples"):
            GaussianMixture(n_components=5, seed=0).fit(np.zeros((3, 2)))

    def test_identical_rows_yield_finite_posteriors(self):
        """Pathological but representable input (every sample equal)
        must not silently produce NaN posteriors — either the variance
        floor carries the fit through, or FitError names the problem."""
        x = np.full((40, 3), 2.5)
        gmm = GaussianMixture(n_components=2, seed=0).fit(x)
        posterior = gmm.posterior(x)
        assert np.isfinite(posterior).all()
        assert np.isfinite(gmm.weights_).all()
