"""Tests for softmax utilities and the cross-entropy loss."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.gradcheck import numeric_gradient
from repro.nn.losses import SoftmaxCrossEntropy, log_softmax, softmax


class TestSoftmax:
    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        probs = softmax(rng.normal(size=(10, 4)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_shift_invariance(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))

    def test_extreme_logits_stable(self):
        probs = softmax(np.array([[1000.0, -1000.0]]))
        assert np.all(np.isfinite(probs))
        np.testing.assert_allclose(probs, [[1.0, 0.0]], atol=1e-12)

    def test_log_softmax_consistent(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(5, 3))
        np.testing.assert_allclose(
            log_softmax(logits), np.log(softmax(logits)), atol=1e-12
        )


@settings(max_examples=50, deadline=None)
@given(
    hnp.arrays(
        np.float64,
        hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=6),
        elements=st.floats(-50, 50),
    )
)
def test_softmax_is_probability_distribution(logits):
    """Property: softmax output is a valid probability distribution."""
    probs = softmax(logits)
    assert np.all(probs >= 0)
    np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-9)


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        assert loss(logits, np.array([0, 1])) == pytest.approx(0.0, abs=1e-10)

    def test_uniform_prediction_log_c(self):
        loss = SoftmaxCrossEntropy()
        value = loss(np.zeros((4, 3)), np.array([0, 1, 2, 0]))
        assert value == pytest.approx(np.log(3))

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(6, 3))
        labels = rng.integers(0, 3, size=6)
        loss = SoftmaxCrossEntropy()

        def objective():
            return loss(logits, labels)

        objective()
        analytic = loss.backward()
        numeric = numeric_gradient(objective, logits)
        np.testing.assert_allclose(analytic, numeric, atol=1e-7)

    def test_class_weights_gradient_matches_numeric(self):
        rng = np.random.default_rng(3)
        logits = rng.normal(size=(5, 2))
        labels = rng.integers(0, 2, size=5)
        loss = SoftmaxCrossEntropy(class_weights=np.array([1.0, 5.0]))

        def objective():
            return loss(logits, labels)

        objective()
        analytic = loss.backward()
        numeric = numeric_gradient(objective, logits)
        np.testing.assert_allclose(analytic, numeric, atol=1e-7)

    def test_class_weights_emphasize_minority(self):
        logits = np.array([[2.0, 0.0], [2.0, 0.0]])
        labels = np.array([0, 1])
        plain = SoftmaxCrossEntropy()(logits, labels)
        weighted = SoftmaxCrossEntropy(class_weights=np.array([1.0, 10.0]))(
            logits, labels
        )
        # the misclassified minority sample dominates the weighted loss
        assert weighted > plain

    def test_rejects_bad_shapes(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ValueError):
            loss(np.zeros((3,)), np.array([0]))
        with pytest.raises(ValueError):
            loss(np.zeros((3, 2)), np.array([0, 1]))
        with pytest.raises(ValueError):
            loss(np.zeros((2, 2)), np.array([0, 5]))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            SoftmaxCrossEntropy().backward()
