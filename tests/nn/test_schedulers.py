"""Tests for learning-rate schedulers."""

import numpy as np
import pytest

from repro.nn import SGD, CosineAnnealing, LinearWarmup, StepDecay


class TestStepDecay:
    def test_halves_every_step(self):
        opt = SGD(lr=1.0)
        sched = StepDecay(opt, step_size=2, gamma=0.5)
        rates = [sched.step() for _ in range(6)]
        assert rates == [1.0, 0.5, 0.5, 0.25, 0.25, 0.125]
        assert opt.lr == 0.125

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            StepDecay(SGD(lr=1.0), step_size=0)
        with pytest.raises(ValueError):
            StepDecay(SGD(lr=1.0), gamma=0.0)


class TestCosineAnnealing:
    def test_decays_to_min(self):
        opt = SGD(lr=1.0)
        sched = CosineAnnealing(opt, t_max=10, min_lr=0.01)
        rates = [sched.step() for _ in range(10)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))
        assert rates[-1] == pytest.approx(0.01)

    def test_holds_after_t_max(self):
        opt = SGD(lr=1.0)
        sched = CosineAnnealing(opt, t_max=4, min_lr=0.05)
        for _ in range(4):
            sched.step()
        assert sched.step() == pytest.approx(0.05)

    def test_halfway_is_midpoint(self):
        opt = SGD(lr=1.0)
        sched = CosineAnnealing(opt, t_max=8, min_lr=1e-9)
        for _ in range(4):
            rate = sched.step()
        assert rate == pytest.approx(0.5, abs=1e-6)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            CosineAnnealing(SGD(lr=1.0), t_max=0)
        with pytest.raises(ValueError):
            CosineAnnealing(SGD(lr=1.0), t_max=5, min_lr=0.0)


class TestLinearWarmup:
    def test_ramps_then_holds(self):
        opt = SGD(lr=1.0)
        sched = LinearWarmup(opt, warmup_epochs=4, start_factor=0.2)
        rates = [sched.step() for _ in range(6)]
        assert rates[0] == pytest.approx(0.4)
        assert rates[3] == pytest.approx(1.0)
        assert rates[5] == pytest.approx(1.0)
        assert all(a <= b + 1e-12 for a, b in zip(rates, rates[1:]))

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            LinearWarmup(SGD(lr=1.0), warmup_epochs=0)
        with pytest.raises(ValueError):
            LinearWarmup(SGD(lr=1.0), start_factor=0.0)


def test_scheduler_drives_training_rate():
    """Schedulers actually change optimizer updates."""
    opt = SGD(lr=1.0)
    sched = StepDecay(opt, step_size=1, gamma=0.1)
    param = np.array([0.0])
    sched.step()  # lr -> 0.1
    opt.step([(("p",), param, np.array([1.0]))])
    assert param[0] == pytest.approx(-0.1)
