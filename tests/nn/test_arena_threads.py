"""Cross-thread behaviour of :class:`WorkspaceArena`, exercised under
``REPRO_CHECK=strict`` with the interleaving harness forcing threads
through the buffer-request point together."""

import threading

import numpy as np
import pytest

from repro.analysis.interleave import InterleaveScheduler
from repro.nn.runtime import WorkspaceArena


@pytest.fixture(autouse=True)
def _strict(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK", "strict")


def test_threads_never_alias_each_others_scratch():
    """Two threads requesting the same slot at the same point must get
    *different* buffers (thread-local pools), and each thread's reuse
    must stay stable."""
    arena = WorkspaceArena()
    grabbed = {}

    def worker(name: str, fill: float):
        buf = arena.buffer("shared-slot", (64,), np.float64)
        buf[:] = fill
        again = arena.buffer("shared-slot", (64,), np.float64)
        grabbed[name] = (buf, again)

    sched = InterleaveScheduler(
        # interleave the two first requests point-for-point
        [
            ("a", "arena.buffer"),
            ("b", "arena.buffer"),
            ("a", "arena.buffer"),
            ("b", "arena.buffer"),
        ],
        timeout=10.0,
    )
    sched.run(
        {
            "a": lambda: worker("a", 1.0),
            "b": lambda: worker("b", 2.0),
        }
    )
    assert sched.errors == {}
    buf_a, again_a = grabbed["a"]
    buf_b, again_b = grabbed["b"]
    assert again_a is buf_a  # per-thread reuse
    assert again_b is buf_b
    assert buf_a is not buf_b  # no cross-thread aliasing
    np.testing.assert_array_equal(buf_a, 1.0)
    np.testing.assert_array_equal(buf_b, 2.0)


def test_arena_reuse_storm():
    """Many threads hammering overlapping slots: no exceptions, and
    every thread's view of its counters is self-consistent."""
    arena = WorkspaceArena()
    n_threads, n_rounds = 8, 100
    barrier = threading.Barrier(n_threads)
    errors = []
    per_thread_stats = {}

    def worker(seed: int) -> None:
        rng = np.random.default_rng(seed)
        barrier.wait()
        try:
            for _ in range(n_rounds):
                slot = int(rng.integers(0, 4))
                buf = arena.buffer(f"slot-{slot}", (16,), np.float32)
                buf[:] = seed
                assert (buf == seed).all(), "another thread wrote scratch"
            per_thread_stats[seed] = arena.stats()
        except BaseException as exc:  # noqa: BLE001 - collected below
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(seed,))
        for seed in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60.0)
    assert not any(t.is_alive() for t in threads)
    assert errors == []
    for seed, stats in per_thread_stats.items():
        # each thread allocated at most the 4 slots it touched, and
        # every other request was a hit on its private pool
        assert stats["misses"] == stats["buffers"] <= 4
        assert stats["hits"] + stats["misses"] == n_rounds
    # the main thread's pool is untouched by the storm
    assert arena.stats()["buffers"] == 0


def test_clear_is_per_thread():
    arena = WorkspaceArena()
    arena.buffer("k", (8,), np.float64)
    assert arena.stats()["buffers"] == 1

    cleared_elsewhere = threading.Event()

    def other():
        arena.buffer("k", (8,), np.float64)
        arena.clear()
        cleared_elsewhere.set()

    t = threading.Thread(target=other)
    t.start()
    t.join(timeout=10.0)
    assert cleared_elsewhere.is_set()
    # another thread's clear() cannot drop this thread's buffers
    assert arena.stats()["buffers"] == 1
