"""Integration tests for Sequential: training, tapping, serialization."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
    SoftmaxCrossEntropy,
    softmax,
)


def make_mlp(rng):
    return Sequential(
        [Dense(2, 16, rng=rng), ReLU(), Dense(16, 2, rng=rng)]
    )


def make_cnn(rng):
    return Sequential(
        [
            Conv2D(1, 4, kernel_size=3, pad=1, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(4 * 4 * 4, 8, rng=rng),
            ReLU(),
            Dense(8, 2, rng=rng),
        ]
    )


class TestSequentialBasics:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_num_parameters(self):
        rng = np.random.default_rng(0)
        net = make_mlp(rng)
        assert net.num_parameters() == 2 * 16 + 16 + 16 * 2 + 2

    def test_forward_to_taps_intermediate(self):
        rng = np.random.default_rng(0)
        net = make_mlp(rng)
        x = rng.normal(size=(3, 2))
        hidden = net.forward_to(x, 1)  # after ReLU
        assert hidden.shape == (3, 16)
        assert np.all(hidden >= 0)
        # negative index counts from the end
        np.testing.assert_allclose(net.forward_to(x, -1), net.forward(x))

    def test_forward_to_rejects_out_of_range(self):
        rng = np.random.default_rng(0)
        net = make_mlp(rng)  # 3 layers
        x = rng.normal(size=(2, 2))
        with pytest.raises(IndexError, match="out of range"):
            net.forward_to(x, 3)
        with pytest.raises(IndexError, match="out of range"):
            net.forward_to(x, -4)

    def test_tapped_forward_matches_forward_to(self):
        """forward(x, taps=[...]) returns the logits plus every tapped
        activation from one pass, equal to the per-layer probes."""
        rng = np.random.default_rng(2)
        net = make_cnn(rng)
        x = rng.normal(size=(3, 1, 8, 8))
        out, taps = net.forward(x, taps=[1, 5])
        np.testing.assert_array_equal(out, net.forward(x))
        np.testing.assert_array_equal(taps[1], net.forward_to(x, 1))
        np.testing.assert_array_equal(taps[5], net.forward_to(x, 5))

    def test_tapped_forward_keeps_negative_keys(self):
        rng = np.random.default_rng(3)
        net = make_mlp(rng)
        x = rng.normal(size=(2, 2))
        out, taps = net.forward(x, taps=[-2, -1])
        assert set(taps) == {-2, -1}
        np.testing.assert_array_equal(taps[-1], out)
        np.testing.assert_array_equal(taps[-2], net.forward_to(x, -2))

    def test_tapped_forward_rejects_out_of_range(self):
        rng = np.random.default_rng(4)
        net = make_mlp(rng)
        with pytest.raises(IndexError, match="out of range"):
            net.forward(rng.normal(size=(2, 2)), taps=[7])

    def test_predict_logits_batches_match_full(self):
        rng = np.random.default_rng(1)
        net = make_mlp(rng)
        x = rng.normal(size=(17, 2))
        np.testing.assert_allclose(
            net.predict_logits(x, batch_size=4), net.forward(x), atol=1e-12
        )


class TestTraining:
    def test_learns_xor(self):
        """An MLP must drive XOR training loss near zero — a full
        end-to-end check of forward, backward and optimizer wiring."""
        rng = np.random.default_rng(7)
        net = Sequential(
            [Dense(2, 16, rng=rng), ReLU(), Dense(16, 16, rng=rng), ReLU(),
             Dense(16, 2, rng=rng)]
        )
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.float64)
        y = np.array([0, 1, 1, 0])
        loss_fn = SoftmaxCrossEntropy()
        opt = Adam(lr=0.01)
        for _ in range(400):
            logits = net.forward(x, train=True)
            loss_fn(logits, y)
            net.backward(loss_fn.backward())
            opt.step(net.param_groups())
        final = loss_fn(net.forward(x), y)
        assert final < 0.05
        assert np.array_equal(net.forward(x).argmax(axis=1), y)

    def test_cnn_learns_simple_pattern(self):
        """A tiny CNN separates left-bright from right-bright images."""
        rng = np.random.default_rng(11)
        net = make_cnn(rng)
        n = 40
        x = rng.normal(scale=0.1, size=(n, 1, 8, 8))
        y = np.zeros(n, dtype=int)
        y[n // 2 :] = 1
        x[: n // 2, :, :, :4] += 1.0
        x[n // 2 :, :, :, 4:] += 1.0

        loss_fn = SoftmaxCrossEntropy()
        opt = Adam(lr=0.01)
        for _ in range(60):
            logits = net.forward(x, train=True)
            loss_fn(logits, y)
            net.backward(loss_fn.backward())
            opt.step(net.param_groups())
        acc = float((net.forward(x).argmax(axis=1) == y).mean())
        assert acc == 1.0


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        rng = np.random.default_rng(3)
        net = make_cnn(rng)
        x = rng.normal(size=(2, 1, 8, 8))
        expected = net.forward(x)
        path = tmp_path / "weights.npz"
        net.save(path)

        net2 = make_cnn(np.random.default_rng(999))  # different init
        net2.load(path)
        np.testing.assert_allclose(net2.forward(x), expected)

    def test_get_set_weights_roundtrip(self):
        rng = np.random.default_rng(4)
        net = make_mlp(rng)
        weights = net.get_weights()
        net2 = make_mlp(np.random.default_rng(5))
        net2.set_weights(weights)
        x = rng.normal(size=(3, 2))
        np.testing.assert_allclose(net.forward(x), net2.forward(x))

    def test_set_weights_rejects_shape_mismatch(self):
        rng = np.random.default_rng(6)
        net = make_mlp(rng)
        weights = net.get_weights()
        weights["0.weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError, match="shape mismatch"):
            net.set_weights(weights)

    def test_set_weights_rejects_missing_and_extra(self):
        rng = np.random.default_rng(8)
        net = make_mlp(rng)
        weights = net.get_weights()
        del weights["0.bias"]
        with pytest.raises(KeyError):
            net.set_weights(weights)
        weights = net.get_weights()
        weights["junk"] = np.zeros(1)
        with pytest.raises(KeyError, match="unused"):
            net.set_weights(weights)


class TestGradientFlow:
    def test_end_to_end_gradient_direction(self):
        """One SGD step on a batch must reduce the loss (small lr)."""
        rng = np.random.default_rng(9)
        net = make_mlp(rng)
        x = rng.normal(size=(16, 2))
        y = rng.integers(0, 2, size=16)
        loss_fn = SoftmaxCrossEntropy()
        before = loss_fn(net.forward(x, train=True), y)
        net.backward(loss_fn.backward())
        from repro.nn import SGD

        SGD(lr=0.05).step(net.param_groups())
        after = loss_fn(net.forward(x), y)
        assert after < before

    def test_softmax_of_logits_rows_normalized(self):
        rng = np.random.default_rng(10)
        net = make_mlp(rng)
        probs = softmax(net.forward(rng.normal(size=(5, 2))))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)
