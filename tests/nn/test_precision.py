"""Precision policy end-to-end: float32 fast path vs. float64 exact path.

Two classifiers with identical weights — one per mode — must agree to
float32 rounding on logits/probabilities/embeddings and produce identical
hard predictions on the paper-default CNN configuration; the fast mode's
public outputs stay float64 (the boundary cast), and exact mode stays
bit-identical to the seed kernels (covered by the tier-1 suite running
in default mode).
"""

import numpy as np
import pytest

from repro.engine.session import InferenceSession
from repro.model.classifier import HotspotClassifier


def _toy_data(rng, n=80, shape=(8, 12, 12)):
    x = rng.normal(size=(n,) + shape)
    y = (x.mean(axis=(1, 2, 3)) > 0).astype(np.int64)
    return x, y


def _twin(trained: HotspotClassifier, precision: str) -> HotspotClassifier:
    """A classifier in another precision mode sharing trained state."""
    twin = HotspotClassifier(
        input_shape=trained.input_shape,
        arch=trained.arch,
        lr=trained.lr,
        seed=trained.seed,
        precision=precision,
    )
    twin.network.set_weights(trained.network.get_weights())
    twin.scaler.mean_ = trained.scaler.mean_.copy()
    twin.scaler.std_ = trained.scaler.std_.copy()
    twin.scaler_version = trained.scaler_version
    twin._fitted = True
    return twin


@pytest.fixture(scope="module")
def trained():
    rng = np.random.default_rng(0)
    clf = HotspotClassifier(
        input_shape=(8, 12, 12), arch="cnn", seed=0, epochs=2
    )
    x, y = _toy_data(rng)
    clf.fit_scaler(x)
    clf.fit(x, y)
    return clf


@pytest.fixture(scope="module")
def fast(trained):
    return _twin(trained, "fast")


class TestFastParity:
    def test_fast_outputs_are_float64_at_the_boundary(self, trained, fast):
        rng = np.random.default_rng(5)
        x, _ = _toy_data(rng, n=32)
        logits = fast.predict_logits(x)
        assert logits.dtype == np.float64
        full = fast.predict_full(x)
        assert full.logits.dtype == np.float64
        assert full.embeddings.dtype == np.float64
        assert fast.embeddings(x).dtype == np.float64

    def test_logits_close_and_argmax_identical(self, trained, fast):
        rng = np.random.default_rng(6)
        x, _ = _toy_data(rng, n=64)
        exact_logits = trained.predict_logits(x)
        fast_logits = fast.predict_logits(x)
        np.testing.assert_allclose(
            fast_logits, exact_logits, rtol=1e-4, atol=1e-4
        )
        assert np.array_equal(
            fast_logits.argmax(axis=1), exact_logits.argmax(axis=1)
        )

    def test_probabilities_close(self, trained, fast):
        rng = np.random.default_rng(7)
        x, _ = _toy_data(rng, n=48)
        np.testing.assert_allclose(
            fast.predict_proba(x), trained.predict_proba(x),
            rtol=1e-4, atol=1e-5,
        )

    def test_embeddings_close(self, trained, fast):
        rng = np.random.default_rng(8)
        x, _ = _toy_data(rng, n=40)
        exact_full = trained.predict_full(x)
        fast_full = fast.predict_full(x)
        np.testing.assert_allclose(
            fast_full.embeddings, exact_full.embeddings,
            rtol=1e-3, atol=1e-4,
        )
        # the two fast-path embedding routes agree with each other too
        np.testing.assert_allclose(
            fast.embeddings(x), fast_full.embeddings, rtol=1e-5, atol=1e-6
        )

    def test_session_cache_holds_compute_dtype(self, trained, fast):
        rng = np.random.default_rng(9)
        x, _ = _toy_data(rng, n=24)
        exact_session = InferenceSession(trained, x)
        fast_session = InferenceSession(fast, x)
        assert exact_session.scaled.dtype == np.float64
        assert fast_session.scaled.dtype == np.float32
        np.testing.assert_allclose(
            fast_session.logits(), exact_session.logits(),
            rtol=1e-4, atol=1e-4,
        )

    def test_exact_mode_prepare_is_float64(self, trained):
        rng = np.random.default_rng(10)
        x, _ = _toy_data(rng, n=8)
        assert trained.policy.compute_dtype == np.float64
        assert trained.runtime.policy.is_exact

    def test_clone_untrained_preserves_precision(self, fast):
        clone = fast.clone_untrained()
        assert clone.precision == "fast"
        assert clone.policy.compute_dtype == np.float32

    def test_invalid_precision_rejected(self):
        with pytest.raises(ValueError, match="precision"):
            HotspotClassifier(input_shape=(8, 12, 12), precision="double")
