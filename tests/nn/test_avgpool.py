"""Tests for the AvgPool2D layer."""

import numpy as np
import pytest

from repro.nn import AvgPool2D
from repro.nn.gradcheck import check_layer_gradients


class TestAvgPool2D:
    def test_forward_known_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = AvgPool2D(2).forward(x)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_constant_invariant(self):
        x = np.full((2, 3, 6, 6), 7.0)
        np.testing.assert_allclose(AvgPool2D(3).forward(x), 7.0)

    def test_gradients(self):
        rng = np.random.default_rng(0)
        layer = AvgPool2D(2)
        x = rng.normal(size=(2, 3, 4, 4))
        check_layer_gradients(layer, x, rng)

    def test_gradient_distributes_evenly(self):
        layer = AvgPool2D(2)
        x = np.zeros((1, 1, 4, 4))
        layer.forward(x, train=True)
        grad = layer.backward(np.ones((1, 1, 2, 2)))
        np.testing.assert_allclose(grad, 0.25)

    def test_rejects_non_tiling(self):
        with pytest.raises(ValueError, match="tile"):
            AvgPool2D(3).forward(np.zeros((1, 1, 4, 4)))

    def test_rejects_bad_pool_size(self):
        with pytest.raises(ValueError):
            AvgPool2D(0)

    def test_output_dim(self):
        assert AvgPool2D(2).output_dim((8, 12, 12)) == (8, 6, 6)
