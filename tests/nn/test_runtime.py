"""Compute-core runtime: precision policy, workspace arena, fused kernels.

The refactor's correctness claims are bit-level: pooled im2col, fused
conv+ReLU and the maxpool inference fast path must produce ``array_equal``
outputs against the seed formulations, and the exact-mode network must be
bit-identical fused vs. unfused (forward, taps, and training gradients).
"""

import threading

import numpy as np
import pytest

from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential
from repro.nn.im2col import im2col
from repro.nn.runtime import (
    PRECISION_MODES,
    ComputeRuntime,
    PrecisionPolicy,
    WorkspaceArena,
    get_runtime,
    set_runtime,
    using_runtime,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestPrecisionPolicy:
    def test_modes(self):
        assert PRECISION_MODES == ("exact", "fast")
        assert PrecisionPolicy().mode == "exact"
        assert PrecisionPolicy("fast").mode == "fast"

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="precision mode"):
            PrecisionPolicy("float128")

    def test_compute_dtypes(self):
        assert PrecisionPolicy("exact").compute_dtype == np.float64
        assert PrecisionPolicy("fast").compute_dtype == np.float32
        assert PrecisionPolicy("exact").is_exact
        assert not PrecisionPolicy("fast").is_exact

    def test_compute_is_noop_in_exact_mode(self):
        x = np.ones(4)
        assert PrecisionPolicy("exact").compute(x) is x

    def test_compute_casts_in_fast_mode(self):
        out = PrecisionPolicy("fast").compute(np.ones(4))
        assert out.dtype == np.float32

    def test_boundary_restores_float64(self):
        policy = PrecisionPolicy("fast")
        out = policy.boundary(policy.compute(np.ones(4)))
        assert out.dtype == np.float64

    def test_equality_and_hash(self):
        assert PrecisionPolicy("fast") == PrecisionPolicy("fast")
        assert PrecisionPolicy("fast") != PrecisionPolicy("exact")
        assert hash(PrecisionPolicy("fast")) == hash(PrecisionPolicy("fast"))


class TestWorkspaceArena:
    def test_same_slot_reuses_buffer(self):
        arena = WorkspaceArena()
        a = arena.buffer("k", (3, 4), np.float64)
        b = arena.buffer("k", (3, 4), np.float64)
        assert a is b
        stats = arena.stats()
        assert stats["misses"] == 1 and stats["hits"] == 1

    def test_distinct_keys_shapes_dtypes_get_distinct_buffers(self):
        arena = WorkspaceArena()
        a = arena.buffer("k", (3, 4), np.float64)
        assert arena.buffer("other", (3, 4), np.float64) is not a
        assert arena.buffer("k", (4, 3), np.float64) is not a
        assert arena.buffer("k", (3, 4), np.float32) is not a
        assert arena.stats()["buffers"] == 4

    def test_zero_on_create_zeroes_only_once(self):
        arena = WorkspaceArena()
        a = arena.buffer("pad", (2, 2), np.float64, zero_on_create=True)
        assert np.array_equal(a, np.zeros((2, 2)))
        a[...] = 5.0
        b = arena.buffer("pad", (2, 2), np.float64, zero_on_create=True)
        assert b is a
        assert np.array_equal(b, np.full((2, 2), 5.0))

    def test_clear_drops_buffers_and_counters(self):
        arena = WorkspaceArena()
        arena.buffer("k", (2,), np.float64)
        arena.clear()
        stats = arena.stats()
        assert stats == {"hits": 0, "misses": 0, "buffers": 0, "bytes": 0}

    def test_threads_see_private_buffers(self):
        arena = WorkspaceArena()
        main_buf = arena.buffer("k", (8,), np.float64)
        seen = {}

        def worker(name):
            buf = arena.buffer("k", (8,), np.float64)
            buf[...] = hash(name) % 97
            seen[name] = (buf, arena.stats())

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        buffers = {id(main_buf)} | {id(buf) for buf, _ in seen.values()}
        assert len(buffers) == 5  # no sharing across threads
        for _, stats in seen.values():
            assert stats["misses"] == 1 and stats["hits"] == 0


class TestRuntimeResolution:
    def test_default_runtime_is_exact(self):
        assert get_runtime().policy.is_exact

    def test_using_runtime_scopes_override(self):
        fast = ComputeRuntime(policy=PrecisionPolicy("fast"))
        with using_runtime(fast) as active:
            assert active is fast
            assert get_runtime() is fast
        assert get_runtime().policy.is_exact

    def test_set_runtime_returns_previous(self):
        fast = ComputeRuntime(policy=PrecisionPolicy("fast"))
        assert set_runtime(fast) is None
        try:
            assert get_runtime() is fast
        finally:
            assert set_runtime(None) is fast
        assert get_runtime().policy.is_exact


def _seed_im2col(images, kh, kw, stride, pad):
    """The seed im2col formulation: np.pad + per-offset slice loop."""
    n, c, h, w = images.shape
    if pad:
        images = np.pad(
            images, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant"
        )
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    cols = np.empty((n * oh * ow, c * kh * kw))
    patch = np.empty((n, oh, ow, c, kh, kw))
    for i in range(kh):
        for j in range(kw):
            patch[:, :, :, :, i, j] = images[
                :, :, i : i + stride * oh : stride, j : j + stride * ow : stride
            ].transpose(0, 2, 3, 1)
    cols[...] = patch.reshape(n * oh * ow, c * kh * kw)
    return cols


class TestPooledIm2col:
    @pytest.mark.parametrize(
        "pad,stride,size", [(0, 1, 9), (1, 1, 9), (1, 2, 9), (2, 3, 8)]
    )
    def test_matches_seed_formulation(self, rng, pad, stride, size):
        images = rng.normal(size=(3, 2, size, size))
        got = im2col(images, 3, 3, stride=stride, pad=pad)
        want = _seed_im2col(images, 3, 3, stride, pad)
        assert np.array_equal(got, want)

    def test_pooled_path_reuses_buffers_across_batches(self, rng):
        runtime = ComputeRuntime()
        images = rng.normal(size=(2, 3, 8, 8))
        first = im2col(images, 3, 3, pad=1, runtime=runtime, key="t")
        second = im2col(
            rng.normal(size=(2, 3, 8, 8)), 3, 3, pad=1, runtime=runtime,
            key="t",
        )
        assert first is second  # same arena slot, overwritten in place
        assert runtime.arena.stats()["hits"] > 0

    def test_pooled_path_is_bit_identical(self, rng):
        runtime = ComputeRuntime()
        images = rng.normal(size=(2, 2, 7, 7))
        want = im2col(images, 3, 3, stride=2, pad=2)
        got = im2col(
            images, 3, 3, stride=2, pad=2, runtime=runtime, key="t"
        )
        assert np.array_equal(got, want)
        # a second, different batch through the same slot stays correct
        # (pad borders must still read zero after the first pass)
        other = rng.normal(size=(2, 2, 7, 7))
        got2 = im2col(
            other, 3, 3, stride=2, pad=2, runtime=runtime, key="t"
        )
        assert np.array_equal(got2, im2col(other, 3, 3, stride=2, pad=2))


class TestFusedKernels:
    def test_fused_conv_relu_matches_separate_layers(self, rng):
        conv = Conv2D(2, 4, kernel_size=3, pad=1, rng=rng)
        x = rng.normal(size=(3, 2, 8, 8))
        want = ReLU().forward(conv.forward(x))
        got = conv.forward(x, fuse_relu=True)
        assert np.array_equal(got, want)

    def test_fused_dense_relu_matches_separate_layers(self, rng):
        dense = Dense(6, 5, rng=rng)
        x = rng.normal(size=(4, 6))
        want = ReLU().forward(dense.forward(x))
        got = dense.forward(x, fuse_relu=True)
        assert np.array_equal(got, want)

    def test_relu_accept_fused_recovers_training_mask(self, rng):
        dense = Dense(5, 4, rng=rng)
        relu = ReLU()
        x = rng.normal(size=(6, 5))
        pre = dense.forward(x, train=True)
        relu.forward(pre.copy(), train=True)
        want_grad = relu.backward(np.ones((6, 4)))

        fused = dense.forward(x, train=True, fuse_relu=True)
        relu.accept_fused(fused, train=True)
        got_grad = relu.backward(np.ones((6, 4)))
        assert np.array_equal(got_grad, want_grad)

    def test_maxpool_inference_fast_path_matches_training_path(self, rng):
        pool = MaxPool2D(2)
        x = rng.normal(size=(3, 4, 8, 8))
        assert np.array_equal(
            pool.forward(x, train=False), pool.forward(x, train=True)
        )


def _make_net(rng, runtime=None):
    layers = [
        Conv2D(1, 3, kernel_size=3, pad=1, rng=rng), ReLU(),
        MaxPool2D(2), Flatten(),
        Dense(3 * 4 * 4, 10, rng=rng), ReLU(),
        Dense(10, 2, rng=rng),
    ]
    return Sequential(layers, runtime=runtime)


class TestFusedNetwork:
    """Sequential's fusion of Conv2D/Dense + ReLU pairs is transparent."""

    def _unfused_forward(self, net, x, taps=()):
        out = x
        tapped = {}
        for i, layer in enumerate(net.layers):
            out = layer.forward(out, train=False)
            if i in taps:
                tapped[i] = out
        return out, tapped

    def test_inference_bit_identical_to_per_layer_loop(self, rng):
        net = _make_net(rng)
        x = rng.normal(size=(5, 1, 8, 8))
        want, _ = self._unfused_forward(net, x)
        assert np.array_equal(net.forward(x, train=False), want)

    def test_taps_on_fused_relu_are_served(self, rng):
        net = _make_net(rng)
        x = rng.normal(size=(4, 1, 8, 8))
        want, want_taps = self._unfused_forward(net, x, taps=(1, 5))
        out, taps = net.forward(x, train=False, taps=(1, 5))
        assert np.array_equal(out, want)
        assert sorted(taps) == [1, 5]
        for i in (1, 5):
            assert np.array_equal(taps[i], want_taps[i])

    def test_pre_activation_tap_disables_fusion(self, rng):
        net = _make_net(rng)
        x = rng.normal(size=(4, 1, 8, 8))
        _, want_taps = self._unfused_forward(net, x, taps=(0, 4))
        _, taps = net.forward(x, train=False, taps=(0, 4))
        for i in (0, 4):
            assert np.array_equal(taps[i], want_taps[i])

    def test_training_gradients_match_unfused_replica(self, rng):
        # two identical nets; fused training backward must equal the
        # seed per-layer formulation bit for bit
        net_a = _make_net(np.random.default_rng(3))
        net_b = _make_net(np.random.default_rng(3))
        x = np.random.default_rng(9).normal(size=(4, 1, 8, 8))
        out_a = net_a.forward(x, train=True)

        out_b = x
        for layer in net_b.layers:
            out_b = layer.forward(out_b, train=True)
        assert np.array_equal(out_a, out_b)

        grad = np.random.default_rng(11).normal(size=out_a.shape)
        gin_a = net_a.backward(grad)
        gin_b = grad
        for layer in reversed(net_b.layers):
            gin_b = layer.backward(gin_b)
        assert np.array_equal(gin_a, gin_b)
        for la, lb in zip(net_a.layers, net_b.layers):
            for ga, gb in zip(la.grads(), lb.grads()):
                assert np.array_equal(ga, gb)

    def test_inference_does_not_overwrite_training_cols(self, rng):
        # train and inference use distinct arena slots: an inference
        # pass through the same conv must leave the arena buffer that
        # backs the cached training columns untouched
        runtime = ComputeRuntime()
        conv = Conv2D(1, 3, kernel_size=3, pad=1, rng=rng)
        x = rng.normal(size=(4, 1, 8, 8))
        conv.forward(x, train=True, runtime=runtime)
        cols_snapshot = conv._cols.copy()
        conv.forward(rng.normal(size=(4, 1, 8, 8)), train=False,
                     runtime=runtime)
        assert np.array_equal(
            runtime.buffer(
                (("conv2d", conv._ws_id, "train", 3, 1, 1), "cols"),
                cols_snapshot.shape, cols_snapshot.dtype,
            ),
            cols_snapshot,
        )

    def test_shared_runtime_arena_is_populated(self, rng):
        runtime = ComputeRuntime()
        net = _make_net(rng, runtime=runtime)
        x = rng.normal(size=(4, 1, 8, 8))
        first = net.forward(x, train=False)
        stats_after_first = runtime.arena.stats()
        assert stats_after_first["misses"] > 0
        second = net.forward(x, train=False)
        assert np.array_equal(first, second)
        assert runtime.arena.stats()["hits"] > stats_after_first["hits"]
