"""Gradient checks and behavioural tests for every layer."""

import numpy as np
import pytest

from repro.nn.gradcheck import check_layer_gradients
from repro.nn.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAveragePool2D,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Tanh,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestDense:
    def test_forward_shape_and_values(self, rng):
        layer = Dense(3, 2, rng=rng)
        layer.weight[...] = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        layer.bias[...] = np.array([0.5, -0.5])
        x = np.array([[1.0, 2.0, 3.0]])
        out = layer.forward(x)
        np.testing.assert_allclose(out, [[4.5, 4.5]])

    def test_gradients(self, rng):
        layer = Dense(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        check_layer_gradients(layer, x, rng)

    def test_rejects_wrong_input_width(self, rng):
        layer = Dense(4, 3, rng=rng)
        with pytest.raises(ValueError, match="expected"):
            layer.forward(np.zeros((2, 5)))

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            Dense(0, 3)
        with pytest.raises(ValueError):
            Dense(3, -1)

    def test_backward_requires_training_forward(self, rng):
        layer = Dense(2, 2, rng=rng)
        layer.forward(np.zeros((1, 2)), train=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))


class TestConv2D:
    def test_forward_shape(self, rng):
        layer = Conv2D(3, 8, kernel_size=3, pad=1, rng=rng)
        out = layer.forward(rng.normal(size=(2, 3, 12, 12)))
        assert out.shape == (2, 8, 12, 12)

    def test_forward_known_values(self, rng):
        """Averaging kernel on a constant image returns the constant."""
        layer = Conv2D(1, 1, kernel_size=3, pad=0, rng=rng)
        layer.weight[...] = np.full((1, 1, 3, 3), 1.0 / 9.0)
        layer.bias[...] = 0.0
        out = layer.forward(np.full((1, 1, 5, 5), 7.0))
        np.testing.assert_allclose(out, np.full((1, 1, 3, 3), 7.0))

    def test_gradients(self, rng):
        layer = Conv2D(2, 3, kernel_size=3, pad=1, rng=rng)
        x = rng.normal(size=(2, 2, 5, 5))
        check_layer_gradients(layer, x, rng)

    def test_gradients_strided(self, rng):
        layer = Conv2D(1, 2, kernel_size=2, stride=2, rng=rng)
        x = rng.normal(size=(2, 1, 4, 4))
        check_layer_gradients(layer, x, rng)

    def test_rejects_wrong_channels(self, rng):
        layer = Conv2D(3, 4, rng=rng)
        with pytest.raises(ValueError, match="expected"):
            layer.forward(np.zeros((1, 2, 8, 8)))

    def test_output_dim(self, rng):
        layer = Conv2D(3, 8, kernel_size=3, pad=1, rng=rng)
        assert layer.output_dim((3, 12, 12)) == (8, 12, 12)


class TestMaxPool2D:
    def test_forward_known_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = MaxPool2D(2).forward(x)
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_gradient_routes_to_argmax(self):
        layer = MaxPool2D(2)
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        layer.forward(x, train=True)
        grad = layer.backward(np.ones((1, 1, 2, 2)))
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_allclose(grad[0, 0], expected)

    def test_gradients_numeric(self, rng):
        # distinct values so argmax is stable under perturbation
        layer = MaxPool2D(2)
        x = rng.permutation(64).astype(np.float64).reshape(1, 4, 4, 4)
        check_layer_gradients(layer, x, rng)

    def test_multichannel_independence(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        out = MaxPool2D(2).forward(x)
        for c in range(3):
            single = MaxPool2D(2).forward(x[:, c : c + 1])
            np.testing.assert_allclose(out[:, c : c + 1], single)


class TestActivations:
    @pytest.mark.parametrize(
        "layer_cls", [ReLU, LeakyReLU, Sigmoid, Tanh], ids=lambda c: c.__name__
    )
    def test_gradients(self, layer_cls, rng):
        layer = layer_cls()
        x = rng.normal(size=(4, 6)) + 0.1  # avoid the ReLU kink at 0
        check_layer_gradients(layer, x, rng)

    def test_relu_clamps_negative(self):
        out = ReLU().forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_allclose(out, [[0.0, 0.0, 2.0]])

    def test_leaky_relu_slope(self):
        out = LeakyReLU(alpha=0.1).forward(np.array([[-10.0, 10.0]]))
        np.testing.assert_allclose(out, [[-1.0, 10.0]])

    def test_sigmoid_extreme_inputs_stable(self):
        out = Sigmoid().forward(np.array([[-1000.0, 1000.0]]))
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [[0.0, 1.0]], atol=1e-12)


class TestFlattenAndPool:
    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 5))
        out = layer.forward(x, train=True)
        assert out.shape == (2, 60)
        back = layer.backward(out)
        np.testing.assert_allclose(back, x)

    def test_gap_forward(self):
        x = np.ones((2, 3, 4, 4)) * np.arange(3).reshape(1, 3, 1, 1)
        out = GlobalAveragePool2D().forward(x)
        np.testing.assert_allclose(out, [[0, 1, 2], [0, 1, 2]])

    def test_gap_gradients(self, rng):
        layer = GlobalAveragePool2D()
        x = rng.normal(size=(2, 3, 3, 3))
        check_layer_gradients(layer, x, rng)


class TestDropout:
    def test_identity_at_inference(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = rng.normal(size=(10, 10))
        np.testing.assert_allclose(layer.forward(x, train=False), x)

    def test_preserves_expectation(self):
        layer = Dropout(0.3, rng=np.random.default_rng(0))
        x = np.ones((200, 200))
        out = layer.forward(x, train=True)
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)

    def test_mask_reused_in_backward(self):
        layer = Dropout(0.5, rng=np.random.default_rng(1))
        x = np.ones((4, 4))
        out = layer.forward(x, train=True)
        grad = layer.backward(np.ones((4, 4)))
        np.testing.assert_allclose(grad, out)


class TestBatchNorm:
    def test_normalizes_training_batch(self, rng):
        layer = BatchNorm(5)
        x = rng.normal(loc=3.0, scale=2.0, size=(64, 5))
        out = layer.forward(x, train=True)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-8)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-3)

    def test_gradients_2d(self, rng):
        layer = BatchNorm(3)
        x = rng.normal(size=(6, 3))
        check_layer_gradients(layer, x, rng, atol=1e-5, rtol=1e-3)

    def test_gradients_4d(self, rng):
        layer = BatchNorm(2)
        x = rng.normal(size=(3, 2, 4, 4))
        check_layer_gradients(layer, x, rng, atol=1e-5, rtol=1e-3)

    def test_running_stats_converge(self, rng):
        layer = BatchNorm(4, momentum=0.5)
        for _ in range(50):
            layer.forward(rng.normal(loc=2.0, size=(128, 4)), train=True)
        np.testing.assert_allclose(layer.running_mean, 2.0, atol=0.2)
        np.testing.assert_allclose(layer.running_var, 1.0, atol=0.2)

    def test_inference_uses_running_stats(self, rng):
        layer = BatchNorm(4)
        for _ in range(20):
            layer.forward(rng.normal(size=(64, 4)), train=True)
        x = rng.normal(size=(8, 4))
        out1 = layer.forward(x, train=False)
        out2 = layer.forward(x, train=False)
        np.testing.assert_allclose(out1, out2)
