"""Tests for im2col/col2im and output-size arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.im2col import col2im, conv_output_size, im2col


class TestConvOutputSize:
    def test_basic(self):
        assert conv_output_size(12, 3, 1, 1) == 12
        assert conv_output_size(12, 2, 2, 0) == 6
        assert conv_output_size(5, 5, 1, 0) == 1

    def test_rejects_non_tiling(self):
        with pytest.raises(ValueError, match="does not tile"):
            conv_output_size(5, 2, 2, 0)

    def test_rejects_kernel_too_large(self):
        with pytest.raises(ValueError, match="larger than"):
            conv_output_size(3, 5, 1, 0)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            conv_output_size(5, 0, 1, 0)
        with pytest.raises(ValueError):
            conv_output_size(5, 3, 0, 0)
        with pytest.raises(ValueError):
            conv_output_size(5, 3, 1, -1)


class TestIm2Col:
    def test_identity_kernel(self):
        """1x1 kernel with stride 1 reproduces the input pixels."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 4, 4))
        cols = im2col(x, 1, 1, 1, 0)
        assert cols.shape == (2 * 16, 3)
        expected = x.transpose(0, 2, 3, 1).reshape(-1, 3)
        np.testing.assert_allclose(cols, expected)

    def test_known_values(self):
        """2x2 kernel on a tiny image extracts the right windows."""
        x = np.arange(9, dtype=np.float64).reshape(1, 1, 3, 3)
        cols = im2col(x, 2, 2, 1, 0)
        assert cols.shape == (4, 4)
        np.testing.assert_allclose(cols[0], [0, 1, 3, 4])
        np.testing.assert_allclose(cols[3], [4, 5, 7, 8])

    def test_padding_adds_zero_border(self):
        x = np.ones((1, 1, 2, 2))
        cols = im2col(x, 3, 3, 1, 1)
        assert cols.shape == (4, 9)
        # the top-left receptive field covers five padded zeros
        assert cols[0].sum() == pytest.approx(4.0)

    def test_matches_direct_convolution(self):
        """im2col-based conv equals a naive quadruple-loop conv."""
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        cols = im2col(x, 3, 3, 1, 1)
        out = (cols @ w.reshape(4, -1).T).reshape(2, 6, 6, 4).transpose(0, 3, 1, 2)

        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        naive = np.zeros((2, 4, 6, 6))
        for n in range(2):
            for f in range(4):
                for i in range(6):
                    for j in range(6):
                        naive[n, f, i, j] = np.sum(
                            padded[n, :, i : i + 3, j : j + 3] * w[f]
                        )
        np.testing.assert_allclose(out, naive, atol=1e-10)


class TestCol2Im:
    def test_adjoint_property(self):
        """<im2col(x), y> == <x, col2im(y)> — exact adjointness."""
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 3, 6, 6))
        cols = im2col(x, 3, 3, 1, 1)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        back = col2im(y, x.shape, 3, 3, 1, 1)
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_non_overlapping_roundtrip(self):
        """With stride == kernel, col2im(im2col(x)) == x exactly."""
        rng = np.random.default_rng(3)
        x = rng.normal(size=(1, 2, 4, 4))
        cols = im2col(x, 2, 2, 2, 0)
        back = col2im(cols, x.shape, 2, 2, 2, 0)
        np.testing.assert_allclose(back, x)

    def test_overlap_counts(self):
        """col2im of ones counts how many windows cover each pixel."""
        x_shape = (1, 1, 3, 3)
        cols = np.ones((4, 4))  # 2x2 kernel, stride 1 -> 4 windows
        counts = col2im(cols, x_shape, 2, 2, 1, 0)
        expected = np.array([[1, 2, 1], [2, 4, 2], [1, 2, 1]], dtype=float)
        np.testing.assert_allclose(counts[0, 0], expected)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 3),
    c=st.integers(1, 3),
    size=st.sampled_from([4, 6, 8]),
    kernel=st.sampled_from([1, 2, 3]),
)
def test_adjoint_holds_for_random_shapes(n, c, size, kernel):
    """Property: adjointness holds across a range of shapes."""
    rng = np.random.default_rng(n * 100 + c * 10 + size + kernel)
    pad = kernel // 2
    x = rng.normal(size=(n, c, size, size))
    cols = im2col(x, kernel, kernel, 1, pad)
    y = rng.normal(size=cols.shape)
    lhs = float((cols * y).sum())
    rhs = float((x * col2im(y, x.shape, kernel, kernel, 1, pad)).sum())
    assert abs(lhs - rhs) < 1e-9 * max(1.0, abs(lhs))
