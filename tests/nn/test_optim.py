"""Tests for optimizers: exact update formulas and convergence."""

import numpy as np
import pytest

from repro.nn.optim import SGD, Adam, Momentum


def quadratic_groups(param):
    """Parameter groups for minimizing ``0.5 * ||p - 3||^2``."""
    grad = param - 3.0
    return [(("p",), param, grad)]


class TestSGD:
    def test_update_formula(self):
        param = np.array([1.0, 2.0])
        grad = np.array([0.5, -0.5])
        SGD(lr=0.1).step([(("p",), param, grad)])
        np.testing.assert_allclose(param, [0.95, 2.05])

    def test_converges_on_quadratic(self):
        param = np.zeros(3)
        opt = SGD(lr=0.2)
        for _ in range(100):
            opt.step(quadratic_groups(param))
        np.testing.assert_allclose(param, 3.0, atol=1e-6)

    def test_weight_decay_applies_to_matrices_only(self):
        opt = SGD(lr=1.0, weight_decay=0.1)
        mat = np.ones((2, 2))
        vec = np.ones(2)
        opt.step([(("m",), mat, np.zeros((2, 2))), (("v",), vec, np.zeros(2))])
        np.testing.assert_allclose(mat, 0.9)  # decayed
        np.testing.assert_allclose(vec, 1.0)  # biases not decayed

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)
        with pytest.raises(ValueError):
            SGD(lr=0.1, weight_decay=-1)


class TestMomentum:
    def test_accumulates_velocity(self):
        param = np.array([0.0])
        opt = Momentum(lr=0.1, momentum=0.9)
        grad = np.array([1.0])
        opt.step([(("p",), param, grad)])
        np.testing.assert_allclose(param, [-0.1])
        opt.step([(("p",), param, grad)])
        # v2 = 0.9*(-0.1) - 0.1 = -0.19
        np.testing.assert_allclose(param, [-0.29])

    def test_converges_on_quadratic(self):
        param = np.zeros(3)
        opt = Momentum(lr=0.05, momentum=0.9)
        for _ in range(400):
            opt.step(quadratic_groups(param))
        np.testing.assert_allclose(param, 3.0, atol=1e-5)

    def test_rejects_bad_momentum(self):
        with pytest.raises(ValueError):
            Momentum(momentum=1.0)


class TestAdam:
    def test_first_step_magnitude_is_lr(self):
        """Adam's bias-corrected first step is ~lr regardless of grad scale."""
        for scale in (1e-4, 1.0, 1e4):
            param = np.array([0.0])
            Adam(lr=0.01).step([(("p",), param, np.array([scale]))])
            assert param[0] == pytest.approx(-0.01, rel=1e-4)

    def test_converges_on_quadratic(self):
        param = np.zeros(3)
        opt = Adam(lr=0.1)
        for _ in range(500):
            opt.step(quadratic_groups(param))
        np.testing.assert_allclose(param, 3.0, atol=1e-4)

    def test_separate_state_per_slot(self):
        opt = Adam(lr=0.1)
        p1, p2 = np.array([0.0]), np.array([0.0])
        opt.step([(("a",), p1, np.array([1.0]))])
        opt.step([(("b",), p2, np.array([1.0]))])
        # both got a bias-corrected first step, not a second step
        assert p1[0] == pytest.approx(p2[0])

    def test_rejects_bad_betas(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
        with pytest.raises(ValueError):
            Adam(beta2=-0.1)
