"""Tests for optimizers: exact update formulas and convergence."""

import numpy as np
import pytest

from repro.nn.optim import (
    SGD,
    Adam,
    Momentum,
    decode_slot_key,
    encode_slot_key,
    flatten_state,
    unflatten_state,
)


def quadratic_groups(param):
    """Parameter groups for minimizing ``0.5 * ||p - 3||^2``."""
    grad = param - 3.0
    return [(("p",), param, grad)]


class TestSGD:
    def test_update_formula(self):
        param = np.array([1.0, 2.0])
        grad = np.array([0.5, -0.5])
        SGD(lr=0.1).step([(("p",), param, grad)])
        np.testing.assert_allclose(param, [0.95, 2.05])

    def test_converges_on_quadratic(self):
        param = np.zeros(3)
        opt = SGD(lr=0.2)
        for _ in range(100):
            opt.step(quadratic_groups(param))
        np.testing.assert_allclose(param, 3.0, atol=1e-6)

    def test_weight_decay_applies_to_matrices_only(self):
        opt = SGD(lr=1.0, weight_decay=0.1)
        mat = np.ones((2, 2))
        vec = np.ones(2)
        opt.step([(("m",), mat, np.zeros((2, 2))), (("v",), vec, np.zeros(2))])
        np.testing.assert_allclose(mat, 0.9)  # decayed
        np.testing.assert_allclose(vec, 1.0)  # biases not decayed

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)
        with pytest.raises(ValueError):
            SGD(lr=0.1, weight_decay=-1)


class TestMomentum:
    def test_accumulates_velocity(self):
        param = np.array([0.0])
        opt = Momentum(lr=0.1, momentum=0.9)
        grad = np.array([1.0])
        opt.step([(("p",), param, grad)])
        np.testing.assert_allclose(param, [-0.1])
        opt.step([(("p",), param, grad)])
        # v2 = 0.9*(-0.1) - 0.1 = -0.19
        np.testing.assert_allclose(param, [-0.29])

    def test_converges_on_quadratic(self):
        param = np.zeros(3)
        opt = Momentum(lr=0.05, momentum=0.9)
        for _ in range(400):
            opt.step(quadratic_groups(param))
        np.testing.assert_allclose(param, 3.0, atol=1e-5)

    def test_rejects_bad_momentum(self):
        with pytest.raises(ValueError):
            Momentum(momentum=1.0)


class TestAdam:
    def test_first_step_magnitude_is_lr(self):
        """Adam's bias-corrected first step is ~lr regardless of grad scale."""
        for scale in (1e-4, 1.0, 1e4):
            param = np.array([0.0])
            Adam(lr=0.01).step([(("p",), param, np.array([scale]))])
            assert param[0] == pytest.approx(-0.01, rel=1e-4)

    def test_converges_on_quadratic(self):
        param = np.zeros(3)
        opt = Adam(lr=0.1)
        for _ in range(500):
            opt.step(quadratic_groups(param))
        np.testing.assert_allclose(param, 3.0, atol=1e-4)

    def test_separate_state_per_slot(self):
        opt = Adam(lr=0.1)
        p1, p2 = np.array([0.0]), np.array([0.0])
        opt.step([(("a",), p1, np.array([1.0]))])
        opt.step([(("b",), p2, np.array([1.0]))])
        # both got a bias-corrected first step, not a second step
        assert p1[0] == pytest.approx(p2[0])

    def test_rejects_bad_betas(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
        with pytest.raises(ValueError):
            Adam(beta2=-0.1)


class TestOptimizerState:
    def test_sgd_is_stateless(self):
        opt = SGD(lr=0.1)
        param = np.array([0.0])
        opt.step([(("p",), param, np.array([1.0]))])
        assert opt.get_state() == {}
        opt.set_state({})  # no-op
        with pytest.raises(ValueError):
            opt.set_state({"velocity": {("p",): np.zeros(1)}})

    def test_momentum_roundtrip_resumes_trajectory(self):
        param_a = np.zeros(3)
        opt_a = Momentum(lr=0.05, momentum=0.9)
        for _ in range(10):
            opt_a.step(quadratic_groups(param_a))
        snapshot_param = param_a.copy()
        snapshot_state = opt_a.get_state()

        # diverge, then restore and replay: must match the uninterrupted run
        for _ in range(5):
            opt_a.step(quadratic_groups(param_a))
        reference = param_a.copy()

        param_b = snapshot_param.copy()
        opt_b = Momentum(lr=0.05, momentum=0.9)
        opt_b.set_state(snapshot_state)
        for _ in range(5):
            opt_b.step(quadratic_groups(param_b))
        np.testing.assert_array_equal(param_b, reference)

    def test_adam_roundtrip_resumes_trajectory(self):
        param_a = np.zeros(3)
        opt_a = Adam(lr=0.1)
        for _ in range(10):
            opt_a.step(quadratic_groups(param_a))
        snapshot_param = param_a.copy()
        snapshot_state = opt_a.get_state()
        for _ in range(5):
            opt_a.step(quadratic_groups(param_a))
        reference = param_a.copy()

        param_b = snapshot_param.copy()
        opt_b = Adam(lr=0.1)
        opt_b.set_state(snapshot_state)
        for _ in range(5):
            opt_b.step(quadratic_groups(param_b))
        np.testing.assert_array_equal(param_b, reference)

    def test_adam_state_snapshot_is_independent(self):
        """get_state copies buffers; later steps must not mutate it."""
        param = np.zeros(1)
        opt = Adam(lr=0.1)
        opt.step(quadratic_groups(param))
        state = opt.get_state()
        frozen_m = state["m"][("p",)].copy()
        opt.step(quadratic_groups(param))
        np.testing.assert_array_equal(state["m"][("p",)], frozen_m)

    def test_adam_rejects_inconsistent_slots(self):
        opt = Adam(lr=0.1)
        with pytest.raises(ValueError):
            opt.set_state(
                {"m": {("p",): np.zeros(1)}, "v": {}, "t": {("p",): 1}}
            )

    def test_momentum_rejects_unknown_slot_names(self):
        opt = Momentum(lr=0.1)
        with pytest.raises(ValueError):
            opt.set_state({"m": {("p",): np.zeros(1)}})


class TestStateFlattening:
    def test_roundtrip(self):
        state = {
            "m": {(0, "W"): np.arange(4.0), (2, "b"): np.zeros(2)},
            "t": {(0, "W"): 7, (2, "b"): 3},
        }
        flat = flatten_state(state)
        assert set(flat) == {"m/0.W", "m/2.b", "t/0.W", "t/2.b"}
        back = unflatten_state(flat)
        assert set(back) == {"m", "t"}
        np.testing.assert_array_equal(back["m"][(0, "W")], np.arange(4.0))
        assert int(back["t"][(2, "b")]) == 3

    def test_slot_key_codec(self):
        assert encode_slot_key((0, "W")) == "0.W"
        assert decode_slot_key("0.W") == (0, "W")
        assert decode_slot_key("p") == ("p",)
        # names containing dots survive: only the first dot splits
        assert decode_slot_key("3.state.mean") == (3, "state.mean")

    def test_unflatten_rejects_malformed_key(self):
        with pytest.raises(ValueError):
            unflatten_state({"no-slash": np.zeros(1)})
