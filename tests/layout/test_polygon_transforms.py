"""Tests for rectilinear polygons and orientation transforms."""

import numpy as np
import pytest

from repro.layout import (
    ORIENTATIONS,
    Clip,
    Rect,
    RectilinearPolygon,
    total_area,
    transform_clip,
    transform_rect,
    transform_rects,
)


class TestRectilinearPolygon:
    def test_rectangle_decomposes_to_itself(self):
        poly = RectilinearPolygon.from_rect(Rect(2, 3, 10, 8))
        rects = poly.to_rects()
        assert rects == [Rect(2, 3, 10, 8)]
        assert poly.area == 40

    def test_l_shape(self):
        # L-shape: 10x10 square missing its top-right 5x5 quadrant
        poly = RectilinearPolygon(
            ((0, 0), (10, 0), (10, 5), (5, 5), (5, 10), (0, 10))
        )
        rects = poly.to_rects()
        assert poly.area == 75
        assert total_area(rects) == 75
        box = poly.bbox
        assert box == Rect(0, 0, 10, 10)

    def test_u_shape(self):
        # U-shape: 12-wide, 10-tall with a 4-wide notch from the top
        poly = RectilinearPolygon(
            ((0, 0), (12, 0), (12, 10), (8, 10), (8, 4), (4, 4), (4, 10),
             (0, 10))
        )
        assert poly.area == 12 * 10 - 4 * 6

    def test_decomposition_is_disjoint(self):
        poly = RectilinearPolygon(
            ((0, 0), (10, 0), (10, 5), (5, 5), (5, 10), (0, 10))
        )
        rects = poly.to_rects()
        for i, a in enumerate(rects):
            for b in rects[i + 1 :]:
                assert not a.intersects(b)

    def test_rejects_too_few_vertices(self):
        with pytest.raises(ValueError, match="4 vertices"):
            RectilinearPolygon(((0, 0), (1, 0), (1, 1)))

    def test_rejects_diagonal_edge(self):
        with pytest.raises(ValueError, match="axis-parallel"):
            RectilinearPolygon(((0, 0), (5, 5), (5, 10), (0, 10)))

    def test_rejects_non_alternating(self):
        with pytest.raises(ValueError):
            RectilinearPolygon(
                ((0, 0), (5, 0), (10, 0), (10, 10), (5, 10), (0, 10))
            )

    def test_rejects_odd_vertex_count(self):
        with pytest.raises(ValueError, match="even"):
            RectilinearPolygon(
                ((0, 0), (10, 0), (10, 5), (5, 5), (5, 10))
            )


class TestTransformRect:
    SIZE = 100

    def test_identity(self):
        rect = Rect(10, 20, 30, 50)
        assert transform_rect(rect, self.SIZE, "identity") == rect

    def test_flip_x(self):
        rect = Rect(10, 20, 30, 50)
        assert transform_rect(rect, self.SIZE, "flip_x") == Rect(70, 20, 90, 50)

    def test_flip_y(self):
        rect = Rect(10, 20, 30, 50)
        assert transform_rect(rect, self.SIZE, "flip_y") == Rect(10, 50, 30, 80)

    def test_rot180_is_double_flip(self):
        rect = Rect(10, 20, 30, 50)
        double = transform_rect(
            transform_rect(rect, self.SIZE, "flip_x"), self.SIZE, "flip_y"
        )
        assert transform_rect(rect, self.SIZE, "rot180") == double

    def test_transpose_swaps_axes(self):
        rect = Rect(10, 20, 30, 50)
        assert transform_rect(rect, self.SIZE, "transpose") == Rect(
            20, 10, 50, 30
        )

    def test_all_orientations_preserve_area(self):
        rect = Rect(5, 10, 40, 22)
        for orientation in ORIENTATIONS:
            out = transform_rect(rect, self.SIZE, orientation)
            assert out.area == rect.area, orientation

    def test_rot90_four_times_is_identity(self):
        rect = Rect(5, 10, 40, 22)
        out = rect
        for _ in range(4):
            out = transform_rect(out, self.SIZE, "rot90")
        assert out == rect

    def test_unknown_orientation(self):
        with pytest.raises(ValueError, match="unknown orientation"):
            transform_rect(Rect(0, 0, 1, 1), 10, "spin")


class TestTransformClip:
    def make_clip(self):
        window = Rect(1000, 1000, 1100, 1100)
        return Clip(window, window.expanded(-20),
                    rects=[Rect(10, 20, 30, 40)], index=5)

    def test_transform_keeps_window_and_index(self):
        clip = self.make_clip()
        out = transform_clip(clip, "rot90")
        assert out.window == clip.window
        assert out.index == clip.index
        assert out.rects != clip.rects

    def test_rect_stays_inside_frame(self):
        clip = self.make_clip()
        frame = Rect(0, 0, 100, 100)
        for orientation in ORIENTATIONS:
            out = transform_clip(clip, orientation)
            assert frame.contains_rect(out.rects[0]), orientation

    def test_nonsquare_rejects_rotation(self):
        window = Rect(0, 0, 200, 100)
        clip = Clip(window, window.expanded(-10),
                    rects=[Rect(10, 10, 20, 20)])
        with pytest.raises(ValueError, match="square"):
            transform_clip(clip, "rot90")
        # flips along an axis are fine for non-square clips
        transform_clip(clip, "flip_x")

    def test_raster_consistency(self):
        """Transforming geometry then rasterizing equals rasterizing
        then flipping the image (for flips)."""
        clip = self.make_clip()
        base = clip.raster(50, antialias=False)
        flipped_geo = transform_clip(clip, "flip_y").raster(50, antialias=False)
        np.testing.assert_array_equal(flipped_geo, base[::-1, :])
        flipped_x = transform_clip(clip, "flip_x").raster(50, antialias=False)
        np.testing.assert_array_equal(flipped_x, base[:, ::-1])
