"""Tests for geometry primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout.geometry import Rect, bounding_box, merge_touching, total_area

coords = st.integers(0, 1000)


@st.composite
def rects(draw):
    x0 = draw(coords)
    y0 = draw(coords)
    w = draw(st.integers(1, 200))
    h = draw(st.integers(1, 200))
    return Rect(x0, y0, x0 + w, y0 + h)


class TestRect:
    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 0, 10)
        with pytest.raises(ValueError):
            Rect(0, 0, 10, 0)
        with pytest.raises(ValueError):
            Rect(5, 5, 4, 10)

    def test_basic_properties(self):
        r = Rect(1, 2, 4, 8)
        assert r.width == 3
        assert r.height == 6
        assert r.area == 18
        assert r.center == (2.5, 5.0)

    def test_touching_edges_do_not_intersect(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(10, 0, 20, 10)
        assert not a.intersects(b)
        assert a.intersection(b) is None

    def test_intersection_values(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(5, 5, 15, 15)
        assert a.intersection(b) == Rect(5, 5, 10, 10)

    def test_contains_point_half_open(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains_point(0, 0)
        assert not r.contains_point(10, 10)
        assert r.contains_point(9.999, 5)

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(2, 2, 8, 8))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect(2, 2, 11, 8))

    def test_shifted_and_expanded(self):
        r = Rect(0, 0, 10, 10)
        assert r.shifted(5, -5) == Rect(5, -5, 15, 5)
        assert r.expanded(2) == Rect(-2, -2, 12, 12)
        assert r.expanded(-3) == Rect(3, 3, 7, 7)


class TestBoundingBox:
    def test_single(self):
        r = Rect(1, 2, 3, 4)
        assert bounding_box([r]) == r

    def test_multiple(self):
        box = bounding_box([Rect(0, 0, 5, 5), Rect(10, -2, 12, 3)])
        assert box == Rect(0, -2, 12, 5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])


class TestTotalArea:
    def test_empty(self):
        assert total_area([]) == 0

    def test_disjoint_sums(self):
        assert total_area([Rect(0, 0, 2, 2), Rect(10, 10, 12, 12)]) == 8

    def test_full_overlap_counts_once(self):
        r = Rect(0, 0, 10, 10)
        assert total_area([r, r, r]) == 100

    def test_partial_overlap(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(5, 0, 15, 10)
        assert total_area([a, b]) == 150

    def test_cross_shape(self):
        horizontal = Rect(0, 4, 12, 8)
        vertical = Rect(4, 0, 8, 12)
        assert total_area([horizontal, vertical]) == 12 * 4 * 2 - 16


@settings(max_examples=60, deadline=None)
@given(st.lists(rects(), min_size=1, max_size=6))
def test_total_area_bounds(rect_list):
    """Property: union area is bounded by max single area and sum of areas."""
    union = total_area(rect_list)
    assert max(r.area for r in rect_list) <= union <= sum(r.area for r in rect_list)
    box = bounding_box(rect_list)
    assert union <= box.area


class TestMergeTouching:
    def test_merges_abutting_same_row(self):
        merged = merge_touching([Rect(0, 0, 5, 10), Rect(5, 0, 9, 10)])
        assert merged == [Rect(0, 0, 9, 10)]

    def test_keeps_disjoint(self):
        rect_list = [Rect(0, 0, 5, 10), Rect(6, 0, 9, 10)]
        assert merge_touching(rect_list) == rect_list

    def test_different_rows_untouched(self):
        rect_list = [Rect(0, 0, 5, 10), Rect(5, 1, 9, 11)]
        assert sorted(merge_touching(rect_list)) == sorted(rect_list)

    def test_merge_preserves_area(self):
        rect_list = [Rect(0, 0, 5, 10), Rect(3, 0, 9, 10), Rect(20, 0, 25, 10)]
        assert total_area(merge_touching(rect_list)) == total_area(rect_list)
