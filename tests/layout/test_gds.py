"""Tests for the GDSII stream reader/writer."""

import struct

import numpy as np
import pytest

from repro.layout import Layout, Rect, load_gds, save_gds
from repro.layout.gds import _parse_real8, _real8


@pytest.fixture
def simple_layout():
    rects = [Rect(0, 0, 100, 50), Rect(200, 300, 450, 400)]
    return Layout(rects, die=Rect(0, 0, 1000, 1000), tech_nm=28,
                  name="gdstest")


class TestReal8:
    @pytest.mark.parametrize("value", [0.0, 1.0, 1e-9, 1e-3, 0.5, 123.456])
    def test_roundtrip(self, value):
        assert _parse_real8(_real8(value)) == pytest.approx(value, rel=1e-12)

    def test_negative(self):
        assert _parse_real8(_real8(-2.5)) == pytest.approx(-2.5)


class TestRoundTrip:
    def test_rect_geometry_preserved(self, simple_layout, tmp_path):
        path = tmp_path / "chip.gds"
        save_gds(simple_layout, path)
        loaded = load_gds(path, tech_nm=28)
        assert sorted(loaded.rects) == sorted(simple_layout.rects)
        assert loaded.name == "gdstest"

    def test_synthetic_chip_roundtrip(self, tmp_path):
        from repro.data.synth import EUV_RULES, generate_layout

        layout = generate_layout(EUV_RULES, 4, 4, 0.3, seed=2, name="chip4")
        path = tmp_path / "chip4.gds"
        save_gds(layout, path)
        loaded = load_gds(path, tech_nm=7)
        assert sorted(loaded.rects) == sorted(layout.rects)
        assert loaded.tech_nm == 7

    def test_file_is_binary_gdsii(self, simple_layout, tmp_path):
        path = tmp_path / "chip.gds"
        save_gds(simple_layout, path)
        data = path.read_bytes()
        # HEADER record: length 6, type 0x00, dtype 0x02, version 600
        length, rtype, dtype, version = struct.unpack_from(">HBBh", data, 0)
        assert (length, rtype, dtype, version) == (6, 0x00, 0x02, 600)
        # stream ends with ENDLIB
        assert data[-2:] == struct.pack(">BB", 0x04, 0x00)

    def test_polygon_boundary_decomposed(self, tmp_path):
        """An L-shaped BOUNDARY is decomposed into rects on load."""
        layout = Layout([Rect(0, 0, 10, 10)], die=Rect(0, 0, 20, 20),
                        name="poly")
        path = tmp_path / "poly.gds"
        save_gds(layout, path)
        # splice in an L-shaped boundary by hand
        data = bytearray(path.read_bytes())
        # build an extra BOUNDARY..ENDEL before ENDSTR+ENDLIB (last 8 bytes)
        ring = ((0, 0), (30, 0), (30, 15), (15, 15), (15, 30), (0, 30), (0, 0))
        xy = b"".join(struct.pack(">ii", x, y) for x, y in ring)
        extra = (
            struct.pack(">HBB", 4, 0x08, 0x00)
            + struct.pack(">HBBh", 6, 0x0D, 0x02, 1)
            + struct.pack(">HBBh", 6, 0x0E, 0x02, 0)
            + struct.pack(">HBB", 4 + len(xy), 0x10, 0x03) + xy
            + struct.pack(">HBB", 4, 0x11, 0x00)
        )
        data[-8:-8] = extra
        path.write_bytes(bytes(data))
        loaded = load_gds(path)
        from repro.layout import total_area

        # union area: the 10x10 rect lies inside the 675 nm^2 L-shape
        assert total_area(loaded.rects) == 30 * 30 - 15 * 15
        assert len(loaded.rects) == 3  # original rect + 2 slab rects

    def test_litho_equivalence_through_gds(self, tmp_path):
        """A clip cut from a GDS-roundtripped chip simulates identically."""
        from repro.data.synth import EUV_RULES, generate_layout
        from repro.layout import extract_clip_grid
        from repro.litho import LithoSimulator

        layout = generate_layout(EUV_RULES, 4, 4, 0.5, seed=5,
                                 target_ratio=0.2)
        path = tmp_path / "rt.gds"
        save_gds(layout, path)
        loaded = load_gds(path, tech_nm=7)
        loaded = Layout(loaded.rects, die=layout.die, tech_nm=7,
                        name=loaded.name)

        sim = LithoSimulator.for_tech(7, grid=96)
        original = extract_clip_grid(layout, EUV_RULES.clip_size,
                                     EUV_RULES.core_margin, drop_empty=False)
        reloaded = extract_clip_grid(loaded, EUV_RULES.clip_size,
                                     EUV_RULES.core_margin, drop_empty=False)
        labels_a = [sim.is_hotspot(c) for c in original]
        labels_b = [sim.is_hotspot(c) for c in reloaded]
        assert labels_a == labels_b


class TestErrors:
    def test_truncated_stream(self, tmp_path):
        path = tmp_path / "bad.gds"
        path.write_bytes(b"\x00\x01")
        with pytest.raises(ValueError, match="too short"):
            load_gds(path)

    def test_missing_endlib(self, tmp_path, simple_layout):
        path = tmp_path / "bad.gds"
        save_gds(simple_layout, path)
        path.write_bytes(path.read_bytes()[:-4])  # chop ENDLIB
        with pytest.raises(ValueError, match="ENDLIB"):
            load_gds(path)

    def test_no_geometry(self, tmp_path):
        from repro.layout.gds import _NODATA, _record, _HEADER, _ENDLIB, _INT2
        import struct as _s

        path = tmp_path / "empty.gds"
        path.write_bytes(
            _record(_HEADER, _INT2, _s.pack(">h", 600))
            + _record(_ENDLIB, _NODATA)
        )
        with pytest.raises(ValueError, match="no BOUNDARY"):
            load_gds(path)

    def test_corrupt_record_length(self, tmp_path):
        path = tmp_path / "bad.gds"
        path.write_bytes(struct.pack(">HBB", 2, 0x00, 0x02))
        with pytest.raises(ValueError, match="corrupt"):
            load_gds(path)
