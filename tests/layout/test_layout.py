"""Tests for the Layout container, clips, raster and GLP I/O."""

import numpy as np
import pytest

from repro.layout import (
    Clip,
    Layout,
    Rect,
    extract_clip,
    extract_clip_grid,
    load_layout,
    rasterize,
    save_layout,
)


@pytest.fixture
def simple_layout():
    rects = [
        Rect(100, 100, 300, 200),
        Rect(500, 500, 700, 550),
        Rect(150, 150, 250, 400),
    ]
    return Layout(rects, die=Rect(0, 0, 1000, 1000), tech_nm=28, name="t")


class TestLayoutQuery:
    def test_query_finds_overlapping(self, simple_layout):
        hits = simple_layout.query(Rect(0, 0, 400, 400))
        assert len(hits) == 2

    def test_query_empty_region(self, simple_layout):
        assert simple_layout.query(Rect(800, 800, 900, 900)) == []

    def test_query_matches_brute_force(self):
        rng = np.random.default_rng(0)
        rects = []
        for _ in range(200):
            x0 = int(rng.integers(0, 5000))
            y0 = int(rng.integers(0, 5000))
            rects.append(Rect(x0, y0, x0 + int(rng.integers(10, 400)),
                              y0 + int(rng.integers(10, 400))))
        layout = Layout(rects, die=Rect(0, 0, 6000, 6000))
        for _ in range(20):
            x0 = int(rng.integers(0, 4000))
            y0 = int(rng.integers(0, 4000))
            window = Rect(x0, y0, x0 + 800, y0 + 800)
            expected = sorted(r for r in rects if r.intersects(window))
            assert sorted(layout.query(window)) == expected

    def test_query_clipped_rebases(self, simple_layout):
        clipped = simple_layout.query_clipped(Rect(100, 100, 400, 400))
        box = Rect(0, 0, 300, 300)
        assert all(box.contains_rect(r) for r in clipped)

    def test_density(self):
        layout = Layout([Rect(0, 0, 50, 100)], die=Rect(0, 0, 100, 100))
        assert layout.density(Rect(0, 0, 100, 100)) == pytest.approx(0.5)

    def test_empty_layout_requires_die(self):
        with pytest.raises(ValueError):
            Layout([])
        layout = Layout([], die=Rect(0, 0, 10, 10))
        assert len(layout) == 0


class TestBucketBoundaries:
    """Windows that straddle bucket-grid cells must behave exactly like
    brute force — the bucket index is an accelerator, not a filter."""

    def bucketed_layout(self, rects, die, bucket_nm=100):
        return Layout(rects, die=die, bucket_nm=bucket_nm)

    def test_window_straddling_bucket_edge(self):
        # bucket_nm=100: the rect lives entirely in bucket (0, 0), the
        # window spans buckets (0..1, 0..1)
        layout = self.bucketed_layout(
            [Rect(10, 10, 90, 90)], Rect(0, 0, 400, 400)
        )
        window = Rect(50, 50, 150, 150)
        assert layout.query(window) == [Rect(10, 10, 90, 90)]
        clipped = layout.query_clipped(window)
        assert clipped == [Rect(0, 0, 40, 40)]

    def test_rect_exactly_on_bucket_boundary(self):
        # a rect ending at x=100 (the bucket edge) must not leak into
        # bucket 1, and one starting at 100 must not appear in bucket 0
        layout = self.bucketed_layout(
            [Rect(0, 0, 100, 100), Rect(100, 0, 200, 100)],
            Rect(0, 0, 400, 400),
        )
        left = layout.query_clipped(Rect(0, 0, 100, 100))
        assert left == [Rect(0, 0, 100, 100)]
        right = layout.query_clipped(Rect(100, 0, 200, 100))
        assert right == [Rect(0, 0, 100, 100)]

    def test_touching_window_edge_is_not_overlap(self):
        # half-open rects: sharing an edge with the window is no overlap
        layout = self.bucketed_layout(
            [Rect(100, 100, 200, 200)], Rect(0, 0, 400, 400)
        )
        assert layout.query_clipped(Rect(0, 0, 100, 100)) == []
        assert layout.query_clipped(Rect(200, 200, 300, 300)) == []
        assert layout.density(Rect(0, 0, 100, 100)) == 0.0

    def test_straddling_matches_brute_force(self):
        rng = np.random.default_rng(3)
        rects = []
        for _ in range(300):
            x0 = int(rng.integers(0, 2000))
            y0 = int(rng.integers(0, 2000))
            rects.append(Rect(x0, y0, x0 + int(rng.integers(5, 250)),
                              y0 + int(rng.integers(5, 250))))
        layout = self.bucketed_layout(rects, Rect(0, 0, 2500, 2500),
                                      bucket_nm=128)
        # windows deliberately aligned to and offset from the 128-nm
        # bucket pitch, including one-past-boundary positions
        for x0 in (0, 127, 128, 129, 255, 256, 1000):
            window = Rect(x0, x0, x0 + 300, x0 + 300)
            expected = sorted(
                r.intersection(window).shifted(-window.x0, -window.y0)
                for r in rects if r.intersects(window)
            )
            assert sorted(layout.query_clipped(window)) == expected

    def test_window_outside_die_is_empty(self):
        layout = self.bucketed_layout(
            [Rect(10, 10, 90, 90)], Rect(0, 0, 400, 400)
        )
        assert layout.query_clipped(Rect(1000, 1000, 1200, 1200)) == []
        assert layout.density(Rect(1000, 1000, 1200, 1200)) == 0.0

    def test_density_of_straddling_window(self):
        # one rect half inside the window, crossing a bucket edge
        layout = self.bucketed_layout(
            [Rect(50, 0, 150, 100)], Rect(0, 0, 400, 400)
        )
        assert layout.density(Rect(0, 0, 100, 100)) == pytest.approx(0.5)
        assert layout.density(Rect(100, 0, 200, 100)) == pytest.approx(0.5)

    def test_density_overlap_counted_once(self):
        layout = self.bucketed_layout(
            [Rect(0, 0, 100, 100), Rect(0, 0, 100, 100)],
            Rect(0, 0, 200, 200),
        )
        assert layout.density(Rect(0, 0, 200, 200)) == pytest.approx(0.25)

    def test_zero_area_window_rejected(self):
        # degenerate windows cannot be constructed at all (half-open
        # Rects require positive extent), so density can never divide
        # by a zero window area
        with pytest.raises(ValueError):
            Rect(50, 50, 50, 150)
        with pytest.raises(ValueError):
            Rect(50, 50, 150, 50)


class TestClipExtraction:
    def test_extract_clip_core_centered(self, simple_layout):
        clip = extract_clip(simple_layout, Rect(0, 0, 600, 600), core_margin=150)
        assert clip.core == Rect(150, 150, 450, 450)
        assert clip.core_local() == Rect(150, 150, 450, 450)

    def test_extract_clip_rejects_huge_margin(self, simple_layout):
        with pytest.raises(ValueError, match="margin"):
            extract_clip(simple_layout, Rect(0, 0, 600, 600), core_margin=300)

    def test_grid_covers_die(self, simple_layout):
        clips = extract_clip_grid(
            simple_layout, clip_size=500, core_margin=100, drop_empty=False
        )
        # die 1000 wide, step 300: windows at 0 and 300 fit fully per axis?
        # x + 500 <= 1000 for x in {0, 300, 450(no)} -> x in {0, 300}
        assert len(clips) == 4
        assert all(c.window.width == 500 for c in clips)

    def test_grid_drop_empty(self, simple_layout):
        kept = extract_clip_grid(simple_layout, clip_size=500, core_margin=100)
        assert all(c.rects for c in kept)

    def test_clip_indices_sequential(self, simple_layout):
        clips = extract_clip_grid(simple_layout, clip_size=500, core_margin=100)
        assert [c.index for c in clips] == list(range(len(clips)))


class TestGeometryHash:
    def test_identical_patterns_hash_equal(self):
        rects = [Rect(10, 10, 50, 90), Rect(60, 10, 90, 90)]
        a = Clip(Rect(0, 0, 100, 100), Rect(20, 20, 80, 80), rects=list(rects))
        b = Clip(Rect(500, 500, 600, 600), Rect(520, 520, 580, 580),
                 rects=list(rects))
        assert a.geometry_hash() == b.geometry_hash()

    def test_different_patterns_hash_differently(self):
        a = Clip(Rect(0, 0, 100, 100), Rect(20, 20, 80, 80),
                 rects=[Rect(10, 10, 50, 90)])
        b = Clip(Rect(0, 0, 100, 100), Rect(20, 20, 80, 80),
                 rects=[Rect(10, 10, 51, 90)])
        assert a.geometry_hash() != b.geometry_hash()

    def test_quantum_absorbs_jitter(self):
        a = Clip(Rect(0, 0, 100, 100), Rect(20, 20, 80, 80),
                 rects=[Rect(10, 10, 50, 90)])
        b = Clip(Rect(0, 0, 100, 100), Rect(20, 20, 80, 80),
                 rects=[Rect(11, 10, 51, 90)])
        assert a.geometry_hash(quantum=8) == b.geometry_hash(quantum=8)
        assert a.geometry_hash(quantum=1) != b.geometry_hash(quantum=1)


class TestRasterize:
    def test_full_cover(self):
        image = rasterize([Rect(0, 0, 100, 100)], (100, 100), 10)
        np.testing.assert_allclose(image, 1.0)

    def test_half_cover_exact(self):
        image = rasterize([Rect(0, 0, 50, 100)], (100, 100), 10)
        np.testing.assert_allclose(image[:, :5], 1.0)
        np.testing.assert_allclose(image[:, 5:], 0.0)

    def test_subpixel_coverage_fraction(self):
        # one rect covering a quarter of the single pixel
        image = rasterize([Rect(0, 0, 5, 5)], (10, 10), 1)
        np.testing.assert_allclose(image, 0.25)

    def test_total_flux_matches_area(self):
        """Antialiased raster conserves area for non-overlapping rects."""
        rects = [Rect(3, 3, 47, 17), Rect(60, 50, 95, 95)]
        image = rasterize(rects, (100, 100), 20)
        pixel_area = (100 / 20) ** 2
        assert image.sum() * pixel_area == pytest.approx(
            sum(r.area for r in rects)
        )

    def test_binary_mode(self):
        image = rasterize([Rect(0, 0, 50, 100)], (100, 100), 10, antialias=False)
        assert set(np.unique(image)) <= {0.0, 1.0}

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            rasterize([], (0, 100), 10)
        with pytest.raises(ValueError):
            rasterize([], (100, 100), 0)

    def test_orientation_row_is_y(self):
        """A rect at low y paints low rows."""
        image = rasterize([Rect(0, 0, 100, 10)], (100, 100), 10)
        assert image[0].sum() > 0
        assert image[-1].sum() == 0


class TestGlpIO:
    def test_roundtrip(self, tmp_path, simple_layout):
        path = tmp_path / "chip.glp"
        save_layout(simple_layout, path)
        loaded = load_layout(path)
        assert loaded.name == simple_layout.name
        assert loaded.tech_nm == simple_layout.tech_nm
        assert loaded.die == simple_layout.die
        assert sorted(loaded.rects) == sorted(simple_layout.rects)

    def test_rejects_missing_magic(self, tmp_path):
        path = tmp_path / "bad.glp"
        path.write_text("RECT 0 0 1 1\n")
        with pytest.raises(ValueError, match="not a GLP"):
            load_layout(path)

    def test_rejects_missing_end(self, tmp_path):
        path = tmp_path / "bad.glp"
        path.write_text("GLP 1\nDIE 0 0 10 10\n")
        with pytest.raises(ValueError, match="missing END"):
            load_layout(path)

    def test_rejects_garbage_line(self, tmp_path):
        path = tmp_path / "bad.glp"
        path.write_text("GLP 1\nWIBBLE 1 2\nEND\n")
        with pytest.raises(ValueError, match="WIBBLE"):
            load_layout(path)

    def test_error_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.glp"
        path.write_text("GLP 1\nRECT 0 0 x 1\nEND\n")
        with pytest.raises(ValueError, match=":2:"):
            load_layout(path)

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "ok.glp"
        path.write_text(
            "GLP 1\n# a comment\n\nDIE 0 0 10 10\nRECT 1 1 5 5\nEND\n"
        )
        layout = load_layout(path)
        assert len(layout) == 1
