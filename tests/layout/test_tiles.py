"""Tests for the tiled lazy clip lattice (repro.layout.tiles)."""

import pytest

from repro.data.synth import DUV_RULES, generate_layout
from repro.layout import Layout, Rect, TileGrid, extract_clip_grid
from repro.layout.tiles import EMPTY_TILE_DIGEST


@pytest.fixture(scope="module")
def chip():
    return generate_layout(
        DUV_RULES, tiles_x=5, tiles_y=4, stress_probability=0.4, seed=11
    )


@pytest.fixture(scope="module")
def grid(chip):
    return TileGrid.for_layout(
        chip, DUV_RULES.clip_size, DUV_RULES.core_margin, tile_clips=2
    )


class TestLattice:
    def test_counts_match_eager_grid(self, chip, grid):
        eager = extract_clip_grid(
            chip, DUV_RULES.clip_size, DUV_RULES.core_margin,
            drop_empty=False,
        )
        assert grid.n_windows == len(eager)

    def test_windows_and_indices_match_eager_grid(self, chip, grid):
        eager = {
            clip.index: clip
            for clip in extract_clip_grid(
                chip, DUV_RULES.clip_size, DUV_RULES.core_margin,
                drop_empty=False,
            )
        }
        seen = {}
        for tile in grid.tiles():
            for clip in grid.iter_clips(chip, tile, drop_empty=False):
                assert clip.index not in seen
                seen[clip.index] = clip
        assert seen.keys() == eager.keys()
        for index, clip in seen.items():
            assert clip.window == eager[index].window
            assert clip.content_key() == eager[index].content_key()

    def test_tiles_partition_the_lattice(self, grid):
        covered = set()
        for tile in grid.tiles():
            for index, _ in grid.iter_windows(tile):
                assert index not in covered
                covered.add(index)
        assert covered == set(range(grid.n_windows))

    def test_ragged_edge_tiles_are_clamped(self, grid):
        # 5x4 pattern tiles with tile_clips=2 leaves ragged edges
        last = grid.tile(grid.n_tile_cols - 1, grid.n_tile_rows - 1)
        assert last.row1 == grid.n_rows
        assert last.col1 == grid.n_cols
        assert 0 < last.n_windows <= grid.tile_clips ** 2

    def test_window_outside_lattice_raises(self, grid):
        with pytest.raises(IndexError):
            grid.window(grid.n_rows, 0)
        with pytest.raises(IndexError):
            grid.tile(grid.n_tile_cols, 0)

    def test_die_smaller_than_clip_has_no_windows(self):
        grid = TileGrid(Rect(0, 0, 500, 500), clip_size=1200,
                        core_margin=300)
        assert grid.n_windows == 0
        assert grid.n_tiles == 0
        assert grid.tiles() == []

    def test_invalid_geometry_rejected(self):
        die = Rect(0, 0, 5000, 5000)
        with pytest.raises(ValueError):
            TileGrid(die, clip_size=1200, core_margin=600)
        with pytest.raises(ValueError):
            TileGrid(die, clip_size=1200, core_margin=300, tile_clips=0)
        with pytest.raises(ValueError):
            TileGrid(die, clip_size=1200, core_margin=300, step=-5)


class TestDigests:
    def test_digest_is_deterministic(self, chip, grid):
        tile = grid.tile(0, 0)
        assert grid.tile_digest(chip, tile) == grid.tile_digest(chip, tile)

    def test_empty_tile_digests_to_sentinel(self):
        layout = Layout([], die=Rect(0, 0, 3000, 3000), name="blank")
        grid = TileGrid.for_layout(layout, 1200, 300, tile_clips=2)
        for tile in grid.tiles():
            assert grid.tile_digest(layout, tile) == EMPTY_TILE_DIGEST

    def test_manifest_covers_every_tile(self, chip, grid):
        manifest = grid.manifest(chip)
        assert set(manifest) == {tile.key for tile in grid.tiles()}

    def test_local_edit_changes_only_local_digests(self, chip, grid):
        manifest = grid.manifest(chip)
        # drop a rect inside the region of tile (0, 0) only: the core
        # of the first window, clear of any margin overlap with others
        target = grid.tile(0, 0)
        first_core = grid.window(0, 0).expanded(-DUV_RULES.core_margin)
        edited = Layout(
            list(chip.rects)
            + [Rect(first_core.x0 + 10, first_core.y0 + 10,
                    first_core.x0 + 80, first_core.y0 + 80)],
            die=chip.die,
            tech_nm=chip.tech_nm,
            name=chip.name,
        )
        after = grid.manifest(edited)
        changed = {key for key in manifest if manifest[key] != after[key]}
        assert target.key in changed
        # the edit sits well inside one window; only tiles whose region
        # touches it may change, which here is the one corner tile
        assert changed == {target.key}

    def test_index_is_part_of_the_digest(self):
        # identical geometry at different lattice positions must not
        # collide: the digest folds the clip index, not just content
        rect = [Rect(110, 110, 400, 300)]
        a = Layout(rect, die=Rect(0, 0, 1800, 1200), name="a")
        grid = TileGrid.for_layout(a, 1200, 300, tile_clips=1)
        digests = [grid.tile_digest(a, t) for t in grid.tiles()]
        non_empty = [d for d in digests if d != EMPTY_TILE_DIGEST]
        assert len(set(non_empty)) == len(non_empty)

    def test_fingerprint_identifies_the_lattice(self, chip):
        a = TileGrid.for_layout(chip, 1200, 300, tile_clips=2)
        b = TileGrid.for_layout(chip, 1200, 300, tile_clips=2)
        c = TileGrid.for_layout(chip, 1200, 300, tile_clips=4)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()
