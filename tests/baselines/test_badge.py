"""Tests for BADGE and cluster-diversity selectors."""

import numpy as np
import pytest

from repro.baselines import (
    badge_gradient_embedding,
    badge_selector,
    cluster_selector,
    make_config,
)
from repro.core import SelectionContext


def make_context(rng, n=40, k=8):
    p1 = rng.uniform(0, 1, n)
    probs = np.column_stack([1 - p1, p1])
    emb = rng.normal(size=(n, 6))
    emb /= np.maximum(np.linalg.norm(emb, axis=1, keepdims=True), 1e-12)
    return SelectionContext(
        calibrated_probs=probs,
        raw_probs=probs,
        embeddings=emb,
        k=k,
        rng=rng,
    )


class TestGradientEmbedding:
    def test_shape(self):
        rng = np.random.default_rng(0)
        probs = np.column_stack([rng.random(5), rng.random(5)])
        probs /= probs.sum(axis=1, keepdims=True)
        emb = rng.normal(size=(5, 7))
        grads = badge_gradient_embedding(probs, emb)
        assert grads.shape == (5, 14)

    def test_confident_prediction_small_gradient(self):
        """Gradient norm shrinks as the prediction approaches one-hot."""
        emb = np.ones((2, 4))
        confident = np.array([[0.99, 0.01], [0.5, 0.5]])
        grads = badge_gradient_embedding(confident, emb)
        norms = np.linalg.norm(grads, axis=1)
        assert norms[0] < norms[1]

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            badge_gradient_embedding(np.zeros((3, 3)), np.zeros((3, 4)))
        with pytest.raises(ValueError):
            badge_gradient_embedding(np.zeros((3, 2)), np.zeros((2, 4)))


class TestBadgeSelector:
    def test_selects_k_unique(self):
        rng = np.random.default_rng(1)
        ctx = make_context(rng)
        chosen = badge_selector(ctx)
        assert len(chosen) == ctx.k
        assert len(set(chosen.tolist())) == ctx.k

    def test_prefers_uncertain_over_confident(self):
        """With identical embeddings, BADGE picks the uncertain ones."""
        rng = np.random.default_rng(2)
        n = 20
        p1 = np.full(n, 0.01)
        p1[:5] = 0.5  # only the first five are uncertain
        probs = np.column_stack([1 - p1, p1])
        emb = np.tile(rng.normal(size=6), (n, 1))
        emb += rng.normal(scale=1e-3, size=emb.shape)
        ctx = SelectionContext(probs, probs, emb, k=3,
                               rng=np.random.default_rng(3))
        chosen = set(badge_selector(ctx).tolist())
        # the k-means++ seed point is random, but the D^2-spread picks
        # must come from the high-gradient (uncertain) group
        assert len(chosen & set(range(5))) >= 2

    def test_empty_query(self):
        ctx = SelectionContext(np.zeros((0, 2)), np.zeros((0, 2)),
                               np.zeros((0, 4)), 3, np.random.default_rng(0))
        assert badge_selector(ctx).shape == (0,)


class TestClusterSelector:
    def test_selects_k_unique(self):
        rng = np.random.default_rng(4)
        ctx = make_context(rng)
        chosen = cluster_selector(ctx)
        assert len(chosen) == ctx.k
        assert len(set(chosen.tolist())) == ctx.k

    def test_covers_clusters(self):
        """One pick per well-separated cluster."""
        rng = np.random.default_rng(5)
        a = rng.normal([5, 0], 0.05, size=(10, 2))
        b = rng.normal([-5, 0], 0.05, size=(10, 2))
        emb = np.vstack([a, b])
        p1 = rng.uniform(0.3, 0.7, 20)
        probs = np.column_stack([1 - p1, p1])
        ctx = SelectionContext(probs, probs, emb, k=2,
                               rng=np.random.default_rng(6))
        chosen = cluster_selector(ctx)
        groups = {int(i) // 10 for i in chosen}
        assert groups == {0, 1}

    def test_picks_most_uncertain_per_cluster(self):
        emb = np.tile([[1.0, 0.0]], (5, 1))
        p1 = np.array([0.1, 0.2, 0.5, 0.3, 0.05])
        probs = np.column_stack([1 - p1, p1])
        ctx = SelectionContext(probs, probs, emb, k=1,
                               rng=np.random.default_rng(7))
        chosen = cluster_selector(ctx)
        assert chosen.tolist() == [2]


class TestMakeConfigNewMethods:
    def test_badge_and_cluster_registered(self):
        assert make_config("badge").method_name == "badge"
        assert make_config("cluster").method_name == "cluster"
