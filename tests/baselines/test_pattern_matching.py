"""Tests for the pattern-matching baselines."""

import numpy as np
import pytest

from repro.baselines import PM_MODES, PatternMatcher, run_pattern_matching
from repro.baselines.pattern_matching import core_features


class TestPatternMatcher:
    def test_rejects_unknown_mode(self, iccad16_2_small):
        with pytest.raises(ValueError, match="mode"):
            PatternMatcher("a99", iccad16_2_small)

    def test_exact_miss_then_hit(self, iccad16_2_small):
        matcher = PatternMatcher("exact", iccad16_2_small)
        assert matcher.match(0) is None
        matcher.insert(0, 1)
        assert matcher.match(0) == 1
        assert matcher.library_size == 1

    def test_exact_matches_same_core_hash(self, iccad16_2_small):
        hashes = iccad16_2_small.meta["core_hashes"]
        values, counts = np.unique(hashes, return_counts=True)
        dup = values[counts > 1]
        if len(dup) == 0:
            pytest.skip("no duplicated core patterns in fixture")
        same = np.flatnonzero(hashes == dup[0])
        matcher = PatternMatcher("exact", iccad16_2_small)
        matcher.insert(int(same[0]), 0)
        assert matcher.match(int(same[1])) == 0

    def test_fuzzy_matches_near_duplicates(self, iccad16_2_small):
        """a95 must match jittered recurrences of the same pattern."""
        features = core_features(iccad16_2_small)
        unit = features / np.maximum(
            np.linalg.norm(features, axis=1, keepdims=True), 1e-12
        )
        sims = unit @ unit[0]
        sims[0] = -1
        partner = int(np.argmax(sims))
        if sims[partner] < 0.95:
            pytest.skip("clip 0 has no 0.95-similar partner")
        matcher = PatternMatcher("a95", iccad16_2_small)
        matcher.insert(0, 1)
        assert matcher.match(partner) == 1

    def test_e2_matches_only_close_codes(self, iccad16_2_small):
        matcher = PatternMatcher("e2", iccad16_2_small)
        matcher.insert(0, 0)
        assert matcher.match(0) == 0  # distance 0 to itself


class TestRunPatternMatching:
    @pytest.mark.parametrize("mode", PM_MODES)
    def test_all_modes_run(self, iccad16_2_small, mode):
        result = run_pattern_matching(iccad16_2_small, mode)
        assert result.method == f"pm-{mode}"
        assert 0.0 <= result.accuracy <= 1.0
        assert 0 < result.litho

    def test_exact_is_perfectly_accurate(self, iccad16_2_small):
        """Exact matching inherits only exact labels: 100% accuracy."""
        result = run_pattern_matching(iccad16_2_small, "exact")
        assert result.accuracy == 1.0
        assert result.false_alarms == 0

    def test_exact_is_most_expensive(self, iccad16_2_small):
        """The Table II cost ordering: exact > e2 > a95 > a90."""
        litho = {
            mode: run_pattern_matching(iccad16_2_small, mode).litho
            for mode in PM_MODES
        }
        assert litho["exact"] > litho["e2"] > litho["a95"] >= litho["a90"]

    def test_fuzzy_can_trade_accuracy_for_cost(self, iccad12_small):
        """Loose matching is cheaper but loses hotspots (paper's PM-a90
        column)."""
        exact = run_pattern_matching(iccad12_small, "exact")
        loose = run_pattern_matching(iccad12_small, "a90")
        assert loose.litho < exact.litho // 2
        assert loose.accuracy < exact.accuracy

    def test_litho_equation(self, iccad16_2_small):
        result = run_pattern_matching(iccad16_2_small, "a95")
        assert result.litho == result.n_train + result.false_alarms

    def test_deterministic_per_seed(self, iccad16_2_small):
        a = run_pattern_matching(iccad16_2_small, "a95", seed=1)
        b = run_pattern_matching(iccad16_2_small, "a95", seed=1)
        assert a.accuracy == b.accuracy
        assert a.litho == b.litho
