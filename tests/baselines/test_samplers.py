"""Tests for QP, TS, random and k-centre baseline selectors."""

import numpy as np
import pytest

from repro.baselines import (
    METHODS,
    kcenter_selector,
    make_config,
    project_capped_simplex,
    qp_selector,
    random_selector,
    solve_qp_relaxation,
    ts_selector,
)
from repro.core import FrameworkConfig, SelectionContext


def make_context(rng, n=40, k=8):
    p1 = rng.uniform(0, 1, n)
    calibrated = np.column_stack([1 - p1, p1])
    p1_raw = np.clip(p1 + rng.normal(scale=0.1, size=n), 0, 1)
    raw = np.column_stack([1 - p1_raw, p1_raw])
    emb = rng.normal(size=(n, 8))
    emb /= np.maximum(np.linalg.norm(emb, axis=1, keepdims=True), 1e-12)
    return SelectionContext(
        calibrated_probs=calibrated,
        raw_probs=raw,
        embeddings=emb,
        k=k,
        rng=rng,
    )


class TestProjection:
    def test_satisfies_constraints(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            v = rng.normal(size=20) * 3
            x = project_capped_simplex(v, 5)
            assert np.all(x >= -1e-9)
            assert np.all(x <= 1 + 1e-9)
            assert x.sum() == pytest.approx(5.0, abs=1e-6)

    def test_identity_when_feasible(self):
        v = np.array([0.5, 0.5, 0.5, 0.5])
        x = project_capped_simplex(v, 2.0)
        np.testing.assert_allclose(x, v, atol=1e-6)

    def test_is_euclidean_projection(self):
        """Projected point is closer to v than random feasible points."""
        rng = np.random.default_rng(1)
        v = rng.normal(size=10)
        x = project_capped_simplex(v, 3)
        for _ in range(50):
            z = rng.dirichlet(np.ones(10)) * 3
            z = np.clip(z, 0, 1)
            if abs(z.sum() - 3) > 1e-6:
                continue
            assert np.sum((x - v) ** 2) <= np.sum((z - v) ** 2) + 1e-6

    def test_rejects_infeasible_k(self):
        with pytest.raises(ValueError):
            project_capped_simplex(np.zeros(3), 5)


class TestQPRelaxation:
    def test_prefers_uncertain_when_kernel_uniform(self):
        n = 10
        kernel = np.eye(n) * 1e-6
        uncertainty = np.arange(n, dtype=np.float64)
        x = solve_qp_relaxation(kernel, uncertainty, k=3)
        top = set(np.argsort(-x)[:3].tolist())
        assert top == {7, 8, 9}

    def test_kernel_penalizes_redundancy(self):
        """Two identical samples should not both enter the batch when a
        dissimilar alternative exists."""
        emb = np.array(
            [[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]]
        )
        kernel = emb @ emb.T * 4.0
        uncertainty = np.array([1.0, 1.0, 0.6])
        x = solve_qp_relaxation(kernel, uncertainty, k=2)
        top = set(np.argsort(-x)[:2].tolist())
        assert 2 in top  # the orthogonal sample is selected

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            solve_qp_relaxation(np.zeros((3, 2)), np.zeros(3), 1)
        with pytest.raises(ValueError):
            solve_qp_relaxation(np.zeros((3, 3)), np.zeros(2), 1)


class TestSelectors:
    def test_qp_selector_returns_k_unique(self):
        rng = np.random.default_rng(2)
        ctx = make_context(rng)
        chosen = qp_selector(ctx)
        assert len(chosen) == ctx.k
        assert len(set(chosen.tolist())) == ctx.k

    def test_qp_selector_empty(self):
        rng = np.random.default_rng(3)
        ctx = SelectionContext(
            calibrated_probs=np.zeros((0, 2)),
            raw_probs=np.zeros((0, 2)),
            embeddings=np.zeros((0, 4)),
            k=5,
            rng=rng,
        )
        assert qp_selector(ctx).shape == (0,)

    def test_ts_selector_picks_top_uncertainty(self):
        rng = np.random.default_rng(4)
        ctx = make_context(rng)
        from repro.core import hotspot_aware_uncertainty

        chosen = ts_selector(ctx)
        scores = hotspot_aware_uncertainty(ctx.calibrated_probs)
        cutoff = np.sort(scores)[-ctx.k]
        assert np.all(scores[chosen] >= cutoff - 1e-12)

    def test_random_selector_uses_rng(self):
        ctx_a = make_context(np.random.default_rng(5))
        ctx_b = make_context(np.random.default_rng(5))
        np.testing.assert_array_equal(
            random_selector(ctx_a), random_selector(ctx_b)
        )

    def test_kcenter_spreads_selection(self):
        rng = np.random.default_rng(6)
        emb = np.vstack(
            [np.tile([1.0, 0.0], (20, 1)), [[0.0, 1.0]], [[0.7, 0.7]]]
        )
        ctx = SelectionContext(
            calibrated_probs=np.full((22, 2), 0.5),
            raw_probs=np.full((22, 2), 0.5),
            embeddings=emb,
            k=3,
            rng=rng,
        )
        chosen = set(kcenter_selector(ctx).tolist())
        assert 20 in chosen  # the orthogonal outlier


class TestMakeConfig:
    def test_all_methods(self):
        base = FrameworkConfig(seed=3, k_batch=7)
        for method in METHODS:
            cfg = make_config(method, base)
            assert cfg.method_name == method
            assert cfg.seed == 3
            assert cfg.k_batch == 7

    def test_qp_discards_query_rest(self):
        assert make_config("qp").discard_query_rest is True
        assert make_config("ours").discard_query_rest is False

    def test_ours_uses_entropy_sampling(self):
        assert make_config("ours").selector is None

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            make_config("alphafold")
