"""Property-style invariants of the pattern-matching flow."""

import numpy as np
import pytest

from repro.baselines import run_pattern_matching


class TestScanOrderInvariants:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_exact_accuracy_always_perfect(self, iccad16_2_small, seed):
        """Exact matching inherits only exact labels, so accuracy is 1.0
        under any scan order."""
        result = run_pattern_matching(iccad16_2_small, "exact", seed=seed)
        assert result.accuracy == 1.0
        assert result.false_alarms == 0

    def test_exact_litho_is_order_invariant(self, iccad16_2_small):
        """The exact library size equals the number of distinct core
        patterns, independent of scan order."""
        lithos = {
            run_pattern_matching(iccad16_2_small, "exact", seed=s).litho
            for s in range(4)
        }
        assert len(lithos) == 1
        hashes = iccad16_2_small.meta["core_hashes"]
        assert lithos.pop() == len(np.unique(hashes))

    @pytest.mark.parametrize("mode", ["a95", "a90", "e2"])
    def test_fuzzy_litho_bounded_by_exact(self, iccad16_2_small, mode):
        """Any fuzzy criterion matches at least as often as exact, so
        its library (and litho bill) can only be smaller."""
        exact = run_pattern_matching(iccad16_2_small, "exact", seed=0)
        fuzzy = run_pattern_matching(iccad16_2_small, mode, seed=0)
        assert fuzzy.n_train <= exact.n_train

    def test_accounting_identity(self, iccad16_2_small):
        """hits + FA + litho-simulated == total clips, for every mode."""
        n = len(iccad16_2_small)
        for mode in ("exact", "a95", "a90", "e2"):
            result = run_pattern_matching(iccad16_2_small, mode, seed=1)
            inherited = n - result.n_train
            # every inherited clip is a hit, an FA, or an inherited
            # non-hotspot (not individually reported); bounds must hold
            assert result.hits + result.false_alarms <= inherited
            assert result.litho == result.n_train + result.false_alarms
