"""Tests for the experiment harness utilities."""

import numpy as np
import pytest

from repro.bench import (
    BENCH_SETTINGS,
    EVAL_BENCHMARKS,
    base_framework_config,
    format_table,
    run_method,
)
from repro.bench.harness import bench_scale_factor, bench_seeds
from repro.core.metrics import PSHDResult


class TestSettings:
    def test_all_eval_benchmarks_configured(self):
        for name in EVAL_BENCHMARKS:
            assert name in BENCH_SETTINGS

    def test_base_config_matches_setting(self):
        cfg = base_framework_config("iccad16-3", seed=5)
        setting = BENCH_SETTINGS["iccad16-3"]
        assert cfg.n_query == setting.n_query
        assert cfg.k_batch == setting.k_batch
        assert cfg.seed == 5

    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        monkeypatch.setenv("REPRO_BENCH_SEEDS", "7")
        assert bench_scale_factor() == 0.5
        assert bench_seeds() == 7

    def test_seeds_floor_at_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SEEDS", "0")
        assert bench_seeds() == 1


class TestRunMethod:
    def test_pm_dispatch(self, iccad16_2_small):
        result = run_method(iccad16_2_small, "pm-exact", "iccad16-2")
        assert isinstance(result, PSHDResult)
        assert result.method == "pm-exact"

    def test_al_dispatch(self, iccad16_2_small):
        from repro.core import FrameworkConfig

        cfg = FrameworkConfig(
            n_query=60, k_batch=10, n_iterations=2, init_train=24,
            val_size=20, arch="mlp", epochs_initial=8, epochs_update=3,
            seed=0,
        )
        result = run_method(iccad16_2_small, "ours", "iccad16-2", config=cfg)
        assert result.method == "ours"
        assert result.litho > 0

    def test_unknown_method_raises(self, iccad16_2_small):
        with pytest.raises(ValueError):
            run_method(iccad16_2_small, "magic", "iccad16-2")


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.123]])
        lines = text.splitlines()
        assert lines[0].endswith("bb")
        assert set(lines[1]) == {"-"}
        assert "2.50" in lines[2]
        assert "0.12" in lines[3]

    def test_handles_strings_and_ints(self):
        text = format_table(["x"], [["hello"], [42]])
        assert "hello" in text
        assert "42" in text
