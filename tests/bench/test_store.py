"""Tests for the JSON result store."""

import pytest

from repro.bench import ResultStore
from repro.core.metrics import PSHDResult


def make_result(benchmark="iccad16-2", method="ours", acc=0.95, litho=100):
    return PSHDResult(
        benchmark=benchmark,
        method=method,
        accuracy=acc,
        litho=litho,
        hits=3,
        false_alarms=1,
        n_train=80,
        n_val=19,
        hs_total=16,
        iterations=4,
        pshd_seconds=2.5,
        history=[{"iteration": 1, "train_size": 40}],
    )


class TestResultStore:
    def test_append_and_load(self, tmp_path):
        store = ResultStore(tmp_path / "runs.jsonl")
        store.append(make_result(), seed=0)
        store.append(make_result(acc=0.90), seed=1)
        records = store.load()
        assert len(records) == 2
        assert records[0]["seed"] == 0
        assert records[1]["accuracy"] == 0.90

    def test_missing_file_is_empty(self, tmp_path):
        assert ResultStore(tmp_path / "none.jsonl").load() == []

    def test_roundtrip_preserves_fields(self, tmp_path):
        store = ResultStore(tmp_path / "runs.jsonl")
        original = make_result()
        store.append(original, seed=3)
        loaded = store.results()[0]
        assert loaded.benchmark == original.benchmark
        assert loaded.accuracy == original.accuracy
        assert loaded.litho == original.litho
        assert loaded.history == original.history

    def test_filtering(self, tmp_path):
        store = ResultStore(tmp_path / "runs.jsonl")
        store.append(make_result(method="ours"))
        store.append(make_result(method="ts"))
        store.append(make_result(benchmark="iccad12", method="ours"))
        assert len(store.results(method="ours")) == 2
        assert len(store.results(benchmark="iccad12")) == 1
        assert len(store.results(benchmark="iccad12", method="ts")) == 0

    def test_summarize_averages(self, tmp_path):
        store = ResultStore(tmp_path / "runs.jsonl")
        store.append(make_result(acc=0.9, litho=100), seed=0)
        store.append(make_result(acc=1.0, litho=200), seed=1)
        summary = store.summarize()
        acc, litho = summary[("iccad16-2", "ours")]
        assert acc == pytest.approx(0.95)
        assert litho == pytest.approx(150.0)

    def test_corrupt_line_reported_with_lineno(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            ResultStore(path).load()
