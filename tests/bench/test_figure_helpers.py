"""Tests for pure helper functions of the figure generators."""

import numpy as np

from repro.bench.figures import _ascii_scatter, _layout_map
from repro.data import ClipDataset
from repro.layout import Clip, Rect


class TestAsciiScatter:
    def test_dimensions(self):
        rng = np.random.default_rng(0)
        coords = rng.normal(size=(30, 2))
        highlight = np.zeros(30, dtype=bool)
        highlight[:3] = True
        text = _ascii_scatter(coords, highlight, width=40, height=10)
        lines = text.splitlines()
        assert len(lines) == 10
        assert all(len(line) == 40 for line in lines)

    def test_marks_present(self):
        coords = np.array([[0.0, 0.0], [1.0, 1.0]])
        text = _ascii_scatter(coords, [True, False], width=10, height=5)
        assert "O" in text
        assert "." in text

    def test_highlight_wins_cell(self):
        coords = np.array([[0.5, 0.5], [0.5, 0.5]])
        text = _ascii_scatter(coords, [False, True], width=8, height=4)
        assert "O" in text
        assert "." not in text


class TestLayoutMap:
    def _dataset(self):
        window = Rect(0, 0, 100, 100)
        clips = []
        for j in range(2):
            for i in range(3):
                w = window.shifted(100 * i, 100 * j)
                clips.append(Clip(w, w.expanded(-20), rects=[],
                                  index=j * 3 + i))
        labels = np.array([0, 1, 0, 0, 0, 1])
        return ClipDataset("m", 7, clips, labels,
                           np.zeros((6, 1, 2, 2)), np.zeros((6, 3)))

    def test_grid_shape(self):
        text = _layout_map(self._dataset(), sampled=set())
        lines = text.splitlines()
        assert len(lines) == 2
        assert all(len(line) == 3 for line in lines)

    def test_symbols(self):
        ds = self._dataset()
        text = _layout_map(ds, sampled={0, 1})
        # clip 0: clean sampled '#'; clip 1: hotspot sampled 'H';
        # clip 5: hotspot unsampled 'x'
        assert "#" in text
        assert "H" in text
        assert "x" in text
        assert "." in text

    def test_row_orientation(self):
        """Low-y clips render at the bottom (EDA orientation)."""
        ds = self._dataset()
        text = _layout_map(ds, sampled=set())
        lines = text.splitlines()
        # clip 1 (hotspot) is at y=0 -> bottom line
        assert "x" in lines[-1]
