"""Integration tests for the PSHD framework (Algorithm 2)."""

import numpy as np
import pytest

from repro.core import FrameworkConfig, PSHDFramework
from repro.core.sampling import SamplingConfig


def fast_config(**overrides):
    defaults = dict(
        n_query=80,
        k_batch=12,
        n_iterations=4,
        init_train=24,
        val_size=20,
        arch="mlp",
        epochs_initial=15,
        epochs_update=4,
        seed=0,
    )
    defaults.update(overrides)
    return FrameworkConfig(**defaults)


class TestFrameworkRun:
    def test_end_to_end_reaches_high_accuracy(self, iccad16_3_small):
        """At paper-like labeling proportions (litho ~60-70% of clips,
        cf. Table II) the framework reaches high detection accuracy."""
        cfg = fast_config(
            n_query=150,
            k_batch=50,
            n_iterations=8,
            init_train=40,
            val_size=30,
            epochs_initial=30,
            epochs_update=10,
        )
        result = PSHDFramework(iccad16_3_small, cfg).run()
        assert result.accuracy > 0.9
        assert result.litho < 0.75 * len(iccad16_3_small)

    def test_litho_accounting_consistent(self, iccad16_3_small):
        """Litho# must equal train + val + FA (Eq. (2)), and the metered
        oracle must have been charged exactly train + val times."""
        framework = PSHDFramework(iccad16_3_small, fast_config())
        result = framework.run()
        assert result.litho == result.n_train + result.n_val + result.false_alarms
        assert framework.labeler.query_count == result.n_train + result.n_val

    def test_train_set_grows_by_k_each_iteration(self, iccad16_3_small):
        cfg = fast_config(n_iterations=3)
        result = PSHDFramework(iccad16_3_small, cfg).run()
        sizes = [h["train_size"] for h in result.history]
        assert sizes == [
            cfg.init_train + cfg.k_batch * (i + 1) for i in range(3)
        ]

    def test_accuracy_equation_1(self, iccad16_3_small):
        """Reported accuracy decomposes exactly per Eq. (1)."""
        result = PSHDFramework(iccad16_3_small, fast_config()).run()
        hs_found = result.history[-1]["hotspots_in_train"] if result.history else 0
        # recompute: hotspots in train + val + hits over total
        expected = (
            hs_found
            + (result.accuracy * result.hs_total - hs_found - result.hits)
            + result.hits
        ) / result.hs_total
        assert result.accuracy == pytest.approx(expected)

    def test_seeding_bias_captures_hotspots_early(self, iccad12_small):
        """GMM low-posterior seeding enriches hotspots well above the
        base rate on rare-hotspot benchmarks (ICCAD12-style): rare
        patterns have low mixture density, and hotspots are rare
        patterns."""
        framework = PSHDFramework(iccad12_small, fast_config(init_train=30))
        posterior, _ = framework._fit_posterior()
        order = np.argsort(posterior)
        lowest = iccad12_small.labels[order[:30]].mean()
        assert lowest > 3 * iccad12_small.hotspot_ratio

    def test_temperature_recorded(self, iccad16_3_small):
        result = PSHDFramework(iccad16_3_small, fast_config()).run()
        for entry in result.history:
            assert entry["temperature"] > 0

    def test_dynamic_weights_recorded_and_valid(self, iccad16_3_small):
        result = PSHDFramework(iccad16_3_small, fast_config()).run()
        for entry in result.history:
            w = entry["weights"]
            assert len(w) == 2
            assert sum(w) == pytest.approx(1.0)

    def test_deterministic_given_seed(self, iccad16_3_small):
        a = PSHDFramework(iccad16_3_small, fast_config()).run()
        b = PSHDFramework(iccad16_3_small, fast_config()).run()
        assert a.accuracy == b.accuracy
        assert a.litho == b.litho

    def test_custom_selector_hook(self, iccad16_3_small):
        """A random selector must plug in through the config."""

        def random_selector(ctx):
            n = len(ctx.calibrated_probs)
            return ctx.rng.choice(n, size=min(ctx.k, n), replace=False)

        cfg = fast_config(selector=random_selector, method_name="random")
        result = PSHDFramework(iccad16_3_small, cfg).run()
        assert result.method == "random"
        assert result.litho > 0

    def test_ablation_configs_run(self, iccad16_3_small):
        for sampling in (
            SamplingConfig(use_diversity=False),
            SamplingConfig(use_uncertainty=False),
            SamplingConfig(use_entropy_weights=False),
            SamplingConfig(fixed_diversity_weight=0.4),
        ):
            cfg = fast_config(sampling=sampling, n_iterations=2)
            result = PSHDFramework(iccad16_3_small, cfg).run()
            assert 0.0 <= result.accuracy <= 1.0

    def test_pool_exhaustion_stops_early(self, iccad16_2_small):
        """With a huge batch size the pool drains and iteration stops."""
        n = len(iccad16_2_small)
        cfg = fast_config(
            n_query=n, k_batch=max(n // 3, 1), n_iterations=50
        )
        result = PSHDFramework(iccad16_2_small, cfg).run()
        assert result.iterations < 50
        # everything labeled: all hotspots are in train/val, no pool left
        assert result.n_train + result.n_val == n
        assert result.accuracy == 1.0

    def test_rejects_dataset_too_small(self, iccad16_2_small):
        small = iccad16_2_small.subset(np.arange(10))
        with pytest.raises(ValueError, match="too small"):
            PSHDFramework(small, fast_config())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FrameworkConfig(n_query=0)
        with pytest.raises(ValueError):
            FrameworkConfig(k_batch=-1)
        with pytest.raises(ValueError):
            FrameworkConfig(posterior_features="raw")

    def test_augment_flag_wires_into_classifier(self, iccad16_2_small):
        cfg = fast_config(n_iterations=1, augment=True)
        framework = PSHDFramework(iccad16_2_small, cfg)
        assert framework.classifier.augment is True
        result = framework.run()
        assert 0.0 <= result.accuracy <= 1.0
