"""Property-style invariants of the PSHD framework on random data.

These run Algorithm 2 on tiny synthetic datasets with random labels —
no lithography involved — to pin down accounting identities that must
hold for *any* data, not just well-formed benchmarks.
"""

import numpy as np
import pytest

from repro.core import FrameworkConfig, PSHDFramework
from repro.data import ClipDataset
from repro.layout import Clip, Rect


def random_dataset(seed, n=80, ratio=0.2):
    rng = np.random.default_rng(seed)
    window = Rect(0, 0, 100, 100)
    clips = [
        Clip(window.shifted(100 * i, 0),
             window.shifted(100 * i, 0).expanded(-20), rects=[], index=i)
        for i in range(n)
    ]
    labels = (rng.random(n) < ratio).astype(np.int64)
    tensors = rng.normal(size=(n, 4, 4, 4))
    # give labels a learnable signal so runs are not pure noise
    tensors[labels == 1, 0] += 1.5
    flats = rng.normal(size=(n, 68))
    return ClipDataset(f"prop-{seed}", 7, clips, labels, tensors, flats,
                       meta={"density_cells": 8})


def tiny_config(seed=0):
    return FrameworkConfig(
        n_query=30, k_batch=6, n_iterations=3, init_train=16, val_size=12,
        arch="mlp", epochs_initial=6, epochs_update=2, seed=seed,
    )


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_accounting_identities(seed):
    """For any dataset: Eq. (2) identity, bounded accuracy, exact
    labeler charge, and train-set arithmetic."""
    dataset = random_dataset(seed)
    framework = PSHDFramework(dataset, tiny_config(seed))
    result = framework.run()

    # Eq. (2): litho decomposes exactly
    assert result.litho == result.n_train + result.n_val + result.false_alarms
    # the metered oracle was charged exactly once per labeled clip
    assert framework.labeler.query_count == result.n_train + result.n_val
    # accuracy is a valid fraction and consistent with its parts
    assert 0.0 <= result.accuracy <= 1.0
    found = round(result.accuracy * result.hs_total)
    assert result.hits <= found <= result.hs_total
    # train set grew by exactly k per completed iteration
    cfg = tiny_config(seed)
    assert result.n_train == cfg.init_train + cfg.k_batch * result.iterations
    # labeled indices are unique and within range
    labeled = result.labeled
    assert len(np.unique(labeled)) == len(labeled)
    assert labeled.min() >= 0 and labeled.max() < len(dataset)


@pytest.mark.parametrize("seed", [0, 1])
def test_hotspot_free_dataset_scores_perfect(seed):
    """With zero hotspots (ICCAD16-1 situation) accuracy is 1.0 and
    litho equals labels plus any false alarms."""
    dataset = random_dataset(seed, ratio=0.0)
    result = PSHDFramework(dataset, tiny_config(seed)).run()
    assert result.hs_total == 0
    assert result.accuracy == 1.0
    assert result.hits == 0


def test_all_hotspots_dataset_runs():
    """A pathological all-hotspot dataset still satisfies identities."""
    dataset = random_dataset(7, ratio=1.0)
    result = PSHDFramework(dataset, tiny_config(7)).run()
    assert result.hs_total == len(dataset)
    assert result.false_alarms == 0  # there are no clean clips to flag
    assert result.litho == result.n_train + result.n_val
