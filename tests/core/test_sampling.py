"""Tests for EntropySampling (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.sampling import SamplingConfig, entropy_sampling


def unit_rows(x):
    norms = np.linalg.norm(x, axis=1, keepdims=True)
    return x / np.maximum(norms, 1e-12)


def query_set(rng, n=50):
    """A query set with known structure: one dense cluster of confident
    non-hotspots, a few boundary hotspots, and one isolated outlier."""
    p1 = np.concatenate(
        [
            rng.uniform(0.01, 0.1, n - 6),   # confident non-hotspots
            rng.uniform(0.42, 0.55, 5),      # boundary hotspot-ish
            [0.05],                          # outlier in feature space
        ]
    )
    probs = np.column_stack([1 - p1, p1])
    emb = rng.normal(loc=[1, 0, 0], scale=0.05, size=(n, 3))
    emb[n - 6 : n - 1] += rng.normal(scale=0.3, size=(5, 3))
    emb[n - 1] = [0, 1, 0]                   # isolated sample
    return probs, unit_rows(emb)


class TestEntropySampling:
    def test_selects_k(self):
        rng = np.random.default_rng(0)
        probs, emb = query_set(rng)
        outcome = entropy_sampling(probs, emb, k=10)
        assert outcome.selected.shape == (10,)
        assert len(set(outcome.selected.tolist())) == 10

    def test_k_capped_at_query_size(self):
        rng = np.random.default_rng(1)
        probs, emb = query_set(rng, n=8)
        outcome = entropy_sampling(probs, emb, k=20)
        assert len(outcome.selected) == 8

    def test_selected_are_top_scores(self):
        rng = np.random.default_rng(2)
        probs, emb = query_set(rng)
        outcome = entropy_sampling(probs, emb, k=5)
        threshold = np.sort(outcome.scores)[-5]
        assert np.all(outcome.scores[outcome.selected] >= threshold - 1e-12)

    def test_boundary_hotspots_preferred(self):
        """Samples near the decision boundary on the hotspot side get in."""
        rng = np.random.default_rng(3)
        probs, emb = query_set(rng)
        outcome = entropy_sampling(probs, emb, k=6)
        boundary = set(range(44, 49))
        assert boundary & set(outcome.selected.tolist())

    def test_outlier_selected_when_diversity_active(self):
        rng = np.random.default_rng(4)
        probs, emb = query_set(rng)
        outcome = entropy_sampling(probs, emb, k=10)
        assert 49 in outcome.selected

    def test_uncertainty_only_ignores_outlier(self):
        rng = np.random.default_rng(5)
        probs, emb = query_set(rng)
        config = SamplingConfig(use_diversity=False)
        outcome = entropy_sampling(probs, emb, k=5, config=config)
        # outlier has confident non-hotspot prob, low uncertainty
        assert 49 not in outcome.selected
        np.testing.assert_allclose(outcome.weights, [1.0, 0.0])

    def test_diversity_only(self):
        rng = np.random.default_rng(6)
        probs, emb = query_set(rng)
        config = SamplingConfig(use_uncertainty=False)
        outcome = entropy_sampling(probs, emb, k=3, config=config)
        assert 49 in outcome.selected
        np.testing.assert_allclose(outcome.weights, [0.0, 1.0])

    def test_fixed_weights(self):
        rng = np.random.default_rng(7)
        probs, emb = query_set(rng)
        config = SamplingConfig(fixed_diversity_weight=0.2)
        outcome = entropy_sampling(probs, emb, k=5, config=config)
        np.testing.assert_allclose(outcome.weights, [0.8, 0.2])

    def test_dynamic_weights_sum_to_one(self):
        rng = np.random.default_rng(8)
        probs, emb = query_set(rng)
        outcome = entropy_sampling(probs, emb, k=5)
        assert outcome.weights.sum() == pytest.approx(1.0)

    def test_empty_query_set(self):
        outcome = entropy_sampling(np.zeros((0, 2)), np.zeros((0, 3)), k=5)
        assert outcome.selected.shape == (0,)

    def test_deterministic(self):
        rng = np.random.default_rng(9)
        probs, emb = query_set(rng)
        a = entropy_sampling(probs, emb, k=7)
        b = entropy_sampling(probs, emb, k=7)
        np.testing.assert_array_equal(a.selected, b.selected)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            entropy_sampling(np.zeros((3, 3)), np.zeros((3, 2)), k=1)
        with pytest.raises(ValueError):
            entropy_sampling(np.zeros((3, 2)), np.zeros((2, 2)), k=1)
        with pytest.raises(ValueError):
            entropy_sampling(np.zeros((3, 2)), np.zeros((3, 2)), k=0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SamplingConfig(use_uncertainty=False, use_diversity=False)
        with pytest.raises(ValueError):
            SamplingConfig(fixed_diversity_weight=1.5)
        with pytest.raises(ValueError):
            SamplingConfig(uncertainty_metric="margin")
        with pytest.raises(ValueError):
            SamplingConfig(weighting_method="ahp")

    def test_uncertainty_metric_variants(self):
        rng = np.random.default_rng(10)
        probs, emb = query_set(rng)
        for metric in ("hotspot_aware", "bvsb", "entropy"):
            config = SamplingConfig(uncertainty_metric=metric)
            outcome = entropy_sampling(probs, emb, k=5, config=config)
            assert len(outcome.selected) == 5

    def test_critic_weighting_variant(self):
        rng = np.random.default_rng(11)
        probs, emb = query_set(rng)
        config = SamplingConfig(weighting_method="critic")
        outcome = entropy_sampling(probs, emb, k=5, config=config)
        assert outcome.weights.sum() == pytest.approx(1.0)
        # critic and entropy weighting generally disagree on real data
        base = entropy_sampling(probs, emb, k=5)
        assert not np.allclose(outcome.weights, base.weights)
