"""Tests for the uncertainty metrics (Eqs. (3) and (6))."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.uncertainty import (
    bvsb_uncertainty,
    entropy_uncertainty,
    hotspot_aware_uncertainty,
)


def probs_from_p1(p1):
    p1 = np.asarray(p1, dtype=np.float64)
    return np.column_stack([1 - p1, p1])


class TestBvsb:
    def test_peak_at_even_split(self):
        u = bvsb_uncertainty(probs_from_p1([0.5]))
        assert u[0] == pytest.approx(1.0)

    def test_zero_at_certainty(self):
        u = bvsb_uncertainty(probs_from_p1([0.0, 1.0]))
        np.testing.assert_allclose(u, 0.0)

    def test_symmetric(self):
        u = bvsb_uncertainty(probs_from_p1([0.3, 0.7]))
        assert u[0] == pytest.approx(u[1])

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            bvsb_uncertainty(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            bvsb_uncertainty(np.array([[0.5, 1.5]]))


class TestEntropyUncertainty:
    def test_uniform_maximal(self):
        u = entropy_uncertainty(probs_from_p1([0.5]))
        assert u[0] == pytest.approx(np.log(2))

    def test_onehot_zero(self):
        u = entropy_uncertainty(probs_from_p1([1.0]))
        assert u[0] == pytest.approx(0.0, abs=1e-9)


class TestHotspotAware:
    """Behavioural contract of Eq. (6) with h = 0.4."""

    def test_piecewise_values(self):
        # p1 < h: score = p1
        u = hotspot_aware_uncertainty(probs_from_p1([0.1, 0.39]))
        np.testing.assert_allclose(u, [0.1, 0.39])
        # p1 > h: score = p0 + h
        u = hotspot_aware_uncertainty(probs_from_p1([0.41, 0.9]))
        np.testing.assert_allclose(u, [0.59 + 0.4, 0.1 + 0.4])

    def test_hotspot_side_always_outranks_nonhotspot_side(self):
        """Any p1 > h scores strictly above any p1 < h (the paper's
        preference for hotspot-like samples)."""
        rng = np.random.default_rng(0)
        hot = hotspot_aware_uncertainty(
            probs_from_p1(rng.uniform(0.401, 1.0, 100))
        )
        cold = hotspot_aware_uncertainty(
            probs_from_p1(rng.uniform(0.0, 0.399, 100))
        )
        assert hot.min() > cold.max()

    def test_peak_just_above_boundary(self):
        p1 = np.array([0.3, 0.401, 0.6, 0.9])
        u = hotspot_aware_uncertainty(probs_from_p1(p1))
        assert np.argmax(u) == 1

    def test_decays_with_confidence_on_hotspot_side(self):
        p1 = np.linspace(0.45, 1.0, 20)
        u = hotspot_aware_uncertainty(probs_from_p1(p1))
        assert np.all(np.diff(u) < 0)

    def test_increases_towards_boundary_on_nonhotspot_side(self):
        p1 = np.linspace(0.0, 0.39, 20)
        u = hotspot_aware_uncertainty(probs_from_p1(p1))
        assert np.all(np.diff(u) > 0)

    def test_custom_boundary(self):
        u = hotspot_aware_uncertainty(probs_from_p1([0.45]), h=0.5)
        assert u[0] == pytest.approx(0.45)  # below the custom boundary

    def test_rejects_bad_h(self):
        with pytest.raises(ValueError):
            hotspot_aware_uncertainty(probs_from_p1([0.5]), h=0.0)
        with pytest.raises(ValueError):
            hotspot_aware_uncertainty(probs_from_p1([0.5]), h=1.0)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(0.0, 1.0), min_size=1, max_size=50))
def test_scores_bounded(p1_values):
    """Property: all three scores stay within their documented ranges."""
    probs = probs_from_p1(p1_values)
    assert np.all(bvsb_uncertainty(probs) <= 1.0 + 1e-12)
    assert np.all(bvsb_uncertainty(probs) >= -1e-12)
    u = hotspot_aware_uncertainty(probs)
    assert np.all(u >= -1e-12)
    assert np.all(u <= 1.0 + 1e-12)
