"""Tests for the min-distance diversity metric (Eqs. (7)-(8))."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.diversity import diversity_matrix, diversity_scores


def unit_rows(x):
    norms = np.linalg.norm(x, axis=1, keepdims=True)
    return x / np.maximum(norms, 1e-12)


class TestDiversityMatrix:
    def test_identical_vectors_distance_zero(self):
        x = unit_rows(np.array([[1.0, 0.0], [1.0, 0.0]]))
        d = diversity_matrix(x)
        np.testing.assert_allclose(d, 0.0, atol=1e-12)

    def test_orthogonal_vectors_distance_one(self):
        x = np.array([[1.0, 0.0], [0.0, 1.0]])
        d = diversity_matrix(x)
        assert d[0, 1] == pytest.approx(1.0)
        assert d[0, 0] == pytest.approx(0.0)

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        x = unit_rows(rng.normal(size=(10, 5)))
        d = diversity_matrix(x)
        np.testing.assert_allclose(d, d.T, atol=1e-12)

    def test_normalization_option(self):
        rng = np.random.default_rng(1)
        raw = rng.normal(size=(6, 4)) * 10
        d_auto = diversity_matrix(raw, assume_normalized=False)
        d_manual = diversity_matrix(unit_rows(raw))
        np.testing.assert_allclose(d_auto, d_manual, atol=1e-12)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            diversity_matrix(np.zeros(5))


class TestDiversityScores:
    def test_outlier_gets_highest_score(self):
        """The Fig. 3(a) property: points away from clusters score high."""
        rng = np.random.default_rng(2)
        cluster = rng.normal(loc=[1, 0, 0], scale=0.01, size=(20, 3))
        outlier = np.array([[0.0, 1.0, 0.0]])
        x = unit_rows(np.vstack([cluster, outlier]))
        scores = diversity_scores(x)
        assert np.argmax(scores) == 20

    def test_duplicate_scores_zero(self):
        x = unit_rows(np.array([[1.0, 1.0], [1.0, 1.0], [0.0, 1.0]]))
        scores = diversity_scores(x)
        assert scores[0] == pytest.approx(0.0, abs=1e-12)
        assert scores[1] == pytest.approx(0.0, abs=1e-12)

    def test_matches_bruteforce(self):
        rng = np.random.default_rng(3)
        x = unit_rows(rng.normal(size=(15, 6)))
        scores = diversity_scores(x)
        d = 1.0 - x @ x.T
        for i in range(15):
            expected = min(d[i, j] for j in range(15) if j != i)
            assert scores[i] == pytest.approx(expected, abs=1e-12)

    def test_edge_cases(self):
        assert diversity_scores(np.zeros((0, 3))).shape == (0,)
        np.testing.assert_allclose(diversity_scores(np.ones((1, 3))), [0.0])


@settings(max_examples=40, deadline=None)
@given(
    hnp.arrays(
        np.float64,
        hnp.array_shapes(min_dims=2, max_dims=2, min_side=2, max_side=12),
        elements=st.floats(-5, 5),
    )
)
def test_scores_bounded_for_normalized_inputs(x):
    """Property: unit-norm rows give d_i in [0, 2] and min-dist <= any
    pairwise distance."""
    norms = np.linalg.norm(x, axis=1)
    x = x[norms > 1e-6]
    if len(x) < 2:
        return
    x = unit_rows(x)
    scores = diversity_scores(x)
    assert np.all(scores >= -1e-9)
    assert np.all(scores <= 2.0 + 1e-9)
