"""Tests for CRITIC weighting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import critic_weights, entropy_weights


class TestCriticWeights:
    def test_weights_sum_to_one(self):
        rng = np.random.default_rng(0)
        w = critic_weights(rng.random((50, 3)))
        assert w.sum() == pytest.approx(1.0)
        assert np.all(w >= 0)

    def test_constant_indicator_gets_zero(self):
        n = 40
        constant = np.full(n, 2.0)
        varying = np.linspace(0, 1, n)
        w = critic_weights(np.column_stack([constant, varying]))
        assert w[0] == pytest.approx(0.0, abs=1e-9)

    def test_independent_indicator_beats_redundant_pair(self):
        """Two perfectly correlated indicators share their information;
        an independent third indicator earns more weight than either."""
        rng = np.random.default_rng(1)
        a = rng.random(200)
        b = a * 2.0 + 1.0          # perfectly correlated with a
        c = rng.random(200)        # independent
        w = critic_weights(np.column_stack([a, b, c]))
        assert w[2] > w[0]
        assert w[2] > w[1]

    def test_degenerate_inputs_fall_back_uniform(self):
        np.testing.assert_allclose(critic_weights(np.ones((10, 2))), 0.5)
        np.testing.assert_allclose(critic_weights(np.ones((1, 3))), 1 / 3)

    def test_single_indicator(self):
        w = critic_weights(np.linspace(0, 1, 20)[:, None])
        np.testing.assert_allclose(w, [1.0])

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            critic_weights(np.zeros(5))
        with pytest.raises(ValueError):
            critic_weights(np.zeros((5, 0)))

    def test_differs_from_entropy_weighting(self):
        """CRITIC rewards independence, which entropy weighting cannot
        see — the two schemes must disagree on correlated indicators."""
        rng = np.random.default_rng(2)
        a = np.zeros(100)
        a[:10] = 1.0
        b = a.copy()  # duplicate of a: no new information
        c = rng.random(100) > 0.9
        scores = np.column_stack([a, b, c.astype(float)])
        critic = critic_weights(scores)
        entropy = entropy_weights(scores)
        # entropy weighting treats a and b as equally informative as if
        # independent; CRITIC penalizes the duplication
        assert critic[2] / (critic[0] + 1e-12) > \
            entropy[2] / (entropy[0] + 1e-12)


@settings(max_examples=40, deadline=None)
@given(
    hnp.arrays(
        np.float64,
        st.tuples(st.integers(2, 30), st.integers(1, 4)),
        elements=st.floats(0, 10),
    )
)
def test_critic_always_valid_simplex(scores):
    w = critic_weights(scores)
    assert w.shape == (scores.shape[1],)
    assert np.all(w >= -1e-12)
    assert w.sum() == pytest.approx(1.0, abs=1e-9)
