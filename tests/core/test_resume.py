"""Kill-and-resume determinism: the headline checkpoint guarantees.

A run checkpointed every iteration, killed mid-loop, and resumed from
the last checkpoint must be **bit-identical** to the uninterrupted run:
same batch selections, same litho meter, same final network weights.
"""

import numpy as np
import pytest

from repro.core import FrameworkConfig, PSHDFramework
from repro.engine.checkpoint import CheckpointError
from repro.engine.events import EventBus, EventLog

from .test_framework import fast_config


class KillAt:
    """Bus subscriber that dies on ``iteration_start`` of one iteration,
    simulating a crash after the previous iteration's checkpoint."""

    def __init__(self, iteration):
        self.iteration = iteration

    def __call__(self, event):
        if (
            event.kind == "iteration_start"
            and event.payload["iteration"] == self.iteration
        ):
            raise RuntimeError("simulated crash")


def checkpointed_config(tmp_path, **overrides):
    overrides.setdefault("checkpoint_every", 1)
    overrides.setdefault("checkpoint_dir", str(tmp_path / "ckpts"))
    return fast_config(**overrides)


def selections(log):
    return [e.payload["selected"] for e in log.of_kind("batch_selected")]


class TestKillAndResume:
    def test_resumed_run_is_bit_identical(self, iccad16_3_small, tmp_path):
        # reference: one uninterrupted run
        bus_a = EventBus()
        log_a = bus_a.subscribe(EventLog())
        fw_a = PSHDFramework(iccad16_3_small, fast_config(), bus=bus_a)
        result_a = fw_a.run()

        # run B: checkpoint every iteration, killed entering iteration 3
        bus_b = EventBus()
        log_b = bus_b.subscribe(EventLog())
        bus_b.subscribe(KillAt(3))
        fw_b = PSHDFramework(
            iccad16_3_small, checkpointed_config(tmp_path), bus=bus_b
        )
        with pytest.raises(RuntimeError, match="simulated crash"):
            fw_b.run()

        # run C: a fresh framework resumes from B's last checkpoint
        bus_c = EventBus()
        log_c = bus_c.subscribe(EventLog())
        fw_c = PSHDFramework(
            iccad16_3_small, checkpointed_config(tmp_path), bus=bus_c
        )
        result_c = fw_c.resume(
            tmp_path / "ckpts" / "checkpoint_iter0002"
        )

        # bit-identical selections across the kill boundary
        assert selections(log_b) + selections(log_c) == selections(log_a)
        # identical litho meter
        assert fw_c.labeler.query_count == fw_a.labeler.query_count
        # identical final weights, bit for bit
        weights_a = fw_a.classifier.network.get_weights()
        weights_c = fw_c.classifier.network.get_weights()
        assert weights_a.keys() == weights_c.keys()
        for key, value in weights_a.items():
            assert np.array_equal(value, weights_c[key]), key
        # identical result surface
        assert result_c.accuracy == result_a.accuracy
        assert result_c.litho == result_a.litho
        assert result_c.hits == result_a.hits
        assert result_c.false_alarms == result_a.false_alarms
        assert result_c.history == result_a.history
        assert result_c.iterations == result_a.iterations

    def test_checkpoint_saved_events_and_files(
        self, iccad16_3_small, tmp_path
    ):
        bus = EventBus()
        log = bus.subscribe(EventLog())
        cfg = checkpointed_config(tmp_path, n_iterations=2)
        PSHDFramework(iccad16_3_small, cfg, bus=bus).run()
        saved = log.of_kind("checkpoint_saved")
        assert [e.payload["iteration"] for e in saved] == [1, 2]
        for event in saved:
            assert (tmp_path / "ckpts" / "checkpoint_iter0001.npz").exists()
            assert event.payload["path"].endswith(".json")

    def test_checkpoint_every_respects_stride(
        self, iccad16_3_small, tmp_path
    ):
        bus = EventBus()
        log = bus.subscribe(EventLog())
        cfg = checkpointed_config(tmp_path, checkpoint_every=2)
        PSHDFramework(iccad16_3_small, cfg, bus=bus).run()
        saved = [
            e.payload["iteration"] for e in log.of_kind("checkpoint_saved")
        ]
        assert saved == [2, 4]

    def test_resume_can_extend_the_horizon(self, iccad16_3_small, tmp_path):
        """n_iterations is not part of the fingerprint: a checkpoint from
        a short run may resume with a longer loop."""
        cfg_short = checkpointed_config(tmp_path, n_iterations=2)
        PSHDFramework(iccad16_3_small, cfg_short).run()

        cfg_long = checkpointed_config(tmp_path, n_iterations=4)
        fw = PSHDFramework(iccad16_3_small, cfg_long)
        result = fw.resume(tmp_path / "ckpts" / "checkpoint_iter0002")
        assert result.iterations == 4

        # and it matches an uninterrupted 4-iteration run
        reference = PSHDFramework(iccad16_3_small, fast_config()).run()
        assert result.accuracy == reference.accuracy
        assert result.litho == reference.litho

    def test_run_resumed_event_emitted(self, iccad16_3_small, tmp_path):
        PSHDFramework(
            iccad16_3_small, checkpointed_config(tmp_path, n_iterations=2)
        ).run()
        bus = EventBus()
        log = bus.subscribe(EventLog())
        PSHDFramework(
            iccad16_3_small, checkpointed_config(tmp_path), bus=bus
        ).resume(tmp_path / "ckpts" / "checkpoint_iter0002")
        resumed = log.of_kind("run_resumed")
        assert len(resumed) == 1
        assert resumed[0].payload["iteration"] == 2


class TestResumeValidation:
    def test_mismatched_config_rejected(self, iccad16_3_small, tmp_path):
        PSHDFramework(
            iccad16_3_small, checkpointed_config(tmp_path, n_iterations=1)
        ).run()
        other = PSHDFramework(
            iccad16_3_small, checkpointed_config(tmp_path, k_batch=10)
        )
        with pytest.raises(CheckpointError, match="k_batch"):
            other.resume(tmp_path / "ckpts" / "checkpoint_iter0001")

    def test_missing_checkpoint_rejected(self, iccad16_3_small, tmp_path):
        fw = PSHDFramework(iccad16_3_small, fast_config())
        with pytest.raises(CheckpointError, match="manifest"):
            fw.resume(tmp_path / "nope")

    def test_checkpoint_every_requires_dir(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            fast_config(checkpoint_every=1)

    def test_negative_checkpoint_every_rejected(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            fast_config(checkpoint_every=-1, checkpoint_dir="x")
