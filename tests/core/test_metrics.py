"""Tests for the PSHD metrics (Eqs. (1)-(2)) and the runtime model."""

import pytest

from repro.core.metrics import (
    PSHDResult,
    litho_overhead,
    overall_runtime,
    pshd_accuracy,
)


class TestAccuracy:
    def test_equation_1(self):
        # (10 + 5 + 80) / 100
        assert pshd_accuracy(10, 5, 80, 100) == pytest.approx(0.95)

    def test_all_found(self):
        assert pshd_accuracy(50, 0, 50, 100) == 1.0

    def test_no_hotspots_convention(self):
        """ICCAD16-1 has zero hotspots; accuracy is 1.0 by convention."""
        assert pshd_accuracy(0, 0, 0, 0) == 1.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            pshd_accuracy(-1, 0, 0, 10)

    def test_rejects_overcount(self):
        with pytest.raises(ValueError):
            pshd_accuracy(5, 5, 5, 10)


class TestLitho:
    def test_equation_2(self):
        assert litho_overhead(100, 30, 12) == 142

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            litho_overhead(10, -1, 0)


class TestRuntime:
    def test_ten_seconds_per_clip(self):
        assert overall_runtime(100, 50.0) == pytest.approx(1050.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            overall_runtime(-1, 0.0)
        with pytest.raises(ValueError):
            overall_runtime(1, -0.5)


class TestPSHDResult:
    def test_row_formats_percent(self):
        result = PSHDResult("iccad12", "ours", accuracy=0.9825, litho=9717)
        name, acc, litho = result.row()
        assert name == "iccad12"
        assert acc == pytest.approx(98.25)
        assert litho == 9717

    def test_runtime_property(self):
        result = PSHDResult(
            "b", "m", accuracy=1.0, litho=10, pshd_seconds=3.5
        )
        assert result.runtime_seconds == pytest.approx(103.5)
