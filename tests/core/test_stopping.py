"""Tests for active-learning stopping criteria."""

import pytest

from repro.core import (
    AnyOf,
    FrameworkConfig,
    HotspotYieldStall,
    LithoBudget,
    LoopState,
    MaxIterations,
    PSHDFramework,
    StoppingCriterion,
    UncertaintyExhausted,
)


def state(**overrides):
    defaults = dict(
        iteration=1,
        litho_used=0,
        pool_size=100,
        max_uncertainty=0.9,
        recent_batch_hotspots=[],
    )
    defaults.update(overrides)
    return LoopState(**defaults)


class TestCriteria:
    def test_base_never_stops(self):
        assert not StoppingCriterion()(state())

    def test_max_iterations(self):
        crit = MaxIterations(3)
        assert not crit(state(iteration=3))
        assert crit(state(iteration=4))

    def test_litho_budget(self):
        crit = LithoBudget(100)
        assert not crit(state(litho_used=99))
        assert crit(state(litho_used=100))

    def test_uncertainty_exhausted(self):
        crit = UncertaintyExhausted(threshold=0.3)
        assert not crit(state(max_uncertainty=0.5))
        assert crit(state(max_uncertainty=0.1))

    def test_hotspot_yield_stall(self):
        crit = HotspotYieldStall(window=2)
        assert not crit(state(recent_batch_hotspots=[3]))
        assert not crit(state(recent_batch_hotspots=[3, 0]))
        assert crit(state(recent_batch_hotspots=[3, 0, 0]))
        assert not crit(state(recent_batch_hotspots=[0, 0, 1]))

    def test_any_of(self):
        crit = AnyOf(MaxIterations(5), LithoBudget(10))
        assert crit(state(litho_used=20))
        assert crit(state(iteration=6))
        assert not crit(state())

    def test_validation(self):
        with pytest.raises(ValueError):
            MaxIterations(0)
        with pytest.raises(ValueError):
            LithoBudget(-1)
        with pytest.raises(ValueError):
            UncertaintyExhausted(threshold=1.5)
        with pytest.raises(ValueError):
            HotspotYieldStall(window=0)
        with pytest.raises(ValueError):
            AnyOf()


class TestFrameworkIntegration:
    def _config(self, **overrides):
        defaults = dict(
            n_query=60, k_batch=10, n_iterations=6, init_train=24,
            val_size=20, arch="mlp", epochs_initial=8, epochs_update=3,
            seed=0,
        )
        defaults.update(overrides)
        return FrameworkConfig(**defaults)

    def test_litho_budget_truncates_run(self, iccad16_2_small):
        budget = 60
        cfg = self._config(stop_when=LithoBudget(budget))
        result = PSHDFramework(iccad16_2_small, cfg).run()
        # 24 + 20 = 44 seed labels; one batch of 10 may land before the
        # check fires, so the spend stays within one batch of the budget
        assert result.n_train + result.n_val <= budget + cfg.k_batch
        assert result.iterations < 6

    def test_max_iterations_criterion_matches_config(self, iccad16_2_small):
        cfg = self._config(stop_when=MaxIterations(2))
        result = PSHDFramework(iccad16_2_small, cfg).run()
        assert result.iterations == 2

    def test_without_criterion_runs_all_iterations(self, iccad16_2_small):
        cfg = self._config()
        result = PSHDFramework(iccad16_2_small, cfg).run()
        assert result.iterations == 6
