"""Tests for the entropy weighting method (Eqs. (10)-(13))."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.entropy_weighting import (
    entropy_weights,
    index_entropy,
    minmax_normalize,
)


class TestMinMaxNormalize:
    def test_maps_to_unit_interval(self):
        scores = np.array([[1.0, 100.0], [3.0, 300.0], [2.0, 200.0]])
        normalized = minmax_normalize(scores)
        np.testing.assert_allclose(normalized.min(axis=0), 0.0)
        np.testing.assert_allclose(normalized.max(axis=0), 1.0)
        np.testing.assert_allclose(normalized[:, 0], [0.0, 1.0, 0.5])

    def test_constant_column_maps_to_zero(self):
        scores = np.array([[5.0, 1.0], [5.0, 2.0]])
        normalized = minmax_normalize(scores)
        np.testing.assert_allclose(normalized[:, 0], 0.0)

    def test_accepts_1d(self):
        normalized = minmax_normalize(np.array([1.0, 2.0, 3.0]))
        assert normalized.shape == (3, 1)


class TestIndexEntropy:
    def test_uniform_scores_entropy_one(self):
        """An evenly distributed indicator has E_j -> 1 (no information)."""
        scores = np.linspace(0, 1, 100)[:, None]
        normalized = minmax_normalize(scores)
        e = index_entropy(normalized)
        assert e[0] > 0.9

    def test_concentrated_scores_low_entropy(self):
        """One sample dominating the indicator gives low entropy."""
        scores = np.zeros((50, 1))
        scores[0] = 1.0
        e = index_entropy(minmax_normalize(scores))
        assert e[0] < 0.1

    def test_zero_column_defined_as_one(self):
        e = index_entropy(np.zeros((10, 1)))
        assert e[0] == 1.0

    def test_bounds(self):
        rng = np.random.default_rng(0)
        e = index_entropy(minmax_normalize(rng.random((30, 4))))
        assert np.all(e >= 0.0)
        assert np.all(e <= 1.0)

    def test_single_sample(self):
        e = index_entropy(np.ones((1, 2)))
        np.testing.assert_allclose(e, 1.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            index_entropy(np.zeros(5))


class TestEntropyWeights:
    def test_weights_sum_to_one(self):
        rng = np.random.default_rng(1)
        w = entropy_weights(rng.random((40, 2)))
        assert w.sum() == pytest.approx(1.0)
        assert np.all(w >= 0)

    def test_informative_indicator_wins(self):
        """A concentrated indicator outweighs a uniform one — the core
        claim of Section III-A3."""
        n = 60
        uniform = np.linspace(0, 1, n)
        concentrated = np.zeros(n)
        concentrated[:3] = 1.0
        w = entropy_weights(np.column_stack([uniform, concentrated]))
        assert w[1] > w[0]

    def test_constant_indicator_gets_zero_weight(self):
        """'No matter how much weight is assigned... a weight of 0
        should be given' (paper, Section III-A3)."""
        n = 30
        constant = np.full(n, 0.7)
        varying = np.zeros(n)
        varying[:2] = 1.0
        w = entropy_weights(np.column_stack([constant, varying]))
        assert w[0] == pytest.approx(0.0, abs=1e-9)
        assert w[1] == pytest.approx(1.0, abs=1e-9)

    def test_symmetric_indicators_equal_weights(self):
        n = 40
        a = np.zeros(n)
        a[:5] = 1.0
        w = entropy_weights(np.column_stack([a, a[::-1]]))
        np.testing.assert_allclose(w, 0.5, atol=1e-9)

    def test_all_uninformative_falls_back_uniform(self):
        w = entropy_weights(np.ones((10, 2)))
        np.testing.assert_allclose(w, 0.5)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            entropy_weights(np.zeros(5))
        with pytest.raises(ValueError):
            entropy_weights(np.zeros((5, 0)))


@settings(max_examples=50, deadline=None)
@given(
    hnp.arrays(
        np.float64,
        st.tuples(st.integers(2, 30), st.integers(1, 4)),
        elements=st.floats(0, 10),
    )
)
def test_weights_always_valid_simplex(scores):
    """Property: weights are a probability vector for any input."""
    w = entropy_weights(scores)
    assert w.shape == (scores.shape[1],)
    assert np.all(w >= -1e-12)
    assert w.sum() == pytest.approx(1.0, abs=1e-9)
