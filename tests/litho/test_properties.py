"""Property-based tests of lithography-model invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout import Rect, rasterize
from repro.litho import ThresholdResist, duv_model, euv_model


def random_mask(rng, grid=48):
    mask = np.zeros((grid, grid))
    for _ in range(rng.integers(1, 5)):
        x0 = int(rng.integers(0, grid - 8))
        y0 = int(rng.integers(0, grid - 8))
        w = int(rng.integers(4, 12))
        h = int(rng.integers(4, 12))
        mask[y0 : y0 + h, x0 : x0 + w] = 1.0
    return mask


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_dose_monotonicity(seed):
    """Higher dose never shrinks the printed area (threshold resist)."""
    rng = np.random.default_rng(seed)
    mask = random_mask(rng)
    model = duv_model()
    resist = ThresholdResist()
    areas = []
    for dose in (0.8, 1.0, 1.2):
        printed = resist.develop(model.aerial_image(mask, 10.0, dose=dose))
        areas.append(int(printed.sum()))
    assert areas[0] <= areas[1] <= areas[2]


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_defocus_blurs_peak(seed):
    """Defocus never raises the peak intensity of a sparse pattern."""
    rng = np.random.default_rng(seed)
    mask = np.zeros((48, 48))
    x0 = int(rng.integers(4, 36))
    mask[:, x0 : x0 + 4] = 1.0  # one narrow line
    model = duv_model()
    peaks = [
        model.aerial_image(mask, 10.0, defocus_nm=d).max()
        for d in (0.0, 40.0, 80.0)
    ]
    assert peaks[0] >= peaks[1] >= peaks[2]


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_intensity_linear_in_dose(seed):
    """Intensity scales exactly linearly with dose."""
    rng = np.random.default_rng(seed)
    mask = random_mask(rng)
    model = euv_model()
    base = model.aerial_image(mask, 6.0, dose=1.0)
    scaled = model.aerial_image(mask, 6.0, dose=1.3)
    np.testing.assert_allclose(scaled, 1.3 * base, rtol=1e-12)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_mask_translation_equivariance(seed):
    """Shifting the mask shifts the aerial image (away from borders)."""
    rng = np.random.default_rng(seed)
    grid = 64
    mask = np.zeros((grid, grid))
    x0 = int(rng.integers(20, 32))
    mask[28:36, x0 : x0 + 6] = 1.0
    model = duv_model()
    image_a = model.aerial_image(mask, 10.0)
    image_b = model.aerial_image(np.roll(mask, 4, axis=1), 10.0)
    interior = (slice(24, 40), slice(24, 40))
    np.testing.assert_allclose(
        np.roll(image_a, 4, axis=1)[interior], image_b[interior], atol=1e-6
    )


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_mask_monotonicity(seed):
    """Adding geometry never reduces intensity anywhere (positive PSF)."""
    rng = np.random.default_rng(seed)
    mask = random_mask(rng)
    extra = mask.copy()
    x0 = int(rng.integers(0, 40))
    extra[20:28, x0 : x0 + 6] = 1.0
    model = duv_model()
    base = model.aerial_image(mask, 10.0)
    more = model.aerial_image(extra, 10.0)
    assert np.all(more >= base - 1e-9)


@settings(max_examples=10, deadline=None)
@given(
    st.integers(30, 200),
    st.integers(0, 2**31 - 1),
)
def test_raster_flux_conservation(width, seed):
    """Antialiased rasterization conserves drawn area for any rect."""
    rng = np.random.default_rng(seed)
    x0 = int(rng.integers(0, 1000 - width))
    y0 = int(rng.integers(0, 1000 - width))
    rect = Rect(x0, y0, x0 + width, y0 + width)
    image = rasterize([rect], (1000, 1000), 50)
    pixel_area = (1000 / 50) ** 2
    assert image.sum() * pixel_area == pytest.approx(rect.area, rel=1e-9)
