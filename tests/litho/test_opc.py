"""Tests for the OPC-lite mask correction loop."""

import numpy as np
import pytest

from repro.layout import Clip, Rect, rasterize
from repro.litho import (
    LithoSimulator,
    OPCConfig,
    ThresholdResist,
    duv_model,
    optimize_mask,
    print_error,
)


def neck_target(grid=96, size=1200):
    """A marginal 40 nm neck pattern (a known hotspot of the DUV stack)."""
    rects = [
        Rect(100, 540, 550, 660),
        Rect(650, 540, 1100, 660),
        Rect(550, 580, 650, 620),
    ]
    return rasterize(rects, (size, size), grid), size / grid


class TestPrintError:
    def test_zero_for_identical(self):
        target = np.zeros((8, 8), dtype=bool)
        target[2:6, 2:6] = True
        assert print_error(target, target) == 0.0

    def test_counts_fraction(self):
        a = np.zeros((4, 4), dtype=bool)
        b = a.copy()
        b[0, 0] = True
        assert print_error(b, a) == pytest.approx(1 / 16)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            print_error(np.zeros((2, 2)), np.zeros((3, 3)))


class TestOPCConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            OPCConfig(iterations=0)
        with pytest.raises(ValueError):
            OPCConfig(step=0)
        with pytest.raises(ValueError):
            OPCConfig(slope=-1)
        with pytest.raises(ValueError):
            OPCConfig(blur_px=-0.5)


class TestOptimizeMask:
    def test_reduces_print_error_on_marginal_pattern(self):
        target, pixel_nm = neck_target()
        result = optimize_mask(
            target, duv_model(), ThresholdResist(), pixel_nm,
            OPCConfig(iterations=15),
        )
        assert result.initial_error > 0  # the neck fails as drawn
        assert result.improved
        assert result.final_error < 0.5 * result.initial_error

    def test_mask_stays_in_unit_range(self):
        target, pixel_nm = neck_target()
        result = optimize_mask(
            target, duv_model(), ThresholdResist(), pixel_nm,
            OPCConfig(iterations=5),
        )
        assert result.mask.min() >= 0.0
        assert result.mask.max() <= 1.0

    def test_robust_pattern_stays_clean(self):
        """A pattern that already prints perfectly is left (near)
        unchanged in print error."""
        rects = [Rect(100, 500, 1100, 700)]  # fat 200 nm line
        target = rasterize(rects, (1200, 1200), 96)
        result = optimize_mask(
            target, duv_model(), ThresholdResist(), 12.5,
            OPCConfig(iterations=5),
        )
        assert result.initial_error == pytest.approx(0.0, abs=0.01)
        assert result.final_error <= result.initial_error + 1e-9

    def test_error_trace_recorded(self):
        target, pixel_nm = neck_target()
        result = optimize_mask(
            target, duv_model(), ThresholdResist(), pixel_nm,
            OPCConfig(iterations=7),
        )
        assert len(result.error_trace) == 7

    def test_corrected_mask_defuses_hotspot(self):
        """End-to-end: the corrected mask prints the neck without the
        nominal-corner defects that flagged the original clip."""
        target, pixel_nm = neck_target()
        optical = duv_model()
        resist = ThresholdResist()
        result = optimize_mask(
            target, optical, resist, pixel_nm, OPCConfig(iterations=20)
        )
        printed = resist.develop(optical.aerial_image(result.mask, pixel_nm))
        # the neck region now prints connected
        neck_rows = slice(int(96 * 580 / 1200), int(96 * 620 / 1200))
        neck_cols = slice(int(96 * 550 / 1200), int(96 * 650 / 1200))
        assert printed[neck_rows, neck_cols].mean() > 0.5
