"""Tests for the compact optical model."""

import numpy as np
import pytest

from repro.litho.optics import OpticalModel, duv_model, euv_model


class TestOpticalModel:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            OpticalModel(wavelength_nm=0, na=1.0)
        with pytest.raises(ValueError):
            OpticalModel(wavelength_nm=193, na=-1)
        with pytest.raises(ValueError):
            OpticalModel(wavelength_nm=193, na=1.0, k1=0)

    def test_resolution_formula(self):
        model = OpticalModel(wavelength_nm=193, na=1.35, k1=0.35)
        assert model.resolution_nm == pytest.approx(0.35 * 193 / 1.35)

    def test_euv_resolves_finer_than_duv(self):
        assert euv_model().resolution_nm < duv_model().resolution_nm

    def test_defocus_broadens_psf(self):
        model = duv_model()
        assert model.psf_sigma_nm(50.0) > model.psf_sigma_nm(0.0)
        assert model.psf_sigma_nm(-50.0) == model.psf_sigma_nm(50.0)

    def test_kernel_normalized(self):
        kernel = duv_model().psf_kernel(pixel_nm=10.0)
        assert kernel.sum() == pytest.approx(1.0)
        assert kernel.shape[0] == kernel.shape[1]
        assert kernel.shape[0] % 2 == 1

    def test_kernel_symmetric(self):
        kernel = duv_model().psf_kernel(pixel_nm=10.0, defocus_nm=30.0)
        np.testing.assert_allclose(kernel, kernel.T)
        np.testing.assert_allclose(kernel, kernel[::-1, ::-1])

    def test_kernel_rejects_bad_pixel(self):
        with pytest.raises(ValueError):
            duv_model().psf_kernel(pixel_nm=0.0)


class TestAerialImage:
    def test_clear_field_is_unit_intensity(self):
        model = duv_model()
        intensity = model.aerial_image(np.ones((32, 32)), pixel_nm=10.0)
        np.testing.assert_allclose(intensity, 1.0, atol=1e-9)

    def test_dark_field_is_zero(self):
        model = duv_model()
        intensity = model.aerial_image(np.zeros((32, 32)), pixel_nm=10.0)
        np.testing.assert_allclose(intensity, 0.0, atol=1e-12)

    def test_dose_scales_intensity(self):
        model = duv_model()
        rng = np.random.default_rng(0)
        mask = (rng.random((24, 24)) > 0.5).astype(float)
        base = model.aerial_image(mask, 10.0, dose=1.0)
        boosted = model.aerial_image(mask, 10.0, dose=1.2)
        np.testing.assert_allclose(boosted, 1.2 * base)

    def test_defocus_blurs_edges(self):
        """Defocus reduces peak intensity of an isolated narrow line."""
        model = duv_model()
        mask = np.zeros((64, 64))
        mask[:, 30:34] = 1.0  # 40 nm line at 10 nm pixels
        focused = model.aerial_image(mask, 10.0, defocus_nm=0.0)
        blurred = model.aerial_image(mask, 10.0, defocus_nm=60.0)
        assert blurred.max() < focused.max()

    def test_shape_preserved(self):
        model = euv_model()
        out = model.aerial_image(np.zeros((40, 56)), 5.0)
        assert out.shape == (40, 56)

    def test_rejects_bad_inputs(self):
        model = duv_model()
        with pytest.raises(ValueError):
            model.aerial_image(np.zeros((4, 4, 4)), 10.0)
        with pytest.raises(ValueError):
            model.aerial_image(np.zeros((4, 4)), 10.0, dose=0.0)

    def test_intensity_bounded_by_dose(self):
        model = duv_model()
        rng = np.random.default_rng(1)
        mask = (rng.random((32, 32)) > 0.3).astype(float)
        intensity = model.aerial_image(mask, 10.0, dose=1.0)
        assert intensity.min() >= -1e-12
        assert intensity.max() <= 1.0 + 1e-9
