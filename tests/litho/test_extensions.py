"""Tests for the litho extensions: SOCS optics, process windows, DRC."""

import numpy as np
import pytest

from repro.layout import Clip, Rect
from repro.litho import (
    DRCRules,
    LithoSimulator,
    ProcessWindow,
    SOCSModel,
    analyze_process_window,
    check_clip,
    drc_screen,
    duv_model,
    gauss_hermite_kernel,
)


def make_clip(rects, size=1200, margin=300, idx=0):
    window = Rect(0, 0, size, size)
    return Clip(window, window.expanded(-margin), rects=rects, index=idx)


class TestGaussHermiteKernel:
    def test_order_zero_is_gaussian(self):
        kernel = gauss_hermite_kernel(0, 0, sigma_px=2.0, radius=8)
        assert kernel.shape == (17, 17)
        # symmetric, positive, peaked at centre
        np.testing.assert_allclose(kernel, kernel[::-1, ::-1])
        assert kernel.min() >= 0
        assert kernel[8, 8] == kernel.max()

    def test_l2_normalized(self):
        for orders in ((0, 0), (1, 0), (2, 1)):
            kernel = gauss_hermite_kernel(*orders, sigma_px=1.5, radius=6)
            assert (kernel**2).sum() == pytest.approx(1.0)

    def test_higher_orders_have_sign_changes(self):
        kernel = gauss_hermite_kernel(1, 0, sigma_px=2.0, radius=8)
        assert kernel.min() < 0 < kernel.max()

    def test_orthogonality(self):
        """Distinct Hermite orders are orthogonal kernels."""
        k0 = gauss_hermite_kernel(0, 0, sigma_px=2.0, radius=10)
        k1 = gauss_hermite_kernel(1, 0, sigma_px=2.0, radius=10)
        assert abs((k0 * k1).sum()) < 1e-10

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            gauss_hermite_kernel(-1, 0, 1.0, 4)
        with pytest.raises(ValueError):
            gauss_hermite_kernel(0, 0, 0.0, 4)


class TestSOCSModel:
    def test_clear_field_normalized(self):
        model = SOCSModel(duv_model(), rank=3)
        intensity = model.aerial_image(np.ones((32, 32)), pixel_nm=10.0)
        np.testing.assert_allclose(intensity, 1.0, atol=0.05)

    def test_dark_field_zero(self):
        model = SOCSModel(duv_model(), rank=3)
        intensity = model.aerial_image(np.zeros((32, 32)), pixel_nm=10.0)
        np.testing.assert_allclose(intensity, 0.0, atol=1e-12)

    def test_rank1_close_to_base_model(self):
        """A rank-1 SOCS is the base Gaussian model up to normalization."""
        base = duv_model()
        model = SOCSModel(base, rank=1)
        mask = np.zeros((48, 48))
        mask[:, 20:28] = 1.0
        socs = model.aerial_image(mask, 10.0)
        plain = base.aerial_image(mask, 10.0)
        # same spatial structure: peak positions coincide
        assert np.argmax(socs[24]) == np.argmax(plain[24])
        np.testing.assert_allclose(socs, plain, atol=0.08)

    def test_higher_rank_adds_sidelobes(self):
        """Higher-order kernels change the proximity response."""
        mask = np.zeros((48, 48))
        mask[:, 22:26] = 1.0
        low = SOCSModel(duv_model(), rank=1).aerial_image(mask, 10.0)
        high = SOCSModel(duv_model(), rank=5).aerial_image(mask, 10.0)
        assert not np.allclose(low, high, atol=1e-3)

    def test_weights_sum_to_one(self):
        model = SOCSModel(duv_model(), rank=4)
        weights, kernels = model.kernels(pixel_nm=10.0)
        assert len(kernels) == 4
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(np.diff(weights) <= 0)  # decaying

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            SOCSModel(duv_model(), rank=0)
        with pytest.raises(ValueError):
            SOCSModel(duv_model(), weight_decay=1.5)
        model = SOCSModel(duv_model())
        with pytest.raises(ValueError):
            model.aerial_image(np.zeros(5), 10.0)
        with pytest.raises(ValueError):
            model.aerial_image(np.zeros((4, 4)), 10.0, dose=0)


class TestProcessWindow:
    @pytest.fixture(scope="class")
    def simulator(self):
        return LithoSimulator.for_tech(28, grid=96)

    def test_robust_pattern_has_wide_window(self, simulator):
        clip = make_clip([Rect(100, 550, 1100, 650)])  # 100 nm line
        window = analyze_process_window(simulator, clip,
                                        dose_steps=5, defocus_steps=3)
        assert window.window_fraction > 0.9
        assert window.dose_latitude > 0.8

    def test_marginal_pattern_has_small_window(self, simulator):
        clip = make_clip(
            [
                Rect(100, 540, 550, 660),
                Rect(650, 540, 1100, 660),
                Rect(550, 575, 650, 625),  # 50 nm neck at the CD edge
            ]
        )
        robust = make_clip([Rect(100, 550, 1100, 650)])
        marginal = analyze_process_window(simulator, clip,
                                          dose_steps=5, defocus_steps=3)
        wide = analyze_process_window(simulator, robust,
                                      dose_steps=5, defocus_steps=3)
        assert marginal.window_fraction < wide.window_fraction

    def test_hopeless_pattern_zero_window(self, simulator):
        clip = make_clip([Rect(100, 590, 1100, 610)])  # 20 nm line
        window = analyze_process_window(simulator, clip,
                                        dose_steps=3, defocus_steps=2)
        assert window.window_fraction == 0.0
        assert window.dose_latitude == 0.0
        assert window.depth_of_focus_nm == 0.0

    def test_grid_shapes(self, simulator):
        clip = make_clip([Rect(100, 550, 1100, 650)])
        window = analyze_process_window(
            simulator, clip, dose_steps=4, defocus_steps=3
        )
        assert window.passes.shape == (4, 3)
        assert len(window.doses) == 4
        assert len(window.defocus_nm) == 3

    def test_rejects_bad_grid(self, simulator):
        clip = make_clip([Rect(100, 550, 1100, 650)])
        with pytest.raises(ValueError):
            analyze_process_window(simulator, clip, dose_steps=0)

    def test_window_dataclass_properties(self):
        passes = np.array([[True, False], [True, True], [False, False]])
        window = ProcessWindow(
            doses=np.array([0.9, 1.0, 1.1]),
            defocus_nm=np.array([0.0, 30.0]),
            passes=passes,
        )
        assert window.window_fraction == pytest.approx(0.5)
        assert window.depth_of_focus_nm == pytest.approx(30.0)


class TestDRC:
    RULES = DRCRules(min_width_nm=50, min_spacing_nm=50)

    def test_clean_clip_passes(self):
        clip = make_clip([Rect(100, 500, 1100, 620)])  # 120 nm line
        assert check_clip(clip, self.RULES) == []

    def test_narrow_wire_flagged(self):
        clip = make_clip([Rect(100, 580, 1100, 610)])  # 30 nm < 50 rule
        violations = check_clip(clip, self.RULES)
        assert any(v.kind == "width" for v in violations)

    def test_tight_spacing_flagged(self):
        clip = make_clip(
            [Rect(100, 450, 1100, 580), Rect(100, 610, 1100, 740)]  # 30 gap
        )
        violations = check_clip(clip, self.RULES)
        assert any(v.kind == "spacing" for v in violations)

    def test_violation_outside_core_ignored(self):
        # narrow sliver near the clip edge (outside the 300 nm core)
        clip = make_clip([Rect(100, 50, 1100, 80), Rect(100, 500, 1100, 650)])
        assert check_clip(clip, self.RULES) == []

    def test_rejects_bad_rules(self):
        with pytest.raises(ValueError):
            DRCRules(min_width_nm=0, min_spacing_nm=10)

    def test_screen_vector(self):
        clean = make_clip([Rect(100, 500, 1100, 620)], idx=0)
        dirty = make_clip([Rect(100, 580, 1100, 610)], idx=1)
        verdicts = drc_screen([clean, dirty], self.RULES)
        assert verdicts.tolist() == [False, True]

    def test_hotspots_can_be_drc_clean(self):
        """The raison d'etre of litho hotspot detection: patterns at the
        drawn rules (DRC-clean) can still fail printing."""
        sim = LithoSimulator.for_tech(28, grid=96)
        # 40 nm neck: exactly at a 40 nm width rule (DRC-clean) but
        # below the simulator's ~50 nm lithographic CD
        clip = make_clip(
            [
                Rect(100, 540, 550, 660),
                Rect(650, 540, 1100, 660),
                Rect(550, 580, 650, 620),
            ]
        )
        assert check_clip(clip, DRCRules(40, 40)) == []
        assert sim.simulate(clip).hotspot
