"""Tests for contour extraction and CD metrology."""

import numpy as np
import pytest

from repro.layout import Rect, rasterize
from repro.litho import (
    ThresholdResist,
    cd_uniformity,
    contour_crossings,
    duv_model,
    measure_cd,
)


def aerial_of(rects, grid=96, size=1200):
    mask = rasterize(rects, (size, size), grid)
    return duv_model().aerial_image(mask, size / grid), size / grid


class TestContourCrossings:
    def test_synthetic_ramp(self):
        """A linear ramp crosses 0.5 exactly halfway."""
        intensity = np.tile(np.linspace(0, 1, 11), (3, 1))
        crossings = contour_crossings(intensity, 0.5, row=1)
        assert len(crossings) == 1
        assert crossings[0] == pytest.approx(5.0)

    def test_no_crossings_on_flat(self):
        intensity = np.full((2, 10), 0.2)
        assert len(contour_crossings(intensity, 0.5, 0)) == 0

    def test_feature_has_two_crossings(self):
        intensity, _ = aerial_of([Rect(400, 100, 800, 1100)])
        crossings = contour_crossings(intensity, 0.35, row=48)
        assert len(crossings) == 2
        assert crossings[0] < crossings[1]

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            contour_crossings(np.zeros(5), 0.5, 0)
        with pytest.raises(IndexError):
            contour_crossings(np.zeros((3, 5)), 0.5, 7)


class TestMeasureCd:
    def test_wide_line_cd_close_to_drawn(self):
        """A robust 200 nm vertical line prints near its drawn width."""
        intensity, pixel_nm = aerial_of([Rect(500, 100, 700, 1100)])
        cd = measure_cd(intensity, 0.35, row=48, near_px=48,
                        pixel_nm=pixel_nm)
        assert cd == pytest.approx(200, abs=25)

    def test_narrow_line_prints_below_drawn(self):
        """Near-CD features print narrower than drawn (corner of the
        process window) — metrology should see that."""
        intensity, pixel_nm = aerial_of([Rect(570, 100, 630, 1100)])  # 60 nm
        cd = measure_cd(intensity, 0.35, row=48, near_px=48,
                        pixel_nm=pixel_nm)
        assert cd is not None
        assert cd < 60

    def test_returns_none_outside_features(self):
        intensity, pixel_nm = aerial_of([Rect(500, 100, 700, 1100)])
        assert measure_cd(intensity, 0.35, row=48, near_px=5,
                          pixel_nm=pixel_nm) is None

    def test_returns_none_when_nothing_prints(self):
        intensity, pixel_nm = aerial_of([Rect(595, 100, 605, 1100)])  # 10 nm
        assert measure_cd(intensity, 0.35, row=48, near_px=48,
                          pixel_nm=pixel_nm) is None


class TestCdUniformity:
    def test_uniform_line_low_std(self):
        intensity, pixel_nm = aerial_of([Rect(500, 100, 700, 1100)])
        stats = cd_uniformity(intensity, 0.35, rows=range(20, 76, 8),
                              near_px=48, pixel_nm=pixel_nm)
        assert stats["count"] == 7
        assert stats["std"] < 3.0
        assert stats["min"] <= stats["mean"] + 1e-9
        assert stats["mean"] <= stats["max"] + 1e-9

    def test_necked_line_detected_by_count_or_spread(self):
        intensity, pixel_nm = aerial_of(
            [
                Rect(500, 100, 700, 560),
                Rect(500, 640, 700, 1100),
                Rect(570, 560, 630, 640),  # 60 nm neck in a 200 nm line
            ]
        )
        stats = cd_uniformity(intensity, 0.35, rows=range(20, 76, 4),
                              near_px=48, pixel_nm=pixel_nm)
        # the neck shows up as a much smaller minimum CD
        assert stats["min"] < 0.5 * stats["max"]

    def test_empty_when_nothing_prints(self):
        intensity = np.zeros((10, 10))
        stats = cd_uniformity(intensity, 0.35, rows=[2, 5], near_px=5)
        assert stats["count"] == 0
        assert stats["mean"] == 0.0
