"""Tests for the resist acid-diffusion blur."""

import numpy as np
import pytest

from repro.litho import ThresholdResist


class TestDiffusion:
    def test_zero_diffusion_is_identity(self):
        resist = ThresholdResist(diffusion_px=0.0)
        rng = np.random.default_rng(0)
        intensity = rng.random((16, 16))
        np.testing.assert_array_equal(
            resist.latent_image(intensity), intensity
        )

    def test_diffusion_smooths(self):
        """The latent image has lower gradient energy than the input."""
        resist = ThresholdResist(diffusion_px=1.5)
        rng = np.random.default_rng(1)
        intensity = rng.random((32, 32))
        latent = resist.latent_image(intensity)
        grad_in = np.abs(np.diff(intensity, axis=0)).mean()
        grad_out = np.abs(np.diff(latent, axis=0)).mean()
        assert grad_out < grad_in

    def test_diffusion_preserves_mean(self):
        resist = ThresholdResist(diffusion_px=2.0)
        rng = np.random.default_rng(2)
        intensity = rng.random((32, 32))
        assert resist.latent_image(intensity).mean() == pytest.approx(
            intensity.mean(), rel=0.02
        )

    def test_diffusion_suppresses_speckle(self):
        """A single hot pixel above threshold no longer prints after
        diffusion — the physical noise-suppression effect."""
        intensity = np.zeros((16, 16))
        intensity[8, 8] = 0.6
        sharp = ThresholdResist(threshold=0.35, diffusion_px=0.0)
        blurred = ThresholdResist(threshold=0.35, diffusion_px=1.5)
        assert sharp.develop(intensity)[8, 8]
        assert not blurred.develop(intensity)[8, 8]

    def test_rejects_negative_diffusion(self):
        with pytest.raises(ValueError):
            ThresholdResist(diffusion_px=-1.0)

    def test_contour_offset_uses_latent(self):
        intensity = np.zeros((8, 8))
        intensity[4, 4] = 1.0
        resist = ThresholdResist(threshold=0.35, diffusion_px=1.0)
        offsets = resist.contour_offset(intensity)
        # the blurred peak is below the raw value
        assert offsets[4, 4] < 1.0 - 0.35

    def test_simulator_with_diffused_resist(self):
        """A diffused resist stack still labels clips sensibly."""
        from repro.layout import Clip, Rect
        from repro.litho import LithoSimulator, duv_model

        resist = ThresholdResist(threshold=0.35, diffusion_px=0.8)
        sim = LithoSimulator(optical=duv_model(), resist=resist, grid=96)
        window = Rect(0, 0, 1200, 1200)
        wide = Clip(window, window.expanded(-300),
                    rects=[Rect(100, 500, 1100, 700)], index=0)
        skinny = Clip(window, window.expanded(-300),
                      rects=[Rect(100, 585, 1100, 615)], index=1)
        assert not sim.simulate(wide).hotspot
        assert sim.simulate(skinny).hotspot
