"""Tests for resist, defect detection, and the litho simulator."""

import numpy as np
import pytest

from repro.layout import Clip, Rect
from repro.litho import (
    LithoLabeler,
    LithoSimulator,
    ProcessCorner,
    ThresholdResist,
    default_corners,
    edge_placement_error,
    find_defects,
)


def make_clip(rects, size=1200, margin=300, idx=0):
    window = Rect(0, 0, size, size)
    return Clip(window, window.expanded(-margin), rects=rects, index=idx)


class TestThresholdResist:
    def test_develop_thresholds(self):
        resist = ThresholdResist(threshold=0.5)
        intensity = np.array([[0.1, 0.5], [0.7, 0.49]])
        np.testing.assert_array_equal(
            resist.develop(intensity), [[False, True], [True, False]]
        )

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            ThresholdResist(threshold=0.0)
        with pytest.raises(ValueError):
            ThresholdResist(threshold=2.0)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            ThresholdResist().develop(np.zeros(5))

    def test_contour_offset_sign(self):
        resist = ThresholdResist(threshold=0.4)
        offsets = resist.contour_offset(np.array([[0.3, 0.5]]))
        assert offsets[0, 0] < 0 < offsets[0, 1]


class TestEdgePlacementError:
    def test_perfect_print_zero_epe(self):
        target = np.zeros((20, 20), dtype=bool)
        target[5:15, 5:15] = True
        field = edge_placement_error(target, target.copy())
        np.testing.assert_allclose(field, 0.0)

    def test_uniform_shrink_measured(self):
        target = np.zeros((20, 20), dtype=bool)
        target[5:15, 5:15] = True
        printed = np.zeros((20, 20), dtype=bool)
        printed[7:13, 7:13] = True  # shrunk by 2 px on each side
        field = edge_placement_error(target, printed)
        # edge pixels of the target should be ~2 px from the printed edge
        assert field.max() >= 2.0
        assert field[field > 0].min() >= 1.0

    def test_nothing_printed_max_epe(self):
        target = np.zeros((10, 10), dtype=bool)
        target[4:6, 4:6] = True
        field = edge_placement_error(target, np.zeros((10, 10), dtype=bool))
        assert field.max() == 10.0

    def test_empty_target_zero_field(self):
        field = edge_placement_error(
            np.zeros((8, 8), dtype=bool), np.ones((8, 8), dtype=bool)
        )
        np.testing.assert_allclose(field, 0.0)


class TestFindDefects:
    def _core(self, shape):
        return (2, 2, shape[0] - 2, shape[1] - 2)

    def test_no_defects_on_perfect_print(self):
        target = np.zeros((32, 32), dtype=bool)
        target[8:24, 8:24] = True
        assert find_defects(target, target.copy(), self._core(target.shape)) == []

    def test_pinch_detected(self):
        target = np.zeros((32, 32), dtype=bool)
        target[8:24, 8:24] = True
        printed = target.copy()
        printed[14:18, 8:24] = False  # feature broken in the middle
        defects = find_defects(target, printed, self._core(target.shape))
        assert any(d.kind == "pinch" for d in defects)

    def test_bridge_detected(self):
        target = np.zeros((32, 32), dtype=bool)
        target[4:12, 4:28] = True
        target[20:28, 4:28] = True
        printed = target.copy()
        printed[12:20, 14:18] = True  # resist connecting the two lines
        defects = find_defects(target, printed, self._core(target.shape))
        assert any(d.kind == "bridge" for d in defects)

    def test_defect_outside_core_ignored(self):
        target = np.zeros((32, 32), dtype=bool)
        target[0:32, 4:28] = True
        printed = target.copy()
        printed[0:1, 4:28] = False  # pinch at the very top margin
        defects = find_defects(target, printed, (8, 8, 24, 24))
        assert defects == []

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatch"):
            find_defects(
                np.zeros((8, 8), dtype=bool),
                np.zeros((9, 9), dtype=bool),
                (1, 1, 7, 7),
            )

    def test_bad_core_raises(self):
        target = np.zeros((8, 8), dtype=bool)
        with pytest.raises(ValueError, match="core"):
            find_defects(target, target, (0, 0, 9, 8))

    def test_min_defect_px_filters_noise(self):
        target = np.zeros((32, 32), dtype=bool)
        target[8:24, 8:24] = True
        printed = target.copy()
        printed[15, 15] = False  # single-pixel speck well inside
        defects = find_defects(
            target, printed, self._core(target.shape), min_defect_px=4
        )
        assert all(d.kind != "pinch" for d in defects)


class TestProcessCorner:
    def test_default_corners_include_nominal(self):
        corners = default_corners()
        assert corners[0].name == "nominal"
        assert len(corners) == 4

    def test_rejects_zero_dose(self):
        with pytest.raises(ValueError):
            ProcessCorner(dose=0.0)


class TestLithoSimulator:
    def test_wide_line_prints_clean(self):
        sim = LithoSimulator.for_tech(28, grid=96)
        clip = make_clip([Rect(100, 550, 1100, 650)])
        result = sim.simulate(clip)
        assert not result.hotspot
        assert result.defect_count == 0

    def test_narrow_neck_is_hotspot(self):
        sim = LithoSimulator.for_tech(28, grid=96)
        clip = make_clip(
            [
                Rect(100, 540, 550, 660),
                Rect(650, 540, 1100, 660),
                Rect(550, 580, 650, 620),  # 40 nm neck, below ~50 nm CD
            ]
        )
        result = sim.simulate(clip)
        assert result.hotspot
        assert result.defect_count > 0
        assert result.corner_names  # at least one failing corner recorded

    def test_tight_gap_is_hotspot(self):
        sim = LithoSimulator.for_tech(28, grid=96)
        clip = make_clip(
            [Rect(100, 450, 1100, 590), Rect(100, 610, 1100, 750)]  # 20 nm gap
        )
        assert sim.simulate(clip).hotspot

    def test_euv_critical_dimension_smaller(self):
        """A 30 nm line is hopeless in DUV but fine in EUV."""
        window = Rect(0, 0, 640, 640)
        clip = Clip(window, window.expanded(-160),
                    rects=[Rect(50, 305, 590, 335)], index=0)
        assert not LithoSimulator.for_tech(7, grid=96).simulate(clip).hotspot
        assert LithoSimulator.for_tech(28, grid=96).simulate(clip).hotspot

    def test_deterministic(self):
        sim = LithoSimulator.for_tech(28, grid=96)
        clip = make_clip([Rect(100, 540, 1100, 590)])
        assert sim.simulate(clip).hotspot == sim.simulate(clip).hotspot

    def test_for_tech_picks_model(self):
        assert LithoSimulator.for_tech(7).optical.wavelength_nm == 13.5
        assert LithoSimulator.for_tech(28).optical.wavelength_nm == 193.0

    def test_rejects_no_corners(self):
        with pytest.raises(ValueError):
            LithoSimulator(corners=())

    def test_rejects_bad_grid(self):
        with pytest.raises(ValueError):
            LithoSimulator(grid=0)


class TestLithoLabeler:
    def _labeler(self):
        return LithoLabeler(LithoSimulator.for_tech(28, grid=96))

    def test_counts_unique_queries(self):
        labeler = self._labeler()
        clip_a = make_clip([Rect(100, 550, 1100, 650)], idx=0)
        clip_b = make_clip([Rect(100, 450, 1100, 590),
                            Rect(100, 610, 1100, 750)], idx=1)
        labeler.label(clip_a)
        labeler.label(clip_b)
        labeler.label(clip_a)  # cached, free
        assert labeler.query_count == 2

    def test_labels_binary(self):
        labeler = self._labeler()
        clean = make_clip([Rect(100, 550, 1100, 650)], idx=0)
        dirty = make_clip([Rect(100, 450, 1100, 590),
                           Rect(100, 610, 1100, 750)], idx=1)
        assert labeler.label(clean) == 0
        assert labeler.label(dirty) == 1

    def test_label_many(self):
        labeler = self._labeler()
        clips = [
            make_clip([Rect(100, 550 + 10 * i, 1100, 650 + 10 * i)], idx=i)
            for i in range(3)
        ]
        labels = labeler.label_many(clips)
        assert labels == [0, 0, 0]
        assert labeler.query_count == 3

    def test_runtime_model(self):
        labeler = self._labeler()
        labeler.label(make_clip([Rect(100, 550, 1100, 650)], idx=0))
        assert labeler.simulated_seconds == pytest.approx(10.0)

    def test_cache_keyed_by_geometry_not_identity(self):
        """Regression: equal geometry from *different* Clip instances
        (different indices, no index at all) shares one cached verdict —
        the cache is content-addressed, not object/index-addressed."""
        labeler = self._labeler()
        rects = [Rect(100, 550, 1100, 650)]
        first = make_clip(list(rects), idx=0)
        twin = make_clip(list(rects), idx=7)       # other index
        unindexed = make_clip(list(rects), idx=-1)  # no index assigned
        assert labeler.label(first) == labeler.label(twin)
        assert labeler.label(unindexed) == labeler.label(first)
        assert labeler.query_count == 1
        assert labeler.is_cached(twin)

    def test_label_batch_dedupes_and_reports(self):
        from repro.engine import EventBus, EventLog

        bus = EventBus()
        log = bus.subscribe(EventLog())
        labeler = LithoLabeler(
            LithoSimulator.for_tech(28, grid=96), bus=bus
        )
        base = make_clip([Rect(100, 550, 1100, 650)], idx=0)
        other = make_clip([Rect(100, 500, 1100, 700)], idx=1)
        dup = make_clip([Rect(100, 550, 1100, 650)], idx=2)  # == base
        labeler.label(base)  # warm one entry
        labels = labeler.label_batch([base, other, dup, other])
        assert labels[0] == labels[2] == labeler.label(base)
        assert labeler.query_count == 2  # base + other, dup was free
        [event] = log.of_kind("labels_computed")
        assert event.payload["n_clips"] == 4
        assert event.payload["cache_hits"] == 2   # base + its duplicate
        assert event.payload["cache_misses"] == 1  # other (deduped twice)
        assert event.payload["deduped"] == 1
        assert event.payload["simulated_seconds"] == 10.0

    def test_reset(self):
        labeler = self._labeler()
        labeler.label(make_clip([Rect(100, 550, 1100, 650)], idx=0))
        labeler.reset()
        assert labeler.query_count == 0


class TestLithoBudget:
    def _labeler(self, max_queries):
        return LithoLabeler(
            LithoSimulator.for_tech(28, grid=96), max_queries=max_queries
        )

    def _clips(self, n):
        return [
            make_clip([Rect(100, 500 + 10 * i, 1100, 650 + 10 * i)], idx=i)
            for i in range(n)
        ]

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError, match="max_queries"):
            self._labeler(max_queries=0)

    def test_label_raises_before_simulating_over_budget(self):
        from repro.litho import LithoBudgetExceeded

        labeler = self._labeler(max_queries=2)
        a, b, c = self._clips(3)
        labeler.label(a)
        labeler.label(b)
        labeler.label(a)  # cached, free — never counts against budget
        with pytest.raises(LithoBudgetExceeded) as info:
            labeler.label(c)
        assert labeler.query_count == 2  # the meter never exceeds budget
        assert info.value.budget == 2
        assert info.value.used == 2
        assert info.value.requested == 1

    def test_label_batch_overrun_keeps_committed_chunks(self):
        """The budget is enforced per chunk: an overrun mid-batch keeps
        every already-committed verdict and never charges the rejected
        chunk."""
        from repro.litho import LithoBudgetExceeded

        labeler = self._labeler(max_queries=3)
        clips = self._clips(5)
        with pytest.raises(LithoBudgetExceeded):
            labeler.label_batch(clips, chunk_size=2)
        # chunk [0, 1] committed; chunk [2, 3] was rejected up front
        assert labeler.query_count == 2
        assert labeler.is_cached(clips[0])
        assert labeler.is_cached(clips[1])
        assert not labeler.is_cached(clips[2])
        # the surviving verdicts are free on the next request
        labeler.label_batch(clips[:3], chunk_size=2)
        assert labeler.query_count == 3
