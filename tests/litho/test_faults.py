"""Fault injection: transient-failure retry and per-chunk verdict commits."""

import pytest

from repro.engine.events import EventBus, EventLog
from repro.layout import Clip, Rect
from repro.litho import (
    FaultPlan,
    FlakySimulator,
    LithoLabeler,
    TransientSimulationError,
)


def make_clips(n, size=1200, margin=300):
    """``n`` clips with distinct geometry (distinct content keys)."""
    window = Rect(0, 0, size, size)
    return [
        Clip(
            window,
            window.expanded(-margin),
            rects=[Rect(100, 400 + 10 * i, 1100, 600 + 10 * i)],
            index=i,
        )
        for i in range(n)
    ]


class CountingSimulator:
    """Deterministic stand-in oracle: verdict = parity of the clip index."""

    def __init__(self):
        self.calls = 0

    def is_hotspot(self, clip):
        self.calls += 1
        return clip.index % 2 == 1


def flaky_labeler(plan, bus=None, **kwargs):
    kwargs.setdefault("max_retries", 2)
    kwargs.setdefault("retry_base_delay", 0.0)
    return LithoLabeler(
        FlakySimulator(CountingSimulator(), plan), bus=bus, **kwargs
    )


class TestFaultPlan:
    def test_fail_first(self):
        plan = FaultPlan.fail_first(2)
        assert plan.should_fail(0) and plan.should_fail(1)
        assert not plan.should_fail(2)

    def test_at(self):
        plan = FaultPlan.at(3, 5)
        assert plan.should_fail(3) and plan.should_fail(5)
        assert not plan.should_fail(4)


class TestFlakySimulator:
    def test_counts_calls_and_faults(self):
        sim = FlakySimulator(CountingSimulator(), FaultPlan.fail_first(1))
        [clip] = make_clips(1)
        with pytest.raises(TransientSimulationError):
            sim.is_hotspot(clip)
        assert sim.is_hotspot(clip) == (clip.index % 2 == 1)
        assert sim.calls == 2
        assert sim.faults == 1


class TestLabelerRetry:
    def test_retries_recover_and_match_clean_run(self):
        clips = make_clips(6)
        clean = LithoLabeler(CountingSimulator())
        bus = EventBus()
        log = bus.subscribe(EventLog())
        flaky = flaky_labeler(FaultPlan.fail_first(2), bus=bus)

        assert flaky.label_batch(clips, chunk_size=2) == (
            clean.label_batch(clips, chunk_size=2)
        )
        assert flaky.query_count == clean.query_count == 6
        # both injected faults were retried and reported on the bus
        retry_events = log.of_kind("simulation_retry")
        assert sum(e.payload["retries"] for e in retry_events) == 2
        [computed] = log.of_kind("labels_computed")
        assert computed.payload["retries"] == 2

    def test_exhausted_retries_keep_completed_chunks(self):
        """Chunk 0 answers; chunk 1 hits a 3-failure streak that exceeds
        max_retries=2.  The error propagates, but chunk 0's verdicts are
        committed and charged — resumable labeling."""
        clips = make_clips(4)
        labeler = flaky_labeler(FaultPlan.at(2, 3, 4))
        with pytest.raises(TransientSimulationError):
            labeler.label_batch(clips, chunk_size=2)
        assert labeler.query_count == 2
        assert labeler.is_cached(clips[0]) and labeler.is_cached(clips[1])
        assert not labeler.is_cached(clips[2])

        # a retry of the request pays only for the missing chunk
        verdicts = labeler.label_batch(clips, chunk_size=2)
        assert labeler.query_count == 4
        assert verdicts == [i % 2 for i in range(4)]

    def test_single_label_retries(self):
        [clip] = make_clips(1)
        labeler = flaky_labeler(FaultPlan.fail_first(2))
        assert labeler.label(clip) == 0
        assert labeler.query_count == 1

    def test_zero_retry_budget_propagates_immediately(self):
        [clip] = make_clips(1)
        labeler = flaky_labeler(FaultPlan.fail_first(1), max_retries=0)
        with pytest.raises(TransientSimulationError):
            labeler.label(clip)

    def test_non_transient_errors_not_retried(self):
        class BrokenSimulator:
            def is_hotspot(self, clip):
                raise RuntimeError("permanent")

        [clip] = make_clips(1)
        labeler = LithoLabeler(
            BrokenSimulator(), max_retries=5, retry_base_delay=0.0
        )
        with pytest.raises(RuntimeError, match="permanent"):
            labeler.label(clip)

    def test_rejects_negative_retry_config(self):
        sim = CountingSimulator()
        with pytest.raises(ValueError, match="max_retries"):
            LithoLabeler(sim, max_retries=-1)
        with pytest.raises(ValueError, match="delay"):
            LithoLabeler(sim, retry_base_delay=-0.1)


class TestLabelerState:
    def test_get_set_state_roundtrip(self):
        clips = make_clips(3)
        source = LithoLabeler(CountingSimulator())
        source.label_batch(clips)
        state = source.get_state()

        target = LithoLabeler(CountingSimulator())
        target.set_state(state)
        assert target.query_count == source.query_count
        # every verdict is served from cache: the inner oracle is idle
        assert target.label_batch(clips) == [0, 1, 0]
        assert target.simulator.calls == 0

    def test_set_state_rejects_bad_verdicts(self):
        labeler = LithoLabeler(CountingSimulator())
        with pytest.raises(ValueError, match="0/1"):
            labeler.set_state({"cache": {"k": 7}, "query_count": 1})
