#!/usr/bin/env python3
"""Calibration study: why temperature scaling matters for sampling.

Reproduces the Fig. 2 experiment interactively: trains the hotspot CNN,
prints reliability diagrams before and after temperature scaling, and
shows how calibration changes the hotspot-aware uncertainty ranking
(Eq. (6)) that drives batch selection.

Run:  python examples/calibration_study.py
"""

import numpy as np

from repro.calibration import TemperatureScaler, reliability_diagram
from repro.core import hotspot_aware_uncertainty
from repro.data import build_benchmark
from repro.model import HotspotClassifier
from repro.nn.losses import softmax


def print_diagram(tag, diagram):
    print(f"\n{tag}: ECE={diagram.ece:.4f} MCE={diagram.mce:.4f}")
    print("  bin    conf    acc    gap   count")
    for center, conf, acc, count in diagram.to_rows():
        if count == 0:
            continue
        print(f"  {center:.2f}  {conf:6.3f} {acc:6.3f} "
              f"{abs(conf - acc):6.3f}  {count:5d}")


def main() -> None:
    dataset = build_benchmark("iccad16-3", scale=0.15, seed=0)
    rng = np.random.default_rng(0)
    order = rng.permutation(len(dataset))
    train = order[: len(order) // 2]
    val = order[len(order) // 2 : 2 * len(order) // 3]
    test = order[2 * len(order) // 3 :]

    clf = HotspotClassifier(input_shape=dataset.tensors.shape[1:],
                            arch="mlp", epochs=25, seed=0)
    clf.fit_scaler(dataset.tensors)
    clf.fit(dataset.tensors[train], dataset.labels[train])

    scaler = TemperatureScaler().fit(
        clf.predict_logits(dataset.tensors[val]), dataset.labels[val]
    )
    print(f"fitted temperature T = {scaler.temperature_:.3f} "
          f"(T > 1 means the raw network was overconfident)")

    logits = clf.predict_logits(dataset.tensors[test])
    y = dataset.labels[test]
    raw_probs = softmax(logits)
    cal_probs = scaler.transform(logits)

    print_diagram("original (Fig. 2a)", reliability_diagram(raw_probs, y))
    print_diagram("calibrated (Fig. 2b)", reliability_diagram(cal_probs, y))

    # calibration never flips predictions...
    assert np.array_equal(raw_probs.argmax(1), cal_probs.argmax(1))
    # ...but it reorders the sampling priority of Eq. (6)
    raw_rank = np.argsort(-hotspot_aware_uncertainty(raw_probs))
    cal_rank = np.argsort(-hotspot_aware_uncertainty(cal_probs))
    k = 20
    overlap = len(set(raw_rank[:k]) & set(cal_rank[:k]))
    print(f"\ntop-{k} sampling candidates before vs after calibration: "
          f"{overlap}/{k} overlap")
    print("-> the scores feeding EntropySampling change materially, which "
          "is exactly\n   why the paper calibrates before computing "
          "uncertainty (Section III-A1).")


if __name__ == "__main__":
    main()
