#!/usr/bin/env python3
"""Quickstart: the paper's full pipeline in ~40 lines.

Builds a small ICCAD16-2-style benchmark (synthetic layout labeled by
the lithography simulator), runs the active entropy-sampling framework
(Algorithm 2), and prints the PSHD metrics of Eqs. (1)-(2).

Run:  python examples/quickstart.py
"""

from repro.core import FrameworkConfig, PSHDFramework
from repro.data import build_benchmark


def main() -> None:
    # 1. Build (or load from cache) a benchmark: a synthetic full-chip
    #    layout is generated, cut into clips, and every clip is labeled
    #    by process-window lithography simulation.
    dataset = build_benchmark("iccad16-2", scale=0.3, seed=0)
    print(f"benchmark: {dataset.summary()}  ({len(dataset)} clips)")

    # 2. Configure Algorithm 2: two-step batch sizes (n, k), iteration
    #    count N, and the initial training / validation budgets.
    config = FrameworkConfig(
        n_query=120,      # n  - query set size per iteration
        k_batch=15,       # k  - clips labeled per iteration
        n_iterations=8,   # N
        init_train=40,    # |L0|, seeded from the GMM posterior
        val_size=30,      # |V0|, used for temperature scaling
        arch="mlp",       # "cnn" for the paper architecture (slower)
        seed=0,
    )

    # 3. Run: GMM seeding -> iterative entropy-based sampling with
    #    calibrated uncertainty + min-distance diversity -> full-chip
    #    detection with the calibrated model.
    result = PSHDFramework(dataset, config).run()

    # 4. Score per the paper's metrics.
    print(f"detection accuracy (Eq. 1): {100 * result.accuracy:.2f}%")
    print(f"litho-clips        (Eq. 2): {result.litho} "
          f"({result.litho / len(dataset):.0%} of the chip)")
    print(f"hits / false alarms: {result.hits} / {result.false_alarms}")
    print(f"modelled runtime (10 s per litho-clip): "
          f"{result.runtime_seconds:.0f} s")
    print("\nper-iteration dynamic weights (uncertainty, diversity):")
    for entry in result.history:
        w = entry.get("weights")
        if w:
            print(f"  iter {entry['iteration']}: "
                  f"w1={w[0]:.2f} w2={w[1]:.2f} "
                  f"T={entry['temperature']:.2f} "
                  f"batch hotspots={entry['batch_hotspots']}")


if __name__ == "__main__":
    main()
