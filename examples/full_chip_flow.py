#!/usr/bin/env python3
"""Full-chip flow from raw geometry, with a *real* litho-labeling loop.

Unlike the quickstart (which uses a pre-labeled benchmark dataset), this
example walks the complete physical pipeline on a freshly generated
chip, paying for every label through the counting
:class:`repro.litho.LithoLabeler` — the flow a downstream user would run
on their own layout:

    layout (GLP) -> clips -> DCT features -> GMM seeding ->
    active entropy sampling with on-demand litho simulation ->
    trained detector -> full-chip scan

Run:  python examples/full_chip_flow.py
"""

import numpy as np

from repro.calibration import TemperatureScaler
from repro.core import entropy_sampling
from repro.data.synth import EUV_RULES, generate_layout
from repro.dataplane import BatchFeatureExtractor, DataPlaneConfig
from repro.features import FeatureExtractor
from repro.layout import extract_clip_grid, save_layout
from repro.litho import LithoLabeler, LithoSimulator
from repro.model import HotspotClassifier
from repro.stats import PCA, GaussianMixture


def main() -> None:
    rng = np.random.default_rng(7)

    # --- 1. a fresh 7 nm chip, saved to GLP for inspection -------------
    layout = generate_layout(
        EUV_RULES, tiles_x=16, tiles_y=16, stress_probability=0.3,
        seed=7, name="demo-chip", target_ratio=0.08,
    )
    save_layout(layout, "/tmp/demo_chip.glp")
    clips = extract_clip_grid(
        layout, EUV_RULES.clip_size, EUV_RULES.core_margin, drop_empty=False
    )
    print(f"chip: {len(layout)} shapes, {len(clips)} clips "
          f"(layout saved to /tmp/demo_chip.glp)")

    # --- 2. features + the metered lithography oracle ------------------
    # the data plane extracts tensors and flats from one raster pass per
    # clip, chunked and content-cached (repeat clips encode once)
    plane = BatchFeatureExtractor(FeatureExtractor(grid=96),
                                  DataPlaneConfig(chunk_size=64))
    features = plane.extract(clips)
    tensors = features.tensors
    labeler = LithoLabeler(LithoSimulator.for_tech(EUV_RULES.tech_nm, grid=96))

    # --- 3. GMM posterior seeding (Alg. 2 lines 1-2) --------------------
    density = features.flats[:, -64:]
    posterior = (
        GaussianMixture(n_components=8, seed=0)
        .fit(PCA(10).fit_transform(density))
        .posterior(PCA(10).fit(density).transform(density))
    )
    order = np.argsort(posterior)
    train_idx = list(order[:24])
    val_idx = list(order[np.linspace(24, len(order) - 1, 20).astype(int)])
    pool = [i for i in range(len(clips))
            if i not in set(train_idx) | set(val_idx)]

    y_train = labeler.label_batch([clips[i] for i in train_idx])
    y_val = np.array(labeler.label_batch([clips[i] for i in val_idx]))
    print(f"seed labels: {sum(y_train)} hotspots in the initial "
          f"{len(train_idx)}-clip training set")

    # --- 4. train, then iterate entropy-based sampling ------------------
    clf = HotspotClassifier(input_shape=tensors.shape[1:], arch="mlp",
                            epochs=25, seed=0)
    clf.fit_scaler(tensors)
    clf.fit(tensors[train_idx], np.array(y_train))

    temperature = TemperatureScaler()
    for iteration in range(5):
        query = sorted(pool, key=lambda i: posterior[i])[:80]
        temperature.fit(clf.predict_logits(tensors[val_idx]), y_val)
        probs = temperature.transform(clf.predict_logits(tensors[query]))
        embeddings = clf.embeddings(tensors[query])
        outcome = entropy_sampling(probs, embeddings, k=12)
        batch = [query[i] for i in outcome.selected]

        labels = labeler.label_batch([clips[i] for i in batch])  # litho
        train_idx.extend(batch)
        y_train.extend(labels)
        pool = [i for i in pool if i not in set(batch)]
        clf.update(tensors[train_idx], np.array(y_train), epochs=8)
        print(f"iter {iteration + 1}: +{sum(labels)} hotspots, "
              f"weights w1={outcome.weights[0]:.2f} "
              f"w2={outcome.weights[1]:.2f}, "
              f"litho so far {labeler.query_count}")

    # --- 5. full-chip detection with the calibrated model ---------------
    temperature.fit(clf.predict_logits(tensors[val_idx]), y_val)
    pool_probs = temperature.transform(clf.predict_logits(tensors[pool]))
    flagged = [i for i, p in zip(pool, pool_probs[:, 1]) if p > 0.5]
    verified = labeler.label_batch([clips[i] for i in flagged])  # verify
    hits = sum(verified)
    print(f"\nfull-chip scan: flagged {len(flagged)} clips, "
          f"{hits} verified hotspots, {len(flagged) - hits} false alarms")
    print(f"total litho-clips consumed: {labeler.query_count} "
          f"({labeler.simulated_seconds:.0f} s at 10 s/clip)")


if __name__ == "__main__":
    main()
