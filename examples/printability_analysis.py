#!/usr/bin/env python3
"""Printability deep-dive: DRC vs litho, process windows, detector ROC.

Goes beyond the binary hotspot verdict the paper's flow uses:

1. shows why DRC screening cannot replace hotspot detection (DRC-clean
   clips still fail lithography),
2. grades patterns by their (dose, defocus) process-window area, and
3. evaluates the trained detector with ROC/PR analysis on held-out
   clips.

Run:  python examples/printability_analysis.py
"""

import numpy as np

from repro.data import build_benchmark
from repro.litho import (
    DRCRules,
    LithoSimulator,
    analyze_process_window,
    drc_screen,
)
from repro.model import HotspotClassifier, auc, confusion_matrix, roc_curve


def main() -> None:
    dataset = build_benchmark("iccad16-3", scale=0.15, seed=0,
                              use_cache=False)  # need real geometry
    print(f"benchmark: {dataset.summary()}\n")
    simulator = LithoSimulator.for_tech(dataset.tech_nm, grid=96)

    # --- 1. DRC screening vs lithographic truth -------------------------
    # drawn rules of the 7 nm generator: min width 14, min spacing 7
    rules = DRCRules(min_width_nm=14, min_spacing_nm=7)
    sample = list(range(0, len(dataset), 4))  # subsample for speed
    flags = drc_screen([dataset.clips[i] for i in sample], rules)
    truth = dataset.labels[np.array(sample)] == 1
    caught = int((flags & truth).sum())
    missed = int((~flags & truth).sum())
    print("1. DRC screening at the drawn rules:")
    print(f"   hotspots flagged by DRC: {caught}, missed: {missed} "
          f"({missed / max(caught + missed, 1):.0%} of hotspots are "
          "DRC-clean -> learning-based detection is necessary)\n")

    # --- 2. process-window grading --------------------------------------
    print("2. process windows of three representative clips:")
    hot = int(np.flatnonzero(dataset.labels == 1)[0])
    cold = int(np.flatnonzero(dataset.labels == 0)[0])
    for label, idx in (("hotspot", hot), ("clean", cold)):
        window = analyze_process_window(
            simulator, dataset.clips[idx], dose_steps=5, defocus_steps=3
        )
        print(f"   clip #{idx} ({label}): window fraction "
              f"{window.window_fraction:.2f}, dose latitude "
              f"{window.dose_latitude:.2f}, DoF {window.depth_of_focus_nm:.0f} nm")
    print()

    # --- 3. detector ROC ------------------------------------------------
    rng = np.random.default_rng(0)
    order = rng.permutation(len(dataset))
    train, test = order[: len(order) // 2], order[len(order) // 2 :]
    clf = HotspotClassifier(input_shape=dataset.tensors.shape[1:],
                            arch="mlp", epochs=25, seed=0)
    clf.fit_scaler(dataset.tensors)
    clf.fit(dataset.tensors[train], dataset.labels[train])

    scores = clf.predict_proba(dataset.tensors[test])[:, 1]
    y = dataset.labels[test]
    fpr, tpr, _ = roc_curve(y, scores)
    print("3. detector quality on held-out clips:")
    print(f"   ROC AUC = {auc(fpr, tpr):.3f}")
    cm = confusion_matrix(y, (scores > 0.5).astype(int))
    print(f"   @0.5 threshold: recall={cm.recall:.2f} "
          f"precision={cm.precision:.2f} "
          f"false-alarm rate={cm.false_alarm_rate:.3f}")
    print("   threshold sweep (threshold: recall / false-alarm rate):")
    for thr in (0.3, 0.5, 0.7, 0.9):
        cm = confusion_matrix(y, (scores > thr).astype(int))
        print(f"     {thr:.1f}: {cm.recall:.2f} / {cm.false_alarm_rate:.3f}")


if __name__ == "__main__":
    main()
