#!/usr/bin/env python3
"""Detect-and-fix: hotspot detection feeding OPC mask correction.

The paper's framework finds hotspots cheaply; this example closes the
DFM loop by *fixing* what it finds:

1. run active entropy sampling on a fresh chip (real litho in the loop),
2. take the hotspot clips the flow discovered,
3. correct each one's mask with the pixel-OPC module, and
4. re-simulate to confirm the defects are gone.

Run:  python examples/detect_and_fix.py
"""

import numpy as np

from repro.data.synth import DUV_RULES, generate_layout
from repro.layout import extract_clip_grid
from repro.litho import (
    LithoSimulator,
    OPCConfig,
    ThresholdResist,
    duv_model,
    find_defects,
    optimize_mask,
)


def main() -> None:
    # --- 1. a 28 nm chip with a controlled share of marginal patterns --
    layout = generate_layout(
        DUV_RULES, tiles_x=8, tiles_y=8, stress_probability=0.4,
        seed=21, name="fixme-chip", target_ratio=0.15,
    )
    clips = extract_clip_grid(
        layout, DUV_RULES.clip_size, DUV_RULES.core_margin, drop_empty=False
    )
    grid = 96
    optical = duv_model()
    resist = ThresholdResist()
    simulator = LithoSimulator(optical=optical, resist=resist, grid=grid)

    # --- 2. find the hotspots (full scan here; see quickstart for the
    #        sampled flow — this example focuses on the fixing stage) ---
    hotspot_clips = [c for c in clips if simulator.is_hotspot(c)]
    print(f"chip: {len(clips)} clips, {len(hotspot_clips)} hotspots found\n")

    # --- 3./4. OPC-correct each hotspot and verify -----------------------
    pixel_nm = DUV_RULES.clip_size / grid
    fixed = 0
    improved = 0
    for clip in hotspot_clips[:8]:  # cap the demo at eight fixes
        target = clip.raster(grid, antialias=True)
        result = optimize_mask(
            target, optical, resist, pixel_nm, OPCConfig(iterations=15)
        )
        printed = resist.develop(optical.aerial_image(result.mask, pixel_nm))
        sim_core = simulator._core_bounds_px(clip)
        row0, col0, row1, col1 = sim_core
        defects = find_defects(
            target >= 0.5, printed, sim_core,
            epe_tolerance_px=simulator.epe_tolerance_px,
            morph_margin_px=simulator.morph_margin_px,
            min_defect_px=simulator.min_defect_px,
        )
        before = simulator.simulate(clip).defect_count
        status = "FIXED" if not defects else (
            "improved" if len(defects) < before else "unchanged"
        )
        fixed += not defects
        improved += bool(defects) and len(defects) < before
        print(f"clip #{clip.index:3d}: defects {before:2d} -> "
              f"{len(defects):2d} at nominal  [{status}]  "
              f"(print error {result.initial_error:.4f} -> "
              f"{result.final_error:.4f})")

    total = min(len(hotspot_clips), 8)
    print(f"\nsummary: {fixed}/{total} hotspots fully fixed at the nominal "
          f"corner, {improved} further improved.")
    print("note: OPC fixes the nominal print; full process-window "
          "requalification\n(repro.litho.analyze_process_window) decides "
          "sign-off, and geometry that\ncannot be fixed by mask bias alone "
          "needs a layout change.")


if __name__ == "__main__":
    main()
