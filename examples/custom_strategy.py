#!/usr/bin/env python3
"""Extending the framework with a custom batch-selection strategy.

The PSHD framework (Algorithm 2) accepts any selector through the
``FrameworkConfig.selector`` hook, making it easy to benchmark new
active-learning ideas against the paper's method on identical footing.
This example implements a BADGE-flavoured selector (uncertainty-scaled
embeddings + k-means++-style spread) and compares it with the paper's
entropy sampling and the TS / QP / random baselines.

Run:  python examples/custom_strategy.py
"""

import numpy as np

from repro.baselines import make_config
from repro.core import FrameworkConfig, PSHDFramework, SelectionContext
from repro.data import build_benchmark
from repro.stats import kmeans_pp_init


def badge_selector(context: SelectionContext) -> np.ndarray:
    """BADGE-style: scale embeddings by the hotspot-probability margin
    (a gradient-magnitude proxy), then spread picks with k-means++."""
    margin = np.abs(
        context.calibrated_probs[:, 1] - context.calibrated_probs[:, 0]
    )
    weighted = context.embeddings * (1.0 - margin)[:, None]
    k = min(context.k, len(weighted))
    if k == 0:
        return np.zeros(0, dtype=np.int64)
    centres = kmeans_pp_init(weighted, k, context.rng)
    # map each centre back to its nearest (unused) sample index
    chosen: list[int] = []
    available = np.ones(len(weighted), dtype=bool)
    for centre in centres:
        distances = np.linalg.norm(weighted - centre, axis=1)
        distances[~available] = np.inf
        pick = int(np.argmin(distances))
        chosen.append(pick)
        available[pick] = False
    return np.array(chosen, dtype=np.int64)


def main() -> None:
    dataset = build_benchmark("iccad16-3", scale=0.15, seed=0)
    print(f"benchmark: {dataset.summary()}\n")

    base = FrameworkConfig(
        n_query=300, k_batch=25, n_iterations=8, init_train=40, val_size=30,
        arch="mlp", epochs_initial=30, epochs_update=8, seed=0,
    )

    rows = []
    for method in ("ours", "ts", "qp", "random"):
        result = PSHDFramework(dataset, make_config(method, base)).run()
        rows.append((method, result))

    from dataclasses import replace

    badge_cfg = replace(base, selector=badge_selector, method_name="badge")
    rows.append(("badge (custom)", PSHDFramework(dataset, badge_cfg).run()))

    print(f"{'method':>16}  {'Acc%':>7}  {'Litho#':>7}  {'hits':>5}  {'FA':>5}")
    for name, result in rows:
        print(f"{name:>16}  {100 * result.accuracy:7.2f}  "
              f"{result.litho:7d}  {result.hits:5d}  "
              f"{result.false_alarms:5d}")


if __name__ == "__main__":
    main()
