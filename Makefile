PYTHONPATH := src
export PYTHONPATH

.PHONY: test test-strict test-threads test-serve test-transport lint reprolint mypy bench check

test:
	python -m pytest -x -q

test-strict:
	REPRO_CHECK=strict python -m pytest -x -q

test-threads:
	REPRO_CHECK=strict python -m pytest \
		tests/analysis/test_concurrency.py \
		tests/analysis/test_interleave.py \
		tests/dataplane/test_cache_threads.py \
		tests/dataplane/test_stream_threads.py \
		tests/nn/test_arena_threads.py \
		-x -q
	REPRO_BENCH_QUICK=1 python -m pytest benchmarks/bench_concurrency.py -x -q

test-serve:
	REPRO_CHECK=strict python -m pytest \
		tests/serve \
		tests/engine/test_session_threads.py \
		tests/cli/test_validation.py \
		-x -q
	REPRO_BENCH_QUICK=1 python -m pytest benchmarks/bench_serve.py -x -q

test-transport:
	REPRO_CHECK=strict python -m pytest \
		tests/serve/test_transport.py \
		tests/serve/test_transport_chaos.py \
		tests/serve/test_transport_reconnect.py \
		-x -q
	REPRO_BENCH_QUICK=1 python -m pytest benchmarks/bench_transport.py -x -q

reprolint:
	python -m repro.analysis.lint src tests

lint: reprolint
	ruff check src tests

mypy:
	python -m mypy src/repro/analysis src/repro/dataplane

bench:
	python -m pytest benchmarks -q

check:
	sh check.sh
