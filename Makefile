PYTHONPATH := src
export PYTHONPATH

.PHONY: test test-strict lint reprolint mypy bench check

test:
	python -m pytest -x -q

test-strict:
	REPRO_CHECK=strict python -m pytest -x -q

reprolint:
	python -m repro.analysis.lint src tests

lint: reprolint
	ruff check src tests

mypy:
	python -m mypy src/repro/analysis src/repro/dataplane

bench:
	python -m pytest benchmarks -q

check:
	sh check.sh
