"""Extension — per-iteration learning curves of the AL methods.

Traces hotspots-captured-into-training per iteration for ours/TS/QP on
ICCAD16-3.  Shape target: 'ours' accumulates hotspots at least as fast
as TS (calibrated-uncertainty-only) — the diversity term avoids wasting
labels on redundant boundary samples.  QP's capture count can run
higher because discarding its query remainder marches it deeper into
the posterior tail, but the discards cost it detection accuracy
(Table II / the D4 ablation).
"""

import numpy as np

from repro.baselines import make_config
from repro.bench import base_framework_config, format_table, load_dataset, write_report
from repro.core import PSHDFramework


def run_learning_curves(benchmark_name="iccad16-3", seeds=2):
    dataset = load_dataset(benchmark_name)
    curves = {}
    for method in ("ours", "ts", "qp"):
        per_seed = []
        for seed in range(seeds):
            cfg = make_config(
                method, base_framework_config(benchmark_name, seed)
            )
            result = PSHDFramework(dataset, cfg).run()
            per_seed.append(
                [h["hotspots_in_train"] for h in result.history]
            )
        depth = min(len(t) for t in per_seed)
        curves[method] = np.mean(
            [t[:depth] for t in per_seed], axis=0
        ).tolist()
    return curves


def test_learning_curves(benchmark):
    curves = benchmark.pedantic(run_learning_curves, rounds=1, iterations=1)

    depth = min(len(c) for c in curves.values())
    rows = []
    for i in range(depth):
        rows.append(
            [i + 1] + [round(curves[m][i], 1) for m in ("ours", "ts", "qp")]
        )
    text = format_table(
        ["iteration", "ours HS-in-train", "ts HS-in-train", "qp HS-in-train"],
        rows,
    )
    write_report("learning_curves", text)

    # final capture: ours >= ts (diversity avoids redundant labels)
    assert curves["ours"][depth - 1] >= curves["ts"][depth - 1] - 1.0
    # curves are monotone non-decreasing (training set only grows)
    for series in curves.values():
        assert all(a <= b + 1e-9 for a, b in zip(series, series[1:]))
