"""Table III — component ablation of the entropy-based method.

Variants: w/o.E (no entropy weighting, fixed 50/50), w/o.D (no
diversity), w/o.U (no uncertainty), Full.  The paper's finding: the full
strategy attains the best average accuracy at the lowest litho cost.
"""

import numpy as np

from repro.bench import EVAL_BENCHMARKS, table3, write_report


def test_table3_component_ablation(benchmark):
    results, text = benchmark.pedantic(table3, rounds=1, iterations=1)
    write_report("table3_ablation", text)

    def average_acc(variant):
        return float(
            np.mean([results[variant][b][0] for b in EVAL_BENCHMARKS])
        )

    full = average_acc("Full")
    # the full strategy is not dominated by any single-component ablation
    assert full >= average_acc("w/o.U") - 0.03
    assert full >= average_acc("w/o.D") - 0.03
    assert full >= average_acc("w/o.E") - 0.03
