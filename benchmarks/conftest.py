"""Benchmark-suite configuration.

Each ``bench_*`` module regenerates one table or figure of the paper
(DESIGN.md §3) and saves the artifact under ``benchmarks/out``.  The
heavy experiment functions run exactly once via ``benchmark.pedantic``;
datasets are cached on disk after the first build.
"""

import pytest


@pytest.fixture(autouse=True)
def _show_output(capsys):
    """Let the rendered tables reach the terminal after each bench."""
    yield
