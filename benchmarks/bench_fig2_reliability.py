"""Fig. 2 — reliability diagrams before and after temperature scaling.

The paper's claim: the uncalibrated CNN shows a visible gap between
confidence and accuracy per 10-bin reliability diagram; temperature
scaling (Eq. (5)) closes it without changing any prediction.
"""

from repro.bench import fig2_reliability, write_report


def test_fig2_reliability_diagrams(benchmark):
    (before, after, temperature), text = benchmark.pedantic(
        fig2_reliability, rounds=1, iterations=1
    )
    write_report("fig2_reliability", text)

    # calibration must reduce the expected calibration error
    assert after.ece <= before.ece + 1e-9
    # a fitted temperature exists and is positive
    assert temperature > 0
    # both diagrams bin the same population
    assert before.count.sum() == after.count.sum()
