"""Table II — full-chip pattern sampling and hotspot detection.

Regenerates the paper's main comparison: PM-exact / PM-a95 / PM-a90 /
PM-e2 / TS / QP / Ours on ICCAD12 and ICCAD16-2/3/4, reporting Acc% and
Litho# per case plus Average and Ratio rows.
"""

import numpy as np

from repro.bench import EVAL_BENCHMARKS, table2, write_report


def test_table2_full_comparison(benchmark):
    results, text = benchmark.pedantic(table2, rounds=1, iterations=1)
    write_report("table2_pshd_comparison", text)

    def average(metric_index, method):
        return float(
            np.mean([results[method][b][metric_index] for b in EVAL_BENCHMARKS])
        )

    # shape targets from the paper (not absolute values):
    # 1. exact pattern matching is perfectly accurate but pays the
    #    largest lithography bill (8.6x at paper scale; the gap shrinks
    #    at reduced dataset scale, see EXPERIMENTS.md)
    assert average(0, "pm-exact") == 1.0
    assert average(1, "pm-exact") > 1.5 * average(1, "ours")
    # 2. loose fuzzy matching loses accuracy vs exact matching
    assert average(0, "pm-a90") < average(0, "pm-exact")
    # 3. ours reaches the best average accuracy among the AL methods
    assert average(0, "ours") >= average(0, "qp") - 0.01
    assert average(0, "ours") >= average(0, "ts") - 0.01
    # 4. ours does not pay more litho than TS on average
    assert average(1, "ours") <= 1.15 * average(1, "ts")
