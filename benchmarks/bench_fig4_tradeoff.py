"""Fig. 4 — accuracy vs lithography-overhead trade-off curves.

Sweeps the labeling budget (iteration count) per batch-selection method
and traces the (accuracy, litho) frontier on two ICCAD16 cases.  Shape
target: at matched accuracy, 'ours' needs the least lithography; TS is
cheap but cannot reach the highest accuracy; QP trails ours.
"""

import numpy as np

from repro.bench import fig4_tradeoff, write_report


def test_fig4_tradeoff_curves(benchmark):
    def run_both():
        blocks = {}
        for case in ("iccad16-2", "iccad16-4"):
            blocks[case] = fig4_tradeoff(benchmark=case)
        return blocks

    blocks = benchmark.pedantic(run_both, rounds=1, iterations=1)
    text = "\n\n".join(
        f"== {case} ==\n{rendered}" for case, (_, rendered) in blocks.items()
    )
    write_report("fig4_tradeoff", text)

    for case, (series, _) in blocks.items():
        best_ours = max(acc for acc, _ in series["ours"])
        best_qp = max(acc for acc, _ in series["qp"])
        # ours reaches at least QP's best accuracy on each case
        assert best_ours >= best_qp - 0.02, case
        # all runs produced valid points
        for method, points in series.items():
            assert all(0 <= acc <= 1 and litho > 0 for acc, litho in points)
