"""Extension — single-pass tapped inference vs the two-pass baseline.

The AL loop needs calibrated probabilities *and* embeddings for every
query batch.  The pre-engine implementation paid two full forward
passes (``predict_logits`` then ``embeddings``) plus two scaler
transforms per iteration; the engine's ``InferenceSession.predict_full``
taps the embedding layer during the logits sweep over a pre-scaled
cached tensor.  This bench verifies, at the paper's default query size
(n = 120):

* the single-pass path issues exactly one network sweep (the baseline
  issues two), with bit-identical outputs, and
* wall-clock speedup >= 1.5x on the CNN architecture.
"""

import time

import numpy as np

from repro.bench import format_table, write_report
from repro.engine import InferenceSession
from repro.model import HotspotClassifier

#: the paper's default query-set size ``n``
N_QUERY = 120


def _trained_cnn():
    rng = np.random.default_rng(0)
    shape = (8, 12, 12)
    pool = rng.normal(size=(400,) + shape)
    y = np.zeros(80, dtype=np.int64)
    y[40:] = 1
    pool[40:80, 0] += 2.0
    clf = HotspotClassifier(input_shape=shape, arch="cnn", seed=0)
    clf.fit_scaler(pool)
    clf.fit(pool[:80], y, epochs=2)
    return clf, pool


def _count_network_sweeps(clf, fn):
    """Number of Sequential.forward/forward_to invocations ``fn`` makes."""
    counter = {"n": 0}
    orig_forward = clf.network.forward
    orig_forward_to = clf.network.forward_to

    def forward(x, train=False, taps=None):
        counter["n"] += 1
        return orig_forward(x, train=train, taps=taps)

    def forward_to(x, layer_index):
        counter["n"] += 1
        return orig_forward_to(x, layer_index)

    clf.network.forward = forward
    clf.network.forward_to = forward_to
    try:
        fn()
    finally:
        del clf.network.forward
        del clf.network.forward_to
    return counter["n"]


def _best_of(fn, repeats=9):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def run_engine_inference():
    clf, pool = _trained_cnn()
    session = InferenceSession(clf, pool)
    query = np.arange(N_QUERY)
    x = pool[query]

    def two_pass():
        return clf.predict_logits(x), clf.embeddings(x)

    def single_pass():
        full = session.predict_full(query)
        return full.logits, full.embeddings

    # correctness first: bit-identical outputs (also warms the session's
    # scaled-tensor cache, which is a once-per-run cost in the AL flow)
    logits_two, emb_two = two_pass()
    logits_one, emb_one = single_pass()
    assert np.array_equal(logits_one, logits_two)
    assert np.array_equal(emb_one, emb_two)

    sweeps_two = _count_network_sweeps(clf, two_pass)
    sweeps_one = _count_network_sweeps(clf, single_pass)

    seconds_two = _best_of(two_pass)
    seconds_one = _best_of(single_pass)

    return {
        "two_pass_sweeps": sweeps_two,
        "single_pass_sweeps": sweeps_one,
        "two_pass_ms": 1000 * seconds_two,
        "single_pass_ms": 1000 * seconds_one,
        "speedup": seconds_two / seconds_one,
    }


def test_engine_inference(benchmark):
    stats = benchmark.pedantic(run_engine_inference, rounds=1, iterations=1)

    text = format_table(
        ["path", "network sweeps", "ms / query batch", "speedup"],
        [
            ["two-pass (seed)", stats["two_pass_sweeps"],
             stats["two_pass_ms"], 1.0],
            ["single-pass engine", stats["single_pass_sweeps"],
             stats["single_pass_ms"], stats["speedup"]],
        ],
    )
    write_report("engine_inference", text)

    # the query inference path does exactly one forward pass...
    assert stats["single_pass_sweeps"] == 1
    assert stats["two_pass_sweeps"] == 2
    # ...and beats the two-pass baseline by >= 1.5x at n_query=120
    assert stats["speedup"] >= 1.5
