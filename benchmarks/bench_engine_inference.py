"""Extension — compute-core inference: fused/buffered kernels + float32.

The AL loop needs calibrated probabilities *and* embeddings for every
query batch.  This bench layers the repo's successive optimizations of
that path over the paper's default query size (n = 120) and verifies
each claim:

* the engine's single-pass ``InferenceSession.predict_full`` issues
  exactly one network sweep (the pre-engine baseline issues two), with
  bit-identical outputs and wall-clock speedup >= 1.5x;
* the compute-core fast path (float32 policy + workspace-buffered
  im2col + fused conv/dense+ReLU + reshape maxpool) beats a replica of
  the seed kernels (per-offset-loop im2col, unfused ReLU, im2col/argmax
  maxpool, two passes, per-call scaling) by >= 5x (>= 3x under
  ``REPRO_BENCH_QUICK=1``);
* switching to float32 does not move calibration: the ECE of the fast
  path agrees with the exact path within a small tolerance.

Writes ``BENCH_engine_inference.json`` next to the rendered table.
"""

import json
import os
import time

import numpy as np

from repro.bench import format_table, write_report
from repro.calibration.reliability import expected_calibration_error
from repro.engine import InferenceSession
from repro.model import HotspotClassifier
from repro.nn import Conv2D, Dense, MaxPool2D, ReLU
from repro.nn.losses import softmax

#: the paper's default query-set size ``n``
N_QUERY = 120

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
REPEATS = 3 if QUICK else 9
#: fast-path speedup floor vs. the seed-kernel replica
FAST_SPEEDUP_FLOOR = 3.0 if QUICK else 5.0
#: |ECE(fast) - ECE(exact)| ceiling — one 10-bin boundary flip at the
#: bench pool size is ~1/400, so 5e-3 flags any systematic drift while
#: tolerating a single rounding-induced bin crossing
ECE_TOLERANCE = 5e-3


def _trained_cnn():
    rng = np.random.default_rng(0)
    shape = (8, 12, 12)
    pool = rng.normal(size=(400,) + shape)
    y = np.zeros(80, dtype=np.int64)
    y[40:] = 1
    pool[40:80, 0] += 2.0
    labels = np.zeros(len(pool), dtype=np.int64)
    labels[40:80] = 1
    clf = HotspotClassifier(input_shape=shape, arch="cnn", seed=0)
    clf.fit_scaler(pool)
    clf.fit(pool[:80], y, epochs=2)
    return clf, pool, labels


def _fast_twin(clf):
    """The same trained model re-hosted on the float32 fast runtime."""
    twin = HotspotClassifier(
        input_shape=clf.input_shape, arch=clf.arch, lr=clf.lr,
        seed=clf.seed, precision="fast",
    )
    twin.network.set_weights(clf.network.get_weights())
    twin.scaler.mean_ = clf.scaler.mean_.copy()
    twin.scaler.std_ = clf.scaler.std_.copy()
    twin.scaler_version = clf.scaler_version
    twin._fitted = True
    return twin


# ----------------------------------------------------------------------
# seed-kernel replica: the pre-refactor compute core
# ----------------------------------------------------------------------

def _seed_im2col(images, kh, kw, stride, pad):
    """Seed im2col: np.pad allocation + per-kernel-offset slice loop."""
    n, c, h, w = images.shape
    if pad:
        images = np.pad(
            images, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant"
        )
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    patch = np.empty((n, oh, ow, c, kh, kw))
    for i in range(kh):
        for j in range(kw):
            patch[:, :, :, :, i, j] = images[
                :, :, i : i + stride * oh : stride, j : j + stride * ow : stride
            ].transpose(0, 2, 3, 1)
    return patch.reshape(n * oh * ow, c * kh * kw)


def _seed_layer_forward(layer, x):
    """One layer in the seed formulation: unfused, allocation-churning."""
    if isinstance(layer, Conv2D):
        n, _, h, w = x.shape
        k, s, p = layer.kernel_size, layer.stride, layer.pad
        oh = (h + 2 * p - k) // s + 1
        ow = (w + 2 * p - k) // s + 1
        cols = _seed_im2col(x, k, k, s, p)
        out = cols @ layer.weight.reshape(layer.out_channels, -1).T + layer.bias
        return out.reshape(n, oh, ow, layer.out_channels).transpose(0, 3, 1, 2)
    if isinstance(layer, Dense):
        return x @ layer.weight + layer.bias
    if isinstance(layer, ReLU):
        return np.maximum(x, 0)
    if isinstance(layer, MaxPool2D):
        # the seed inference path shared the training im2col + argmax
        return layer.forward(x, train=True)
    return layer.forward(x)


def _seed_sweep(network, x, tap_index):
    out, tap = x, None
    for i, layer in enumerate(network.layers):
        out = _seed_layer_forward(layer, out)
        if i == tap_index:
            tap = out
    return out, tap


def _count_network_sweeps(clf, fn):
    """Number of Sequential.forward/forward_to invocations ``fn`` makes."""
    counter = {"n": 0}
    orig_forward = clf.network.forward
    orig_forward_to = clf.network.forward_to

    def forward(x, train=False, taps=None):
        counter["n"] += 1
        return orig_forward(x, train=train, taps=taps)

    def forward_to(x, layer_index):
        counter["n"] += 1
        return orig_forward_to(x, layer_index)

    clf.network.forward = forward
    clf.network.forward_to = forward_to
    try:
        fn()
    finally:
        del clf.network.forward
        del clf.network.forward_to
    return counter["n"]


def _best_of(fn, repeats=REPEATS):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def run_engine_inference():
    clf, pool, labels = _trained_cnn()
    fast_clf = _fast_twin(clf)
    session = InferenceSession(clf, pool)
    fast_session = InferenceSession(fast_clf, pool)
    query = np.arange(N_QUERY)
    x = pool[query]
    embed = clf._embedding_index

    def two_pass():
        return clf.predict_logits(x), clf.embeddings(x)

    def seed_two_pass():
        # the seed's full cost of logits + embeddings: two sweeps over
        # seed kernels, each paying its own scaler transform
        scaled_a = clf.scaler.transform(x)
        logits, _ = _seed_sweep(clf.network, scaled_a, tap_index=None)
        scaled_b = clf.scaler.transform(x)
        _, tap = _seed_sweep(clf.network, scaled_b, tap_index=embed)
        return logits, tap

    def single_pass():
        full = session.predict_full(query)
        return full.logits, full.embeddings

    def fast_single_pass():
        full = fast_session.predict_full(query)
        return full.logits, full.embeddings

    # correctness first: the engine path is bit-identical to two-pass
    # and to the seed kernels; the fast path matches to float32 rounding
    # (also warms the sessions' scaled-tensor caches, a once-per-run
    # cost in the AL flow)
    logits_two, emb_two = two_pass()
    logits_one, emb_one = single_pass()
    assert np.array_equal(logits_one, logits_two)
    assert np.array_equal(emb_one, emb_two)
    seed_logits, seed_tap = seed_two_pass()
    assert np.array_equal(seed_logits, logits_two)
    assert np.array_equal(
        clf._normalize_embeddings(seed_tap), emb_two
    )
    fast_logits, fast_emb = fast_single_pass()
    np.testing.assert_allclose(fast_logits, logits_one, rtol=1e-4, atol=1e-4)
    np.testing.assert_allclose(fast_emb, emb_one, rtol=1e-3, atol=1e-4)

    sweeps_two = _count_network_sweeps(clf, two_pass)
    sweeps_one = _count_network_sweeps(clf, single_pass)

    seconds_seed = _best_of(seed_two_pass)
    seconds_two = _best_of(two_pass)
    seconds_one = _best_of(single_pass)
    seconds_fast = _best_of(fast_single_pass)

    # calibration must not move under float32 (the Fig. 2 invariant)
    ece_exact = expected_calibration_error(
        softmax(session.logits()), labels
    )
    ece_fast = expected_calibration_error(
        softmax(fast_session.logits()), labels
    )

    return {
        "two_pass_sweeps": sweeps_two,
        "single_pass_sweeps": sweeps_one,
        "seed_kernel_ms": 1000 * seconds_seed,
        "two_pass_ms": 1000 * seconds_two,
        "single_pass_ms": 1000 * seconds_one,
        "fast_ms": 1000 * seconds_fast,
        "speedup": seconds_two / seconds_one,
        "fast_speedup": seconds_seed / seconds_fast,
        "ece_exact": ece_exact,
        "ece_fast": ece_fast,
        "ece_delta": abs(ece_fast - ece_exact),
        "quick": QUICK,
    }


def test_engine_inference(benchmark):
    stats = benchmark.pedantic(run_engine_inference, rounds=1, iterations=1)

    text = format_table(
        ["path", "network sweeps", "ms / query batch", "speedup"],
        [
            ["seed kernels, two-pass", 2,
             stats["seed_kernel_ms"],
             stats["seed_kernel_ms"] / stats["seed_kernel_ms"]],
            ["two-pass (pre-engine)", stats["two_pass_sweeps"],
             stats["two_pass_ms"],
             stats["seed_kernel_ms"] / stats["two_pass_ms"]],
            ["single-pass engine (exact)", stats["single_pass_sweeps"],
             stats["single_pass_ms"],
             stats["seed_kernel_ms"] / stats["single_pass_ms"]],
            ["fused float32 fast path", stats["single_pass_sweeps"],
             stats["fast_ms"], stats["fast_speedup"]],
        ],
    )
    write_report("engine_inference", text)

    out_dir = os.environ.get("REPRO_BENCH_OUT", "benchmarks/out")
    with open(
        os.path.join(out_dir, "BENCH_engine_inference.json"), "w"
    ) as handle:
        json.dump(stats, handle, indent=2, sort_keys=True)

    # the query inference path does exactly one forward pass...
    assert stats["single_pass_sweeps"] == 1
    assert stats["two_pass_sweeps"] == 2
    # ...and beats the two-pass baseline by >= 1.5x at n_query=120
    assert stats["speedup"] >= 1.5
    # the compute-core fast path clears its floor against seed kernels
    assert stats["fast_speedup"] >= FAST_SPEEDUP_FLOOR
    # float32 leaves calibration where float64 put it
    assert stats["ece_delta"] <= ECE_TOLERANCE
