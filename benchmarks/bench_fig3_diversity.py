"""Fig. 3 — diversity-metric visualization and runtime comparison.

(a) points away from clusters receive the highest diversity scores;
(b) the min-distance metric is more than an order of magnitude faster
than the relaxed-QP diversity of [14] (paper: 8.28e-4 s vs 153.97e-4 s).
"""

import numpy as np

from repro.bench import fig3_diversity, write_report
from repro.core.diversity import diversity_scores


def test_fig3_visualization_and_runtime(benchmark):
    data, text = fig3_diversity()
    write_report("fig3_diversity", text)

    # the headline claim: ours is >= 10x faster than the QP relaxation
    assert data["qp_seconds"] > 10 * data["ours_seconds"]

    # micro-benchmark the diversity kernel itself (the Fig. 3b quantity)
    rng = np.random.default_rng(0)
    query = rng.normal(size=(200, 250))
    query /= np.linalg.norm(query, axis=1, keepdims=True)
    benchmark(diversity_scores, query)
