"""Extension — round-trip cost of the framed socket transport.

:mod:`repro.serve.transport` puts a wire (framing, CRC32, npz payload
codecs, a retry/breaker client) between callers and the
:class:`~repro.serve.DetectionServer`.  This bench prices that wire:

* **round-trip latency** — p50/p99 per-request latency over the socket
  versus the same requests submitted in-process, single client;
* **throughput** — sustained clips/sec at 1, 4 and 16 concurrent
  remote clients (each client owns one :class:`DetectionClient`, so
  pooling and framing costs are included);
* **transport overhead** — the remote-vs-in-process p50 ratio, the
  number a deployment pays for moving the daemon out of process.

Outputs a table under ``benchmarks/out`` and ``BENCH_transport.json``.
"""

import json
import os
import threading
import time

import numpy as np

from repro.bench import format_table, write_report
from repro.calibration.temperature import TemperatureScaler
from repro.data.synth import EUV_RULES, generate_layout
from repro.dataplane import BatchFeatureExtractor, DataPlaneConfig
from repro.features import FeatureExtractor
from repro.layout import extract_clip_grid
from repro.model.classifier import HotspotClassifier
from repro.serve import DetectionServer, ServeConfig
from repro.serve.transport import (
    ClientConfig,
    DetectionClient,
    SocketTransport,
    TransportConfig,
)

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
TILES = 6 if QUICK else 10
CLIENT_COUNTS = (1, 4, 16)
REQUESTS_PER_CLIENT = 2 if QUICK else 6
REQUEST_CLIPS = 4 if QUICK else 8
TRAIN_CLIPS = 16 if QUICK else 32


def _clips():
    layout = generate_layout(
        EUV_RULES, tiles_x=TILES, tiles_y=TILES, stress_probability=0.3,
        seed=13, name="bench-transport", target_ratio=0.08,
    )
    return extract_clip_grid(
        layout, EUV_RULES.clip_size, EUV_RULES.core_margin, drop_empty=False
    )


def _fresh_plane():
    return BatchFeatureExtractor(
        FeatureExtractor(grid=96), DataPlaneConfig(chunk_size=64)
    )


def _train(clips):
    plane = _fresh_plane()
    tensors = plane.encode_batch(clips)
    rng = np.random.default_rng(0)
    labels = (rng.random(len(clips)) < 0.4).astype(np.int64)
    labels[0] = 1
    labels[1] = 0
    clf = HotspotClassifier(
        input_shape=plane.extractor.tensor_shape, arch="mlp",
        epochs=2, seed=0,
    )
    clf.fit_scaler(tensors)
    clf.fit(tensors, labels)
    temperature = TemperatureScaler()
    try:
        temperature.fit(clf.predict_logits(tensors), labels)
    except (ValueError, FloatingPointError):
        temperature.temperature_ = 1.0
    return clf, temperature


def _requests(pool, n_clients):
    """The deterministic request mix one fleet run submits."""
    plans = []
    for ix in range(n_clients):
        rng = np.random.default_rng(100 + ix)
        per_client = []
        for _ in range(REQUESTS_PER_CLIENT):
            rows = rng.choice(len(pool), size=REQUEST_CLIPS, replace=False)
            per_client.append([pool[int(i)] for i in rows])
        plans.append(per_client)
    return plans


def _drive(submit, plans):
    """Run the fleet through ``submit(client_ix, clips)``; latencies."""
    latencies = []
    lock = threading.Lock()

    def client(ix):
        for request in plans[ix]:
            start = time.perf_counter()
            submit(ix, request)
            elapsed = time.perf_counter() - start
            with lock:
                latencies.append(elapsed)

    threads = [
        threading.Thread(target=client, args=(ix,), daemon=True)
        for ix in range(len(plans))
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(600)
    wall = time.perf_counter() - wall_start
    assert len(latencies) == sum(len(p) for p in plans)
    return np.asarray(latencies), wall


def _summary(latencies, wall, n_clients):
    total_clips = n_clients * REQUESTS_PER_CLIENT * REQUEST_CLIPS
    return {
        "p50_ms": float(np.percentile(latencies, 50) * 1e3),
        "p99_ms": float(np.percentile(latencies, 99) * 1e3),
        "clips_per_sec": total_clips / wall,
        "wall_seconds": wall,
    }


def _measure_in_process(clf, temperature, pool, n_clients):
    server = DetectionServer(_fresh_plane(), ServeConfig())
    server.register_model("v1", clf, temperature=temperature)
    try:
        latencies, wall = _drive(
            lambda ix, req: server.submit(req, model="v1", timeout=600),
            _requests(pool, n_clients),
        )
    finally:
        server.close()
    return _summary(latencies, wall, n_clients)


def _measure_remote(clf, temperature, pool, n_clients):
    server = DetectionServer(_fresh_plane(), ServeConfig())
    server.register_model("v1", clf, temperature=temperature)
    transport = SocketTransport(
        server, TransportConfig(max_connections=max(CLIENT_COUNTS) + 4)
    ).start()
    host, port = transport.address
    clients = [
        DetectionClient(ClientConfig(
            host=host, port=port, timeout_s=600.0, retries=3,
        ))
        for _ in range(n_clients)
    ]
    try:
        latencies, wall = _drive(
            lambda ix, req: clients[ix].submit(req, model="v1"),
            _requests(pool, n_clients),
        )
    finally:
        for client in clients:
            client.close()
        transport.close(drain=False)
    return _summary(latencies, wall, n_clients)


def run_transport_bench():
    clips = _clips()
    train, pool = clips[:TRAIN_CLIPS], clips[TRAIN_CLIPS:]
    assert len(pool) >= REQUEST_CLIPS, "layout too small for the bench"
    clf, temperature = _train(train)

    in_process = _measure_in_process(clf, temperature, pool, 1)
    by_clients = {}
    for n_clients in CLIENT_COUNTS:
        by_clients[str(n_clients)] = _measure_remote(
            clf, temperature, pool, n_clients
        )

    remote_solo = by_clients["1"]
    return {
        "n_pool_clips": len(pool),
        "request_clips": REQUEST_CLIPS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "in_process_1": in_process,
        "by_clients": by_clients,
        "transport_overhead_p50": (
            remote_solo["p50_ms"] / in_process["p50_ms"]
            if in_process["p50_ms"] > 0 else float("inf")
        ),
    }


def test_transport_roundtrip(benchmark):
    stats = benchmark.pedantic(run_transport_bench, rounds=1, iterations=1)

    rows = [
        [
            "in-process, 1 client",
            f"{stats['in_process_1']['p50_ms']:.1f}",
            f"{stats['in_process_1']['p99_ms']:.1f}",
            f"{stats['in_process_1']['clips_per_sec']:.1f}",
        ]
    ]
    for n_clients, entry in stats["by_clients"].items():
        rows.append(
            [
                f"socket, {n_clients} client(s)",
                f"{entry['p50_ms']:.1f}",
                f"{entry['p99_ms']:.1f}",
                f"{entry['clips_per_sec']:.1f}",
            ]
        )
    rows.append(
        [
            "transport overhead (p50)",
            f"{stats['transport_overhead_p50']:.2f}x",
            "", "",
        ]
    )
    text = format_table(["run", "p50 ms", "p99 ms", "clips/sec"], rows)
    write_report("transport", text)

    out_dir = os.environ.get("REPRO_BENCH_OUT", "benchmarks/out")
    with open(os.path.join(out_dir, "BENCH_transport.json"), "w") as handle:
        json.dump(stats, handle, indent=2, sort_keys=True)

    # correctness gates only — absolute latency is machine-dependent
    for entry in stats["by_clients"].values():
        assert entry["p50_ms"] > 0
        assert entry["clips_per_sec"] > 0
    assert stats["transport_overhead_p50"] > 0
