"""Fig. 6 — (a) fixed vs dynamic entropy weights on ICCAD16-3;
(b) overall runtime model (10 s per litho-clip + PSHD overhead) across
PM-exact / TS / QP / Ours.

Shape targets: dynamic weights are not dominated by any fixed w2, and
the modelled runtime orders PM-exact as by far the slowest because the
litho bill dominates everything else.
"""

from repro.bench import fig6a_weights, fig6b_runtime, write_report


def test_fig6a_fixed_vs_dynamic_weights(benchmark):
    data, text = benchmark.pedantic(fig6a_weights, rounds=1, iterations=1)
    write_report("fig6a_weights", text)

    dyn_acc, dyn_litho = data["dynamic"]
    # dynamic weights must not be clearly dominated by a fixed setting
    for label, (acc, litho) in data.items():
        if label == "dynamic":
            continue
        dominated = acc > dyn_acc + 0.02 and litho < dyn_litho * 0.9
        assert not dominated, f"dynamic dominated by {label}"


def test_fig6b_runtime_model(benchmark):
    data, text = benchmark.pedantic(fig6b_runtime, rounds=1, iterations=1)
    write_report("fig6b_runtime", text)

    for case in ("iccad16-2", "iccad16-4"):
        pm = data[(case, "pm-exact")]
        ours = data[(case, "ours")]
        # the 10 s/litho-clip model makes PM-exact the slowest method
        assert pm > ours, case
