"""Fig. 5 — hotspot distribution and litho-sampled clips on the layout.

ASCII chip maps for PM-exact, TS, QP and Ours on an ICCAD16-2-style
layout: hotspot positions vs which clips each method paid to simulate.
Shape target: PM-exact shades almost the whole chip; the AL methods
sample a small subset that still covers the hotspot regions.
"""

from repro.bench import fig5_layout, write_report


def test_fig5_layout_maps(benchmark):
    runs, text = benchmark.pedantic(fig5_layout, rounds=1, iterations=1)
    write_report("fig5_layout", text)

    pm = runs["PM-exact"]
    ours = runs["Ours"]
    # PM-exact litho-samples more of the chip than the AL flow
    assert pm.litho > ours.litho
    # every method recorded its sampled-clip positions
    for result in runs.values():
        assert result.labeled is not None
        assert len(result.labeled) > 0
