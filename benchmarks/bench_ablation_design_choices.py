"""Extended ablations for the design choices called out in DESIGN.md §5.

Beyond the paper's Table III, this bench isolates:

* **D1** — hotspot-aware piecewise uncertainty (Eq. (6)) vs plain BvSB
  (Eq. (3)) vs prediction entropy.
* **D4** — keeping unselected query samples (the paper) vs discarding
  them each iteration (the [14] behaviour the paper critiques).
* **D5** — temperature scaling on vs off in the sampling/detection loop.
"""

from dataclasses import replace

import numpy as np

from repro.bench import base_framework_config, bench_seeds, format_table, load_dataset, write_report
from repro.core import PSHDFramework
from repro.core.sampling import SamplingConfig

CASES = ("iccad16-3", "iccad16-4")


def _run(name, cfg, seeds):
    dataset = load_dataset(name)
    accs, lithos = [], []
    for seed in range(seeds):
        result = PSHDFramework(dataset, replace(cfg, seed=seed)).run()
        accs.append(result.accuracy)
        lithos.append(float(result.litho))
    return float(np.mean(accs)), float(np.mean(lithos))


def run_design_ablations(seeds=None):
    seeds = seeds if seeds is not None else bench_seeds()
    variants = {}
    for name in CASES:
        base = base_framework_config(name)
        variants[name] = {
            # D1: uncertainty metric family
            "D1 hotspot-aware": replace(
                base, sampling=SamplingConfig(uncertainty_metric="hotspot_aware")
            ),
            "D1 bvsb": replace(
                base, sampling=SamplingConfig(uncertainty_metric="bvsb")
            ),
            "D1 entropy": replace(
                base, sampling=SamplingConfig(uncertainty_metric="entropy")
            ),
            # D4: query-remainder policy
            "D4 keep rest": base,
            "D4 discard rest": replace(base, discard_query_rest=True),
            # D5: calibration
            "D5 calibrated": base,
            "D5 uncalibrated": replace(base, calibrate=False),
        }

    rows = []
    data = {}
    for name in CASES:
        for label, cfg in variants[name].items():
            acc, litho = _run(name, cfg, seeds)
            data[(name, label)] = (acc, litho)
            rows.append([name, label, 100.0 * acc, int(litho)])
    return data, format_table(["benchmark", "variant", "Acc%", "Litho#"], rows)


def test_design_choice_ablations(benchmark):
    data, text = benchmark.pedantic(run_design_ablations, rounds=1,
                                    iterations=1)
    write_report("ablation_design_choices", text)

    for case in CASES:
        # D4: keeping the query remainder should not hurt accuracy
        keep_acc, _ = data[(case, "D4 keep rest")]
        drop_acc, _ = data[(case, "D4 discard rest")]
        assert keep_acc >= drop_acc - 0.03, case
        # D1/D5 variants all produce valid runs
        for label in ("D1 bvsb", "D1 entropy", "D5 uncalibrated"):
            acc, litho = data[(case, label)]
            assert 0.0 <= acc <= 1.0 and litho > 0
