"""Extension — runtime-contract overhead on the data-plane path.

Array contracts (``repro.analysis.contracts``) guard the hot boundaries
of the repo: feature encoding, inference, sampling scores.  They are
meant to be free when ``REPRO_CHECK=off`` — the wrapper is one
thread-local read and a branch.  This bench quantifies "free" on the
realistic path the contracts actually sit on (PR 2's chunked batch
extraction):

* **per-call cost** — a contracted trivial function vs the bare
  function, isolating the wrapper's fast path;
* **wrapper activations** — counted on one ``BatchFeatureExtractor``
  extraction via ``sys.setprofile`` (all contract wrappers share one
  code object, so activations are exactly identifiable);
* **bounded overhead** — activations x per-call cost relative to the
  path's wall time, asserted under the 2% acceptance ceiling;
* **strict-mode cost** — the same extraction with full validation on,
  for scale (strict is a debugging mode, not the production default).

Outputs a table under ``benchmarks/out`` and ``BENCH_analysis.json``.
"""

import json
import os
import sys
import time

from repro.analysis import contracts
from repro.analysis.contracts import checking, contract
from repro.bench import format_table, write_report
from repro.data.synth import EUV_RULES, generate_layout
from repro.dataplane import BatchFeatureExtractor, DataPlaneConfig
from repro.features import FeatureExtractor
from repro.layout import extract_clip_grid

TILES = 10

#: calls used to time the wrapper fast path (cheap: ~ns per call)
CALIBRATION_CALLS = 200_000


def _clips():
    layout = generate_layout(
        EUV_RULES, tiles_x=TILES, tiles_y=TILES, stress_probability=0.3,
        seed=13, name="bench-analysis", target_ratio=0.08,
    )
    return extract_clip_grid(
        layout, EUV_RULES.clip_size, EUV_RULES.core_margin, drop_empty=False
    )


def _per_call_overhead(calls=CALIBRATION_CALLS):
    """Seconds added per call by an off-mode contract wrapper."""

    def bare(x):
        return x

    @contract(x="f8[N]")
    def guarded(x):
        return x

    def loop(fn):
        start = time.perf_counter()
        for _ in range(calls):
            fn(None)
        return time.perf_counter() - start

    # warm up, then take the best of 3 to suppress scheduler noise
    loop(bare), loop(guarded)
    bare_s = min(loop(bare) for _ in range(3))
    guarded_s = min(loop(guarded) for _ in range(3))
    return max(guarded_s - bare_s, 0.0) / calls


class _WrapperCounter:
    """Counts contract-wrapper activations via the shared code object."""

    def __init__(self):
        self.count = 0
        self._code = contracts.wrapper_code()

    def __call__(self, frame, event, arg):
        if event == "call" and frame.f_code is self._code:
            self.count += 1

    def __enter__(self):
        sys.setprofile(self)
        return self

    def __exit__(self, *exc_info):
        sys.setprofile(None)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def run_analysis_bench():
    clips = _clips()
    per_call = _per_call_overhead()

    def fresh_plane():
        return BatchFeatureExtractor(
            FeatureExtractor(grid=96), DataPlaneConfig(chunk_size=64)
        )

    # cold-cache extraction with checks off (the production default),
    # counting how many contract wrappers the path traverses
    with checking("off"):
        plane = fresh_plane()
        with _WrapperCounter() as counter:
            off_batch, off_s = _timed(lambda: plane.extract(clips))
        wrapper_calls = counter.count

        # profiling itself slows the run; re-time without the profiler
        plane = fresh_plane()
        off_batch, off_s = _timed(lambda: plane.extract(clips))

    with checking("strict"):
        plane = fresh_plane()
        strict_batch, strict_s = _timed(lambda: plane.extract(clips))

    import numpy as np

    assert np.array_equal(off_batch.tensors, strict_batch.tensors)
    assert np.array_equal(off_batch.flats, strict_batch.flats)
    assert wrapper_calls > 0, "no contract wrapper ran on the dataplane path"

    off_overhead = wrapper_calls * per_call
    return {
        "n_clips": len(clips),
        "per_call_off_seconds": per_call,
        "wrapper_calls_on_path": wrapper_calls,
        "off_path_seconds": off_s,
        "strict_path_seconds": strict_s,
        "off_overhead_seconds": off_overhead,
        "off_overhead_fraction": off_overhead / off_s,
        "strict_slowdown": strict_s / off_s,
    }


def test_contract_overhead(benchmark):
    stats = benchmark.pedantic(run_analysis_bench, rounds=1, iterations=1)

    text = format_table(
        ["metric", "value"],
        [
            ["clips", stats["n_clips"]],
            ["wrapper activations on path", stats["wrapper_calls_on_path"]],
            ["off-mode cost per call (us)",
             stats["per_call_off_seconds"] * 1e6],
            ["extract seconds (REPRO_CHECK=off)", stats["off_path_seconds"]],
            ["extract seconds (REPRO_CHECK=strict)",
             stats["strict_path_seconds"]],
            ["off-mode overhead fraction", stats["off_overhead_fraction"]],
            ["strict slowdown (x)", stats["strict_slowdown"]],
        ],
    )
    write_report("analysis", text)

    out_dir = os.environ.get("REPRO_BENCH_OUT", "benchmarks/out")
    with open(os.path.join(out_dir, "BENCH_analysis.json"), "w") as handle:
        json.dump(stats, handle, indent=2, sort_keys=True)

    # acceptance: contracts with checks off cost < 2% of the path
    assert stats["off_overhead_fraction"] < 0.02
