"""Extension — lock-discipline sanitizer overhead on the data-plane path.

The concurrency layer (``repro.analysis.concurrency``) instruments the
feature cache, the event bus and the shard scheduler with tracked locks,
``guarded_by`` descriptors and interleaving trace points.  Like the
array contracts, all of it is meant to be free when ``REPRO_CHECK=off``.
This bench quantifies "free" on the path the instrumentation actually
sits on (chunked batch extraction through the locked feature cache):

* **per-primitive cost** — off-mode tracked-lock cycle vs a bare
  ``threading.RLock``, off-mode guarded attribute read vs a plain
  attribute, and an inactive ``trace_point`` call;
* **activations** — each primitive counted on one cache-warm
  ``BatchFeatureExtractor`` extraction via ``sys.setprofile`` (every
  primitive is a Python frame with an identifiable code object);
* **bounded overhead** — activations x per-primitive cost relative to
  the path's wall time, asserted under the 1% acceptance ceiling;
* **strict-mode cost** — the same extraction with the sanitizer fully
  on, for scale (strict is a debugging mode, not the default).

Outputs a table under ``benchmarks/out`` and ``BENCH_concurrency.json``.
"""

import json
import os
import sys
import threading
import time

from repro.analysis.concurrency import TrackedLock, TrackedRLock, guarded_by
from repro.analysis.contracts import checking
from repro.analysis.interleave import trace_point
from repro.bench import format_table, write_report
from repro.data.synth import EUV_RULES, generate_layout
from repro.dataplane import BatchFeatureExtractor, DataPlaneConfig
from repro.features import FeatureExtractor
from repro.layout import extract_clip_grid

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
TILES = 6 if QUICK else 10

#: calls used to time each primitive's fast path (cheap: ~ns per call)
CALIBRATION_CALLS = 50_000 if QUICK else 200_000


def _clips():
    layout = generate_layout(
        EUV_RULES, tiles_x=TILES, tiles_y=TILES, stress_probability=0.3,
        seed=13, name="bench-concurrency", target_ratio=0.08,
    )
    return extract_clip_grid(
        layout, EUV_RULES.clip_size, EUV_RULES.core_margin, drop_empty=False
    )


def _best_of_3(loop, *args):
    loop(*args)  # warm-up
    return min(loop(*args) for _ in range(3))


def _lock_cycle_overhead(calls=CALIBRATION_CALLS):
    """Seconds added per with-statement cycle by an off-mode tracked
    lock over a bare ``threading.RLock``."""
    bare = threading.RLock()
    tracked = TrackedRLock("bench")

    def loop(lock):
        start = time.perf_counter()
        for _ in range(calls):
            with lock:
                pass
        return time.perf_counter() - start

    bare_s = _best_of_3(loop, bare)
    tracked_s = _best_of_3(loop, tracked)
    return max(tracked_s - bare_s, 0.0) / calls


class _Guarded:
    value = guarded_by("_lock")

    def __init__(self):
        self._lock = TrackedRLock("bench-guarded")
        with self._lock:
            self.value = 1


class _Plain:
    def __init__(self):
        self.value = 1


def _guarded_read_overhead(calls=CALIBRATION_CALLS):
    """Seconds added per attribute read by an off-mode guarded_by
    descriptor over a plain instance attribute."""
    guarded, plain = _Guarded(), _Plain()

    def loop(obj):
        start = time.perf_counter()
        for _ in range(calls):
            obj.value
        return time.perf_counter() - start

    plain_s = _best_of_3(loop, plain)
    guarded_s = _best_of_3(loop, guarded)
    return max(guarded_s - plain_s, 0.0) / calls


def _trace_point_cost(calls=CALIBRATION_CALLS):
    """Absolute seconds per inactive trace_point call (one global load
    and a branch, plus the call itself)."""

    def loop():
        start = time.perf_counter()
        for _ in range(calls):
            trace_point("bench.point")
        return time.perf_counter() - start

    return _best_of_3(loop) / calls


class _PrimitiveCounter:
    """Counts sanitizer-frame activations on the profiled path."""

    def __init__(self):
        self.acquires = 0
        self.guarded = 0
        self.traces = 0
        self._acquire = TrackedLock.acquire.__code__
        self._get = guarded_by.__get__.__code__
        self._set = guarded_by.__set__.__code__
        self._trace = trace_point.__code__

    def __call__(self, frame, event, arg):
        if event != "call":
            return
        code = frame.f_code
        if code is self._acquire:
            self.acquires += 1
        elif code is self._get or code is self._set:
            self.guarded += 1
        elif code is self._trace:
            self.traces += 1

    def __enter__(self):
        sys.setprofile(self)
        return self

    def __exit__(self, *exc_info):
        sys.setprofile(None)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def run_concurrency_bench():
    clips = _clips()
    lock_cost = _lock_cycle_overhead()
    guard_cost = _guarded_read_overhead()
    trace_cost = _trace_point_cost()

    def fresh_plane():
        return BatchFeatureExtractor(
            FeatureExtractor(grid=96), DataPlaneConfig(chunk_size=64)
        )

    # extraction with checks off (the production default), counting how
    # many sanitizer primitives the locked-cache path traverses
    with checking("off"):
        plane = fresh_plane()
        with _PrimitiveCounter() as counter:
            off_batch, off_s = _timed(lambda: plane.extract(clips))

        # profiling itself slows the run; re-time without the profiler
        plane = fresh_plane()
        off_batch, off_s = _timed(lambda: plane.extract(clips))

    with checking("strict"):
        plane = fresh_plane()
        strict_batch, strict_s = _timed(lambda: plane.extract(clips))

    import numpy as np

    assert np.array_equal(off_batch.tensors, strict_batch.tensors)
    assert counter.acquires > 0, "no tracked lock ran on the dataplane path"
    assert counter.guarded > 0, "no guarded access on the dataplane path"

    off_overhead = (
        counter.acquires * lock_cost
        + counter.guarded * guard_cost
        + counter.traces * trace_cost
    )
    return {
        "n_clips": len(clips),
        "lock_cycles_on_path": counter.acquires,
        "guarded_accesses_on_path": counter.guarded,
        "trace_points_on_path": counter.traces,
        "per_lock_cycle_off_seconds": lock_cost,
        "per_guarded_read_off_seconds": guard_cost,
        "per_trace_point_seconds": trace_cost,
        "off_path_seconds": off_s,
        "strict_path_seconds": strict_s,
        "off_overhead_seconds": off_overhead,
        "off_overhead_fraction": off_overhead / off_s,
        "strict_slowdown": strict_s / off_s,
    }


def test_sanitizer_overhead(benchmark):
    stats = benchmark.pedantic(run_concurrency_bench, rounds=1, iterations=1)

    text = format_table(
        ["metric", "value"],
        [
            ["clips", stats["n_clips"]],
            ["lock cycles on path", stats["lock_cycles_on_path"]],
            ["guarded accesses on path", stats["guarded_accesses_on_path"]],
            ["trace points on path", stats["trace_points_on_path"]],
            ["off-mode lock cycle (us)",
             stats["per_lock_cycle_off_seconds"] * 1e6],
            ["off-mode guarded read (us)",
             stats["per_guarded_read_off_seconds"] * 1e6],
            ["inactive trace point (us)",
             stats["per_trace_point_seconds"] * 1e6],
            ["extract seconds (REPRO_CHECK=off)", stats["off_path_seconds"]],
            ["extract seconds (REPRO_CHECK=strict)",
             stats["strict_path_seconds"]],
            ["off-mode overhead fraction", stats["off_overhead_fraction"]],
            ["strict slowdown (x)", stats["strict_slowdown"]],
        ],
    )
    write_report("concurrency", text)

    out_dir = os.environ.get("REPRO_BENCH_OUT", "benchmarks/out")
    with open(
        os.path.join(out_dir, "BENCH_concurrency.json"), "w"
    ) as handle:
        json.dump(stats, handle, indent=2, sort_keys=True)

    # acceptance: the sanitizer with checks off costs < 1% of the path
    assert stats["off_overhead_fraction"] < 0.01
