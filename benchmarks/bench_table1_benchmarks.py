"""Table I — benchmark statistics (paper targets vs built datasets)."""

from repro.bench import table1, write_report
from repro.data import BENCHMARKS


def test_table1_benchmark_statistics(benchmark):
    rows, text = benchmark.pedantic(table1, rounds=1, iterations=1)
    write_report("table1_benchmarks", text)

    by_name = {row[0]: row for row in rows}
    # ICCAD16-1 must be hotspot-free, as in the paper
    assert by_name["iccad16-1"][3] == 0
    # every built case tracks its Table I hotspot ratio within 2x
    for name, row in by_name.items():
        spec = BENCHMARKS[name]
        if spec.paper_hotspots == 0:
            continue
        built_ratio = row[3] / (row[3] + row[4])
        assert 0.4 * spec.paper_ratio < built_ratio < 2.5 * spec.paper_ratio
