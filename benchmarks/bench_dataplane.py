"""Extension — data-plane extraction throughput: eager vs chunked vs cached.

Every experiment in this repo funnels clips through feature extraction:
dataset builds, AL iterations re-scoring the pool, baseline sweeps that
revisit the same benchmark under four PM criteria.  The data plane
(``repro.dataplane``) replaces the eager per-clip loop with chunked
vectorized DCT kernels and a content-addressed feature cache.  This
bench measures clips/second on one synthetic chip for:

* **eager** — the seed path: ``FeatureExtractor.encode``/``flat_features``
  per clip;
* **chunked** — ``BatchFeatureExtractor`` on a cold cache (stacked-DCT
  kernels, one raster pass for tensors + flats);
* **cached** — the same plane asked again (every clip served from the
  memory tier).

Outputs a table under ``benchmarks/out`` and a machine-readable
``BENCH_dataplane.json``, and asserts the PR's acceptance criterion:
warm-cache throughput >= 2x eager on repeated extraction.
"""

import json
import os
import time

import numpy as np

from repro.bench import format_table, write_report
from repro.data.synth import EUV_RULES, generate_layout
from repro.dataplane import BatchFeatureExtractor, DataPlaneConfig
from repro.features import FeatureExtractor
from repro.layout import extract_clip_grid

#: chip size: 14x14 tiles yields ~200 clips, enough to amortize set-up
TILES = 14


def _clips():
    layout = generate_layout(
        EUV_RULES, tiles_x=TILES, tiles_y=TILES, stress_probability=0.3,
        seed=11, name="bench-dataplane", target_ratio=0.08,
    )
    return extract_clip_grid(
        layout, EUV_RULES.clip_size, EUV_RULES.core_margin, drop_empty=False
    )


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def run_dataplane_bench():
    clips = _clips()
    n = len(clips)
    fx = FeatureExtractor(grid=96)

    def eager():
        tensors = np.stack([fx.encode(c) for c in clips])
        flats = np.stack([fx.flat_features(c) for c in clips])
        return tensors, flats

    plane = BatchFeatureExtractor(fx, DataPlaneConfig(chunk_size=64))
    (eager_tensors, eager_flats), eager_s = _timed(eager)
    cold_batch, cold_s = _timed(lambda: plane.extract(clips))
    warm_batch, warm_s = _timed(lambda: plane.extract(clips))

    # the data plane is only a speedup if it changes nothing else
    assert np.array_equal(cold_batch.tensors, eager_tensors)
    assert np.array_equal(cold_batch.flats, eager_flats)
    assert np.array_equal(warm_batch.tensors, eager_tensors)
    assert np.array_equal(warm_batch.flats, eager_flats)

    return {
        "n_clips": n,
        "eager_seconds": eager_s,
        "chunked_seconds": cold_s,
        "cached_seconds": warm_s,
        "eager_cps": n / eager_s,
        "chunked_cps": n / cold_s,
        "cached_cps": n / warm_s,
        "chunked_speedup": eager_s / cold_s,
        "cached_speedup": eager_s / warm_s,
        "cache_stats": plane.cache_stats,
    }


def test_dataplane_throughput(benchmark):
    stats = benchmark.pedantic(run_dataplane_bench, rounds=1, iterations=1)

    text = format_table(
        ["path", "seconds", "clips/sec", "speedup vs eager"],
        [
            ["eager per-clip (seed)", stats["eager_seconds"],
             stats["eager_cps"], 1.0],
            ["chunked, cold cache", stats["chunked_seconds"],
             stats["chunked_cps"], stats["chunked_speedup"]],
            ["chunked, warm cache", stats["cached_seconds"],
             stats["cached_cps"], stats["cached_speedup"]],
        ],
    )
    write_report("dataplane", text)

    out_dir = os.environ.get("REPRO_BENCH_OUT", "benchmarks/out")
    with open(os.path.join(out_dir, "BENCH_dataplane.json"), "w") as handle:
        json.dump(stats, handle, indent=2, sort_keys=True)

    # acceptance: repeated extraction with a warm cache is >= 2x eager
    assert stats["cached_speedup"] >= 2.0
    # the cold chunked path must at least not regress
    assert stats["chunked_speedup"] >= 0.9
