"""Extension — compute-core micro-benchmarks: each kernel vs its seed.

Isolates the three kernel-level claims of the shared-runtime refactor,
away from the end-to-end inference path that ``bench_engine_inference``
measures:

* **im2col**: one strided-view gather through a reused workspace buffer
  vs the seed's per-kernel-offset loop with fresh allocations
  (bit-identical outputs);
* **fused conv+ReLU**: the in-place bias+ReLU epilogue on the gemm
  output vs materializing the pre-activation and applying a separate
  ReLU (bit-identical outputs);
* **basis-matmul DCT**: the whole-stack ``(N*B*B, bh*bw) @ (bh*bw, k)``
  contraction vs the seed's per-block ``scipy.fft.dctn`` loop
  (float64-rounding-identical; the float32 policy row is measured too).

Writes ``BENCH_compute_core.json`` next to the rendered table.
"""

import json
import os
import time

import numpy as np
from scipy.fft import dctn

from repro.bench import format_table, write_report
from repro.features.dct import dct_encode_stack, zigzag_indices
from repro.nn import Conv2D, ReLU
from repro.nn.im2col import im2col
from repro.nn.runtime import ComputeRuntime, PrecisionPolicy

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
REPEATS = 3 if QUICK else 9


def _best_of(fn, repeats=REPEATS):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _seed_im2col(images, kh, kw, stride, pad):
    """Seed im2col: np.pad allocation + per-kernel-offset slice loop."""
    n, c, h, w = images.shape
    if pad:
        images = np.pad(
            images, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant"
        )
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    patch = np.empty((n, oh, ow, c, kh, kw))
    for i in range(kh):
        for j in range(kw):
            patch[:, :, :, :, i, j] = images[
                :, :, i : i + stride * oh : stride, j : j + stride * ow : stride
            ].transpose(0, 2, 3, 1)
    return patch.reshape(n * oh * ow, c * kh * kw)


def _seed_dct_stack(images, blocks, coeffs):
    """Seed DCT: per-clip, per-block scipy dctn + zigzag truncation."""
    n = len(images)
    h = images.shape[1] // blocks
    order = zigzag_indices(h)[:coeffs]
    out = np.zeros((n, coeffs, blocks, blocks))
    for idx in range(n):
        for by in range(blocks):
            for bx in range(blocks):
                block = images[
                    idx, by * h : (by + 1) * h, bx * h : (bx + 1) * h
                ]
                spectrum = dctn(block, norm="ortho")
                for ci, (r, c) in enumerate(order):
                    out[idx, ci, by, bx] = spectrum[r, c]
    return out


def run_compute_core():
    rng = np.random.default_rng(0)

    # --- im2col: workspace reuse vs seed loop -------------------------
    images = rng.normal(size=(120, 16, 12, 12))
    runtime = ComputeRuntime()
    want = _seed_im2col(images, 3, 3, 1, 1)
    got = im2col(images, 3, 3, stride=1, pad=1, runtime=runtime, key="bench")
    assert np.array_equal(got, want)
    im2col_seed_s = _best_of(lambda: _seed_im2col(images, 3, 3, 1, 1))
    im2col_fast_s = _best_of(
        lambda: im2col(
            images, 3, 3, stride=1, pad=1, runtime=runtime, key="bench"
        )
    )

    # --- fused conv+ReLU vs separate layers ---------------------------
    conv = Conv2D(16, 16, kernel_size=3, pad=1, rng=rng)
    relu = ReLU()
    x = rng.normal(size=(120, 16, 12, 12))
    want = relu.forward(conv.forward(x))
    got = conv.forward(x, fuse_relu=True)
    assert np.array_equal(got, want)
    unfused_s = _best_of(lambda: relu.forward(conv.forward(x)))
    fused_s = _best_of(lambda: conv.forward(x, fuse_relu=True))

    # --- basis-matmul DCT vs per-block dctn ---------------------------
    clips = rng.normal(size=(30 if QUICK else 120, 96, 96))
    want = _seed_dct_stack(clips, 12, 32)
    got = dct_encode_stack(clips, blocks=12, coeffs=32)
    np.testing.assert_allclose(got, want, rtol=0, atol=1e-10)
    fast_policy = PrecisionPolicy("fast")
    got_f32 = dct_encode_stack(clips, blocks=12, coeffs=32, policy=fast_policy)
    np.testing.assert_allclose(got_f32, want, rtol=1e-4, atol=1e-4)
    dct_seed_s = _best_of(lambda: _seed_dct_stack(clips, 12, 32), repeats=3)
    dct_basis_s = _best_of(lambda: dct_encode_stack(clips, blocks=12, coeffs=32))
    dct_f32_s = _best_of(
        lambda: dct_encode_stack(clips, blocks=12, coeffs=32, policy=fast_policy)
    )

    return {
        "im2col_seed_ms": 1000 * im2col_seed_s,
        "im2col_pooled_ms": 1000 * im2col_fast_s,
        "im2col_speedup": im2col_seed_s / im2col_fast_s,
        "conv_relu_unfused_ms": 1000 * unfused_s,
        "conv_relu_fused_ms": 1000 * fused_s,
        "conv_relu_speedup": unfused_s / fused_s,
        "dct_seed_ms": 1000 * dct_seed_s,
        "dct_basis_ms": 1000 * dct_basis_s,
        "dct_basis_f32_ms": 1000 * dct_f32_s,
        "dct_speedup": dct_seed_s / dct_basis_s,
        "quick": QUICK,
    }


def test_compute_core(benchmark):
    stats = benchmark.pedantic(run_compute_core, rounds=1, iterations=1)

    text = format_table(
        ["kernel", "seed ms", "refactored ms", "speedup"],
        [
            ["im2col (pooled gather)", stats["im2col_seed_ms"],
             stats["im2col_pooled_ms"], stats["im2col_speedup"]],
            ["conv+ReLU (fused)", stats["conv_relu_unfused_ms"],
             stats["conv_relu_fused_ms"], stats["conv_relu_speedup"]],
            ["DCT encode (basis matmul)", stats["dct_seed_ms"],
             stats["dct_basis_ms"], stats["dct_speedup"]],
            ["DCT encode (float32 policy)", stats["dct_seed_ms"],
             stats["dct_basis_f32_ms"],
             stats["dct_seed_ms"] / stats["dct_basis_f32_ms"]],
        ],
    )
    write_report("compute_core", text)

    out_dir = os.environ.get("REPRO_BENCH_OUT", "benchmarks/out")
    with open(os.path.join(out_dir, "BENCH_compute_core.json"), "w") as handle:
        json.dump(stats, handle, indent=2, sort_keys=True)

    # each kernel must at least not regress against its seed form, and
    # the headline basis-matmul DCT must be a clear win
    assert stats["im2col_speedup"] >= 1.0
    assert stats["conv_relu_speedup"] >= 1.0
    assert stats["dct_speedup"] >= 3.0
