"""Extension — serving latency/throughput of the detection daemon.

:class:`repro.serve.DetectionServer` exists to amortize the per-clip
feature-extraction cost across concurrent clients: submits arriving
inside the coalescing window ride one batched extract→scale pass
instead of paying the pipeline dispatch per request.  This bench
measures what a client actually sees:

* **latency** — p50/p99 request latency at 1, 4 and 16 concurrent
  clients against a warm server with a cold feature cache;
* **throughput** — sustained clips/sec per concurrency level;
* **coalescing win** — the 16-client run repeated with micro-batching
  disabled (``max_batch_clips`` = one request, zero coalescing delay)
  to price the batched-vs-unbatched speedup.

Outputs a table under ``benchmarks/out`` and ``BENCH_serve.json``.
"""

import json
import os
import threading
import time

import numpy as np

from repro.bench import format_table, write_report
from repro.calibration.temperature import TemperatureScaler
from repro.data.synth import EUV_RULES, generate_layout
from repro.dataplane import BatchFeatureExtractor, DataPlaneConfig
from repro.features import FeatureExtractor
from repro.layout import extract_clip_grid
from repro.model.classifier import HotspotClassifier
from repro.serve import DetectionServer, ServeConfig

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
TILES = 6 if QUICK else 10
CLIENT_COUNTS = (1, 4, 16)
REQUESTS_PER_CLIENT = 2 if QUICK else 6
REQUEST_CLIPS = 4 if QUICK else 8
TRAIN_CLIPS = 16 if QUICK else 32


def _clips():
    layout = generate_layout(
        EUV_RULES, tiles_x=TILES, tiles_y=TILES, stress_probability=0.3,
        seed=13, name="bench-serve", target_ratio=0.08,
    )
    return extract_clip_grid(
        layout, EUV_RULES.clip_size, EUV_RULES.core_margin, drop_empty=False
    )


def _fresh_plane():
    return BatchFeatureExtractor(
        FeatureExtractor(grid=96), DataPlaneConfig(chunk_size=64)
    )


def _train(clips):
    plane = _fresh_plane()
    tensors = plane.encode_batch(clips)
    rng = np.random.default_rng(0)
    labels = (rng.random(len(clips)) < 0.4).astype(np.int64)
    labels[0] = 1
    labels[1] = 0
    clf = HotspotClassifier(
        input_shape=plane.extractor.tensor_shape, arch="mlp",
        epochs=2, seed=0,
    )
    clf.fit_scaler(tensors)
    clf.fit(tensors, labels)
    temperature = TemperatureScaler()
    try:
        temperature.fit(clf.predict_logits(tensors), labels)
    except (ValueError, FloatingPointError):
        temperature.temperature_ = 1.0
    return clf, temperature


def _drive(server, pool, n_clients):
    """Run the client fleet; returns per-request latencies + wall."""
    latencies = []
    lock = threading.Lock()

    def client(ix):
        rng = np.random.default_rng(100 + ix)
        for _ in range(REQUESTS_PER_CLIENT):
            rows = rng.choice(len(pool), size=REQUEST_CLIPS, replace=False)
            request = [pool[int(i)] for i in rows]
            start = time.perf_counter()
            server.submit(request, model="v1", timeout=600)
            elapsed = time.perf_counter() - start
            with lock:
                latencies.append(elapsed)

    threads = [
        threading.Thread(target=client, args=(ix,), daemon=True)
        for ix in range(n_clients)
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(600)
    wall = time.perf_counter() - wall_start
    assert len(latencies) == n_clients * REQUESTS_PER_CLIENT
    return np.asarray(latencies), wall


def _measure(clf, temperature, pool, n_clients, config):
    """One serving run against a cold cache; summary stats."""
    server = DetectionServer(_fresh_plane(), config)
    server.register_model("v1", clf, temperature=temperature)
    try:
        latencies, wall = _drive(server, pool, n_clients)
        stats = server.stats()
    finally:
        server.close()
    total_clips = n_clients * REQUESTS_PER_CLIENT * REQUEST_CLIPS
    return {
        "p50_ms": float(np.percentile(latencies, 50) * 1e3),
        "p99_ms": float(np.percentile(latencies, 99) * 1e3),
        "clips_per_sec": total_clips / wall,
        "wall_seconds": wall,
        "batches": stats["batches"],
        "mean_batch_clips": stats["mean_batch_clips"],
    }


def run_serve_bench():
    clips = _clips()
    train, pool = clips[:TRAIN_CLIPS], clips[TRAIN_CLIPS:]
    assert len(pool) >= REQUEST_CLIPS, "layout too small for the bench"
    clf, temperature = _train(train)

    batched = ServeConfig(max_batch_clips=256, max_delay_s=0.002)
    # "unbatched" = every dispatch serves exactly one request
    unbatched = ServeConfig(max_batch_clips=REQUEST_CLIPS, max_delay_s=0.0)

    by_clients = {}
    for n_clients in CLIENT_COUNTS:
        by_clients[str(n_clients)] = _measure(
            clf, temperature, pool, n_clients, batched
        )

    peak = max(CLIENT_COUNTS)
    solo = _measure(clf, temperature, pool, peak, unbatched)

    batched_rate = by_clients[str(peak)]["clips_per_sec"]
    return {
        "n_pool_clips": len(pool),
        "request_clips": REQUEST_CLIPS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "by_clients": by_clients,
        "unbatched_16": solo,
        "batched_vs_unbatched_speedup": batched_rate / solo["clips_per_sec"],
    }


def test_serve_latency_throughput(benchmark):
    stats = benchmark.pedantic(run_serve_bench, rounds=1, iterations=1)

    rows = []
    for n_clients, entry in stats["by_clients"].items():
        rows.append(
            [
                f"{n_clients} client(s)",
                f"{entry['p50_ms']:.1f}",
                f"{entry['p99_ms']:.1f}",
                f"{entry['clips_per_sec']:.1f}",
                f"{entry['mean_batch_clips']:.1f}",
            ]
        )
    solo = stats["unbatched_16"]
    rows.append(
        [
            "16 client(s), unbatched",
            f"{solo['p50_ms']:.1f}",
            f"{solo['p99_ms']:.1f}",
            f"{solo['clips_per_sec']:.1f}",
            f"{solo['mean_batch_clips']:.1f}",
        ]
    )
    rows.append(
        [
            "batched vs unbatched",
            "", "",
            f"{stats['batched_vs_unbatched_speedup']:.2f}x",
            "",
        ]
    )
    text = format_table(
        ["run", "p50 ms", "p99 ms", "clips/sec", "clips/batch"], rows
    )
    write_report("serve", text)

    out_dir = os.environ.get("REPRO_BENCH_OUT", "benchmarks/out")
    with open(os.path.join(out_dir, "BENCH_serve.json"), "w") as handle:
        json.dump(stats, handle, indent=2, sort_keys=True)

    # correctness gates only — latency/throughput are recorded, not
    # asserted (machine-dependent); the micro-batcher must at least
    # have coalesced more aggressively than the unbatched control
    for entry in stats["by_clients"].values():
        assert entry["p50_ms"] > 0
        assert entry["clips_per_sec"] > 0
    peak = stats["by_clients"][str(max(CLIENT_COUNTS))]
    assert peak["mean_batch_clips"] >= solo["mean_batch_clips"]
    assert stats["batched_vs_unbatched_speedup"] > 0
