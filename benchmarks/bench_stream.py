"""Extension — tiled streaming full-chip scan: memory, throughput,
incremental re-detection.

The eager detect path materializes every clip of a chip, then the whole
feature stack, before a single score is computed — peak memory grows
linearly with chip area.  The streaming plane
(``repro.dataplane.stream``) holds one tile at a time, so its peak
should stay *flat* as the chip grows.  This bench measures, on two
synthetic chips roughly 10x apart in clip count:

* **peak traced memory** of the eager stack-then-score path vs the
  streaming scan (``tracemalloc``, which sees NumPy buffers; RSS is
  recorded as context but is monotonic within a process);
* **sustained throughput** (clips/second) of the streaming scan;
* **incremental re-detection** after a one-tile layout edit: fraction
  of clips re-scored (< 5% required), wall-clock speedup vs the full
  scan, and bit-identical verdicts on untouched tiles.

Outputs ``BENCH_stream.json`` + a table under ``benchmarks/out``.
``REPRO_BENCH_QUICK=1`` shrinks both chips (CI smoke size).
"""

import json
import os
import time
import tracemalloc

import numpy as np

from repro.bench import format_table, write_report
from repro.data.synth import DUV_RULES, generate_layout
from repro.dataplane import BatchFeatureExtractor, DataPlaneConfig
from repro.dataplane.stream import StreamConfig, StreamScanner
from repro.features import FeatureExtractor
from repro.layout import Layout, Rect, TileGrid, extract_clip_grid

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

#: pattern-tile edges of the small and large chip; the window lattice is
#: (edge - 1)^2, so these are ~13x apart in clip count in both modes
SMALL_TILES = 4 if QUICK else 8
LARGE_TILES = 14 if QUICK else 26

CLIP = DUV_RULES.clip_size
MARGIN = DUV_RULES.core_margin
TILE_CLIPS = 2 if QUICK else 4

#: small memory tier so the cache is not an accidental whole-chip buffer
PLANE = DataPlaneConfig(chunk_size=16, memory_cache_items=32)


def _chip(tiles, seed, name):
    return generate_layout(
        DUV_RULES, tiles_x=tiles, tiles_y=tiles, stress_probability=0.4,
        seed=seed, name=name,
    )


def _score(tensors):
    """Deterministic model stand-in: DCT energy squashed into (0, 1)."""
    energy = np.abs(tensors.reshape(len(tensors), -1)).mean(axis=1)
    return np.clip(energy * 40.0, 0.0, 1.0)


def _traced(fn):
    """(result, peak_traced_bytes) of ``fn`` under tracemalloc."""
    tracemalloc.start()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def _eager_scan(layout):
    """The seed path: materialize every clip, stack, score at once."""
    clips = [
        c for c in extract_clip_grid(layout, CLIP, MARGIN,
                                     drop_empty=False)
        if c.rects
    ]
    fx = FeatureExtractor(grid=96)
    tensors = np.stack([fx.encode(c) for c in clips])
    scores = _score(tensors)
    return sorted(c.index for c, s in zip(clips, scores) if s >= 0.5)


def _scanner(layout, state_dir=None):
    grid = TileGrid.for_layout(layout, CLIP, MARGIN,
                               tile_clips=TILE_CLIPS)
    plane = BatchFeatureExtractor(FeatureExtractor(grid=96), PLANE)
    config = StreamConfig(
        tile_clips=TILE_CLIPS,
        state_dir=None if state_dir is None else str(state_dir),
    )
    return grid, StreamScanner(grid, plane, _score, config)


def run_stream_bench(tmp_dir):
    small = _chip(SMALL_TILES, seed=5, name="bench-small")
    large = _chip(LARGE_TILES, seed=6, name="bench-large")

    # -- memory: eager vs streaming on both chip sizes ------------------
    (eager_small_hot, eager_small_peak) = _traced(
        lambda: _eager_scan(small)
    )
    (eager_large_hot, eager_large_peak) = _traced(
        lambda: _eager_scan(large)
    )
    _, small_scanner = _scanner(small)
    (stream_small, stream_small_peak) = _traced(
        lambda: small_scanner.scan(small)
    )
    _, large_scanner = _scanner(large)
    (stream_large, stream_large_peak) = _traced(
        lambda: large_scanner.scan(large)
    )

    # streaming changes memory, not answers
    assert [h["index"] for h in stream_small.hotspots] == eager_small_hot
    assert [h["index"] for h in stream_large.hotspots] == eager_large_hot

    # -- throughput: sustained clips/second, no tracer overhead --------
    _, timed_scanner = _scanner(large)
    start = time.perf_counter()
    timed = timed_scanner.scan(large)
    sustained_cps = timed.n_clips / (time.perf_counter() - start)

    # -- incremental re-detection after a one-tile edit ----------------
    state = os.path.join(tmp_dir, "scan-state")
    grid, base_scanner = _scanner(large, state_dir=state)
    start = time.perf_counter()
    base = base_scanner.scan(large)
    full_s = time.perf_counter() - start

    core = grid.window(0, 0).expanded(-MARGIN)
    edited = Layout(
        list(large.rects)
        + [Rect(core.x0 + 15, core.y0 + 15,
                core.x0 + 95, core.y0 + 95)],
        die=large.die, tech_nm=large.tech_nm, name=large.name,
    )
    _, redetect_scanner = _scanner(edited, state_dir=state)
    start = time.perf_counter()
    redetect = redetect_scanner.scan(edited)
    redetect_s = time.perf_counter() - start

    rescored_fraction = redetect.rescored_clips / max(redetect.n_clips, 1)
    edited_tile = grid.tile(0, 0)
    edited_indices = {i for i, _ in grid.iter_windows(edited_tile)}
    untouched_before = [
        h for h in base.hotspots if h["index"] not in edited_indices
    ]
    untouched_after = [
        h for h in redetect.hotspots if h["index"] not in edited_indices
    ]
    # replayed tiles are bit-identical, not merely close
    assert untouched_after == untouched_before

    return {
        "quick": QUICK,
        "n_clips_small": stream_small.n_clips,
        "n_clips_large": stream_large.n_clips,
        "clip_growth": stream_large.n_clips / max(stream_small.n_clips, 1),
        "eager_peak_small_mb": eager_small_peak / 2**20,
        "eager_peak_large_mb": eager_large_peak / 2**20,
        "stream_peak_small_mb": stream_small_peak / 2**20,
        "stream_peak_large_mb": stream_large_peak / 2**20,
        "eager_peak_growth": eager_large_peak / max(eager_small_peak, 1),
        "stream_peak_growth": (
            stream_large_peak / max(stream_small_peak, 1)
        ),
        "sustained_cps": sustained_cps,
        "full_scan_seconds": full_s,
        "redetect_seconds": redetect_s,
        "redetect_speedup": full_s / max(redetect_s, 1e-9),
        "rescored_clips": redetect.rescored_clips,
        "replayed_clips": redetect.replayed_clips,
        "rescored_fraction": rescored_fraction,
    }


def test_stream_scan(benchmark, tmp_path):
    stats = benchmark.pedantic(
        run_stream_bench, args=(str(tmp_path),), rounds=1, iterations=1
    )

    text = format_table(
        ["metric", "eager", "streaming"],
        [
            ["peak MiB, small chip", stats["eager_peak_small_mb"],
             stats["stream_peak_small_mb"]],
            ["peak MiB, large chip", stats["eager_peak_large_mb"],
             stats["stream_peak_large_mb"]],
            ["peak growth (large/small)", stats["eager_peak_growth"],
             stats["stream_peak_growth"]],
        ],
    ) + "\n" + format_table(
        ["streaming metric", "value"],
        [
            ["clip growth (large/small)", stats["clip_growth"]],
            ["sustained clips/sec", stats["sustained_cps"]],
            ["full scan seconds", stats["full_scan_seconds"]],
            ["re-detect seconds", stats["redetect_seconds"]],
            ["re-detect speedup", stats["redetect_speedup"]],
            ["re-scored fraction", stats["rescored_fraction"]],
        ],
    )
    write_report("stream", text)

    out_dir = os.environ.get("REPRO_BENCH_OUT", "benchmarks/out")
    with open(os.path.join(out_dir, "BENCH_stream.json"), "w") as handle:
        json.dump(stats, handle, indent=2, sort_keys=True)

    # acceptance: clip count grows >= 10x, streaming peak stays flat
    # (< 2x) while the eager stack grows with the chip
    assert stats["clip_growth"] >= 10.0
    assert stats["stream_peak_growth"] <= 2.0
    assert stats["eager_peak_growth"] >= 4.0
    # acceptance: a one-tile edit re-scores < 5% of the chip's clips
    # and is substantially cheaper than the full scan
    assert stats["rescored_fraction"] < 0.05
    assert stats["redetect_speedup"] >= 2.0
