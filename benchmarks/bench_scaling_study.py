"""Extension — dataset-scale sensitivity study.

EXPERIMENTS.md attributes the gap between our absolute accuracies and
the paper's to reduced dataset scale (effect S-A: fewer absolute
hotspots to learn from).  This bench quantifies that claim: the same
method and relative budget on ICCAD16-2 built at three scales.  Shape
target: accuracy is non-decreasing (within noise) as scale grows.
"""

import numpy as np

from repro.baselines import make_config
from repro.bench import format_table, write_report
from repro.core import FrameworkConfig, PSHDFramework
from repro.data import build_benchmark

SCALES = (0.15, 0.3, 0.6)


def run_scaling_study(seeds=2):
    rows = []
    data = {}
    for scale in SCALES:
        accs, lithos, sizes = [], [], []
        for seed in range(seeds):
            dataset = build_benchmark("iccad16-2", scale=scale, seed=seed)
            n = len(dataset)
            # relative budget: ~8% seed + 8 batches of ~5% of the chip
            cfg = FrameworkConfig(
                n_query=max(40, n // 3),
                k_batch=max(8, n // 20),
                n_iterations=8,
                init_train=max(20, n // 12),
                val_size=max(16, n // 16),
                arch="mlp",
                epochs_initial=25,
                epochs_update=8,
                seed=seed,
            )
            result = PSHDFramework(dataset, make_config("ours", cfg)).run()
            accs.append(result.accuracy)
            lithos.append(result.litho / n)
            sizes.append(n)
        data[scale] = (float(np.mean(accs)), float(np.mean(lithos)))
        rows.append(
            [scale, int(np.mean(sizes)), 100.0 * np.mean(accs),
             round(100 * np.mean(lithos), 1)]
        )
    text = format_table(
        ["scale", "clips", "ours Acc%", "litho % of chip"], rows
    )
    return data, text


def test_scaling_study(benchmark):
    data, text = benchmark.pedantic(run_scaling_study, rounds=1, iterations=1)
    write_report("scaling_study", text)

    accs = [data[s][0] for s in SCALES]
    # accuracy at the largest scale is within noise of (or above) the
    # smallest — the effect-S-A direction
    assert accs[-1] >= accs[0] - 0.05
    for acc in accs:
        assert 0.0 <= acc <= 1.0
