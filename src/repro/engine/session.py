"""Inference session: scaled-tensor caching + batched prediction.

The AL loop runs inference on overlapping index sets of one fixed pool
tensor every iteration (validation logits for temperature fitting, query
logits + embeddings for selection, remaining-pool logits for detection).
Standardizing the input is a per-element affine map, so the session
scales the whole pool **once per scaler fit** and serves every later
request from the cached tensor — ``TensorScaler.transform`` disappears
from the hot loop.  The cache keys on ``HotspotClassifier.scaler_version``
and refreshes automatically when the scaler is refitted.
"""

from __future__ import annotations

import numpy as np

from ..model.classifier import FullPrediction, HotspotClassifier

__all__ = ["InferenceSession"]


class InferenceSession:
    """Serves predictions over one fixed tensor pool for one classifier.

    Parameters
    ----------
    classifier:
        The trained (or in-training) classifier; its scaler and network
        are used directly, no copies are made.
    tensors:
        The full ``(N, C, H, W)`` pool the run operates on (e.g.
        ``ClipDataset.tensors``).  Index arguments below refer to rows
        of this tensor.
    """

    def __init__(
        self, classifier: HotspotClassifier, tensors: np.ndarray
    ) -> None:
        self.classifier = classifier
        self.tensors = np.asarray(tensors, dtype=np.float64)
        self._scaled: np.ndarray | None = None
        self._scaled_version: int | None = None

    # ------------------------------------------------------------------
    # scaled-tensor cache
    # ------------------------------------------------------------------
    @property
    def scaled(self) -> np.ndarray:
        """The whole pool, standardized — computed once per scaler fit.

        Held in the classifier's compute dtype (float64 exact, float32
        fast), so prescaled prediction calls need no per-request cast.
        """
        version = self.classifier.scaler_version
        if self._scaled is None or self._scaled_version != version:
            # duck-typed classifiers (e.g. CommitteeClassifier) may not
            # carry a precision policy; they get the exact float64 path
            self._scaled = self.classifier.scaler.transform(
                self.tensors, policy=getattr(self.classifier, "policy", None)
            )
            self._scaled_version = version
        return self._scaled

    def invalidate(self) -> None:
        """Drop the cache (forces a re-scale on next access)."""
        self._scaled = None
        self._scaled_version = None

    @property
    def cache_valid(self) -> bool:
        return (
            self._scaled is not None
            and self._scaled_version == self.classifier.scaler_version
        )

    def _slice(self, indices: np.ndarray | None) -> np.ndarray:
        if indices is None:
            return self.scaled
        return self.scaled[np.asarray(indices)]

    # ------------------------------------------------------------------
    # batched prediction
    # ------------------------------------------------------------------
    def logits(self, indices: np.ndarray | None = None) -> np.ndarray:
        """Raw logits for the given pool rows (all rows when ``None``)."""
        return self.classifier.predict_logits(
            self._slice(indices), prescaled=True
        )

    def iter_logits(
        self,
        indices: np.ndarray | None = None,
        batch: int | None = None,
    ):
        """Stream ``(row_indices, logits)`` pairs in bounded batches.

        The detection stage consumes this instead of one monolithic
        :meth:`logits` call so full-pool scans hold at most ``batch``
        rows of logits at a time.  ``batch`` of ``None`` or ``0`` yields
        everything in a single batch — that path is **bit-identical**
        to :meth:`logits` (batched BLAS sweeps may differ in the last
        ulp between blockings, so the one-batch default keeps
        resumed/guarded runs exactly reproducible).
        """
        rows = (
            np.arange(len(self.tensors))
            if indices is None
            else np.asarray(indices)
        )
        if not batch:
            yield rows, self.logits(rows)
            return
        if batch < 0:
            raise ValueError(f"batch must be >= 0, got {batch}")
        for start in range(0, len(rows), batch):
            part = rows[start : start + batch]
            yield part, self.logits(part)

    def predict_full(
        self, indices: np.ndarray | None = None, normalize: bool = True
    ) -> FullPrediction:
        """Logits + embeddings for the given rows in one forward pass."""
        return self.classifier.predict_full(
            self._slice(indices), normalize=normalize, prescaled=True
        )

    def embeddings(
        self, indices: np.ndarray | None = None, normalize: bool = True
    ) -> np.ndarray:
        """Embedding features only (prefer :meth:`predict_full` when the
        logits are needed as well)."""
        return self.classifier.embeddings(
            self._slice(indices), normalize=normalize, prescaled=True
        )
