"""Inference session: scaled-tensor caching + batched prediction.

The AL loop runs inference on overlapping index sets of one fixed pool
tensor every iteration (validation logits for temperature fitting, query
logits + embeddings for selection, remaining-pool logits for detection).
Standardizing the input is a per-element affine map, so the session
scales the whole pool **once per scaler fit** and serves every later
request from the cached tensor — ``TensorScaler.transform`` disappears
from the hot loop.  The cache keys on ``HotspotClassifier.scaler_version``
*and* the classifier's compute dtype, and refreshes automatically when
the scaler is refitted or the precision policy is swapped.

Thread safety: the serving daemon (:mod:`repro.serve`) and its clients
share one warm session per model, so the refresh is no longer a
single-thread affair.  The ``_scaled``/``_scaled_key`` pair is declared
:func:`~repro.analysis.concurrency.guarded_by` a re-entrant tracked
lock and the whole check-then-refresh runs inside the critical section
— the historical unlocked check-then-act (two threads both observing a
stale version and recomputing/assigning concurrently) is replayed
deterministically in ``tests/engine/test_session_threads.py``.
"""

from __future__ import annotations

import numpy as np

from ..analysis.concurrency import TrackedRLock, guarded_by
from ..analysis.interleave import trace_point
from ..model.classifier import FullPrediction, HotspotClassifier

__all__ = ["InferenceSession"]


class InferenceSession:
    """Serves predictions over one fixed tensor pool for one classifier.

    Parameters
    ----------
    classifier:
        The trained (or in-training) classifier; its scaler and network
        are used directly, no copies are made.
    tensors:
        The full ``(N, C, H, W)`` pool the run operates on (e.g.
        ``ClipDataset.tensors``).  Index arguments below refer to rows
        of this tensor.  A serving session may hold an empty pool and
        score ad-hoc tensors through :meth:`predict_tensors`.
    """

    # class-level (not instance fields): the scaled-pool cache may only
    # be touched while self._lock is held
    _scaled = guarded_by("_lock")
    _scaled_key = guarded_by("_lock")

    def __init__(
        self, classifier: HotspotClassifier, tensors: np.ndarray
    ) -> None:
        self.classifier = classifier
        self.tensors = np.asarray(tensors, dtype=np.float64)
        self._lock = TrackedRLock("inference-session")
        with self._lock:
            self._scaled = None  #: guarded_by: _lock
            self._scaled_key = None  #: guarded_by: _lock

    # ------------------------------------------------------------------
    # scaled-tensor cache
    # ------------------------------------------------------------------
    def _policy(self):
        # duck-typed classifiers (e.g. CommitteeClassifier) may not
        # carry a precision policy; they get the exact float64 path
        return getattr(self.classifier, "policy", None)

    def _cache_key(self) -> tuple[int, str]:
        """Identity of the cached scaled pool: scaler fit *and* compute
        dtype — a precision swap on the classifier must refresh the
        cache, not serve a stale-dtype tensor."""
        policy = self._policy()
        dtype = "float64" if policy is None else str(policy.compute_dtype)
        return (self.classifier.scaler_version, dtype)

    @property
    def scaled(self) -> np.ndarray:
        """The whole pool, standardized — computed once per scaler fit.

        Held in the classifier's compute dtype (float64 exact, float32
        fast), so prescaled prediction calls need no per-request cast.
        """
        key = self._cache_key()
        with self._lock:
            if self._scaled is None or self._scaled_key != key:
                trace_point("session.scaled.stale")
                self._scaled = self.classifier.scaler.transform(
                    self.tensors, policy=self._policy()
                )
                self._scaled_key = key
            return self._scaled

    def invalidate(self) -> None:
        """Drop the cache (forces a re-scale on next access)."""
        with self._lock:
            self._scaled = None
            self._scaled_key = None

    @property
    def cache_valid(self) -> bool:
        key = self._cache_key()
        with self._lock:
            return self._scaled is not None and self._scaled_key == key

    def _slice(self, indices: np.ndarray | None) -> np.ndarray:
        if indices is None:
            return self.scaled
        return self.scaled[np.asarray(indices)]

    # ------------------------------------------------------------------
    # batched prediction
    # ------------------------------------------------------------------
    def logits(self, indices: np.ndarray | None = None) -> np.ndarray:
        """Raw logits for the given pool rows (all rows when ``None``)."""
        return self.classifier.predict_logits(
            self._slice(indices), prescaled=True
        )

    def iter_logits(
        self,
        indices: np.ndarray | None = None,
        batch: int | None = None,
    ):
        """Stream ``(row_indices, logits)`` pairs in bounded batches.

        The detection stage consumes this instead of one monolithic
        :meth:`logits` call so full-pool scans hold at most ``batch``
        rows of logits at a time.  ``batch`` of ``None`` or ``0`` yields
        everything in a single batch — that path is **bit-identical**
        to :meth:`logits` (batched BLAS sweeps may differ in the last
        ulp between blockings, so the one-batch default keeps
        resumed/guarded runs exactly reproducible).
        """
        rows = (
            np.arange(len(self.tensors))
            if indices is None
            else np.asarray(indices)
        )
        if not batch:
            yield rows, self.logits(rows)
            return
        if batch < 0:
            raise ValueError(f"batch must be >= 0, got {batch}")
        for start in range(0, len(rows), batch):
            part = rows[start : start + batch]
            yield part, self.logits(part)

    def predict_full(
        self, indices: np.ndarray | None = None, normalize: bool = True
    ) -> FullPrediction:
        """Logits + embeddings for the given rows in one forward pass."""
        return self.classifier.predict_full(
            self._slice(indices), normalize=normalize, prescaled=True
        )

    def embeddings(
        self, indices: np.ndarray | None = None, normalize: bool = True
    ) -> np.ndarray:
        """Embedding features only (prefer :meth:`predict_full` when the
        logits are needed as well)."""
        return self.classifier.embeddings(
            self._slice(indices), normalize=normalize, prescaled=True
        )

    # ------------------------------------------------------------------
    # ad-hoc tensors (the serving path)
    # ------------------------------------------------------------------
    def scale_tensors(self, tensors: np.ndarray) -> np.ndarray:
        """Standardize ad-hoc clip tensors (not pool rows) into the
        classifier's compute dtype.

        The scaler map is a per-element affine transform, so rows of a
        coalesced batch are bit-identical to the same rows scaled one
        request at a time — the property :mod:`repro.serve` relies on.
        """
        return self.classifier.scaler.transform(
            np.asarray(tensors, dtype=np.float64), policy=self._policy()
        )

    def predict_tensors(
        self, tensors: np.ndarray, normalize: bool = True
    ) -> FullPrediction:
        """Logits + embeddings for ad-hoc tensors through the prescaled
        fast path (one scaler pass + one forward tap, no pool cache)."""
        return self.classifier.predict_full(
            self.scale_tensors(tensors), normalize=normalize, prescaled=True
        )
