"""Crash-safe run checkpoints: versioned payload + atomic ``.npz``/JSON I/O.

Definition 3 makes every litho-labeled clip cost ~10 s of simulated
wall-clock budget, so a :class:`~repro.core.framework.PSHDFramework`
run that dies mid-iteration loses the costliest artifacts of the flow:
paid-for labels, the trained CNN, the fitted temperature, and the
optimizer's moment state.  A :class:`RunCheckpoint` captures everything
Algorithm 2 threads between iterations —

* network weights and layer buffers (``net/...`` arrays),
* :class:`~repro.model.scaler.TensorScaler` statistics (``scaler/...``),
* optimizer slot state (``optim/...``; see
  :func:`repro.nn.optim.flatten_state`),
* the GMM posterior driving query formation (``state/posterior``),
* the fitted temperature ``T``,
* the labeled/validation/pool index sets ``L``/``V``/``U`` plus loop
  counters and the labeler's verdict/meter state,
* the ``np.random.Generator`` bit states of the run RNG and the
  training shuffle RNG,

so :meth:`~repro.core.framework.PSHDFramework.resume` re-enters the
loop with **bit-identical continuation**: the resumed run selects the
same batches, charges the same litho-clips, and ends with the same
weights as an uninterrupted run.

On disk a checkpoint is one compressed ``.npz`` (the arrays) plus one
JSON manifest (everything else, human-inspectable).  Both files are
written to a temp name and moved into place with :func:`os.replace`,
the manifest last — a manifest's presence implies a complete archive,
and a crash mid-save leaves at most a stale ``*.tmp`` file, never a
half-written checkpoint.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..analysis.contracts import contract

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "RunCheckpoint",
    "checkpoint_paths",
    "save_checkpoint",
    "load_checkpoint",
    "ScanCursor",
    "posterior_array",
    "scaler_arrays",
]

#: bump on any incompatible change to the payload layout
CHECKPOINT_VERSION = 1

#: manifest keys that must be present (schema check happens before any
#: array is touched, so corruption fails loudly and early)
_MANIFEST_FIELDS = (
    "version",
    "schema",
    "iteration",
    "rng_state",
    "shuffle_rng_state",
    "temperature",
    "index_sets",
    "labeler_state",
    "history",
    "array_keys",
)


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, read, or applied."""


# ----------------------------------------------------------------------
# contracted array boundaries (the two array families that cross the
# framework <-> checkpoint boundary outside the weight dicts)
# ----------------------------------------------------------------------

@contract(posterior="f8[N]")
def posterior_array(posterior: np.ndarray) -> np.ndarray:
    """Validated GMM-posterior vector entering or leaving a checkpoint."""
    return np.asarray(posterior, dtype=np.float64)


@contract(mean="f8[C,H,W]", std="f8[C,H,W]")
def scaler_arrays(
    mean: np.ndarray, std: np.ndarray
) -> dict[str, np.ndarray]:
    """Validated scaler statistics as checkpoint array entries."""
    return {"scaler/mean": np.asarray(mean), "scaler/std": np.asarray(std)}


@dataclass
class RunCheckpoint:
    """One resumable snapshot of an Algorithm 2 run.

    ``schema`` is the run fingerprint (benchmark, seed, batch sizes,
    architecture, ...) that must match the resuming framework exactly;
    ``iteration`` is the last *completed* AL iteration.  ``arrays``
    holds every ndarray payload under ``net/``, ``optim/``, ``scaler/``
    and ``state/`` prefixes; everything else lives in the JSON manifest.
    """

    schema: dict
    iteration: int
    rng_state: dict
    shuffle_rng_state: dict
    temperature: float | None
    index_sets: dict
    labeler_state: dict
    history: list = field(default_factory=list)
    arrays: dict[str, np.ndarray] = field(default_factory=dict)
    version: int = CHECKPOINT_VERSION

    def manifest(self) -> dict:
        """The JSON-serializable half of the payload."""
        return _jsonable(
            {
                "version": self.version,
                "schema": self.schema,
                "iteration": self.iteration,
                "rng_state": self.rng_state,
                "shuffle_rng_state": self.shuffle_rng_state,
                "temperature": self.temperature,
                "index_sets": self.index_sets,
                "labeler_state": self.labeler_state,
                "history": self.history,
                "array_keys": sorted(self.arrays),
            }
        )


def _jsonable(value):
    """Recursively convert numpy scalars/arrays to plain Python values."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, np.generic):
        return value.item()
    return value


def checkpoint_paths(path) -> tuple[Path, Path]:
    """``(npz_path, manifest_path)`` for a checkpoint base path.

    Accepts the bare stem or either concrete file
    (``run7``, ``run7.npz``, ``run7.json`` all name the same pair).
    """
    path = Path(path)
    if path.suffix in (".npz", ".json"):
        path = path.with_suffix("")
    return path.with_suffix(".npz"), path.with_suffix(".json")


def _atomic_replace(tmp: Path, final: Path) -> None:
    os.replace(tmp, final)


def save_checkpoint(checkpoint: RunCheckpoint, path) -> Path:
    """Write ``checkpoint`` atomically; returns the manifest path.

    The archive is replaced first and the manifest last, each through a
    ``*.tmp`` sibling + :func:`os.replace`, so a reader never observes
    a manifest without its complete archive.
    """
    npz_path, manifest_path = checkpoint_paths(path)
    npz_path.parent.mkdir(parents=True, exist_ok=True)

    for key, value in checkpoint.arrays.items():
        if not isinstance(value, np.ndarray):
            raise CheckpointError(
                f"checkpoint array {key!r} is {type(value).__name__}, "
                "not ndarray"
            )

    tmp_npz = npz_path.with_name(npz_path.name + ".tmp.npz")
    tmp_manifest = manifest_path.with_name(manifest_path.name + ".tmp")
    try:
        np.savez_compressed(tmp_npz, **checkpoint.arrays)
        _atomic_replace(tmp_npz, npz_path)
        tmp_manifest.write_text(
            json.dumps(checkpoint.manifest(), indent=2, sort_keys=True)
        )
        _atomic_replace(tmp_manifest, manifest_path)
    finally:
        for leftover in (tmp_npz, tmp_manifest):
            if leftover.exists():
                leftover.unlink()
    return manifest_path


def load_checkpoint(path) -> RunCheckpoint:
    """Read a checkpoint written by :func:`save_checkpoint`.

    Raises :class:`CheckpointError` (never a raw ``KeyError``) on a
    missing file, an unreadable manifest, a version mismatch, or an
    archive whose array keys disagree with the manifest.
    """
    npz_path, manifest_path = checkpoint_paths(path)
    if not manifest_path.exists():
        raise CheckpointError(f"no checkpoint manifest at {manifest_path}")
    if not npz_path.exists():
        raise CheckpointError(
            f"checkpoint archive {npz_path} missing (manifest present — "
            "the archive was deleted or the save was interrupted)"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CheckpointError(
            f"corrupt checkpoint manifest {manifest_path}: {exc}"
        ) from exc

    missing = [k for k in _MANIFEST_FIELDS if k not in manifest]
    if missing:
        raise CheckpointError(
            f"checkpoint manifest {manifest_path} lacks fields {missing}"
        )
    if manifest["version"] != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {manifest['version']} != supported "
            f"{CHECKPOINT_VERSION} ({manifest_path})"
        )

    try:
        with np.load(npz_path) as archive:
            arrays = {key: archive[key] for key in archive.files}
    except (OSError, ValueError) as exc:
        raise CheckpointError(
            f"corrupt checkpoint archive {npz_path}: {exc}"
        ) from exc
    if sorted(arrays) != list(manifest["array_keys"]):
        raise CheckpointError(
            f"checkpoint archive {npz_path} does not match its manifest: "
            f"archive has {sorted(arrays)}, "
            f"manifest expects {manifest['array_keys']}"
        )

    return RunCheckpoint(
        schema=manifest["schema"],
        iteration=int(manifest["iteration"]),
        rng_state=manifest["rng_state"],
        shuffle_rng_state=manifest["shuffle_rng_state"],
        temperature=manifest["temperature"],
        index_sets=manifest["index_sets"],
        labeler_state=manifest["labeler_state"],
        history=manifest["history"],
        arrays=arrays,
        version=int(manifest["version"]),
    )


# ----------------------------------------------------------------------
# streaming-scan cursor
# ----------------------------------------------------------------------
class ScanCursor:
    """Resumable progress marker of a tiled streaming scan.

    A full-chip scan (:class:`repro.dataplane.stream.StreamScanner`)
    completes tiles one at a time; the cursor records, per finished
    tile, the content digest its verdicts were computed from.  A killed
    scan restarted against the same cursor skips every completed tile
    whose geometry is unchanged — the same replay rule incremental
    re-detection uses after a layout edit.

    The cursor carries the lattice ``fingerprint``
    (:meth:`repro.layout.tiles.TileGrid.fingerprint`): a cursor written
    under a different die/window/tiling is ignored rather than
    misapplied.  Saves are atomic (``*.tmp`` + :func:`os.replace`), so
    a crash mid-save leaves the previous cursor intact.
    """

    def __init__(self, path, fingerprint: dict) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        #: tile key -> content digest of the completed tile
        self.done: dict[str, str] = {}

    @classmethod
    def load(cls, path, fingerprint: dict) -> "ScanCursor":
        """The cursor at ``path``, resumed when present and its
        fingerprint matches; a fresh cursor otherwise (an unreadable or
        mismatched file is abandoned, not an error)."""
        cursor = cls(path, fingerprint)
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return cursor
        if (
            not isinstance(payload, dict)
            or payload.get("fingerprint") != fingerprint
            or not isinstance(payload.get("done"), dict)
        ):
            return cursor
        cursor.done = {
            str(key): str(digest)
            for key, digest in payload["done"].items()
        }
        return cursor

    def is_done(self, key: str, digest: str) -> bool:
        """``True`` when ``key`` completed with exactly this digest."""
        return self.done.get(key) == digest

    def mark(self, key: str, digest: str) -> None:
        self.done[key] = digest

    def save(self) -> Path:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(
            json.dumps(
                {"fingerprint": self.fingerprint, "done": self.done},
                indent=2,
                sort_keys=True,
            )
        )
        _atomic_replace(tmp, self.path)
        return self.path

    def reset(self) -> None:
        """Forget all progress and remove the on-disk cursor."""
        self.done = {}
        try:
            self.path.unlink()
        except OSError:
            pass
