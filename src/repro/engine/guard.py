"""Run-health supervision: sentinels, recovery policies, degradation.

Algorithm 2 quietly assumes every stage succeeds — the GMM seeding is
non-degenerate, temperature scaling (Eq. (5)) converges, training is
numerically stable, and every litho simulation returns within budget.
:class:`RunSupervisor` drops those assumptions: it wraps each
:class:`~repro.core.framework.PSHDFramework` stage with **health
sentinels** that detect numerical or infrastructure failures mid-run
and **recovery policies** that repair or degrade instead of aborting a
run that has already spent its litho budget.

Sentinels and their bounded policies:

=====================  =============================================
sentinel               policy (and degraded fallback)
=====================  =============================================
``train_divergence``   rollback to pre-stage snapshot, LR backoff +
                       perturbed shuffle RNG, retrain; after
                       ``max_train_retries`` → freeze the model
``gmm_degenerate``     re-fit with a fresh seed; after
                       ``max_posterior_retries`` → random posterior
                       (random seeding, Alg. 2 line 1 fallback)
``calibration_failure``identity temperature ``T = 1`` (uncalibrated
                       Eq. (4) softmax)
``uncertainty_collapse``pure-diversity selection (the Yang et al.,
                       TCAD'20 regime)
``diversity_collapse`` uncertainty-only selection (fixed weights)
``scoring_collapse``   random selection
``litho_budget``       graceful early stop — the final detect stage
                       still runs on whatever model exists
``pool_watchdog``      hung pooled chunk cancelled at the deadline,
                       chunk re-runs serially (emitted by the data
                       plane, recorded here)
``serve_overload``     the serving daemon shed a request at admission
                       (queue or litho budget cannot absorb it); the
                       client gets an ``AdmissionError`` and retries
                       later
``transport_overload`` the socket transport shed a whole connection at
                       the accept loop (live-connection cap); the peer
                       gets one retryable ``overloaded`` error frame
                       and backs off
=====================  =============================================

Every trip emits typed bus events (``health_alert`` →
``recovery_applied`` → possibly ``degraded_mode``) and is recorded in a
:class:`GuardReport` archived next to the run's checkpoints.

The supervisor is **bit-transparent**: all sentinels are read-only
finiteness/spread checks and no RNG is consumed unless a recovery
actually fires, so an unfaulted guarded run is bit-identical to an
unguarded one (regression-tested).
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from ..analysis.concurrency import TrackedLock
from ..stats.gmm import FitError
from .events import Event, EventBus

__all__ = ["GuardConfig", "GuardReport", "RunSupervisor"]

#: the event kinds a supervisor records into its report
GUARD_EVENT_KINDS = ("health_alert", "recovery_applied", "degraded_mode")


@dataclass(frozen=True)
class GuardConfig:
    """Sentinel thresholds and recovery budgets of one supervised run.

    The defaults are deliberately permissive: every threshold sits far
    outside the range healthy runs produce, so supervision never
    perturbs a well-behaved run (the bit-identity guarantee).
    """

    #: master switch — ``False`` disables supervision entirely
    enabled: bool = True
    #: rollback/retrain attempts per diverged training stage
    max_train_retries: int = 1
    #: learning-rate multiplier applied before each retrain attempt
    lr_backoff: float = 0.5
    #: |final loss| above this trips the divergence sentinel
    loss_explosion: float = 1e6
    #: any |weight| above this trips the divergence sentinel
    weight_limit: float = 1e8
    #: fresh-seed GMM re-fits before falling back to random seeding
    max_posterior_retries: int = 2
    #: a mixture weight below this marks the GMM as collapsed
    min_component_weight: float = 1e-12
    #: acceptable fitted-temperature range (matches fit_temperature's
    #: default search bounds, so the clamp is a no-op when healthy)
    t_min: float = 0.05
    t_max: float = 20.0
    #: diversity-score spread at or below this marks scoring collapsed
    min_diversity_spread: float = 1e-12
    #: litho-clip budget; ``None`` = unlimited.  Enforced by the
    #: labeler; the supervisor turns the overrun into a graceful stop.
    max_litho: int | None = None
    #: watchdog deadline (seconds) for pooled dataplane/litho chunks;
    #: ``None`` disables the watchdog
    stage_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_train_retries < 0:
            raise ValueError("max_train_retries must be >= 0")
        if not 0 < self.lr_backoff <= 1:
            raise ValueError(
                f"lr_backoff must be in (0, 1], got {self.lr_backoff}"
            )
        if self.max_posterior_retries < 0:
            raise ValueError("max_posterior_retries must be >= 0")
        if not 0 < self.t_min < self.t_max:
            raise ValueError(
                f"need 0 < t_min < t_max, got ({self.t_min}, {self.t_max})"
            )
        if self.max_litho is not None and self.max_litho <= 0:
            raise ValueError(
                f"max_litho must be positive or None, got {self.max_litho}"
            )
        if self.stage_timeout is not None and self.stage_timeout <= 0:
            raise ValueError(
                "stage_timeout must be positive or None, got "
                f"{self.stage_timeout}"
            )


@dataclass
class GuardReport:
    """What the supervisor saw and did during one run."""

    enabled: bool = True
    alerts: list[dict] = field(default_factory=list)
    recoveries: list[dict] = field(default_factory=list)
    degraded: list[dict] = field(default_factory=list)

    @property
    def final_mode(self) -> str:
        """``"normal"``, or ``"degraded:<mode>[+<mode>...]"``."""
        if not self.degraded:
            return "normal"
        modes: list[str] = []
        for entry in self.degraded:
            mode = str(entry.get("mode", "unknown"))
            if mode not in modes:
                modes.append(mode)
        return "degraded:" + "+".join(modes)

    def as_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "final_mode": self.final_mode,
            "n_alerts": len(self.alerts),
            "n_recoveries": len(self.recoveries),
            "alerts": list(self.alerts),
            "recoveries": list(self.recoveries),
            "degraded": list(self.degraded),
        }

    def save(self, directory: str | os.PathLike) -> Path:
        """Archive the report as ``guard_report.json`` under
        ``directory`` (atomic publish, like the checkpoints it sits
        next to)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / "guard_report.json"
        fd, tmp = tempfile.mkstemp(dir=str(directory), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path


class RunSupervisor:
    """Health sentinels + bounded recovery for one framework run.

    The framework calls the ``guarded_*`` helpers around each stage; the
    supervisor additionally subscribes to the bus so alerts emitted by
    other layers (the data-plane watchdog, the cache quarantine path)
    land in the same :class:`GuardReport`.
    """

    def __init__(
        self, config: GuardConfig, bus: EventBus, seed: int = 0
    ) -> None:
        self.config = config
        self.bus = bus
        self.seed = int(seed)
        self._report = GuardReport(enabled=config.enabled)
        self._handler: Callable[[Event], None] | None = None
        #: guards the report lists — _route is reached both from bus
        #: dispatch (scanner/pool threads) and directly from _emit on
        #: the supervising thread
        self._report_lock = TrackedLock("guard-report")

    # ------------------------------------------------------------------
    # report plumbing
    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Start recording guard events emitted by other layers."""
        if self._handler is None:
            self._handler = self.bus.subscribe(
                self._record_external, kinds=GUARD_EVENT_KINDS
            )

    def detach(self) -> None:
        if self._handler is not None:
            self.bus.unsubscribe(self._handler)
            self._handler = None

    def _record_external(self, event: Event) -> None:
        # the supervisor's own emissions are recorded directly by
        # _alert/_recovery/_degrade; only record what others emitted
        if event.payload.get("source") == "supervisor":
            return
        self._route(event.kind, dict(event.payload))

    def _route(self, kind: str, payload: dict) -> None:
        with self._report_lock:
            if kind == "health_alert":
                self._report.alerts.append(payload)
            elif kind == "recovery_applied":
                self._report.recoveries.append(payload)
            elif kind == "degraded_mode":
                self._report.degraded.append(payload)

    def _emit(self, kind: str, **payload) -> None:
        payload["source"] = "supervisor"
        self._route(kind, dict(payload))
        self.bus.emit(kind, **payload)

    def _alert(self, sentinel: str, stage: str, detail: str, **extra) -> None:
        self._emit(
            "health_alert", sentinel=sentinel, stage=stage, detail=detail,
            **extra,
        )

    def _recovery(
        self, policy: str, sentinel: str, stage: str, **extra
    ) -> None:
        self._emit(
            "recovery_applied", policy=policy, sentinel=sentinel,
            stage=stage, **extra,
        )

    def _degrade(self, mode: str, stage: str, **extra) -> None:
        self._emit("degraded_mode", mode=mode, stage=stage, **extra)

    def report(self) -> GuardReport:
        return self._report

    # ------------------------------------------------------------------
    # seeding (Alg. 2 line 1)
    # ------------------------------------------------------------------
    def guarded_posterior(
        self,
        fit: Callable[[int], tuple[np.ndarray, object]],
        n: int,
    ) -> np.ndarray:
        """Posterior fit with fresh-seed retries and a random fallback.

        ``fit(seed_offset)`` must return ``(posterior, gmm)``; offset 0
        is the configured seed, so an unfaulted run is untouched.
        """
        cfg = self.config
        for attempt in range(cfg.max_posterior_retries + 1):
            # distinct deterministic seed per retry attempt
            offset = attempt * 7919
            try:
                posterior, gmm = fit(offset)
            except FitError as exc:
                self._alert(
                    "gmm_degenerate", stage="seed", detail=str(exc),
                    attempt=attempt,
                )
                continue
            problem = self._posterior_problem(posterior, gmm)
            if problem is None:
                if attempt:
                    self._recovery(
                        "gmm_reseed", "gmm_degenerate", stage="seed",
                        attempt=attempt, seed_offset=offset,
                    )
                return posterior
            self._alert(
                "gmm_degenerate", stage="seed", detail=problem,
                attempt=attempt,
            )
        self._recovery("random_seeding", "gmm_degenerate", stage="seed")
        self._degrade("random_seeding", stage="seed")
        rng = np.random.default_rng(self.seed + 0x5EED)
        return rng.uniform(size=n)

    def _posterior_problem(
        self, posterior: np.ndarray, gmm: object
    ) -> str | None:
        if not np.isfinite(posterior).all():
            return "non-finite posterior values"
        if np.ptp(posterior) <= 0:
            return "constant posterior (no ranking signal)"
        weights = getattr(gmm, "weights_", None)
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if not np.isfinite(weights).all():
                return "non-finite mixture weights"
            if float(weights.min()) < self.config.min_component_weight:
                return (
                    f"collapsed mixture component (min weight "
                    f"{float(weights.min()):.3e})"
                )
        ref = getattr(gmm, "_log_density_ref_", None)
        if ref is not None and not np.isfinite(ref):
            return "non-finite log-likelihood reference"
        return None

    # ------------------------------------------------------------------
    # training (Alg. 2 lines 3-5 and 12)
    # ------------------------------------------------------------------
    def guarded_training(
        self,
        classifier,
        train_fn: Callable[[], list],
        stage: str,
        iteration: int | None = None,
    ):
        """Run ``train_fn`` with rollback + LR backoff on divergence.

        A pre-stage snapshot (weights, optimizer moments, shuffle RNG)
        is taken first; if the loss trace or the resulting weights are
        non-finite or exploding, the snapshot is restored, the learning
        rate is backed off, the shuffle RNG is reseeded (perturbed
        restart), and training re-runs — bounded by
        ``max_train_retries``, after which the model is frozen at the
        snapshot and the run degrades.
        """
        if not self._supports_snapshot(classifier):
            # classifiers without the snapshot surface (e.g. committee
            # ensembles) train unsupervised — rollback needs a snapshot
            return train_fn()
        cfg = self.config
        snapshot = self._snapshot_model(classifier)
        trace = train_fn()
        problem = self._training_problem(trace, classifier)
        if problem is None:
            return trace
        for attempt in range(1, cfg.max_train_retries + 1):
            self._alert(
                "train_divergence", stage=stage, detail=problem,
                iteration=iteration, attempt=attempt,
            )
            self._restore_model(classifier, snapshot)
            classifier.learning_rate = classifier.learning_rate * cfg.lr_backoff
            perturbed = np.random.default_rng(
                self.seed + 7919 * attempt
            ).bit_generator.state
            classifier.set_shuffle_rng_state(perturbed)
            trace = train_fn()
            problem = self._training_problem(trace, classifier)
            if problem is None:
                self._recovery(
                    "rollback_retrain", "train_divergence", stage=stage,
                    iteration=iteration, attempt=attempt,
                )
                return trace
        self._alert(
            "train_divergence", stage=stage, detail=problem,
            iteration=iteration, attempt=cfg.max_train_retries + 1,
        )
        self._restore_model(classifier, snapshot)
        self._recovery(
            "freeze_model", "train_divergence", stage=stage,
            iteration=iteration,
        )
        self._degrade(
            "training_frozen", stage=stage, iteration=iteration,
            detail=problem,
        )
        return trace

    @staticmethod
    def _supports_snapshot(classifier) -> bool:
        """Whether ``classifier`` exposes the rollback surface the
        divergence policy needs (weights, optimizer state, shuffle RNG,
        learning rate)."""
        return all(
            hasattr(classifier, name)
            for name in (
                "network", "optimizer_state_arrays",
                "restore_optimizer_state", "shuffle_rng_state",
                "set_shuffle_rng_state", "learning_rate",
            )
        )

    @staticmethod
    def _snapshot_model(classifier) -> dict:
        return {
            # get_weights/optimizer_state_arrays return copies, but copy
            # again so a restore can never alias live training buffers
            "weights": {
                k: np.array(v)
                for k, v in classifier.network.get_weights().items()
            },
            "optim": {
                k: np.array(v)
                for k, v in classifier.optimizer_state_arrays().items()
            },
            "shuffle": classifier.shuffle_rng_state(),
        }

    @staticmethod
    def _restore_model(classifier, snapshot: dict) -> None:
        classifier.network.set_weights(
            {k: np.array(v) for k, v in snapshot["weights"].items()}
        )
        classifier.restore_optimizer_state(
            {k: np.array(v) for k, v in snapshot["optim"].items()}
        )
        classifier.set_shuffle_rng_state(snapshot["shuffle"])

    def _training_problem(self, trace, classifier) -> str | None:
        cfg = self.config
        trace_arr = np.asarray(list(trace), dtype=np.float64)
        if trace_arr.size:
            if not np.isfinite(trace_arr).all():
                return "non-finite training loss"
            if abs(float(trace_arr[-1])) > cfg.loss_explosion:
                return (
                    f"training loss exploded ({float(trace_arr[-1]):.3e})"
                )
        for key, value in classifier.network.get_weights().items():
            if not np.isfinite(value).all():
                return f"non-finite weights in {key!r}"
            if value.size and float(np.abs(value).max()) > cfg.weight_limit:
                return f"exploding weights in {key!r}"
        return None

    # ------------------------------------------------------------------
    # calibration (Alg. 2 line 8, Eq. (5))
    # ------------------------------------------------------------------
    def guarded_calibration(
        self, scaler, logits: np.ndarray, labels: np.ndarray
    ) -> None:
        """Fit the temperature scaler; fall back to identity ``T = 1``
        (uncalibrated Eq. (4) softmax) when the fit raises, diverges or
        lands outside ``[t_min, t_max]``."""
        cfg = self.config
        try:
            scaler.fit(logits, labels, bounds=(cfg.t_min, cfg.t_max))
        except (ValueError, FloatingPointError) as exc:
            self._fallback_temperature(scaler, str(exc))
            return
        t = scaler.temperature_
        converged = getattr(scaler, "converged_", None)
        if (
            t is None
            or not np.isfinite(t)
            or not cfg.t_min <= t <= cfg.t_max
            or converged is False
        ):
            self._fallback_temperature(
                scaler, f"fit diverged (T={t!r}, converged={converged!r})"
            )

    def _fallback_temperature(self, scaler, detail: str) -> None:
        self._alert("calibration_failure", stage="calibrate", detail=detail)
        scaler.temperature_ = 1.0
        scaler.converged_ = False
        self._recovery(
            "identity_temperature", "calibration_failure", stage="calibrate"
        )

    # ------------------------------------------------------------------
    # selection (Alg. 2 line 9)
    # ------------------------------------------------------------------
    def guard_selection(
        self, context, iteration: int
    ) -> tuple[np.ndarray, dict] | None:
        """``None`` when scoring is healthy; otherwise a replacement
        ``(selected_local_indices, diagnostics)`` pair computed by a
        degraded selector (pure-diversity, uncertainty-only, or random).
        """
        probs = np.asarray(context.calibrated_probs)
        embeddings = np.asarray(context.embeddings)
        if len(probs) == 0:
            return None
        k = min(int(context.k), len(probs))
        uncertainty_ok = bool(np.isfinite(probs).all())
        diversity = None
        if np.isfinite(embeddings).all():
            from ..core.diversity import diversity_scores

            diversity = diversity_scores(embeddings)
            diversity_ok = bool(
                np.isfinite(diversity).all()
                and np.ptp(diversity) > self.config.min_diversity_spread
            )
        else:
            diversity_ok = False
        if uncertainty_ok and diversity_ok:
            return None

        if not uncertainty_ok and diversity_ok:
            self._alert(
                "uncertainty_collapse", stage="select",
                detail="non-finite calibrated probabilities",
                iteration=iteration,
            )
            chosen = np.argsort(-diversity, kind="stable")[:k]
            self._recovery(
                "pure_diversity", "uncertainty_collapse", stage="select",
                iteration=iteration,
            )
            return chosen.astype(np.int64), {"fallback": "pure_diversity"}

        if uncertainty_ok:
            from ..core.uncertainty import hotspot_aware_uncertainty

            self._alert(
                "diversity_collapse", stage="select",
                detail="near-zero diversity spread",
                iteration=iteration,
            )
            scores = hotspot_aware_uncertainty(probs)
            chosen = np.argsort(-scores, kind="stable")[:k]
            self._recovery(
                "uncertainty_only", "diversity_collapse", stage="select",
                iteration=iteration,
            )
            return chosen.astype(np.int64), {"fallback": "uncertainty_only"}

        self._alert(
            "scoring_collapse", stage="select",
            detail="both uncertainty and diversity scores unusable",
            iteration=iteration,
        )
        chosen = context.rng.choice(len(probs), size=k, replace=False)
        self._recovery(
            "random_selection", "scoring_collapse", stage="select",
            iteration=iteration,
        )
        return chosen.astype(np.int64), {"fallback": "random_selection"}

    # ------------------------------------------------------------------
    # serving admission (repro.serve)
    # ------------------------------------------------------------------
    def overloaded(self, detail: str, stage: str = "serve", **extra) -> None:
        """Record a shed serving request (queue overflow or a litho
        budget the request would overrun).  Shedding *is* the bounded
        recovery — the daemon stays healthy and the client retries —
        so no degraded mode is entered."""
        self._alert("serve_overload", stage=stage, detail=detail, **extra)
        self._recovery("shed_load", "serve_overload", stage=stage, **extra)

    def connection_shed(
        self, detail: str, stage: str = "transport", **extra
    ) -> None:
        """Record a connection shed at the socket transport's accept
        loop (live-connection cap).  Like :meth:`overloaded`, shedding
        *is* the recovery: the peer got a retryable ``overloaded``
        error frame and backs off, so no degraded mode is entered."""
        self._alert(
            "transport_overload", stage=stage, detail=detail, **extra
        )
        self._recovery(
            "shed_connection", "transport_overload", stage=stage, **extra
        )

    # ------------------------------------------------------------------
    # litho budget (Definition 3)
    # ------------------------------------------------------------------
    def budget_exhausted(self, exc, stage: str, iteration: int) -> None:
        """Record a litho budget overrun and the graceful early stop."""
        self._alert(
            "litho_budget", stage=stage, detail=str(exc),
            iteration=iteration,
        )
        self._recovery(
            "early_stop", "litho_budget", stage=stage, iteration=iteration
        )
        self._degrade("budget_exhausted", stage=stage, iteration=iteration)
