"""Typed event bus for run observability.

The PSHD framework emits one event per stage transition instead of
threading progress dicts through its call tree; history recording, CLI
progress lines and bench-harness instrumentation are all plain
subscribers.  Events are cheap synchronous callbacks — the hot loop pays
nothing when nobody listens.

Event kinds and their payloads:

``run_start``
    ``benchmark, method, pool_size, n_train, n_val, litho_used,
    seed_seconds`` — emitted once after the seed stage (GMM posterior,
    split, initial training).
``iteration_start``
    ``iteration, pool_size, litho_used`` — top of every AL iteration.
``batch_selected``
    ``iteration, selected, query_size, temperature, select_seconds`` —
    after the batch selector ran; ``selected`` holds global dataset
    indices.
``model_updated``
    ``iteration, train_size, hotspots_in_train, temperature,
    batch_hotspots, litho_used, update_seconds, diagnostics`` — after
    the labeled batch fine-tuned the model; ``diagnostics`` carries the
    selector's extra outputs (entropy weights etc.).
``detection_done``
    ``scanned, hits, false_alarms, litho_used, detect_seconds`` — after
    the full-chip scan of the remaining pool.

Fault-tolerance events (see :mod:`repro.engine.checkpoint` and the
retry layer in :mod:`repro.litho.labeler`):

``checkpoint_saved``
    ``iteration, path, checkpoint_seconds`` — after a run checkpoint
    was written atomically to disk.
``run_resumed``
    ``iteration, path, pool_size, litho_used`` — once when a run
    re-enters the AL loop from a checkpoint; ``iteration`` is the last
    *completed* iteration the checkpoint captured.
``simulation_retry``
    ``chunk, retries, n_clips`` — one per labeling chunk that needed
    transient-failure retries; ``retries`` is the attempt count beyond
    the first for that chunk.

Data-plane events (emitted by :mod:`repro.dataplane` and the batched
labelers rather than the framework stages):

``features_extracted``
    ``n_clips, cache_hits, cache_misses, deduped, chunks, chunk_size,
    workers, kinds, cache_stats, extract_seconds`` — one per batch
    extraction request.
``labels_computed``
    ``n_clips, cache_hits, cache_misses, deduped, simulated_seconds,
    label_seconds`` — one per batch labeling request; ``cache_misses``
    clips actually paid for lithography, ``simulated_seconds`` is their
    runtime-model charge.
``cache_corrupt``
    ``key, path`` — a corrupt on-disk feature-cache entry was detected
    and quarantined (deleted); the read is counted as a miss.
``cache_evicted``
    ``key, bytes, disk_bytes, max_disk_bytes`` — the disk tier evicted
    its least-recently-used entry to stay inside the byte budget.
``cache_tmp_failed``
    ``path, error`` — :meth:`~repro.dataplane.cache.FeatureCache.compact`
    could not remove a leftover ``*.tmp`` file from an interrupted
    write; the failure is also counted in the compaction report's
    ``failed_tmp`` field.

Streaming-scan events (see :mod:`repro.dataplane.stream`):

``scan_started``
    ``layout, n_tiles, n_windows, tile_clips, shards, incremental`` —
    once at the top of a tiled full-chip scan.
``tile_scanned``
    ``tile, n_clips, n_hotspots, replayed, tiles_done, n_tiles,
    tile_seconds`` — one per completed tile (``replayed`` tiles served
    their verdicts from the tile store instead of re-scoring).
``scan_completed``
    ``n_tiles, n_clips, n_hotspots, replayed_tiles, rescored_tiles,
    replayed_clips, rescored_clips, steals, scan_seconds`` — once after
    the last tile; the summary half of a
    :class:`~repro.dataplane.stream.ScanReport`.

Serving events (see :mod:`repro.serve`):

``request_received``
    ``model, n_clips, queue_depth`` — one per detection request
    accepted into the daemon's micro-batching queue (rejected requests
    surface as ``health_alert`` instead).
``batch_dispatched``
    ``model, n_requests, n_clips, queue_depth`` — the dispatcher
    coalesced queued requests of one model into a single
    extract→scale→predict→calibrate pipeline pass.
``request_completed``
    ``model, n_clips, n_hotspots, coalesced, serve_seconds`` — one per
    finished request; ``coalesced`` is the clip count of the dispatched
    batch the request rode in (equal to ``n_clips`` when it rode
    alone).

Transport events (see :mod:`repro.serve.transport`):

``transport_listening``
    ``host, port, max_connections`` — the socket front door is
    accepting connections.
``transport_conn_rejected``
    ``peer, detail, max_connections`` — a connection was shed at the
    accept loop (cap reached or the transport is closing); the peer got
    one retryable ``overloaded`` error frame.
``transport_retry``
    ``attempt, error, detail, sleep_s`` — the client hit a retryable
    transport fault and is backing off before its next attempt.
``transport_drain``
    ``n_connections, drain`` — the transport stopped accepting and is
    shutting its live connections down (gracefully when ``drain``).
``serve_circuit_open``
    ``failures, threshold, error`` — the client's circuit breaker
    opened after consecutive retryable failures; calls now fail fast.
``serve_circuit_half_open``
    ``waited_s`` — the cool-down elapsed; one probe request decides
    whether the circuit re-closes or re-opens.
``serve_circuit_closed``
    ``recovered_from`` — a successful exchange closed the circuit.

Run-health events (see :mod:`repro.engine.guard`):

``health_alert``
    ``sentinel, stage, detail, ...`` — a health sentinel tripped
    (non-finite loss, degenerate GMM, diverged temperature fit,
    collapsed scoring, litho budget overrun, hung pool worker).
``recovery_applied``
    ``policy, sentinel, stage, ...`` — a bounded recovery policy ran
    (rollback/retrain, GMM reseed, identity temperature, fallback
    selector, serial fallback, graceful early stop).
``degraded_mode``
    ``mode, stage, ...`` — a recovery budget was exhausted and the run
    continues in a degraded regime instead of aborting.
``guard_report``
    ``final_mode, n_alerts, n_recoveries, alerts, recoveries,
    degraded`` — the :class:`~repro.engine.guard.GuardReport` summary
    emitted once at the end of a supervised run.
"""

from __future__ import annotations

import sys
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from ..analysis.concurrency import TrackedRLock, guarded_by

__all__ = [
    "EVENT_KINDS",
    "Event",
    "EventBus",
    "EventLog",
    "HistoryRecorder",
    "ProgressPrinter",
]

#: the five stage-transition events of one PSHD run (in emission order)
#: plus the fault-tolerance and data-plane events
EVENT_KINDS = (
    "run_start",
    "iteration_start",
    "batch_selected",
    "model_updated",
    "detection_done",
    "checkpoint_saved",
    "run_resumed",
    "simulation_retry",
    "features_extracted",
    "labels_computed",
    "cache_corrupt",
    "cache_evicted",
    "cache_tmp_failed",
    "scan_started",
    "tile_scanned",
    "scan_completed",
    "request_received",
    "batch_dispatched",
    "request_completed",
    "transport_listening",
    "transport_conn_rejected",
    "transport_retry",
    "transport_drain",
    "serve_circuit_open",
    "serve_circuit_half_open",
    "serve_circuit_closed",
    "health_alert",
    "recovery_applied",
    "degraded_mode",
    "guard_report",
)


@dataclass(frozen=True)
class Event:
    """One immutable stage-transition notification."""

    kind: str
    seq: int
    payload: dict = field(default_factory=dict)


#: subscriber signature
Handler = Callable[[Event], None]


class EventBus:
    """Synchronous publish/subscribe hub for :class:`Event`.

    Handlers run in subscription order; a handler subscribed with
    ``kinds`` only sees those event kinds.  Emitting an unknown kind is
    a programming error and raises immediately.

    Thread safety: scanner shards and pool workers emit
    ``tile_scanned``/``cache_evicted`` from their own threads, so the
    subscriber list, the sequence counter, **and dispatch itself** are
    serialized under one re-entrant tracked lock — handlers never run
    concurrently with each other and sequence numbers match delivery
    order.  Two consequences for handler authors: a handler may emit
    further events (the lock is re-entrant), but it must not block or
    acquire a lock that is elsewhere held while emitting (the tracked
    lock reports that inversion under ``REPRO_CHECK``).
    """

    _subscribers = guarded_by("_lock")
    _seq = guarded_by("_lock")

    def __init__(self) -> None:
        self._lock = TrackedRLock("event-bus")
        with self._lock:
            self._subscribers = []  #: guarded_by: _lock
            self._seq = 0  #: guarded_by: _lock

    def subscribe(
        self, handler: Handler, kinds: Iterable[str] | None = None
    ) -> Handler:
        """Register ``handler``; returns it so inline lambdas can be
        unsubscribed later."""
        if kinds is not None:
            kinds = frozenset(kinds)
            unknown = kinds - set(EVENT_KINDS)
            if unknown:
                raise ValueError(
                    f"unknown event kinds {sorted(unknown)}; "
                    f"known: {EVENT_KINDS}"
                )
        with self._lock:
            self._subscribers.append((handler, kinds))
        return handler

    def unsubscribe(self, handler: Handler) -> None:
        with self._lock:
            self._subscribers = [
                (h, k) for h, k in self._subscribers if h is not handler
            ]

    def emit(self, kind: str, **payload) -> Event:
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {kind!r}; known: {EVENT_KINDS}"
            )
        with self._lock:
            event = Event(kind=kind, seq=self._seq, payload=payload)
            self._seq += 1
            for handler, kinds in list(self._subscribers):
                if kinds is None or kind in kinds:
                    handler(event)
        return event


class EventLog:
    """Subscriber that records every event — bench instrumentation and
    test assertions read the ordered trace back."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __call__(self, event: Event) -> None:
        self.events.append(event)

    def kinds(self) -> list[str]:
        return [event.kind for event in self.events]

    def of_kind(self, kind: str) -> list[Event]:
        return [event for event in self.events if event.kind == kind]

    def stage_seconds(self) -> dict[str, float]:
        """Total seconds per instrumented stage across the run."""
        totals: dict[str, float] = {}
        for event in self.events:
            for key, value in event.payload.items():
                if key.endswith("_seconds"):
                    stage = key[: -len("_seconds")]
                    totals[stage] = totals.get(stage, 0.0) + float(value)
        return totals


class HistoryRecorder:
    """Rebuilds ``PSHDResult.history`` from ``model_updated`` events.

    The entry layout (keys and value types) matches the pre-event-bus
    inline dicts exactly, so downstream table/figure code is unchanged.
    """

    def __init__(self) -> None:
        self.history: list[dict] = []

    def __call__(self, event: Event) -> None:
        if event.kind != "model_updated":
            return
        payload = event.payload
        self.history.append(
            {
                "iteration": payload["iteration"],
                "train_size": payload["train_size"],
                "hotspots_in_train": payload["hotspots_in_train"],
                "temperature": payload["temperature"],
                "batch_hotspots": payload["batch_hotspots"],
                **payload.get("diagnostics", {}),
            }
        )


class ProgressPrinter:
    """Subscriber printing one human-readable line per stage (CLI)."""

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stdout

    def __call__(self, event: Event) -> None:
        payload = event.payload
        if event.kind == "run_start":
            line = (
                f"[{payload['method']}] seeded: {payload['n_train']} train "
                f"+ {payload['n_val']} val labeled, "
                f"pool {payload['pool_size']} "
                f"({payload['seed_seconds']:.1f}s)"
            )
        elif event.kind == "iteration_start":
            line = (
                f"iteration {payload['iteration']}: "
                f"pool {payload['pool_size']}, "
                f"litho-clips so far {payload['litho_used']}"
            )
        elif event.kind == "model_updated":
            line = (
                f"  labeled {payload['batch_hotspots']} hotspots in batch, "
                f"train {payload['train_size']} "
                f"({payload['hotspots_in_train']} HS), "
                f"T={payload['temperature']:.3f}"
            )
        elif event.kind == "detection_done":
            line = (
                f"detection: {payload['hits']} hits, "
                f"{payload['false_alarms']} false alarms over "
                f"{payload['scanned']} scanned clips"
            )
        elif event.kind == "checkpoint_saved":
            line = (
                f"  checkpoint: iteration {payload['iteration']} -> "
                f"{payload['path']} "
                f"({payload['checkpoint_seconds']:.2f}s)"
            )
        elif event.kind == "run_resumed":
            line = (
                f"resumed after iteration {payload['iteration']} from "
                f"{payload['path']}: pool {payload['pool_size']}, "
                f"litho-clips so far {payload['litho_used']}"
            )
        elif event.kind == "simulation_retry":
            line = (
                f"  litho retry: chunk {payload['chunk']} needed "
                f"{payload['retries']} retries "
                f"({payload['n_clips']} clips)"
            )
        elif event.kind == "features_extracted":
            line = (
                f"features: {payload['n_clips']} clips "
                f"({payload['cache_hits']} cached, "
                f"{payload['cache_misses']} encoded, "
                f"{payload['extract_seconds']:.2f}s)"
            )
        elif event.kind == "labels_computed":
            line = (
                f"labels: {payload['n_clips']} clips "
                f"({payload['cache_hits']} cached, "
                f"{payload['cache_misses']} simulated)"
            )
        elif event.kind == "cache_corrupt":
            line = (
                f"  cache: quarantined corrupt entry {payload['key']}"
            )
        elif event.kind == "cache_evicted":
            line = (
                f"  cache: evicted {payload['key']} "
                f"({payload['bytes']} B; tier at "
                f"{payload['disk_bytes']}/{payload['max_disk_bytes']} B)"
            )
        elif event.kind == "cache_tmp_failed":
            line = (
                f"  cache: could not remove temp file "
                f"{payload['path']} ({payload['error']})"
            )
        elif event.kind == "request_received":
            line = (
                f"  serve: request for {payload['n_clips']} clips "
                f"(model {payload['model']}, "
                f"queue {payload['queue_depth']})"
            )
        elif event.kind == "batch_dispatched":
            line = (
                f"  serve: dispatched {payload['n_requests']} requests "
                f"/ {payload['n_clips']} clips (model {payload['model']})"
            )
        elif event.kind == "request_completed":
            line = (
                f"  serve: {payload['n_hotspots']} hotspots in "
                f"{payload['n_clips']} clips "
                f"(coalesced {payload['coalesced']}, "
                f"{payload['serve_seconds'] * 1e3:.1f} ms)"
            )
        elif event.kind == "transport_listening":
            line = (
                f"serve: listening on {payload['host']}:{payload['port']} "
                f"(max {payload['max_connections']} connections)"
            )
        elif event.kind == "transport_conn_rejected":
            line = (
                f"  ! serve: shed connection from {payload['peer']} "
                f"({payload['detail']})"
            )
        elif event.kind == "transport_retry":
            line = (
                f"  serve: retry #{payload['attempt']} after "
                f"{payload['error']} (backoff "
                f"{payload['sleep_s'] * 1e3:.0f} ms)"
            )
        elif event.kind == "transport_drain":
            line = (
                f"serve: draining {payload['n_connections']} "
                f"connection(s)"
            )
        elif event.kind == "serve_circuit_open":
            line = (
                f"  ! serve: circuit OPEN after {payload['failures']} "
                f"failures ({payload['error']})"
            )
        elif event.kind == "serve_circuit_half_open":
            line = (
                f"  serve: circuit half-open after "
                f"{payload['waited_s']:.2f}s cool-down"
            )
        elif event.kind == "serve_circuit_closed":
            line = (
                f"  serve: circuit closed (recovered from "
                f"{payload['recovered_from']})"
            )
        elif event.kind == "scan_started":
            line = (
                f"scan {payload['layout']}: {payload['n_tiles']} tiles "
                f"({payload['n_windows']} windows, "
                f"{payload['shards']} shards"
                f"{', incremental' if payload['incremental'] else ''})"
            )
        elif event.kind == "tile_scanned":
            line = (
                f"  tile {payload['tile']} "
                f"[{payload['tiles_done']}/{payload['n_tiles']}]: "
                f"{payload['n_clips']} clips, "
                f"{payload['n_hotspots']} hotspots"
                f"{' (replayed)' if payload['replayed'] else ''}"
            )
        elif event.kind == "scan_completed":
            line = (
                f"scan done: {payload['n_hotspots']} hotspots in "
                f"{payload['n_clips']} clips over {payload['n_tiles']} "
                f"tiles ({payload['replayed_tiles']} replayed, "
                f"{payload['rescored_tiles']} scored, "
                f"{payload['scan_seconds']:.1f}s)"
            )
        elif event.kind == "health_alert":
            line = (
                f"  ! health: {payload['sentinel']} at "
                f"{payload['stage']} — {payload.get('detail', '')}"
            )
        elif event.kind == "recovery_applied":
            line = (
                f"  > recovery: {payload['policy']} "
                f"(sentinel {payload['sentinel']}, "
                f"stage {payload['stage']})"
            )
        elif event.kind == "degraded_mode":
            line = (
                f"  * degraded mode: {payload['mode']} "
                f"(stage {payload['stage']})"
            )
        elif event.kind == "guard_report":
            line = (
                f"guard: {payload['final_mode']} — "
                f"{payload['n_alerts']} alerts, "
                f"{payload['n_recoveries']} recoveries"
            )
        else:
            return
        print(line, file=self.stream)
