"""Name-keyed registry of PSHD methods (batch selectors + PM runners).

One table maps every method name of Table II — ``ours``, the AL
baselines, and the pattern-matching flows — to how it runs, so the
framework, the CLI and the bench harness all resolve methods the same
way instead of each hard-coding its own dispatch.

Framework methods carry a batch :data:`Selector` plus the config tweaks
that method needs (e.g. the QP baseline discards its query remainder and
shrinks the query set, mirroring [14]); pattern-matching methods carry a
standalone ``runner`` because they bypass the AL framework entirely.

Built-in methods live in :mod:`repro.baselines`, which registers itself
on import; the registry imports it lazily on first lookup so there is no
import cycle with :mod:`repro.core.framework`.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.framework import FrameworkConfig, Selector
    from ..core.metrics import PSHDResult
    from ..data.dataset import ClipDataset

__all__ = [
    "MethodSpec",
    "register_method",
    "get_method",
    "method_names",
    "framework_method_names",
    "resolve_selector",
]


@dataclass(frozen=True)
class MethodSpec:
    """How one named method runs.

    Exactly one of two shapes:

    * framework method — ``runner is None``; :meth:`build_config` turns a
      base :class:`FrameworkConfig` into this method's config
      (``selector=None`` means the built-in EntropySampling path).
    * standalone method — ``runner`` executes the whole flow itself
      (pattern matching), signature ``runner(dataset, seed=0)``.
    """

    name: str
    selector: "Selector | None" = None
    discard_query_rest: bool = False
    #: optional extra config tweak applied after the standard fields
    configure: "Callable[[FrameworkConfig], FrameworkConfig] | None" = None
    runner: "Callable[..., PSHDResult] | None" = None
    description: str = ""

    @property
    def is_framework_method(self) -> bool:
        return self.runner is None

    def build_config(
        self, base: "FrameworkConfig | None" = None
    ) -> "FrameworkConfig":
        """This method's framework config on top of ``base``."""
        if not self.is_framework_method:
            raise ValueError(
                f"{self.name!r} is a standalone method; call run() instead"
            )
        from ..core.framework import FrameworkConfig

        base = base if base is not None else FrameworkConfig()
        config = replace(
            base,
            selector=self.selector,
            method_name=self.name,
            discard_query_rest=self.discard_query_rest,
        )
        if self.configure is not None:
            config = self.configure(config)
        return config

    def run(
        self, dataset: "ClipDataset", seed: int = 0, **kwargs
    ) -> "PSHDResult":
        """Execute a standalone method (pattern matching)."""
        if self.is_framework_method:
            raise ValueError(
                f"{self.name!r} is a framework method; use build_config()"
            )
        return self.runner(dataset, seed=seed, **kwargs)


_REGISTRY: dict[str, MethodSpec] = {}


def register_method(spec: MethodSpec, overwrite: bool = False) -> MethodSpec:
    """Add ``spec`` to the registry (``overwrite=True`` to replace)."""
    if spec.name in _REGISTRY and not overwrite:
        raise ValueError(f"method {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def _ensure_builtins() -> None:
    # repro.baselines registers every built-in method when imported
    from .. import baselines  # noqa: F401


def get_method(name: str) -> MethodSpec:
    """Look up a method by name; raises ``ValueError`` when unknown."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown method {name!r}; known: {method_names()}"
        ) from None


def method_names() -> tuple[str, ...]:
    """All registered method names, registration order."""
    _ensure_builtins()
    return tuple(_REGISTRY)


def framework_method_names() -> tuple[str, ...]:
    """Names of methods that run through :class:`PSHDFramework`."""
    _ensure_builtins()
    return tuple(
        name for name, spec in _REGISTRY.items() if spec.is_framework_method
    )


def resolve_selector(name: str) -> "Selector | None":
    """The batch selector of a framework method (``None`` = built-in
    EntropySampling)."""
    spec = get_method(name)
    if not spec.is_framework_method:
        raise ValueError(f"{name!r} has no batch selector (standalone method)")
    return spec.selector
