"""Inference engine (S12): session caching, event bus, method registry.

The production-shaped inference layer under the AL framework:

* :class:`InferenceSession` — scales the pool tensor once per scaler
  fit and serves batched logits/embeddings from the cache, including
  the single-pass :meth:`~InferenceSession.predict_full` tap.
* :class:`EventBus` + typed events — run observability as subscribers
  (history recording, CLI progress, bench instrumentation).
* the method registry — every Table II method reachable by name from
  the framework, CLI and bench harness alike.
* :class:`RunCheckpoint` + atomic save/load — crash-safe snapshots of a
  running Algorithm 2 loop with bit-identical resume (see
  :mod:`repro.engine.checkpoint`).
"""

from .checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    RunCheckpoint,
    checkpoint_paths,
    load_checkpoint,
    save_checkpoint,
)
from .events import (
    EVENT_KINDS,
    Event,
    EventBus,
    EventLog,
    HistoryRecorder,
    ProgressPrinter,
)
from .guard import GuardConfig, GuardReport, RunSupervisor
from .registry import (
    MethodSpec,
    framework_method_names,
    get_method,
    method_names,
    register_method,
    resolve_selector,
)
from .session import InferenceSession

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "RunCheckpoint",
    "checkpoint_paths",
    "load_checkpoint",
    "save_checkpoint",
    "EVENT_KINDS",
    "Event",
    "EventBus",
    "EventLog",
    "HistoryRecorder",
    "ProgressPrinter",
    "GuardConfig",
    "GuardReport",
    "RunSupervisor",
    "InferenceSession",
    "MethodSpec",
    "register_method",
    "get_method",
    "method_names",
    "framework_method_names",
    "resolve_selector",
]
