"""The ``REPRO_CHECK`` mode shared by every runtime checker.

Array contracts (:mod:`repro.analysis.contracts`) and the concurrency
sanitizer (:mod:`repro.analysis.concurrency`) obey one switch:

``off`` (default)
    Checkers short-circuit — one thread-local read and a branch.
``warn``
    Violations emit a warning and execution continues.
``strict``
    Violations raise.

The mode is **per thread**, seeded from the environment when a thread
first asks: worker threads spawned under ``REPRO_CHECK=strict`` check
strictly, while :func:`set_check_mode` / :func:`checking` adjust only
the calling thread (tests pin the environment variable when they need
freshly spawned workers to inherit a non-default mode).

This module is deliberately standard-library only so the stdlib half of
``repro.analysis`` (linter, concurrency sanitizer, interleaving
harness) stays importable without numpy.
"""

from __future__ import annotations

import os
import threading

__all__ = [
    "CHECK_ENV_VAR",
    "MODES",
    "check_mode",
    "checking",
    "set_check_mode",
]

CHECK_ENV_VAR = "REPRO_CHECK"
MODES = ("strict", "warn", "off")


def _resolve_env_mode() -> str:
    raw = os.environ.get(CHECK_ENV_VAR, "off").strip().lower()
    if raw not in MODES:
        raise ValueError(
            f"{CHECK_ENV_VAR}={raw!r} is not a valid mode; "
            f"choose one of {MODES}"
        )
    return raw


class _State(threading.local):
    """Per-thread check mode, seeded from the environment."""

    def __init__(self) -> None:
        self.mode = _resolve_env_mode()


_state = _State()


def check_mode() -> str:
    """The active check mode (``strict``/``warn``/``off``)."""
    return _state.mode


def set_check_mode(mode: str) -> str:
    """Set the mode for the current thread; returns the previous mode."""
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    previous = _state.mode
    _state.mode = mode
    return previous


class checking:
    """Context manager pinning the check mode (``with checking("strict")``)."""

    def __init__(self, mode: str) -> None:
        self.mode = mode
        self._previous: str | None = None

    def __enter__(self) -> "checking":
        self._previous = set_check_mode(self.mode)
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._previous is not None
        set_check_mode(self._previous)
