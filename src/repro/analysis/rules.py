"""AST rules of ``reprolint`` — repo-specific invariants ruff cannot see.

Each rule walks one parsed module and yields :class:`Violation` records.
The rules encode invariants earlier PRs rely on:

``R001`` **no module-level numpy RNG** — reproducibility rests on seeded
    ``np.random.Generator`` instances threaded through call trees; the
    legacy global state (``np.random.rand``, ``np.random.seed``, …)
    silently couples unrelated runs.
``R002`` **float64 invariance of the nn/features kernels** — the whole
    numeric stack (DCT encoding through gradients) is float64; a stray
    ``np.float32`` literal or ``astype`` downcast truncates bits that
    the bit-identity tests of the data plane depend on.
``R003`` **registered event names only** — ``EventBus.emit`` rejects
    unknown kinds at runtime; the linter catches the typo before any
    code runs by checking literal emit names against ``EVENT_KINDS``.
``R004`` **no per-clip FeatureExtractor calls outside the data plane**
    (PR 2's invariant) — production code must go through
    ``repro.dataplane.BatchFeatureExtractor`` so caching, chunking and
    observability are never bypassed.
``R005`` **no mutable default arguments** — a shared default list/dict
    is state smuggled across calls.
``R006`` **contract coverage** — public module-level functions with
    ndarray-annotated signatures in the contracted modules must declare
    a ``@contract`` or carry an explicit ``# reprolint: no-contract``
    waiver.

Concurrency rules R007–R011 live in :mod:`.rules_concurrency` and are
merged into :data:`RULES` below.

This module depends only on the standard library so the linter can run
in environments without numpy installed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["LintContext", "Violation", "RULES", "run_rules"]


@dataclass(frozen=True)
class Violation:
    """One reprolint finding, ruff-style addressable."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class LintContext:
    """Per-run configuration shared by all rules.

    ``module_path`` is the file's path normalized to forward slashes;
    rules use suffix matching against it to scope themselves (e.g. R002
    only inside ``repro/nn`` and ``repro/features``).
    """

    module_path: str
    #: registered event kinds harvested from engine/events.py, or None
    #: when the lint roots did not include it (membership not checked)
    event_kinds: frozenset[str] | None = None
    #: path fragments of modules whose public array functions must carry
    #: contracts (R006)
    contract_modules: frozenset[str] = field(default_factory=frozenset)
    #: true for files under the production source tree (R004 scope)
    in_src: bool = False
    #: raw module source, for rules driven by comment conventions
    #: (R007/R011's ``#: guarded_by:`` / ``#: requires:`` annotations);
    #: None disables the comment-driven halves of those rules
    source: str | None = None


def _is_np_random(node: ast.expr) -> bool:
    """Matches ``np.random`` / ``numpy.random`` attribute chains."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    )


#: np.random attributes that are fine: seeded-generator construction
_SEEDED_RNG_OK = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator",
     "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937"}
)


def rule_r001(tree: ast.Module, context: LintContext) -> list[Violation]:
    """R001: no legacy module-level numpy RNG."""
    out = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and _is_np_random(node.value)
            and node.attr not in _SEEDED_RNG_OK
        ):
            out.append(
                (
                    node.lineno,
                    node.col_offset,
                    f"np.random.{node.attr} uses the unseeded global RNG; "
                    "thread a seeded np.random.Generator instead",
                )
            )
        if isinstance(node, ast.ImportFrom) and node.module in (
            "numpy.random",
        ):
            for alias in node.names:
                if alias.name not in _SEEDED_RNG_OK:
                    out.append(
                        (
                            node.lineno,
                            node.col_offset,
                            f"importing {alias.name!r} from numpy.random "
                            "exposes the unseeded global RNG",
                        )
                    )
    return [_v(context.module_path, line, col, "R001", msg) for line, col, msg in out]


_DOWNCAST_NAMES = frozenset({"float32", "float16", "half", "single", "csingle"})
_R002_SCOPES = ("repro/nn/", "repro/features/")
#: rule-level allowlist: the compute runtime is the single sanctioned
#: home of float32 (PrecisionPolicy's fast mode); every other kernel
#: module must obtain its compute dtype through the policy
_R002_ALLOWED = ("repro/nn/runtime.py",)


def rule_r002(tree: ast.Module, context: LintContext) -> list[Violation]:
    """R002: no float32/float16 literals or downcasts in f8 kernels.

    ``repro/nn/runtime.py`` is allowlisted: the precision policy there
    is the one place allowed to name float32, so downcasts stay
    auditable at a single site.
    """
    if not any(scope in context.module_path for scope in _R002_SCOPES):
        return []
    if any(context.module_path.endswith(allowed) for allowed in _R002_ALLOWED):
        return []
    out = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and node.attr in _DOWNCAST_NAMES
            and isinstance(node.value, ast.Name)
            and node.value.id in ("np", "numpy")
        ):
            out.append(
                (
                    node.lineno,
                    node.col_offset,
                    f"np.{node.attr} breaks the float64 invariance of the "
                    "nn/features kernels",
                )
            )
        # dtype strings only count as call arguments ("float32" in a
        # docstring or comparison is not a downcast)
        if isinstance(node, ast.Call):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and arg.value in _DOWNCAST_NAMES
                ):
                    out.append(
                        (
                            arg.lineno,
                            arg.col_offset,
                            f"dtype string {arg.value!r} breaks the float64 "
                            "invariance of the nn/features kernels",
                        )
                    )
    return [_v(context.module_path, line, col, "R002", msg) for line, col, msg in out]


def rule_r003(tree: ast.Module, context: LintContext) -> list[Violation]:
    """R003: literal EventBus.emit names must be registered kinds."""
    if context.event_kinds is None:
        return []
    out = []
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "emit"
            and node.args
        ):
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            if first.value not in context.event_kinds:
                known = ", ".join(sorted(context.event_kinds))
                out.append(
                    (
                        first.lineno,
                        first.col_offset,
                        f"emit of unregistered event {first.value!r}; "
                        f"known kinds: {known}",
                    )
                )
    return [_v(context.module_path, line, col, "R003", msg) for line, col, msg in out]


_EAGER_METHODS = frozenset(
    {"encode", "encode_batch", "flat_batch", "flat_features",
     "raster_stack", "encode_rasters", "flats_from_rasters"}
)
_R004_EXEMPT = ("repro/dataplane/", "repro/features/")


def rule_r004(tree: ast.Module, context: LintContext) -> list[Violation]:
    """R004: eager FeatureExtractor calls outside repro.dataplane.

    Tracks local names bound to ``FeatureExtractor(...)`` and flags
    eager extraction method calls through them, plus direct
    ``FeatureExtractor(...).encode(...)`` chains.  Scoped to production
    sources — tests and benchmarks legitimately exercise the eager path
    as a bit-identity baseline.
    """
    if not context.in_src:
        return []
    if any(scope in context.module_path for scope in _R004_EXEMPT):
        return []

    def _is_fx_ctor(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and (
                (isinstance(node.func, ast.Name)
                 and node.func.id == "FeatureExtractor")
                or (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "FeatureExtractor")
            )
        )

    extractor_names = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and _is_fx_ctor(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    extractor_names.add(target.id)
        if isinstance(node, ast.AnnAssign) and node.value is not None:
            if _is_fx_ctor(node.value) and isinstance(node.target, ast.Name):
                extractor_names.add(node.target.id)

    out = []
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _EAGER_METHODS
        ):
            continue
        receiver = node.func.value
        eager = _is_fx_ctor(receiver) or (
            isinstance(receiver, ast.Name) and receiver.id in extractor_names
        )
        if eager:
            out.append(
                (
                    node.lineno,
                    node.col_offset,
                    f"eager FeatureExtractor.{node.func.attr}() outside "
                    "repro.dataplane; route through BatchFeatureExtractor "
                    "so caching/chunking/observability apply",
                )
            )
    return [_v(context.module_path, line, col, "R004", msg) for line, col, msg in out]


_MUTABLE_CTORS = frozenset({"list", "dict", "set", "bytearray"})
_NP_ARRAY_CTORS = frozenset({"array", "zeros", "ones", "empty", "full"})


def rule_r005(tree: ast.Module, context: LintContext) -> list[Violation]:
    """R005: no mutable default arguments."""
    out = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)
            )
            if isinstance(default, ast.Call):
                fn = default.func
                if isinstance(fn, ast.Name) and fn.id in _MUTABLE_CTORS:
                    mutable = True
                if (
                    isinstance(fn, ast.Attribute)
                    and fn.attr in _NP_ARRAY_CTORS
                    and isinstance(fn.value, ast.Name)
                    and fn.value.id in ("np", "numpy")
                ):
                    mutable = True
            if mutable:
                out.append(
                    (
                        default.lineno,
                        default.col_offset,
                        f"mutable default argument in {node.name}(); "
                        "use None and construct inside the function",
                    )
                )
    return [_v(context.module_path, line, col, "R005", msg) for line, col, msg in out]


def _annotation_mentions_ndarray(node: ast.expr | None) -> bool:
    if node is None:
        return False
    try:
        return "ndarray" in ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.10+
        return False


def _has_contract_decorator(node: ast.FunctionDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "contract":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "contract":
            return True
    return False


def rule_r006(tree: ast.Module, context: LintContext) -> list[Violation]:
    """R006: public array functions in contracted modules need contracts.

    Applies to module-level ``def``s (not methods) whose signature
    annotations mention ``np.ndarray``; waive intentional exceptions
    with ``# reprolint: no-contract`` on the def line.
    """
    if not any(frag in context.module_path for frag in context.contract_modules):
        return []
    out = []
    for node in tree.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        if node.name.startswith("_"):
            continue
        touches_arrays = _annotation_mentions_ndarray(node.returns) or any(
            _annotation_mentions_ndarray(arg.annotation)
            for arg in (node.args.args + node.args.posonlyargs
                        + node.args.kwonlyargs)
        )
        if not touches_arrays:
            continue
        if _has_contract_decorator(node):
            continue
        out.append(
            (
                node.lineno,
                node.col_offset,
                f"public array function {node.name}() in a contracted "
                "module lacks @contract (waive with "
                "'# reprolint: no-contract')",
            )
        )
    return [_v(context.module_path, line, col, "R006", msg) for line, col, msg in out]


def _v(path: str, line: int, col: int, code: str, message: str) -> Violation:
    return Violation(path=path, line=line, col=col + 1, code=code,
                     message=message)


RULES = {
    "R001": rule_r001,
    "R002": rule_r002,
    "R003": rule_r003,
    "R004": rule_r004,
    "R005": rule_r005,
    "R006": rule_r006,
}

# the concurrency rules (R007–R011) live in their own module; importing
# it at the bottom avoids a cycle (it needs LintContext/Violation/_v)
from .rules_concurrency import CONCURRENCY_RULES  # noqa: E402

RULES.update(CONCURRENCY_RULES)


def run_rules(
    tree: ast.Module,
    context: LintContext,
    select: frozenset[str] | None = None,
) -> list[Violation]:
    """Run every (selected) rule over one parsed module."""
    violations: list[Violation] = []
    for code, rule in RULES.items():
        if select is not None and code not in select:
            continue
        violations.extend(rule(tree, context))
    return violations
