"""Runtime array contracts for function boundaries.

The numerics in this repo (DCT encoding, GMM seeding, temperature
scaling, entropy-weighted score fusion) are exactly the kind of code
where a silent shape broadcast, dtype upcast or NaN corrupts results
without crashing.  :func:`contract` declares the array domain of a
function boundary once, in a compact spec string, and validates it at
call time::

    @contract(probs="f8[N,2]", returns="f8[N]")
    def hotspot_aware_uncertainty(probs, h=0.4): ...

Checks cover dtype, rank, exact and *named* dimensions (``N`` must mean
the same size everywhere within one call, arguments and return alike)
and finiteness (NaN/Inf rejection for float arrays).

The ``REPRO_CHECK`` environment variable picks the mode:

``off`` (default)
    The wrapper short-circuits to the original function — one global
    read and a branch, nothing else (see ``benchmarks/bench_analysis.py``
    for the measured overhead on the data-plane path).
``warn``
    Violations emit a :class:`ContractWarning` and execution continues.
``strict``
    Violations raise :class:`ContractError`.

Tests (and long-lived processes) can switch modes at runtime with
:func:`set_check_mode` or the :func:`checking` context manager.
"""

from __future__ import annotations

import functools
import inspect
import warnings
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

import numpy as np

from .modes import CHECK_ENV_VAR, MODES, check_mode, checking, set_check_mode
from .modes import _state  # shared per-thread mode (hot-path read)
from .spec import ArraySpec, SpecError, parse_spec

__all__ = [
    "CHECK_ENV_VAR",
    "MODES",
    "ContractError",
    "ContractWarning",
    "ContractInfo",
    "check_array",
    "check_mode",
    "checking",
    "contract",
    "contract_registry",
    "set_check_mode",
    "wrapper_code",
]

F = TypeVar("F", bound=Callable[..., Any])


class ContractError(TypeError, ValueError):
    """An array violated its declared contract (strict mode).

    Subclasses both ``TypeError`` and ``ValueError``: contracted
    boundaries previously raised one or the other inline, and callers
    (including tests) that catch those must keep working when strict
    checking intercepts the bad array first.
    """


class ContractWarning(UserWarning):
    """An array violated its declared contract (warn mode)."""


# ----------------------------------------------------------------------
# value checking
# ----------------------------------------------------------------------
def _dtype_matches(dtype: np.dtype, code: str) -> bool:
    if code == "*":
        return True
    from .spec import DTYPE_CODES

    kind, name = DTYPE_CODES[code]
    if kind is not None and dtype.kind != kind:
        return False
    if name is not None and dtype.name != name:
        return False
    return True


def _match_one(
    value: np.ndarray, spec: ArraySpec, dims: dict[str, int]
) -> str | None:
    """Return None on success or a failure description (without raising).

    ``dims`` is only mutated on success, so alternation can probe
    alternatives without leaking bindings from failed attempts.
    """
    if not _dtype_matches(value.dtype, spec.dtype_code):
        return (
            f"dtype {value.dtype} does not satisfy {spec.dtype_code!r}"
        )
    fixed = spec.fixed_dims
    if spec.variadic:
        if value.ndim < len(fixed):
            return (
                f"rank {value.ndim} < minimum rank {len(fixed)} "
                f"of {spec.describe()!r}"
            )
    elif value.ndim != len(fixed):
        return (
            f"rank {value.ndim} != expected rank {len(fixed)} "
            f"of {spec.describe()!r}"
        )
    pending: dict[str, int] = {}
    for axis, dim in enumerate(fixed):
        size = value.shape[axis]
        if dim == "*":
            continue
        if isinstance(dim, int):
            if size != dim:
                return f"dim {axis} has size {size}, expected {dim}"
        else:
            bound = dims.get(dim, pending.get(dim))
            if bound is None:
                pending[dim] = size
            elif bound != size:
                return (
                    f"named dim {dim!r} is {size} here but {bound} "
                    "elsewhere in this call"
                )
    if spec.check_finite and value.dtype.kind == "f" and value.size:
        if not bool(np.isfinite(value).all()):
            return "contains NaN or Inf"
    dims.update(pending)
    return None


def check_array(
    value: Any,
    spec: str | tuple[ArraySpec, ...],
    dims: dict[str, int] | None = None,
    where: str = "array",
    mode: str | None = None,
) -> Any:
    """Validate ``value`` against ``spec``; returns ``value`` unchanged.

    ``dims`` carries named-dimension bindings across several calls (the
    :func:`contract` decorator shares one dict per function call).
    ``mode`` overrides the global mode; ``off`` skips everything.
    """
    mode = mode if mode is not None else _state.mode
    if mode == "off":
        return value
    alternatives = parse_spec(spec) if isinstance(spec, str) else spec
    dims = dims if dims is not None else {}
    if value is None:
        if any(alt.optional for alt in alternatives):
            return value
        _report(f"{where}: expected an array, got None", mode)
        return value
    if not isinstance(value, np.ndarray):
        try:
            array = np.asarray(value)
        except Exception:
            _report(
                f"{where}: expected an array-like, got "
                f"{type(value).__name__}",
                mode,
            )
            return value
    else:
        array = value
    failures = []
    for alt in alternatives:
        failure = _match_one(array, alt, dims)
        if failure is None:
            return value
        failures.append(f"{alt.describe()!r}: {failure}")
    _report(
        f"{where}: shape {array.shape} ({array.dtype}) matches no "
        f"alternative — " + "; ".join(failures),
        mode,
    )
    return value


def _report(message: str, mode: str) -> None:
    if mode == "strict":
        raise ContractError(message)
    warnings.warn(message, ContractWarning, stacklevel=4)


# ----------------------------------------------------------------------
# the decorator
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ContractInfo:
    """Registry entry describing one contracted boundary."""

    qualname: str
    module: str
    param_specs: dict[str, tuple[ArraySpec, ...]]
    return_spec: tuple[ArraySpec, ...] | None


_registry: list[ContractInfo] = []

#: sentinel filled with the shared code object of every contract wrapper,
#: so profilers/benchmarks can count wrapper activations (see
#: ``benchmarks/bench_analysis.py``)
_WRAPPER_CODE: Any = None


def contract_registry() -> tuple[ContractInfo, ...]:
    """Every contract registered so far (decoration order)."""
    return tuple(_registry)


def wrapper_code() -> Any:
    """Code object shared by all contract wrappers (None before first use)."""
    return _WRAPPER_CODE


def contract(returns: str | None = None, **param_specs: str) -> Callable[[F], F]:
    """Declare array contracts on a function boundary.

    Keyword arguments name parameters of the decorated function and map
    them to spec strings (see :mod:`repro.analysis.spec`); ``returns``
    contracts the return value.  Named dimensions are shared across all
    specs of one call.  Validation obeys the global check mode; with
    checks off the wrapper adds one attribute read and a branch.
    """
    parsed = {name: parse_spec(text) for name, text in param_specs.items()}
    return_spec = parse_spec(returns) if returns is not None else None
    if not parsed and return_spec is None:
        raise SpecError("contract() requires at least one spec")

    def decorate(fn: F) -> F:
        signature = inspect.signature(fn)
        unknown = set(parsed) - set(signature.parameters)
        if unknown:
            raise SpecError(
                f"contract on {fn.__qualname__} names unknown "
                f"parameters {sorted(unknown)}"
            )

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            mode = _state.mode
            if mode == "off":
                return fn(*args, **kwargs)
            bound = signature.bind(*args, **kwargs)
            dims: dict[str, int] = {}
            for name, spec in parsed.items():
                if name in bound.arguments:
                    check_array(
                        bound.arguments[name],
                        spec,
                        dims,
                        where=f"{fn.__qualname__}({name})",
                        mode=mode,
                    )
            result = fn(*args, **kwargs)
            if return_spec is not None:
                check_array(
                    result,
                    return_spec,
                    dims,
                    where=f"{fn.__qualname__}() return",
                    mode=mode,
                )
            return result

        info = ContractInfo(
            qualname=fn.__qualname__,
            module=fn.__module__,
            param_specs=parsed,
            return_spec=return_spec,
        )
        _registry.append(info)
        wrapper.__contract__ = info  # type: ignore[attr-defined]
        global _WRAPPER_CODE
        _WRAPPER_CODE = wrapper.__code__
        return wrapper  # type: ignore[return-value]

    return decorate
