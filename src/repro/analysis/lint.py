"""``reprolint`` command line: ``python -m repro.analysis.lint src tests``.

Emits ruff-style ``path:line:col: CODE message`` lines and exits 1 when
any violation survives the per-line waivers.  Also installed as the
``repro-lint`` console script.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .linter import lint_paths
from .rules import RULES

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Repo-specific static analysis: seeded-RNG discipline, "
            "float64 invariance, registered event names, data-plane "
            "routing, mutable defaults, contract coverage, and "
            "concurrency discipline (guarded attributes, lock hygiene, "
            "thread lifecycle, check-then-act races)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the summary line",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help=(
            "print every rule code with its one-line summary and "
            "waiver syntax, then exit"
        ),
    )
    return parser


def _waiver_syntax(code: str) -> str:
    if code == "R006":
        return "# reprolint: no-contract  (or disable=R006)"
    return f"# reprolint: disable={code}"


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for code, rule in sorted(RULES.items()):
            doc = (rule.__doc__ or "").strip().splitlines()[0]
            # docstrings lead with "Rnnn: "; don't print the code twice
            prefix = f"{code}: "
            if doc.startswith(prefix):
                doc = doc[len(prefix):]
            print(f"{code}  {doc}")
            print(f"      waive: {_waiver_syntax(code)}")
        return 0
    select = None
    if args.select:
        select = frozenset(
            code.strip() for code in args.select.split(",") if code.strip()
        )
        unknown = select - set(RULES)
        if unknown:
            print(
                f"unknown rule codes: {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
    violations = lint_paths(list(args.paths), select=select)
    for violation in violations:
        print(violation.render())
    if not args.quiet:
        noun = "violation" if len(violations) == 1 else "violations"
        print(f"reprolint: {len(violations)} {noun}", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
