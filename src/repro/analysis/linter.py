"""The ``reprolint`` driver: file discovery, waivers, rule execution.

Standard-library only (no numpy), so the lint gate runs in minimal CI
containers and pre-commit hooks.

Waivers are per-line comments:

``# reprolint: disable=R003`` (or ``disable=R001,R005``)
    suppresses the listed codes on that line;
``# reprolint: disable``
    suppresses every code on that line;
``# reprolint: no-contract``
    waives R006 on a ``def`` line.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from .rules import LintContext, Violation, run_rules

__all__ = [
    "CONTRACT_MODULES",
    "harvest_event_kinds",
    "lint_paths",
    "lint_source",
]

#: modules whose public array functions must declare contracts (R006);
#: matched as path fragments against forward-slash-normalized paths
CONTRACT_MODULES = frozenset(
    {
        "repro/features/dct.py",
        "repro/features/density.py",
        "repro/features/pipeline.py",
        "repro/core/sampling.py",
        "repro/core/uncertainty.py",
        "repro/core/diversity.py",
        "repro/core/entropy_weighting.py",
        "repro/calibration/temperature.py",
        "repro/engine/checkpoint.py",
    }
)

_WAIVER_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable|no-contract)"
    r"(?:\s*=\s*(?P<codes>[A-Z0-9,\s]+))?"
)


def _parse_waivers(source: str) -> dict[int, frozenset[str] | None]:
    """Map line number -> waived codes (None = all codes waived)."""
    waivers: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _WAIVER_RE.search(line)
        if match is None:
            continue
        if match.group("kind") == "no-contract":
            waivers[lineno] = frozenset({"R006"})
        elif match.group("codes"):
            codes = frozenset(
                code.strip()
                for code in match.group("codes").split(",")
                if code.strip()
            )
            waivers[lineno] = codes
        else:
            waivers[lineno] = None
    return waivers


def _waived(violation: Violation,
            waivers: dict[int, frozenset[str] | None]) -> bool:
    if violation.line not in waivers:
        return False
    codes = waivers[violation.line]
    return codes is None or violation.code in codes


def _normalize(path: Path) -> str:
    return str(path).replace("\\", "/")


def harvest_event_kinds(files: list[Path]) -> frozenset[str] | None:
    """Extract ``EVENT_KINDS`` from an ``engine/events.py`` among ``files``.

    Returns None when no registry module is present (R003 membership is
    then not checked).
    """
    for path in files:
        if not _normalize(path).endswith("engine/events.py"):
            continue
        try:
            tree = ast.parse(path.read_text())
        except (OSError, SyntaxError):
            continue
        for node in tree.body:
            if not isinstance(node, ast.Assign):
                continue
            targets = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if "EVENT_KINDS" not in targets:
                continue
            if isinstance(node.value, (ast.Tuple, ast.List)):
                kinds = [
                    el.value
                    for el in node.value.elts
                    if isinstance(el, ast.Constant)
                    and isinstance(el.value, str)
                ]
                if kinds:
                    return frozenset(kinds)
    return None


def discover_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def lint_source(
    source: str,
    path: str,
    event_kinds: frozenset[str] | None = None,
    select: frozenset[str] | None = None,
    contract_modules: frozenset[str] | None = None,
) -> list[Violation]:
    """Lint one in-memory module (the unit the rule tests drive)."""
    normalized = path.replace("\\", "/")
    context = LintContext(
        module_path=normalized,
        event_kinds=event_kinds,
        contract_modules=(
            contract_modules if contract_modules is not None
            else CONTRACT_MODULES
        ),
        in_src="src/" in normalized or normalized.startswith("src"),
        source=source,
    )
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Violation(
                path=normalized,
                line=exc.lineno or 1,
                col=(exc.offset or 0) or 1,
                code="E999",
                message=f"syntax error: {exc.msg}",
            )
        ]
    waivers = _parse_waivers(source)
    violations = run_rules(tree, context, select=select)
    kept = [v for v in violations if not _waived(v, waivers)]
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return kept


def lint_paths(
    paths: list[str | Path],
    select: frozenset[str] | None = None,
) -> list[Violation]:
    """Lint files and directory trees; returns all violations found."""
    files = discover_files(paths)
    event_kinds = harvest_event_kinds(files)
    violations: list[Violation] = []
    for path in files:
        try:
            source = path.read_text()
        except (OSError, UnicodeDecodeError) as exc:
            violations.append(
                Violation(
                    path=_normalize(path),
                    line=1,
                    col=1,
                    code="E902",
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        violations.extend(
            lint_source(
                source,
                path=_normalize(path),
                event_kinds=event_kinds,
                select=select,
            )
        )
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return violations
