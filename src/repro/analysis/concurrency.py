"""Dynamic lock-discipline sanitizer: tracked locks + guarded attributes.

The static half of the concurrency layer (reprolint rules R007–R011)
proves what it can from the AST; this module checks the rest at
runtime, under the same ``REPRO_CHECK={off,warn,strict}`` switch as the
array contracts:

* :class:`TrackedLock` / :class:`TrackedRLock` wrap the stdlib locks
  and, in ``warn``/``strict`` mode, maintain a per-thread held stack
  plus a process-wide **acquisition-order graph**.  Acquiring lock *B*
  while holding lock *A* records the edge ``A → B``; an acquisition
  that would close a cycle in that graph is a **lock-order inversion**
  — the schedule-dependent deadlock — and is reported *before* the
  process can actually deadlock on it.
* :func:`guarded_by` is a data descriptor declaring that an attribute
  may only be touched while a named lock is held::

      class FeatureCache:
          _memory = guarded_by("_lock")   #: guarded_by: _lock

  Under ``warn``/``strict`` every read and write asserts the lock is
  held by the calling thread; with checks ``off`` the descriptor is a
  plain slot access.  The comment form of the same declaration is what
  reprolint rule R007 verifies statically at every write site.

With ``REPRO_CHECK=off`` both wrappers reduce to one mode read and a
branch around the stdlib primitive — the measured overhead budget is
the same as the contracts' (see ``benchmarks/bench_concurrency.py``).

Tracked locks also cooperate with the deterministic interleaving
harness (:mod:`repro.analysis.interleave`): a registered thread that is
about to block on acquisition notifies the active scheduler, so
scripted schedules degrade gracefully when proper locking makes an
adversarial interleaving impossible.

Standard-library only, like the rest of the analysis substrate's
stdlib half — importable without numpy.
"""

from __future__ import annotations

import itertools
import threading
import warnings
from typing import Any, Iterator

from . import interleave
from .modes import _state

__all__ = [
    "LockDisciplineError",
    "LockDisciplineWarning",
    "TrackedLock",
    "TrackedRLock",
    "guarded_by",
    "held_locks",
    "lock_order_edges",
    "reset_lock_order",
]


class LockDisciplineError(RuntimeError):
    """A thread violated lock discipline (strict mode)."""


class LockDisciplineWarning(UserWarning):
    """A thread violated lock discipline (warn mode)."""


def _report(message: str, mode: str) -> None:
    if mode == "strict":
        raise LockDisciplineError(message)
    warnings.warn(message, LockDisciplineWarning, stacklevel=3)


# ----------------------------------------------------------------------
# acquisition-order graph (process-wide)
# ----------------------------------------------------------------------
class _HeldStack(threading.local):
    """Tracked locks held by the current thread, outermost first."""

    def __init__(self) -> None:
        self.stack: list["_TrackedBase"] = []


_held = _HeldStack()

#: guards the order graph itself; a plain stdlib lock, deliberately
#: outside its own instrumentation
_graph_mutex = threading.Lock()
#: lock uid -> uids acquired while it was held
_edges: dict[int, set[int]] = {}
#: lock uid -> display name (for inversion messages)
_uid_names: dict[int, str] = {}
_uids = itertools.count(1)


def _path_exists(src: int, dst: int) -> bool:
    """DFS reachability in the order graph (called under _graph_mutex)."""
    seen = set()
    frontier = [src]
    while frontier:
        node = frontier.pop()
        if node == dst:
            return True
        if node in seen:
            continue
        seen.add(node)
        frontier.extend(_edges.get(node, ()))
    return False


def _note_acquisition(lock: "_TrackedBase") -> str | None:
    """Record held→lock edges; returns an inversion description, or
    None when the acquisition is consistent with every order seen so
    far.  The inverting edge is *not* recorded, so warn mode reports
    each inverted acquisition instead of silently legalising it."""
    stack = _held.stack
    if not stack:
        return None
    with _graph_mutex:
        for held in stack:
            if held is lock:
                continue
            targets = _edges.setdefault(held._uid, set())
            if lock._uid in targets:
                continue
            if _path_exists(lock._uid, held._uid):
                chain = " -> ".join(
                    _uid_names.get(uid, f"lock-{uid}")
                    for uid in (lock._uid, held._uid)
                )
                return (
                    f"lock-order inversion: acquiring {lock.name!r} while "
                    f"holding {held.name!r}, but the opposite order "
                    f"{chain} was already established elsewhere"
                )
            targets.add(lock._uid)
    return None


def held_locks() -> tuple["_TrackedBase", ...]:
    """Tracked locks the calling thread holds, outermost first."""
    return tuple(_held.stack)


def lock_order_edges() -> frozenset[tuple[str, str]]:
    """Snapshot of the acquisition-order graph as ``(outer, inner)``
    lock-name pairs (test/debugging introspection)."""
    with _graph_mutex:
        return frozenset(
            (_uid_names.get(src, f"lock-{src}"),
             _uid_names.get(dst, f"lock-{dst}"))
            for src, targets in _edges.items()
            for dst in targets
        )


def reset_lock_order() -> None:
    """Forget every recorded acquisition order (test isolation)."""
    with _graph_mutex:
        _edges.clear()


# ----------------------------------------------------------------------
# tracked locks
# ----------------------------------------------------------------------
class _TrackedBase:
    """Shared acquire/release instrumentation of both lock flavours."""

    _reentrant = False

    def __init__(self, name: str | None = None) -> None:
        self._inner = self._make_inner()
        self._uid = next(_uids)
        self.name = name if name is not None else f"lock-{self._uid}"
        with _graph_mutex:
            _uid_names[self._uid] = self.name
        #: ident of the owning thread (None when free); written only by
        #: the thread that holds the inner lock, read opportunistically
        self._owner: int | None = None
        self._count = 0

    def _make_inner(self) -> Any:  # pragma: no cover - overridden
        raise NotImplementedError

    # -- introspection -------------------------------------------------
    def held(self) -> bool:
        """True when the *calling thread* holds this lock."""
        return self._owner == threading.get_ident()

    def locked(self) -> bool:
        """True when any thread holds this lock."""
        return self._owner is not None

    # -- the protocol --------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        mode = _state.mode
        me = threading.get_ident()
        if mode != "off":
            if self._owner == me and not self._reentrant:
                _report(
                    f"re-acquiring non-reentrant lock {self.name!r} "
                    "already held by this thread (self-deadlock)",
                    mode,
                )
            if self._owner != me:
                problem = _note_acquisition(self)
                if problem is not None:
                    _report(problem, mode)
        acquired = self._acquire_inner(blocking, timeout)
        if acquired:
            self._owner = me
            self._count += 1
            if self._count == 1:
                _held.stack.append(self)
        return acquired

    def _acquire_inner(self, blocking: bool, timeout: float) -> bool:
        if not blocking:
            return self._inner.acquire(False)
        sched = interleave.active_scheduler()
        if sched is None:
            return self._inner.acquire(True, timeout)
        # under the interleaving harness: tell the scheduler when this
        # thread is about to block so its schedule entries are deferred
        if self._inner.acquire(False):
            return True
        sched.lock_blocked()
        try:
            return self._inner.acquire(True, timeout)
        finally:
            sched.lock_unblocked()

    def release(self) -> None:
        me = threading.get_ident()
        if self._owner == me:
            self._count -= 1
            if self._count == 0:
                self._owner = None
                stack = _held.stack
                if stack and stack[-1] is self:
                    stack.pop()
                elif self in stack:
                    stack.remove(self)
        else:
            mode = _state.mode
            if mode != "off":
                _report(
                    f"releasing lock {self.name!r} not held by this "
                    "thread",
                    mode,
                )
        self._inner.release()

    def __enter__(self) -> "_TrackedBase":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"held by {self._owner}" if self._owner else "free"
        return f"{type(self).__name__}({self.name!r}, {state})"


class TrackedLock(_TrackedBase):
    """A ``threading.Lock`` with lock-discipline instrumentation."""

    _reentrant = False

    def _make_inner(self) -> Any:
        return threading.Lock()


class TrackedRLock(_TrackedBase):
    """A ``threading.RLock`` with lock-discipline instrumentation."""

    _reentrant = True

    def _make_inner(self) -> Any:
        return threading.RLock()


# ----------------------------------------------------------------------
# guarded attributes
# ----------------------------------------------------------------------
def _lock_is_held(lock: Any) -> bool:
    """Best-effort "does the calling thread hold this lock".

    Tracked locks answer exactly; a stdlib ``RLock`` via ``_is_owned``;
    a plain ``Lock`` cannot name its owner, so ``locked()`` is accepted
    as held (a weaker check, still catching every unlocked access).
    """
    held = getattr(lock, "held", None)
    if held is not None:
        return bool(held())
    owned = getattr(lock, "_is_owned", None)
    if owned is not None:
        return bool(owned())
    locked = getattr(lock, "locked", None)
    if locked is not None:
        return bool(locked())
    return False


class guarded_by:
    """Descriptor declaring an attribute protected by a named lock.

    ``_memory = guarded_by("_lock")`` at class level makes every
    instance read/write of ``self._memory`` assert, in ``warn`` and
    ``strict`` modes, that ``self._lock`` is held by the calling
    thread.  With checks off the access is a plain instance-dict slot.
    Mirror the declaration with a ``#: guarded_by: _lock`` comment at
    the assignment site so reprolint R007 enforces the same discipline
    statically.
    """

    __slots__ = ("lock_attr", "name", "_slot")

    def __init__(self, lock_attr: str) -> None:
        self.lock_attr = lock_attr
        self.name = "<unbound>"
        self._slot = "<unbound>"

    def __set_name__(self, owner: type, name: str) -> None:
        self.name = name
        self._slot = f"_guarded__{name}"

    def _verify(self, obj: Any, action: str, mode: str) -> None:
        lock = getattr(obj, self.lock_attr, None)
        if lock is None:
            _report(
                f"{action} of {type(obj).__name__}.{self.name} before "
                f"its lock {self.lock_attr!r} exists",
                mode,
            )
            return
        if not _lock_is_held(lock):
            _report(
                f"{action} of {type(obj).__name__}.{self.name} without "
                f"holding {self.lock_attr}",
                mode,
            )

    def __get__(self, obj: Any, objtype: type | None = None) -> Any:
        if obj is None:
            return self
        mode = _state.mode
        if mode != "off":
            self._verify(obj, "read", mode)
        try:
            return obj.__dict__[self._slot]
        except KeyError:
            raise AttributeError(
                f"{type(obj).__name__!s} object has no attribute "
                f"{self.name!r}"
            ) from None

    def __set__(self, obj: Any, value: Any) -> None:
        mode = _state.mode
        if mode != "off":
            self._verify(obj, "write", mode)
        obj.__dict__[self._slot] = value

    def __delete__(self, obj: Any) -> None:
        mode = _state.mode
        if mode != "off":
            self._verify(obj, "delete", mode)
        try:
            del obj.__dict__[self._slot]
        except KeyError:
            raise AttributeError(
                f"{type(obj).__name__!s} object has no attribute "
                f"{self.name!r}"
            ) from None


def iter_guarded_attributes(cls: type) -> Iterator[tuple[str, str]]:
    """Yield ``(attribute, lock_attr)`` for every :class:`guarded_by`
    declared on ``cls`` (introspection for tests and tooling)."""
    for klass in cls.__mro__:
        for name, value in vars(klass).items():
            if isinstance(value, guarded_by):
                yield name, value.lock_attr
