"""Concurrency rules of ``reprolint`` (R007–R011).

The dynamic sanitizer (:mod:`repro.analysis.concurrency`) catches lock
discipline violations on the interleavings a test happens to execute;
these rules catch the same classes of bug on *every* path, before any
code runs, driven by a small declarative convention:

``#: guarded_by: _lock``
    on an assignment line (or ``attr = guarded_by("_lock")`` at class
    level) declares that the attribute may only be written while
    ``self._lock`` is held;
``#: requires: _lock``
    on a ``def`` line declares that callers enter the method with the
    lock already held (the private ``_locked`` helper idiom), so every
    write inside counts as guarded.

The rules:

``R007`` **unguarded write to a guarded attribute** — a write site of a
    declared attribute that is not lexically inside ``with self._lock:``
    (and not in ``__init__``/``__post_init__``, where the object is not
    yet shared).
``R008`` **bare ``acquire()``** — a ``lock.acquire()`` statement whose
    release is not guaranteed by an immediately following
    ``try/finally``; an exception between acquire and release leaves
    the lock held forever.  Use ``with``.
``R009`` **thread spawn without join or daemon** — a
    ``threading.Thread(...)`` constructed in a function that neither
    marks it ``daemon=True`` nor ever calls ``.join()``; such threads
    outlive the test/run that spawned them.
``R010`` **blocking call under a lock** — ``time.sleep``, ``.result()``,
    ``open()``/``read_text``/``write_text`` inside a ``with``-block
    whose context manager looks like a lock; the blocked thread holds
    every waiter hostage.  (Deliberately *not* flagged: the array I/O
    the cache performs under its own lock — eviction correctness
    requires it — and ``Condition.wait``, which releases the lock.)
``R011`` **non-atomic check-then-act** — ``if key in self.d: ...
    self.d[key]`` outside the owning class's lock; the key can vanish
    between the test and the use.  Only checked in classes that own a
    lock (``self.x = Lock()`` / ``TrackedLock()`` / ``guarded_by``),
    where the state is demonstrably shared.

R008–R011 are scoped to production sources (``src/``); tests and
benchmarks intentionally exercise raw primitives.  R007 follows its
declarations wherever they appear.  Standard-library only, like the
rest of the linter.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from .rules import LintContext, Violation, _v

__all__ = ["CONCURRENCY_RULES"]

#: this module's own instrumentation wraps raw acquire/release by design
_R008_ALLOWED = ("repro/analysis/concurrency.py",)

_GUARD_COMMENT_RE = re.compile(r"#:\s*guarded_by:\s*([A-Za-z_]\w*)")
_REQUIRES_COMMENT_RE = re.compile(r"#:\s*requires:\s*([A-Za-z_]\w*)")

#: method calls that mutate their receiver (list/dict/set/deque/OrderedDict)
_MUTATORS = frozenset(
    {"append", "extend", "insert", "pop", "popitem", "clear", "update",
     "setdefault", "remove", "discard", "add", "move_to_end", "sort",
     "reverse", "appendleft", "popleft"}
)

_LOCK_CTORS = frozenset({"Lock", "RLock", "TrackedLock", "TrackedRLock"})


def _comment_map(source: str | None, regex: re.Pattern[str]) -> dict[int, str]:
    """Line number -> annotated lock name for one comment convention."""
    if not source:
        return {}
    found: dict[int, str] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = regex.search(line)
        if match is not None:
            found[lineno] = match.group(1)
    return found


def _self_attr(node: ast.expr) -> str | None:
    """``self.X`` -> ``X``; anything else -> None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_guarded_by_call(node: ast.expr) -> str | None:
    """``guarded_by("_lock")`` -> ``"_lock"``; else None."""
    if not isinstance(node, ast.Call):
        return None
    fn = node.func
    named = (
        (isinstance(fn, ast.Name) and fn.id == "guarded_by")
        or (isinstance(fn, ast.Attribute) and fn.attr == "guarded_by")
    )
    if named and node.args:
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
    return None


def _is_lock_ctor(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    fn = node.func
    if isinstance(fn, ast.Name):
        return fn.id in _LOCK_CTORS
    if isinstance(fn, ast.Attribute):
        return fn.attr in _LOCK_CTORS
    return False


@dataclass
class _ClassGuards:
    """Per-class harvest of the declarative convention."""

    #: attribute name -> lock attribute protecting it
    guarded: dict[str, str] = field(default_factory=dict)
    #: attributes of this class that are locks
    locks: set[str] = field(default_factory=set)


def _harvest_class(
    cls: ast.ClassDef, guard_comments: dict[int, str]
) -> _ClassGuards:
    guards = _ClassGuards()
    for node in cls.body:
        # class level:  _memory = guarded_by("_lock")
        if isinstance(node, ast.Assign):
            lock = _is_guarded_by_call(node.value)
            if lock is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        guards.guarded[target.id] = lock
                        guards.locks.add(lock)
    for node in ast.walk(cls):
        # instance level:  self._memory = OrderedDict()  #: guarded_by: _lock
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                lock = guard_comments.get(node.lineno)
                if lock is not None:
                    guards.guarded[attr] = lock
                    guards.locks.add(lock)
                value = getattr(node, "value", None)
                if value is not None and _is_lock_ctor(value):
                    guards.locks.add(attr)
    return guards


def _with_lock_names(node: ast.With | ast.AsyncWith) -> set[str]:
    """Lock-ish names entered by one with-statement.

    ``with self._lock:`` yields ``_lock``; ``with lock:`` yields
    ``lock``.  Call expressions (``with open(...)``) yield nothing.
    """
    names: set[str] = set()
    for item in node.items:
        expr = item.context_expr
        attr = _self_attr(expr)
        if attr is not None:
            names.add(attr)
        elif isinstance(expr, ast.Name):
            names.add(expr.id)
    return names


def _scan_holding(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    initially_held: frozenset[str],
    visit: "callable",
) -> None:
    """Call ``visit(stmt, held)`` for every node in ``fn``'s own scope,
    with ``held`` the set of lock names lexically entered via ``with``.
    Nested function/class scopes are not descended into — their bodies
    run at unknowable times, so no lock can be assumed held there."""

    def walk(node: ast.AST, held: frozenset[str]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held | _with_lock_names(node)
            for stmt in node.body:
                walk(stmt, inner)
            return
        visit(node, held)
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                 ast.ClassDef),
            ):
                continue
            walk(child, held)

    for stmt in fn.body:
        walk(stmt, initially_held)


_INIT_METHODS = frozenset({"__init__", "__post_init__", "__set_name__"})


def _iter_methods(cls: ast.ClassDef):
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def rule_r007(tree: ast.Module, context: LintContext) -> list[Violation]:
    """R007: writes to guarded_by attributes must hold the declared lock."""
    guard_comments = _comment_map(context.source, _GUARD_COMMENT_RE)
    requires = _comment_map(context.source, _REQUIRES_COMMENT_RE)
    out = []
    for cls in [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]:
        guards = _harvest_class(cls, guard_comments)
        if not guards.guarded:
            continue

        for method in _iter_methods(cls):
            if method.name in _INIT_METHODS:
                continue
            held0 = frozenset(
                {requires[method.lineno]} if method.lineno in requires
                else ()
            )

            def check(node: ast.AST, held: frozenset[str]) -> None:
                writes: list[tuple[str, ast.AST]] = []
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        attr = _self_attr(target)
                        if attr is None and isinstance(target, ast.Subscript):
                            attr = _self_attr(target.value)
                        if attr is not None:
                            writes.append((attr, node))
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        attr = _self_attr(target)
                        if attr is None and isinstance(target, ast.Subscript):
                            attr = _self_attr(target.value)
                        if attr is not None:
                            writes.append((attr, node))
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATORS
                ):
                    attr = _self_attr(node.func.value)
                    if attr is not None:
                        writes.append((attr, node))
                for attr, site in writes:
                    lock = guards.guarded.get(attr)
                    if lock is not None and lock not in held:
                        out.append(
                            (
                                site.lineno,
                                site.col_offset,
                                f"write to {attr!r} (guarded_by {lock!r}) "
                                f"in {cls.name}.{method.name}() without "
                                f"holding self.{lock}; wrap in 'with "
                                f"self.{lock}:' or annotate the method "
                                f"'#: requires: {lock}'",
                            )
                        )

            _scan_holding(method, held0, check)
    return [
        _v(context.module_path, line, col, "R007", msg)
        for line, col, msg in out
    ]


def _iter_statement_lists(tree: ast.Module):
    for node in ast.walk(tree):
        for fieldname in ("body", "orelse", "finalbody"):
            stmts = getattr(node, fieldname, None)
            if isinstance(stmts, list) and stmts:
                yield stmts


def _acquire_call(stmt: ast.stmt) -> ast.Call | None:
    """The ``X.acquire(...)`` call of a bare statement, if any."""
    value = None
    if isinstance(stmt, ast.Expr):
        value = stmt.value
    elif isinstance(stmt, ast.Assign):
        value = stmt.value
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Attribute)
        and value.func.attr == "acquire"
    ):
        return value
    return None


def _releases_in(stmts: list[ast.stmt]) -> bool:
    for stmt in stmts:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "release"
            ):
                return True
    return False


def rule_r008(tree: ast.Module, context: LintContext) -> list[Violation]:
    """R008: bare lock.acquire() without with-statement or try/finally."""
    if not context.in_src:
        return []
    if any(context.module_path.endswith(a) for a in _R008_ALLOWED):
        return []
    out = []
    for stmts in _iter_statement_lists(tree):
        for index, stmt in enumerate(stmts):
            call = _acquire_call(stmt)
            if call is None:
                continue
            follower = stmts[index + 1] if index + 1 < len(stmts) else None
            if (
                isinstance(follower, ast.Try)
                and follower.finalbody
                and _releases_in(follower.finalbody)
            ):
                continue
            out.append(
                (
                    call.lineno,
                    call.col_offset,
                    "acquire() without a 'with' block or an immediate "
                    "try/finally release; an exception here leaks the "
                    "lock",
                )
            )
    return [
        _v(context.module_path, line, col, "R008", msg)
        for line, col, msg in out
    ]


def _is_thread_ctor(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    fn = node.func
    if isinstance(fn, ast.Name) and fn.id == "Thread":
        return True
    return isinstance(fn, ast.Attribute) and fn.attr == "Thread"


def _daemon_true(call: ast.Call) -> bool:
    for kw in call.keywords:
        if (
            kw.arg == "daemon"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
        ):
            return True
    return False


def rule_r009(tree: ast.Module, context: LintContext) -> list[Violation]:
    """R009: thread spawned without join() or daemon=True."""
    if not context.in_src:
        return []
    out = []
    for fn in [
        n for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]:
        spawns = [
            node for node in ast.walk(fn)
            if _is_thread_ctor(node) and not _daemon_true(node)
        ]
        if not spawns:
            continue
        joins = any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            for node in ast.walk(fn)
        )
        if joins:
            continue
        for spawn in spawns:
            out.append(
                (
                    spawn.lineno,
                    spawn.col_offset,
                    f"Thread created in {fn.name}() with neither "
                    "daemon=True nor a join(); it will outlive its "
                    "spawner",
                )
            )
    return [
        _v(context.module_path, line, col, "R009", msg)
        for line, col, msg in out
    ]


def _lockish(names: frozenset[str]) -> bool:
    return any("lock" in n.lower() or "mutex" in n.lower() for n in names)


def _blocking_call(node: ast.AST) -> str | None:
    if not isinstance(node, ast.Call):
        return None
    fn = node.func
    if isinstance(fn, ast.Name):
        if fn.id in ("open", "sleep"):
            return fn.id
        return None
    if isinstance(fn, ast.Attribute):
        if fn.attr in ("result", "read_text", "write_text"):
            return f".{fn.attr}"
        if (
            fn.attr == "sleep"
            and isinstance(fn.value, ast.Name)
            and fn.value.id == "time"
        ):
            return "time.sleep"
    return None


def rule_r010(tree: ast.Module, context: LintContext) -> list[Violation]:
    """R010: blocking call (sleep/result/file I/O) while holding a lock."""
    if not context.in_src:
        return []
    out = []
    for fn in [
        n for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]:

        def check(node: ast.AST, held: frozenset[str]) -> None:
            if not held or not _lockish(held):
                return
            what = _blocking_call(node)
            if what is not None:
                locks = ", ".join(sorted(held))
                out.append(
                    (
                        node.lineno,
                        node.col_offset,
                        f"blocking call {what}() while holding {locks}; "
                        "move the slow work outside the critical section",
                    )
                )

        _scan_holding(fn, frozenset(), check)
    # deduplicate: nested functions are reachable from several walks
    seen = set()
    unique = []
    for item in out:
        if item not in seen:
            seen.add(item)
            unique.append(item)
    return [
        _v(context.module_path, line, col, "R010", msg)
        for line, col, msg in unique
    ]


def _membership_attr(test: ast.expr) -> str | None:
    """``k in self.X`` / ``k not in self.X`` -> ``X``; else None."""
    node = test
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
        node = node.operand
    if (
        isinstance(node, ast.Compare)
        and len(node.ops) == 1
        and isinstance(node.ops[0], (ast.In, ast.NotIn))
    ):
        return _self_attr(node.comparators[0])
    return None


def _touches_attr(stmts: list[ast.stmt], attr: str) -> bool:
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Subscript) and _self_attr(node.value) == attr:
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
                and _self_attr(node.func.value) == attr
            ):
                return True
    return False


def rule_r011(tree: ast.Module, context: LintContext) -> list[Violation]:
    """R011: non-atomic check-then-act on shared mapping outside its lock."""
    if not context.in_src:
        return []
    guard_comments = _comment_map(context.source, _GUARD_COMMENT_RE)
    requires = _comment_map(context.source, _REQUIRES_COMMENT_RE)
    out = []
    for cls in [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]:
        guards = _harvest_class(cls, guard_comments)
        if not guards.locks:
            continue
        for method in _iter_methods(cls):
            if method.name in _INIT_METHODS:
                continue
            held0 = frozenset(
                {requires[method.lineno]} if method.lineno in requires
                else ()
            )

            def check(node: ast.AST, held: frozenset[str]) -> None:
                if not isinstance(node, ast.If):
                    return
                if held & guards.locks:
                    return
                attr = _membership_attr(node.test)
                if attr is None or attr in guards.locks:
                    return
                if _touches_attr(node.body, attr) or _touches_attr(
                    node.orelse, attr
                ):
                    out.append(
                        (
                            node.lineno,
                            node.col_offset,
                            f"check-then-act on self.{attr} outside "
                            f"{cls.name}'s lock; the key can change "
                            "between the membership test and the use",
                        )
                    )

            _scan_holding(method, held0, check)
    return [
        _v(context.module_path, line, col, "R011", msg)
        for line, col, msg in out
    ]


CONCURRENCY_RULES = {
    "R007": rule_r007,
    "R008": rule_r008,
    "R009": rule_r009,
    "R010": rule_r010,
    "R011": rule_r011,
}
