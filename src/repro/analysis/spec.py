"""Array-spec grammar for runtime contracts.

A spec string describes the dtype and shape of one array-valued argument
or return value, compactly enough to live inline in a decorator::

    "f8[N,H,W]"      float64, rank 3, dims named N/H/W
    "f8[N,2]"        float64, rank 2, second dim exactly 2
    "f[N,D]"         any float dtype
    "i[N]"           any integer dtype
    "*[N,*]"         any dtype, rank 2, second dim unconstrained
    "f8[]"           float64 scalar (rank 0)
    "f8[N,...]"      float64, rank >= 1, leading dim named N
    "?f8[N,C,B,B]"   optional — ``None`` is accepted
    "f8![N]"         finiteness (NaN/Inf) not enforced
    "f8[N,M]|f8[N]"  alternation — first alternative that matches wins

Named dimensions (identifiers) must bind consistently across every spec
checked within one call: if ``x`` binds ``N=32`` then a return spec
``f8[N,D]`` requires the first return dim to be 32.  Integer dims are
exact sizes; ``*`` matches any size without binding; a trailing ``...``
allows any number of extra dims.

The module is numpy-free on import failure paths only at the type level —
parsing itself needs nothing beyond the standard library, so the linter
can reuse the grammar without pulling in numpy.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["ArraySpec", "SpecError", "parse_spec", "DTYPE_CODES"]


class SpecError(ValueError):
    """Malformed spec string (a programming error at decoration time)."""


#: dtype code -> set of numpy dtype ``.kind``/``.name`` constraints.
#: ``kinds`` is checked against ``dtype.kind``; ``name`` (when not None)
#: additionally pins the exact dtype name.
DTYPE_CODES = {
    "f8": ("f", "float64"),
    "f4": ("f", "float32"),
    "f2": ("f", "float16"),
    "f": ("f", None),
    "i8": ("i", "int64"),
    "i4": ("i", "int32"),
    "i": ("i", None),
    "u": ("u", None),
    "b": ("b", None),
    "*": (None, None),
}

_SPEC_RE = re.compile(
    r"^(?P<optional>\?)?"
    r"(?P<dtype>f8|f4|f2|f|i8|i4|i|u|b|\*)"
    r"(?P<nonfinite>!)?"
    r"\[(?P<dims>[^\]]*)\]$"
)

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


@dataclass(frozen=True)
class ArraySpec:
    """One parsed alternative of a spec string."""

    dtype_code: str
    #: each dim is an int (exact), a str (named, must bind consistently),
    #: ``"*"`` (any size) or ``"..."`` (trailing only: any extra dims)
    dims: tuple[int | str, ...]
    optional: bool = False
    check_finite: bool = True
    #: the source string, kept for error messages
    source: str = field(default="", compare=False)

    @property
    def variadic(self) -> bool:
        return bool(self.dims) and self.dims[-1] == "..."

    @property
    def fixed_dims(self) -> tuple[int | str, ...]:
        return self.dims[:-1] if self.variadic else self.dims

    def describe(self) -> str:
        return self.source or self._render()

    def _render(self) -> str:
        inner = ",".join(str(d) for d in self.dims)
        head = "?" if self.optional else ""
        bang = "!" if not self.check_finite else ""
        return f"{head}{self.dtype_code}{bang}[{inner}]"


def _parse_one(text: str) -> ArraySpec:
    match = _SPEC_RE.match(text.strip())
    if match is None:
        raise SpecError(
            f"malformed array spec {text!r}; expected e.g. 'f8[N,H,W]'"
        )
    raw_dims = match.group("dims").strip()
    dims: list[int | str] = []
    if raw_dims:
        parts = [part.strip() for part in raw_dims.split(",")]
        for index, part in enumerate(parts):
            if part == "...":
                if index != len(parts) - 1:
                    raise SpecError(
                        f"'...' must be the last dim in spec {text!r}"
                    )
                dims.append("...")
            elif part == "*":
                dims.append("*")
            elif part.lstrip("-").isdigit():
                size = int(part)
                if size < 0:
                    raise SpecError(
                        f"negative dim {size} in spec {text!r}"
                    )
                dims.append(size)
            elif _NAME_RE.match(part):
                dims.append(part)
            else:
                raise SpecError(f"bad dim {part!r} in spec {text!r}")
    return ArraySpec(
        dtype_code=match.group("dtype"),
        dims=tuple(dims),
        optional=match.group("optional") is not None,
        check_finite=match.group("nonfinite") is None,
        source=text.strip(),
    )


def parse_spec(text: str) -> tuple[ArraySpec, ...]:
    """Parse a spec string into its alternatives (``|``-separated)."""
    if not isinstance(text, str) or not text.strip():
        raise SpecError(f"spec must be a non-empty string, got {text!r}")
    return tuple(_parse_one(part) for part in text.split("|"))
