"""Static and structural analysis for the reproduction codebase.

Two halves:

* **Runtime array contracts** (:mod:`repro.analysis.contracts`) — the
  :func:`contract` decorator plus :func:`check_array` validate dtype,
  rank, named-dimension consistency and finiteness at function
  boundaries, toggled by ``REPRO_CHECK={strict,warn,off}``.
* **reprolint** (:mod:`repro.analysis.linter`) — an AST linter enforcing
  repo-specific invariants (R001–R006): seeded-RNG discipline, float64
  kernel invariance, registered event names, data-plane routing, no
  mutable defaults, contract coverage.  Run it with
  ``python -m repro.analysis.lint src tests`` or ``repro-lint``.

Heavy imports are lazy (PEP 562) so the linter half stays importable in
environments without numpy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - static import surface for mypy
    from .contracts import (
        ContractError,
        ContractInfo,
        ContractWarning,
        check_array,
        check_mode,
        checking,
        contract,
        contract_registry,
        set_check_mode,
    )
    from .linter import lint_paths, lint_source
    from .rules import Violation
    from .spec import ArraySpec, SpecError, parse_spec

__all__ = [
    "ArraySpec",
    "ContractError",
    "ContractInfo",
    "ContractWarning",
    "SpecError",
    "Violation",
    "check_array",
    "check_mode",
    "checking",
    "contract",
    "contract_registry",
    "lint_paths",
    "lint_source",
    "parse_spec",
    "set_check_mode",
]

_CONTRACT_NAMES = {
    "ContractError", "ContractInfo", "ContractWarning", "check_array",
    "check_mode", "checking", "contract", "contract_registry",
    "set_check_mode",
}
_SPEC_NAMES = {"ArraySpec", "SpecError", "parse_spec"}
_LINTER_NAMES = {"lint_paths", "lint_source"}


def __getattr__(name: str) -> Any:
    if name in _CONTRACT_NAMES:
        from . import contracts

        return getattr(contracts, name)
    if name in _SPEC_NAMES:
        from . import spec

        return getattr(spec, name)
    if name in _LINTER_NAMES:
        from . import linter

        return getattr(linter, name)
    if name == "Violation":
        from .rules import Violation

        return Violation
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)
