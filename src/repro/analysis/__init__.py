"""Static and structural analysis for the reproduction codebase.

Three halves that share one switch:

* **Runtime array contracts** (:mod:`repro.analysis.contracts`) — the
  :func:`contract` decorator plus :func:`check_array` validate dtype,
  rank, named-dimension consistency and finiteness at function
  boundaries, toggled by ``REPRO_CHECK={strict,warn,off}``.
* **Concurrency sanitizer** (:mod:`repro.analysis.concurrency`) —
  :class:`TrackedLock`/:class:`TrackedRLock` detect lock-order
  inversions and release-by-non-owner at runtime; :func:`guarded_by`
  asserts its lock is held on attribute access.  The deterministic
  interleaving harness (:mod:`repro.analysis.interleave`) replays
  adversarial thread schedules so races are reproduced, not flaked.
* **reprolint** (:mod:`repro.analysis.linter`) — an AST linter
  enforcing repo-specific invariants: R001–R006 (seeded-RNG
  discipline, float64 kernel invariance, registered event names,
  data-plane routing, no mutable defaults, contract coverage) and
  R007–R011 (guarded-attribute writes, lock hygiene, thread lifecycle,
  blocking-under-lock, check-then-act races).  Run it with
  ``python -m repro.analysis.lint src tests`` or ``repro-lint``;
  ``repro-lint --list-rules`` prints every code with waiver syntax.

Heavy imports are lazy (PEP 562) so the stdlib-only half (linter,
sanitizer, harness) stays importable in environments without numpy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - static import surface for mypy
    from .concurrency import (
        LockDisciplineError,
        LockDisciplineWarning,
        TrackedLock,
        TrackedRLock,
        guarded_by,
        held_locks,
        lock_order_edges,
        reset_lock_order,
    )
    from .contracts import (
        ContractError,
        ContractInfo,
        ContractWarning,
        check_array,
        check_mode,
        checking,
        contract,
        contract_registry,
        set_check_mode,
    )
    from .interleave import (
        InterleaveError,
        InterleaveScheduler,
        ScheduleTimeout,
        active_scheduler,
        trace_point,
    )
    from .linter import lint_paths, lint_source
    from .rules import Violation
    from .spec import ArraySpec, SpecError, parse_spec

__all__ = [
    "ArraySpec",
    "ContractError",
    "ContractInfo",
    "ContractWarning",
    "InterleaveError",
    "InterleaveScheduler",
    "LockDisciplineError",
    "LockDisciplineWarning",
    "ScheduleTimeout",
    "SpecError",
    "TrackedLock",
    "TrackedRLock",
    "Violation",
    "active_scheduler",
    "check_array",
    "check_mode",
    "checking",
    "contract",
    "contract_registry",
    "guarded_by",
    "held_locks",
    "lint_paths",
    "lint_source",
    "lock_order_edges",
    "parse_spec",
    "reset_lock_order",
    "set_check_mode",
    "trace_point",
]

_CONTRACT_NAMES = {
    "ContractError", "ContractInfo", "ContractWarning", "check_array",
    "check_mode", "checking", "contract", "contract_registry",
    "set_check_mode",
}
_SPEC_NAMES = {"ArraySpec", "SpecError", "parse_spec"}
_LINTER_NAMES = {"lint_paths", "lint_source"}
_CONCURRENCY_NAMES = {
    "LockDisciplineError", "LockDisciplineWarning", "TrackedLock",
    "TrackedRLock", "guarded_by", "held_locks", "lock_order_edges",
    "reset_lock_order",
}
_INTERLEAVE_NAMES = {
    "InterleaveError", "InterleaveScheduler", "ScheduleTimeout",
    "active_scheduler", "trace_point",
}


def __getattr__(name: str) -> Any:
    if name in _CONTRACT_NAMES:
        from . import contracts

        return getattr(contracts, name)
    if name in _SPEC_NAMES:
        from . import spec

        return getattr(spec, name)
    if name in _LINTER_NAMES:
        from . import linter

        return getattr(linter, name)
    if name in _CONCURRENCY_NAMES:
        from . import concurrency

        return getattr(concurrency, name)
    if name in _INTERLEAVE_NAMES:
        from . import interleave

        return getattr(interleave, name)
    if name == "Violation":
        from .rules import Violation

        return Violation
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)
