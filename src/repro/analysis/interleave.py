"""Deterministic interleaving harness: replay adversarial thread schedules.

Races do not belong in tests as flakes — a race that a stress test hits
one run in fifty is a race a regression suite cannot protect.  This
module turns a racy interleaving into a *replayable schedule*: code
under test marks its preemption points with :func:`trace_point`, and an
:class:`InterleaveScheduler` forces the named threads through those
points in a scripted order, every run, on any machine.

Production cost is one module-global load per :func:`trace_point` call
(the scheduler is ``None`` outside tests — see
``benchmarks/bench_concurrency.py`` for the measured overhead).

Schedule semantics
------------------

A schedule is a sequence of entries ``(thread, label)`` — ``label`` may
be ``None`` to match any point of that thread.  The rule:

* a registered thread arriving at :func:`trace_point` **blocks while
  any entry for it with that label remains in the schedule and is not
  at the head**; when its entry reaches the head it is consumed;
* the thread resumes only when *no* matching entry remains ahead of it,
  so consecutive duplicate entries (interleaved with other threads'
  entries) pin a thread at one point across other threads' turns;
* points that never appear in the remaining schedule are free passes;
  threads never registered with the scheduler pass through untouched.

Two interactions keep scripted schedules from deadlocking against real
synchronization:

* **lock-blocked deferral** — a :class:`~repro.analysis.concurrency.
  TrackedLock` tells the active scheduler when a registered thread is
  about to block on lock acquisition; schedule entries of lock-blocked
  threads are rotated behind runnable ones.  A schedule that reproduces
  a race against *unsynchronized* code therefore completes cleanly once
  the code is properly locked — the fix forces the adversarial
  interleaving to degrade into a legal one instead of hanging the test;
* **finish cleanup** — when a thread's callable returns, its remaining
  entries are dropped, so a schedule written against one code path
  cannot hang another.

A schedule the threads cannot make progress on (mis-scripted order, or
a genuine deadlock in the code under test) raises
:class:`ScheduleTimeout` with a diagnostic of who was waiting where.

Typical use::

    sched = InterleaveScheduler([
        ("reader", "cache.get.hit"),   # pause the reader mid get()
        ("evictor", "cache.put.done"), # let a put() storm evict its key
        ("reader", "cache.get.hit"),   # then resume the reader
    ])
    sched.run({"reader": do_get, "evictor": do_puts})
    assert sched.errors == {}
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Mapping, Sequence

__all__ = [
    "InterleaveError",
    "InterleaveScheduler",
    "ScheduleTimeout",
    "active_scheduler",
    "trace_point",
]


class InterleaveError(RuntimeError):
    """The harness could not follow the scripted schedule."""


class ScheduleTimeout(InterleaveError):
    """No scheduled thread made progress before the deadline."""


#: the scheduler trace points report to; None outside harness runs (the
#: only state this module keeps at import time, so the production cost
#: of an uninstrumented trace_point is one global load and a branch)
_active: "InterleaveScheduler | None" = None


def active_scheduler() -> "InterleaveScheduler | None":
    """The scheduler currently replaying a schedule, if any."""
    return _active


def trace_point(label: str) -> None:
    """Mark a preemption point; a no-op unless a scheduler is active."""
    sched = _active
    if sched is not None:
        sched.visit(label)


def _normalize(
    schedule: Sequence[str | tuple[str, str | None]],
) -> list[tuple[str, str | None]]:
    entries: list[tuple[str, str | None]] = []
    for entry in schedule:
        if isinstance(entry, str):
            entries.append((entry, None))
        else:
            name, label = entry
            entries.append((str(name), label))
    return entries


class InterleaveScheduler:
    """Replays one scripted interleaving of named threads.

    Parameters
    ----------
    schedule:
        Entries of ``(thread_name, point_label)``; a bare string is
        shorthand for ``(name, None)`` (any point of that thread).
    timeout:
        Seconds a thread may wait at a point (and the overall
        :meth:`run` join deadline) before :class:`ScheduleTimeout`.
    """

    def __init__(
        self,
        schedule: Sequence[str | tuple[str, str | None]],
        timeout: float = 10.0,
    ) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.schedule = _normalize(schedule)
        self.timeout = timeout
        self._cv = threading.Condition()
        self._names: dict[int, str] = {}
        self._lock_blocked: set[str] = set()
        self._finished: set[str] = set()
        #: what each registered thread returned / raised
        self.results: dict[str, Any] = {}
        self.errors: dict[str, BaseException] = {}
        #: labels visited by registered threads, in global order
        self.trace: list[tuple[str, str]] = []

    # ------------------------------------------------------------------
    # registration / lifecycle
    # ------------------------------------------------------------------
    def register(self, name: str) -> None:
        """Bind the calling thread to schedule entries named ``name``."""
        with self._cv:
            self._names[threading.get_ident()] = name
            self._cv.notify_all()

    def finish(self, name: str) -> None:
        """Drop ``name``'s remaining entries (its callable returned)."""
        with self._cv:
            self._finished.add(name)
            self.schedule = [e for e in self.schedule if e[0] != name]
            self._cv.notify_all()

    # ------------------------------------------------------------------
    # the point protocol
    # ------------------------------------------------------------------
    def _defer_unrunnable(self) -> None:
        """Pop entries of finished threads; rotate entries of threads
        blocked inside a tracked lock behind runnable ones (bounded, so
        an all-blocked schedule falls through to the timeout path)."""
        rotations = 0
        while self.schedule:
            name, _ = self.schedule[0]
            if name in self._finished:
                self.schedule.pop(0)
                continue
            if name in self._lock_blocked and rotations < len(self.schedule):
                self.schedule.append(self.schedule.pop(0))
                rotations += 1
                continue
            break

    def _matches(self, entry: tuple[str, str | None], name: str,
                 label: str) -> bool:
        return entry[0] == name and (entry[1] is None or entry[1] == label)

    def visit(self, label: str) -> None:
        """Block the calling thread per the schedule (see module docs)."""
        me = self._names.get(threading.get_ident())
        if me is None:
            return
        deadline = time.monotonic() + self.timeout
        with self._cv:
            self.trace.append((me, label))
            while True:
                self._defer_unrunnable()
                if not any(
                    self._matches(e, me, label) for e in self.schedule
                ):
                    self._cv.notify_all()
                    return
                if self._matches(self.schedule[0], me, label):
                    self.schedule.pop(0)
                    self._cv.notify_all()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cv.wait(remaining):
                    raise ScheduleTimeout(self._diagnose(me, label))

    def _diagnose(self, name: str, label: str) -> str:
        return (
            f"thread {name!r} timed out at point {label!r}; "
            f"remaining schedule {self.schedule}, "
            f"lock-blocked {sorted(self._lock_blocked)}, "
            f"finished {sorted(self._finished)}"
        )

    # ------------------------------------------------------------------
    # tracked-lock integration (called by repro.analysis.concurrency)
    # ------------------------------------------------------------------
    def lock_blocked(self) -> None:
        """The calling thread is about to block on a tracked lock."""
        me = self._names.get(threading.get_ident())
        if me is None:
            return
        with self._cv:
            self._lock_blocked.add(me)
            self._cv.notify_all()

    def lock_unblocked(self) -> None:
        """The calling thread re-acquired its tracked lock."""
        me = self._names.get(threading.get_ident())
        if me is None:
            return
        with self._cv:
            self._lock_blocked.discard(me)
            self._cv.notify_all()

    # ------------------------------------------------------------------
    # driving threads
    # ------------------------------------------------------------------
    def run(
        self, fns: Mapping[str, Callable[[], Any]]
    ) -> dict[str, Any]:
        """Run every callable on its own named thread under this
        schedule; returns ``{name: result}`` (exceptions land in
        :attr:`errors`, not here — asserting on a captured race *is*
        the point).  Raises :class:`ScheduleTimeout` if any thread is
        still alive at the deadline."""
        global _active
        if _active is not None:
            raise InterleaveError("another scheduler is already active")

        def runner(name: str, fn: Callable[[], Any]) -> None:
            self.register(name)
            try:
                self.results[name] = fn()
            except BaseException as exc:  # noqa: BLE001 - captured result
                self.errors[name] = exc
            finally:
                self.finish(name)

        threads = [
            threading.Thread(
                target=runner, args=(name, fn),
                name=f"interleave-{name}", daemon=True,
            )
            for name, fn in fns.items()
        ]
        _active = self
        try:
            for thread in threads:
                thread.start()
            deadline = time.monotonic() + self.timeout
            for thread in threads:
                thread.join(max(deadline - time.monotonic(), 0.0))
            stuck = [t.name for t in threads if t.is_alive()]
            if stuck:
                raise ScheduleTimeout(
                    f"threads {stuck} never finished; remaining schedule "
                    f"{self.schedule}, lock-blocked "
                    f"{sorted(self._lock_blocked)}"
                )
        finally:
            _active = None
        return self.results
