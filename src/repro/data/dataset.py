"""Dataset containers and counting labelers.

A :class:`ClipDataset` bundles the clips of one benchmark with their
feature tensors and ground-truth labels.  Ground truth exists because the
whole benchmark was litho-simulated once at build time — exactly how the
contest organizers produced the reference labels — but *experiments may
not read it directly*: the active-learning flow must pay for every label
through a :class:`DatasetLabeler`, which meters litho-clip cost
(Definition 3 of the paper).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..layout.clip import Clip
from ..litho.labeler import SECONDS_PER_LITHO_CLIP, LithoBudgetExceeded

__all__ = ["ClipDataset", "DatasetLabeler"]


@dataclass
class ClipDataset:
    """Clips + features + ground truth of one benchmark case.

    Attributes
    ----------
    name / tech_nm:
        Benchmark identity.
    clips:
        The layout clips, in stable index order.
    labels:
        Ground-truth hotspot labels (1 = hotspot), used for evaluation
        and as the backing store of the metered labeler.
    tensors:
        DCT feature tensors, shape ``(N, C, H, W)``.
    flats:
        Flat feature vectors for distribution modelling, shape ``(N, D)``.
    """

    name: str
    tech_nm: int
    clips: list[Clip]
    labels: np.ndarray
    tensors: np.ndarray
    flats: np.ndarray
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = len(self.clips)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.labels.shape != (n,):
            raise ValueError(
                f"labels shape {self.labels.shape} != clip count {n}"
            )
        if self.tensors.shape[0] != n or self.flats.shape[0] != n:
            raise ValueError("feature arrays do not match clip count")
        if n and not set(np.unique(self.labels)) <= {0, 1}:
            raise ValueError("labels must be binary 0/1")

    def __len__(self) -> int:
        return len(self.clips)

    @property
    def n_hotspots(self) -> int:
        return int(self.labels.sum())

    @property
    def n_nonhotspots(self) -> int:
        return int(len(self) - self.labels.sum())

    @property
    def hotspot_ratio(self) -> float:
        return self.n_hotspots / len(self) if len(self) else 0.0

    def subset(self, indices) -> "ClipDataset":
        """A new dataset restricted to ``indices`` (order preserved)."""
        indices = np.asarray(indices, dtype=np.int64)
        return ClipDataset(
            name=self.name,
            tech_nm=self.tech_nm,
            clips=[self.clips[i] for i in indices],
            labels=self.labels[indices],
            tensors=self.tensors[indices],
            flats=self.flats[indices],
            meta=dict(self.meta),
        )

    def summary(self) -> str:
        """One-line Table-I style description."""
        return (
            f"{self.name}: HS#={self.n_hotspots} NHS#={self.n_nonhotspots} "
            f"Tech={self.tech_nm}nm"
        )


class DatasetLabeler:
    """Metered index-based labeling oracle over a :class:`ClipDataset`.

    Mirrors :class:`repro.litho.LithoLabeler` but reads the dataset's
    stored simulation results instead of re-running optics, so large
    experiments stay fast while the litho-clip accounting is identical:
    each *distinct* index queried charges one litho-clip.  An optional
    :class:`~repro.engine.events.EventBus` receives one
    ``labels_computed`` event per :meth:`label_batch` request, carrying
    the same cache-statistics payload as the physical labeler.

    ``max_queries`` caps the number of distinct indices ever charged
    (the litho budget of Definition 3); exceeding it raises
    :class:`~repro.litho.labeler.LithoBudgetExceeded` *before* any
    over-budget label is revealed.  :meth:`label_batch` checks the
    whole request up front, so a rejected batch charges nothing.
    """

    def __init__(
        self, dataset: ClipDataset, bus=None, max_queries: int | None = None
    ) -> None:
        if max_queries is not None and max_queries <= 0:
            raise ValueError(
                f"max_queries must be positive or None, got {max_queries}"
            )
        self.dataset = dataset
        self.bus = bus
        self.max_queries = max_queries
        self._seen: set[int] = set()
        self.query_count = 0

    def _check_budget(self, n_new: int) -> None:
        if (
            self.max_queries is not None
            and self.query_count + n_new > self.max_queries
        ):
            raise LithoBudgetExceeded(
                self.max_queries, self.query_count, n_new
            )

    def label(self, index: int) -> int:
        index = int(index)
        if not 0 <= index < len(self.dataset):
            raise IndexError(f"clip index {index} out of range")
        if index not in self._seen:
            self._check_budget(1)
            self._seen.add(index)
            self.query_count += 1
        return int(self.dataset.labels[index])

    def label_many(self, indices) -> np.ndarray:
        return np.array([self.label(i) for i in indices], dtype=np.int64)

    def label_batch(self, indices) -> np.ndarray:
        """Batched labeling with request-level dedupe and cache stats.

        Identical charging to :meth:`label_many` (each distinct new index
        costs one litho-clip); additionally emits a ``labels_computed``
        event so runs expose their label-cache behaviour.
        """
        started = time.perf_counter()
        indices = [int(i) for i in indices]
        unique = set(indices)
        cached = unique & self._seen
        fresh = unique - self._seen
        # whole-request budget check: a rejected batch charges nothing
        self._check_budget(len(fresh))
        labels = np.array([self.label(i) for i in indices], dtype=np.int64)
        if self.bus is not None:
            self.bus.emit(
                "labels_computed",
                n_clips=len(indices),
                cache_hits=len(cached),
                cache_misses=len(fresh),
                deduped=len(indices) - len(unique),
                simulated_seconds=len(fresh) * SECONDS_PER_LITHO_CLIP,
                label_seconds=time.perf_counter() - started,
            )
        return labels

    def is_labeled(self, index: int) -> bool:
        return int(index) in self._seen

    # ------------------------------------------------------------------
    # checkpoint persistence
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """JSON-serializable labeled-index set + cost meter (for
        :mod:`repro.engine.checkpoint`)."""
        return {
            "seen": sorted(int(i) for i in self._seen),
            "query_count": int(self.query_count),
        }

    def set_state(self, state: dict) -> None:
        """Restore state captured by :meth:`get_state`."""
        seen = [int(i) for i in state["seen"]]
        bad = [i for i in seen if not 0 <= i < len(self.dataset)]
        if bad:
            raise ValueError(
                f"labeler state references out-of-range clip indices {bad[:5]}"
            )
        self._seen = set(seen)
        self.query_count = int(state["query_count"])

    @property
    def labeled_indices(self) -> np.ndarray:
        return np.array(sorted(self._seen), dtype=np.int64)

    def reset(self) -> None:
        self._seen.clear()
        self.query_count = 0
