"""Benchmark substrate (S4): synthetic layout generation, dataset
containers, the metered labeling oracle, and ICCAD'12/'16-style
benchmark builders."""

from .benchmarks import BENCHMARKS, BenchmarkSpec, benchmark_names, build_benchmark
from .dataset import ClipDataset, DatasetLabeler
from .imbalance import class_ratio, oversample_minority
from .splits import stratified_kfold, stratified_split
from .synth import DUV_RULES, EUV_RULES, TechRules, generate_layout

__all__ = [
    "TechRules",
    "DUV_RULES",
    "EUV_RULES",
    "generate_layout",
    "ClipDataset",
    "DatasetLabeler",
    "BenchmarkSpec",
    "BENCHMARKS",
    "benchmark_names",
    "build_benchmark",
    "stratified_split",
    "stratified_kfold",
    "class_ratio",
    "oversample_minority",
]
