"""ICCAD'12/'16-style benchmark construction (Table I of the paper).

Each spec reproduces one contest case's *statistics* — total clip count,
hotspot ratio, technology node — on synthetic layouts labeled by the
lithography simulator.  The ``scale`` knob shrinks clip counts
proportionally so experiments fit a CPU budget; ratios between methods
are preserved (DESIGN.md, substitutions table).

Because full-benchmark simulation is the dominant build cost, built
datasets are cached on disk (``REPRO_CACHE_DIR`` or ``.cache/`` in the
working tree) keyed by spec, scale and seed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..dataplane import BatchFeatureExtractor, DataPlaneConfig
from ..features.pipeline import FeatureExtractor
from ..layout.clip import Clip, extract_clip_grid
from ..layout.geometry import Rect
from ..litho.labeler import LithoLabeler
from ..litho.simulator import LithoSimulator
from .dataset import ClipDataset
from .synth import DUV_RULES, EUV_RULES, TechRules, generate_layout

__all__ = ["BenchmarkSpec", "BENCHMARKS", "build_benchmark", "benchmark_names"]


@dataclass(frozen=True)
class BenchmarkSpec:
    """Statistics of one contest case to reproduce."""

    name: str
    rules: TechRules
    paper_hotspots: int
    paper_nonhotspots: int
    stress_probability: float

    @property
    def paper_total(self) -> int:
        return self.paper_hotspots + self.paper_nonhotspots

    @property
    def paper_ratio(self) -> float:
        return self.paper_hotspots / self.paper_total

    def tiles_for_scale(self, scale: float) -> tuple[int, int]:
        """Square tile grid approximating ``paper_total * scale`` clips."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        target = max(self.paper_total * scale, 16.0)
        side = max(int(round(np.sqrt(target))), 4)
        return side, side


# ``stress_probability`` controls how many *library patterns* are drawn
# with near-critical dimensions (hotspot-type diversity); the realized
# clip-level hotspot ratio is pinned to Table I by the generator's
# ``target_ratio`` reweighting (see repro.data.synth.generate_layout).
BENCHMARKS: dict[str, BenchmarkSpec] = {
    "iccad12": BenchmarkSpec("iccad12", DUV_RULES, 3728, 159672, 0.30),
    "iccad16-1": BenchmarkSpec("iccad16-1", EUV_RULES, 0, 63, 0.0),
    "iccad16-2": BenchmarkSpec("iccad16-2", EUV_RULES, 56, 967, 0.30),
    "iccad16-3": BenchmarkSpec("iccad16-3", EUV_RULES, 1100, 3916, 0.40),
    "iccad16-4": BenchmarkSpec("iccad16-4", EUV_RULES, 157, 1678, 0.30),
}


def benchmark_names() -> list[str]:
    return list(BENCHMARKS)


def _cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR")
    path = Path(root) if root else Path.cwd() / ".cache" / "repro-datasets"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _cache_key(name: str, scale: float, seed: int, grid: int) -> str:
    return f"{name}_s{scale:g}_r{seed}_g{grid}.npz"


def build_benchmark(
    name: str,
    scale: float = 0.02,
    seed: int = 0,
    grid: int = 96,
    use_cache: bool = True,
    dataplane: DataPlaneConfig | None = None,
) -> ClipDataset:
    """Build (or load from cache) one benchmark case.

    Parameters
    ----------
    name:
        One of :func:`benchmark_names`.
    scale:
        Fraction of the paper's clip count to generate (1.0 = full size;
        the default 0.02 keeps CPU experiments tractable).
    seed:
        Generator seed; different seeds give statistically equivalent but
        disjoint chips.
    grid:
        Raster/feature resolution (pixels per clip).
    dataplane:
        Chunking/pooling/feature-cache configuration of the build
        (fresh builds only; cached loads never extract).
    """
    if name not in BENCHMARKS:
        raise KeyError(f"unknown benchmark {name!r}; known: {benchmark_names()}")
    spec = BENCHMARKS[name]

    cache_file = _cache_dir() / _cache_key(name, scale, seed, grid)
    if use_cache and cache_file.exists():
        return _load_cached(cache_file, spec)

    dataset = _build_fresh(spec, scale, seed, grid, dataplane)
    if use_cache:
        _save_cache(cache_file, dataset)
    return dataset


def _build_fresh(
    spec: BenchmarkSpec,
    scale: float,
    seed: int,
    grid: int,
    dataplane: DataPlaneConfig | None = None,
) -> ClipDataset:
    rules = spec.rules
    tiles_x, tiles_y = spec.tiles_for_scale(scale)
    layout = generate_layout(
        rules,
        tiles_x,
        tiles_y,
        stress_probability=spec.stress_probability,
        seed=seed,
        name=spec.name,
        target_ratio=spec.paper_ratio,
    )
    clips = extract_clip_grid(
        layout, rules.clip_size, rules.core_margin, drop_empty=False
    )
    plane_cfg = dataplane if dataplane is not None else DataPlaneConfig()

    # ground-truth labeling through the content-addressed batch labeler:
    # recurring library patterns simulate once, not once per placement
    labeler = LithoLabeler(LithoSimulator.for_tech(rules.tech_nm, grid=grid))
    labels = np.array(
        labeler.label_batch(
            clips,
            chunk_size=plane_cfg.chunk_size,
            workers=plane_cfg.workers,
            executor=plane_cfg.executor,
        ),
        dtype=np.int64,
    )

    extractor = FeatureExtractor(grid=grid)
    batch = BatchFeatureExtractor(extractor, config=plane_cfg).extract(clips)
    tensors = batch.tensors
    flats = batch.flats
    hashes = np.array([clip.geometry_hash(quantum=rules.grid_snap)
                       for clip in clips])
    core_hashes = np.array(
        [clip.core_geometry_hash(quantum=rules.grid_snap) for clip in clips]
    )

    return ClipDataset(
        name=spec.name,
        tech_nm=rules.tech_nm,
        clips=clips,
        labels=labels,
        tensors=tensors,
        flats=flats,
        meta={
            "scale": scale,
            "seed": seed,
            "grid": grid,
            "density_cells": extractor.density_cells,
            "hashes": hashes,
            "core_hashes": core_hashes,
            "geometry_available": True,
        },
    )


def _save_cache(path: Path, dataset: ClipDataset) -> None:
    windows = np.array([c.window.as_tuple() for c in dataset.clips],
                       dtype=np.int64)
    cores = np.array([c.core.as_tuple() for c in dataset.clips],
                     dtype=np.int64)
    np.savez_compressed(
        path,
        labels=dataset.labels,
        tensors=dataset.tensors.astype(np.float32),
        flats=dataset.flats.astype(np.float32),
        windows=windows,
        cores=cores,
        hashes=dataset.meta["hashes"],
        core_hashes=dataset.meta["core_hashes"],
        tech_nm=np.int64(dataset.tech_nm),
        scale=np.float64(dataset.meta["scale"]),
        seed=np.int64(dataset.meta["seed"]),
        grid=np.int64(dataset.meta["grid"]),
        density_cells=np.int64(dataset.meta["density_cells"]),
    )


def _load_cached(path: Path, spec: BenchmarkSpec) -> ClipDataset:
    with np.load(path, allow_pickle=False) as archive:
        windows = archive["windows"]
        cores = archive["cores"]
        clips = [
            Clip(
                window=Rect(*map(int, windows[i])),
                core=Rect(*map(int, cores[i])),
                rects=[],
                layout_name=spec.name,
                index=i,
            )
            for i in range(len(windows))
        ]
        return ClipDataset(
            name=spec.name,
            tech_nm=int(archive["tech_nm"]),
            clips=clips,
            labels=archive["labels"],
            tensors=archive["tensors"].astype(np.float64),
            flats=archive["flats"].astype(np.float64),
            meta={
                "scale": float(archive["scale"]),
                "seed": int(archive["seed"]),
                "grid": int(archive["grid"]),
                "density_cells": int(archive["density_cells"]),
                "hashes": archive["hashes"],
                "core_hashes": archive["core_hashes"],
                "geometry_available": False,
            },
        )
