"""Synthetic full-chip layout generation.

The ICCAD'12/'16 contest layouts are proprietary, so benchmarks are built
from synthetic chips: the die is tiled with routing *motifs* (parallel
lines, necked wires, tip-to-tip gaps, jogs, via arrays, combs) whose
dimensions are sampled around each technology's lithographic critical
dimensions.  A tunable ``stress`` probability controls how often a motif
receives near-critical dimensions; ground-truth hotspot labels then come
from the lithography simulator, so label structure is physically driven
rather than randomly assigned — the property that makes learned features
and active sampling behave as on real data (see DESIGN.md substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..layout.geometry import Rect
from ..layout.layout import Layout

__all__ = ["TechRules", "DUV_RULES", "EUV_RULES", "generate_layout"]


@dataclass(frozen=True)
class TechRules:
    """Dimension rules for one technology node.

    ``safe_*`` ranges produce robustly printable geometry; ``risky_*``
    ranges straddle the simulator's critical dimension, so roughly half
    of stressed motifs become true hotspots.
    """

    tech_nm: int
    clip_size: int            # clip window edge, nm
    core_margin: int          # excluded border of the core region, nm
    safe_width: tuple[int, int]
    safe_gap: tuple[int, int]
    risky_width: tuple[int, int]
    risky_gap: tuple[int, int]
    grid_snap: int = 1        # manufacturing grid for coordinates


# DUV 28 nm metal: simulator CD ~50 nm line / ~30 nm gap (see litho
# tests).  Risky ranges sit mostly *below* the CD so stressed motifs fail
# with high probability; the top of each risky range overlaps the safe
# side to leave a thin band of hard negatives (marginal-but-printable).
DUV_RULES = TechRules(
    tech_nm=28,
    clip_size=1200,
    core_margin=300,
    safe_width=(70, 140),
    safe_gap=(60, 150),
    risky_width=(32, 54),
    risky_gap=(16, 32),
    grid_snap=2,
)

# EUV 7 nm metal: simulator CD ~25 nm line / ~15 nm gap
EUV_RULES = TechRules(
    tech_nm=7,
    clip_size=640,
    core_margin=160,
    safe_width=(32, 64),
    safe_gap=(24, 60),
    risky_width=(14, 26),
    risky_gap=(7, 16),
    grid_snap=1,
)


def _snap(value: float, quantum: int) -> int:
    return int(round(value / quantum)) * quantum


def _sample(rng: np.random.Generator, lo_hi: tuple[int, int], snap: int) -> int:
    lo, hi = lo_hi
    return max(_snap(rng.uniform(lo, hi), snap), snap)


class _MotifContext:
    """Per-tile sampling context handed to motif functions."""

    def __init__(self, rng: np.random.Generator, rules: TechRules, stressed: bool):
        self.rng = rng
        self.rules = rules
        self.stressed = stressed

    def width(self) -> int:
        rules = self.rules
        rng_range = rules.risky_width if self.stressed else rules.safe_width
        return _sample(self.rng, rng_range, rules.grid_snap)

    def safe_width(self) -> int:
        return _sample(self.rng, self.rules.safe_width, self.rules.grid_snap)

    def gap(self) -> int:
        rules = self.rules
        rng_range = rules.risky_gap if self.stressed else rules.safe_gap
        return _sample(self.rng, rng_range, rules.grid_snap)

    def safe_gap(self) -> int:
        return _sample(self.rng, self.rules.safe_gap, self.rules.grid_snap)


# ----------------------------------------------------------------------
# motifs: each returns rects inside ``region`` (absolute coordinates)
# ----------------------------------------------------------------------

def _motif_parallel_lines(ctx: _MotifContext, region: Rect) -> list[Rect]:
    """Horizontal routing tracks; stress narrows one line's width."""
    rects = []
    y = region.y0 + ctx.safe_gap()
    stress_line = ctx.rng.integers(0, 3)
    index = 0
    while True:
        width = ctx.width() if (ctx.stressed and index == stress_line) else ctx.safe_width()
        if y + width > region.y1:
            break
        rects.append(Rect(region.x0, y, region.x1, y + width))
        y += width + ctx.safe_gap()
        index += 1
    return rects


def _motif_necked_line(ctx: _MotifContext, region: Rect) -> list[Rect]:
    """A wide wire with a short narrow neck near the tile centre."""
    body_w = ctx.safe_width()
    neck_w = ctx.width() if ctx.stressed else ctx.safe_width()
    cy = (region.y0 + region.y1) // 2
    neck_len = max((region.x1 - region.x0) // 8, 3 * ctx.rules.grid_snap)
    cx = (region.x0 + region.x1) // 2
    y0 = cy - body_w // 2
    rects = [
        Rect(region.x0, y0, cx - neck_len // 2, y0 + body_w),
        Rect(cx + neck_len // 2, y0, region.x1, y0 + body_w),
        Rect(
            cx - neck_len // 2,
            cy - neck_w // 2,
            cx + neck_len // 2,
            cy - neck_w // 2 + neck_w,
        ),
    ]
    return rects


def _motif_tip_to_tip(ctx: _MotifContext, region: Rect) -> list[Rect]:
    """Two collinear wires with an end-to-end gap (bridge risk)."""
    width = ctx.safe_width()
    gap = ctx.gap() if ctx.stressed else ctx.safe_gap()
    cy = (region.y0 + region.y1) // 2
    cx = (region.x0 + region.x1) // 2
    y0 = cy - width // 2
    return [
        Rect(region.x0, y0, cx - gap // 2, y0 + width),
        Rect(cx - gap // 2 + gap, y0, region.x1, y0 + width),
    ]


def _motif_side_gap(ctx: _MotifContext, region: Rect) -> list[Rect]:
    """Two long parallel wires running at a (possibly tight) spacing."""
    width = ctx.safe_width()
    gap = ctx.gap() if ctx.stressed else ctx.safe_gap()
    cy = (region.y0 + region.y1) // 2
    return [
        Rect(region.x0, cy - gap // 2 - width, region.x1, cy - gap // 2),
        Rect(region.x0, cy - gap // 2 + gap, region.x1,
             cy - gap // 2 + gap + width),
    ]


def _motif_jog(ctx: _MotifContext, region: Rect) -> list[Rect]:
    """A Z-shaped jog; stress narrows the vertical connecting segment."""
    body_w = ctx.safe_width()
    conn_w = ctx.width() if ctx.stressed else ctx.safe_width()
    third_y = (region.y1 - region.y0) // 3
    cx = (region.x0 + region.x1) // 2
    low_y = region.y0 + third_y
    high_y = region.y0 + 2 * third_y
    return [
        Rect(region.x0, low_y, cx + conn_w, low_y + body_w),
        Rect(cx, low_y, cx + conn_w, high_y + body_w),
        Rect(cx, high_y, region.x1, high_y + body_w),
    ]


def _motif_via_array(ctx: _MotifContext, region: Rect) -> list[Rect]:
    """Square contact/via array; stress shrinks the via size.

    Isolated 2-D features need ~1.6x the line CD to print (less aerial
    intensity than an infinite line at equal width), so via sizes are
    scaled up from the line-width rules accordingly.
    """
    snap = ctx.rules.grid_snap
    base = ctx.width() if ctx.stressed else ctx.safe_width()
    via = _snap(base * 1.6, snap)
    pitch = via + ctx.safe_gap()
    rects = []
    y = region.y0 + ctx.safe_gap()
    while y + via <= region.y1:
        x = region.x0 + ctx.safe_gap()
        while x + via <= region.x1:
            rects.append(Rect(x, y, x + via, y + via))
            x += pitch
        y += pitch
    return rects


def _motif_comb(ctx: _MotifContext, region: Rect) -> list[Rect]:
    """A comb: spine plus fingers; stress tightens finger spacing."""
    width = ctx.safe_width()
    gap = ctx.gap() if ctx.stressed else ctx.safe_gap()
    rects = [Rect(region.x0, region.y0, region.x0 + width, region.y1)]
    y = region.y0 + gap
    while y + width <= region.y1:
        rects.append(Rect(region.x0 + width, y, region.x1, y + width))
        y += width + gap
    return rects


def _motif_empty(ctx: _MotifContext, region: Rect) -> list[Rect]:
    """Sparse tile with one isolated island (always printable)."""
    width = ctx.safe_width() * 2
    cx = (region.x0 + region.x1) // 2
    cy = (region.y0 + region.y1) // 2
    return [Rect(cx - width, cy - width // 2, cx + width, cy + width // 2)]


MOTIFS = (
    _motif_parallel_lines,
    _motif_necked_line,
    _motif_tip_to_tip,
    _motif_side_gap,
    _motif_jog,
    _motif_via_array,
    _motif_comb,
    _motif_empty,
)


class PatternLibrary:
    """A finite pool of concrete pattern instances.

    Real chips are assembled from standard cells, so the same local
    patterns recur thousands of times across a die — the property that
    makes exact pattern matching viable and lets a CNN generalize from a
    labeled subset.  The library pre-generates ``n_patterns`` motif
    instances (each with frozen dimensions, stressed or safe) in a
    canonical tile at the origin; placement then translates instances to
    tile positions.
    """

    #: fraction of patterns generated as the safe/risky twin of the
    #: previous pattern — real hotspots are near-misses of legal
    #: patterns, which is also what makes fuzzy pattern matching risky
    FAMILY_FRACTION = 0.5

    def __init__(
        self,
        rules: TechRules,
        n_patterns: int,
        stress_probability: float,
        tile_size: int,
        inset: int,
        rng: np.random.Generator,
    ) -> None:
        if n_patterns <= 0:
            raise ValueError(f"n_patterns must be positive, got {n_patterns}")
        self.rules = rules
        region = Rect(inset, inset, tile_size - inset, tile_size - inset)
        self.patterns: list[list[Rect]] = []
        self.stressed: list[bool] = []
        child_seeds = rng.integers(0, 2**31, size=n_patterns)
        for i in range(n_patterns):
            if (
                i % 2 == 1
                and rng.random() < self.FAMILY_FRACTION
                and i > 0
            ):
                # twin of the previous pattern: identical rng stream, so
                # every non-critical dimension matches; the stress flag
                # is redrawn, so safe/risky near-pairs appear at a rate
                # proportional to stress_probability
                seed = child_seeds[i - 1]
            else:
                seed = child_seeds[i]
            stressed = bool(rng.random() < stress_probability)
            child = np.random.default_rng(seed)
            motif = MOTIFS[child.integers(0, len(MOTIFS))]
            ctx = _MotifContext(child, rules, stressed)
            self.patterns.append(motif(ctx, region))
            self.stressed.append(stressed)

    def __len__(self) -> int:
        return len(self.patterns)

    def place(self, pattern_id: int, dx: int, dy: int) -> list[Rect]:
        """Instance ``pattern_id`` translated by ``(dx, dy)``."""
        return [r.shifted(dx, dy) for r in self.patterns[pattern_id]]


def _zipf_probabilities(n: int, exponent: float = 0.8) -> np.ndarray:
    """Zipf-like frequency skew: a few patterns dominate, as on chips."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def _pattern_fails(library: PatternLibrary, pattern_id: int) -> bool:
    """Litho-simulate one library pattern in a canonical clip."""
    from ..layout.clip import Clip
    from ..litho.simulator import LithoSimulator

    rules = library.rules
    margin = rules.core_margin
    window = Rect(0, 0, rules.clip_size, rules.clip_size)
    clip = Clip(
        window=window,
        core=window.expanded(-margin),
        rects=library.place(pattern_id, margin, margin),
        index=pattern_id,
    )
    simulator = LithoSimulator.for_tech(rules.tech_nm, grid=96)
    return simulator.is_hotspot(clip)


def _target_weights(
    base: np.ndarray, fails: np.ndarray, target_ratio: float
) -> np.ndarray:
    """Rescale pattern frequencies so failing patterns carry
    ``target_ratio`` of the total placement probability.

    The fail mass is spread *uniformly* over failing patterns (instead of
    keeping their Zipf ranks): each hotspot pattern stays individually
    rarer than the frequent clean patterns, preserving the real-chip
    property that hotspots are rare patterns — the assumption behind the
    GMM low-posterior seeding of Algorithm 2.
    """
    clean_mass = base[~fails].sum()
    weights = base.astype(np.float64).copy()
    if target_ratio <= 0 or not fails.any():
        if fails.any():
            weights[fails] = 0.0
        return weights / weights.sum()
    if not (~fails).any():
        return weights / weights.sum()
    weights[fails] = target_ratio / fails.sum()
    weights[~fails] *= (1.0 - target_ratio) / clean_mass
    return weights / weights.sum()


def generate_layout(
    rules: TechRules,
    tiles_x: int,
    tiles_y: int,
    stress_probability: float,
    seed: int = 0,
    name: str = "synthetic",
    n_patterns: int | None = None,
    jitter: int = 2,
    target_ratio: float | None = None,
) -> Layout:
    """Generate a full-chip layout of ``tiles_x x tiles_y`` pattern tiles.

    Each tile occupies one clip-core area and receives one instance from
    a finite :class:`PatternLibrary` (Zipf-distributed, so frequent
    patterns recur many times), optionally shifted by a few manufacturing
    grid steps of placement ``jitter``.  Geometry keeps an inset from
    tile borders so neighbouring tiles provide optical context without
    accidental cross-tile shorts.

    ``n_patterns`` defaults to roughly one distinct pattern per 12 tiles
    (minimum 24), mirroring the limited pattern vocabulary of real
    designs.

    When ``target_ratio`` is given, every library pattern is lithography-
    simulated once and the placement frequencies are rescaled so failing
    patterns occupy ``target_ratio`` of the tiles in expectation — the
    knob the benchmark builders use to match Table I hotspot ratios.
    """
    if tiles_x <= 0 or tiles_y <= 0:
        raise ValueError("tile counts must be positive")
    if not 0.0 <= stress_probability <= 1.0:
        raise ValueError(
            f"stress_probability must be in [0, 1], got {stress_probability}"
        )
    if jitter < 0:
        raise ValueError(f"jitter must be non-negative, got {jitter}")
    if target_ratio is not None and not 0.0 <= target_ratio < 1.0:
        raise ValueError(f"target_ratio must be in [0, 1), got {target_ratio}")

    rng = np.random.default_rng(seed)
    core = rules.clip_size - 2 * rules.core_margin
    margin = rules.core_margin
    inset = max(rules.safe_gap[0] // 2, rules.grid_snap) + jitter * rules.grid_snap
    n_tiles = tiles_x * tiles_y
    if n_patterns is None:
        n_patterns = max(24, n_tiles // 12)

    library = PatternLibrary(
        rules, n_patterns, stress_probability, core, inset, rng
    )
    frequencies = _zipf_probabilities(len(library))
    if target_ratio is not None:
        fails = np.array(
            [_pattern_fails(library, i) for i in range(len(library))]
        )
        frequencies = _target_weights(frequencies, fails, target_ratio)
    assignments = rng.choice(len(library), size=n_tiles, p=frequencies)

    rects: list[Rect] = []
    snap = rules.grid_snap
    for tile, pattern_id in enumerate(assignments):
        tx, ty = tile % tiles_x, tile // tiles_x
        dx = margin + tx * core + int(rng.integers(-jitter, jitter + 1)) * snap
        dy = margin + ty * core + int(rng.integers(-jitter, jitter + 1)) * snap
        rects.extend(library.place(int(pattern_id), dx, dy))

    die = Rect(0, 0, 2 * margin + tiles_x * core, 2 * margin + tiles_y * core)
    return Layout(rects, die=die, tech_nm=rules.tech_nm, name=name)
