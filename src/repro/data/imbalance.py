"""Class-imbalance utilities.

Hotspot data is extremely imbalanced (Table I: down to 2 % positives).
Besides loss re-weighting (built into the classifier), the standard
remedy from the hotspot-CNN literature (Yang et al., "imbalance aware")
is minority oversampling with orientation augmentation, provided here
as array-level utilities.
"""

from __future__ import annotations

import numpy as np

from ..features.augment import TENSOR_ORIENTATIONS, augment_tensor

__all__ = ["oversample_minority", "class_ratio"]


def class_ratio(labels: np.ndarray) -> float:
    """Fraction of positive (hotspot) labels."""
    labels = np.asarray(labels)
    if labels.size == 0:
        raise ValueError("empty labels")
    return float((labels == 1).mean())


def oversample_minority(
    tensors: np.ndarray,
    labels: np.ndarray,
    target_ratio: float = 0.5,
    seed: int = 0,
    augment: bool = True,
    block_size: int = 8,
) -> tuple[np.ndarray, np.ndarray]:
    """Replicate minority samples until they reach ``target_ratio``.

    With ``augment=True`` each replica gets a random D4 orientation (in
    the DCT domain), so replicas are informative variants rather than
    exact copies.  A dataset already at or above the target is returned
    unchanged.
    """
    tensors = np.asarray(tensors)
    labels = np.asarray(labels, dtype=np.int64)
    if len(tensors) != len(labels):
        raise ValueError("tensors and labels lengths differ")
    if not 0.0 < target_ratio < 1.0:
        raise ValueError(f"target_ratio must be in (0, 1), got {target_ratio}")

    positives = np.flatnonzero(labels == 1)
    negatives = np.flatnonzero(labels == 0)
    if len(positives) == 0:
        raise ValueError("no minority samples to oversample")
    if class_ratio(labels) >= target_ratio:
        return tensors.copy(), labels.copy()

    # n_pos + extra over n_total + extra = target  ->  solve for extra
    n_pos, n_total = len(positives), len(labels)
    extra = int(np.ceil(
        (target_ratio * n_total - n_pos) / (1.0 - target_ratio)
    ))
    rng = np.random.default_rng(seed)
    picks = rng.choice(positives, size=extra, replace=True)

    replicas = []
    for index in picks:
        tensor = tensors[index]
        if augment:
            orientation = TENSOR_ORIENTATIONS[
                rng.integers(0, len(TENSOR_ORIENTATIONS))
            ]
            tensor = augment_tensor(tensor, orientation, block_size)
        replicas.append(tensor)

    out_x = np.concatenate([tensors, np.stack(replicas)], axis=0)
    out_y = np.concatenate([labels, np.ones(extra, dtype=np.int64)])
    del negatives
    return out_x, out_y
