"""Dataset splitting utilities.

Stratified splits and cross-validation folds over
:class:`~repro.data.dataset.ClipDataset`, preserving the hotspot ratio
per part — essential when the minority class is 2 % of the data.
"""

from __future__ import annotations

import numpy as np

from .dataset import ClipDataset

__all__ = ["stratified_split", "stratified_kfold"]


def _per_class_indices(labels: np.ndarray, rng: np.random.Generator):
    """Shuffled index arrays per class."""
    classes = np.unique(labels)
    return {
        int(c): rng.permutation(np.flatnonzero(labels == c))
        for c in classes
    }


def stratified_split(
    dataset: ClipDataset,
    fractions: tuple[float, ...] = (0.7, 0.3),
    seed: int = 0,
) -> list[ClipDataset]:
    """Split into parts with (approximately) equal hotspot ratios.

    ``fractions`` must sum to 1; each class is divided proportionally
    (largest-remainder rounding) so no part silently loses the minority
    class when enough samples exist.
    """
    fractions = tuple(float(f) for f in fractions)
    if any(f <= 0 for f in fractions):
        raise ValueError("fractions must be positive")
    if abs(sum(fractions) - 1.0) > 1e-9:
        raise ValueError(f"fractions must sum to 1, got {sum(fractions)}")

    rng = np.random.default_rng(seed)
    per_class = _per_class_indices(dataset.labels, rng)
    parts: list[list[int]] = [[] for _ in fractions]

    for indices in per_class.values():
        n = len(indices)
        counts = np.floor(np.array(fractions) * n).astype(int)
        remainders = np.array(fractions) * n - counts
        # distribute leftovers to the largest remainders
        for i in np.argsort(-remainders)[: n - counts.sum()]:
            counts[i] += 1
        start = 0
        for part, count in zip(parts, counts):
            part.extend(int(i) for i in indices[start : start + count])
            start += count

    return [dataset.subset(sorted(part)) for part in parts]


def stratified_kfold(
    dataset: ClipDataset, k: int = 5, seed: int = 0
):
    """Yield ``(train, test)`` dataset pairs for k-fold cross-validation.

    Folds are stratified per class; every sample appears in exactly one
    test fold.
    """
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    if k > len(dataset):
        raise ValueError(f"k={k} exceeds dataset size {len(dataset)}")

    rng = np.random.default_rng(seed)
    per_class = _per_class_indices(dataset.labels, rng)
    folds: list[list[int]] = [[] for _ in range(k)]
    for indices in per_class.values():
        for position, index in enumerate(indices):
            folds[position % k].append(int(index))

    all_indices = set(range(len(dataset)))
    for fold in folds:
        test_set = sorted(fold)
        train_set = sorted(all_indices - set(fold))
        yield dataset.subset(train_set), dataset.subset(test_set)
