"""Gradient-based optimizers.

Optimizers hold per-parameter slot state keyed by ``(layer index, name)``
and update parameter arrays **in place**, so the network's layers always
see the latest weights without re-wiring references.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "Momentum", "Adam"]


class Optimizer:
    """Base optimizer over a list of (params, grads) dict pairs."""

    def __init__(self, lr: float = 0.01, weight_decay: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.lr = lr
        self.weight_decay = weight_decay

    def step(self, param_groups) -> None:
        """Apply one update. ``param_groups`` is an iterable of
        ``(slot_key, param_array, grad_array)`` triples."""
        for key, param, grad in param_groups:
            if self.weight_decay and param.ndim > 1:
                grad = grad + self.weight_decay * param
            self._update(key, param, grad)

    def _update(self, key, param: np.ndarray, grad: np.ndarray) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Vanilla stochastic gradient descent."""

    def _update(self, key, param: np.ndarray, grad: np.ndarray) -> None:
        param -= self.lr * grad


class Momentum(Optimizer):
    """SGD with classical momentum."""

    def __init__(
        self, lr: float = 0.01, momentum: float = 0.9, weight_decay: float = 0.0
    ) -> None:
        super().__init__(lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: dict = {}

    def _update(self, key, param: np.ndarray, grad: np.ndarray) -> None:
        v = self._velocity.get(key)
        if v is None:
            v = np.zeros_like(param)
        v = self.momentum * v - self.lr * grad
        self._velocity[key] = v
        param += v


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(lr, weight_decay)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict = {}
        self._v: dict = {}
        self._t: dict = {}

    def _update(self, key, param: np.ndarray, grad: np.ndarray) -> None:
        m = self._m.get(key)
        if m is None:
            m = np.zeros_like(param)
            self._v[key] = np.zeros_like(param)
            self._t[key] = 0
        v = self._v[key]
        self._t[key] += 1
        t = self._t[key]

        m = self.beta1 * m + (1 - self.beta1) * grad
        v = self.beta2 * v + (1 - self.beta2) * grad * grad
        self._m[key] = m
        self._v[key] = v

        m_hat = m / (1 - self.beta1**t)
        v_hat = v / (1 - self.beta2**t)
        param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
