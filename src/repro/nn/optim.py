"""Gradient-based optimizers.

Optimizers hold per-parameter slot state keyed by ``(layer index, name)``
and update parameter arrays **in place**, so the network's layers always
see the latest weights without re-wiring references.

Slot state is serializable: :meth:`Optimizer.get_state` /
:meth:`Optimizer.set_state` round-trip the moment buffers (Momentum's
velocity, Adam's first/second moments and per-slot step counts), and
:func:`flatten_state` / :func:`unflatten_state` convert between the
nested slot-keyed form and a flat ``str -> ndarray`` mapping suitable
for ``.npz`` archives.  Restoring a checkpointed model without this
state would silently restart Adam with cold moments and wrong bias
correction — training would continue, but not on the same trajectory.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Optimizer",
    "SGD",
    "Momentum",
    "Adam",
    "encode_slot_key",
    "decode_slot_key",
    "flatten_state",
    "unflatten_state",
]


def encode_slot_key(key) -> str:
    """Canonical string form of a slot key (``(0, "W")`` -> ``"0.W"``)."""
    if isinstance(key, tuple):
        return ".".join(str(part) for part in key)
    return str(key)


def decode_slot_key(text: str):
    """Inverse of :func:`encode_slot_key` for the ``(layer, name)``
    convention of :meth:`repro.nn.network.Sequential.param_groups`; a
    string with no integer prefix decodes to a 1-tuple."""
    head, sep, tail = text.partition(".")
    if sep:
        try:
            return (int(head), tail)
        except ValueError:
            return (head, tail)
    return (text,)


def flatten_state(state: dict) -> dict[str, np.ndarray]:
    """Flatten nested ``{slot_name: {key: value}}`` optimizer state into
    ``{"slot_name/encoded_key": ndarray}`` (scalars become 0-d arrays)."""
    flat: dict[str, np.ndarray] = {}
    for slot_name, slots in state.items():
        for key, value in slots.items():
            flat[f"{slot_name}/{encode_slot_key(key)}"] = np.asarray(value)
    return flat


def unflatten_state(flat: dict) -> dict:
    """Inverse of :func:`flatten_state`."""
    state: dict = {}
    for joint_key, value in flat.items():
        slot_name, sep, encoded = joint_key.partition("/")
        if not sep:
            raise ValueError(f"malformed optimizer state key {joint_key!r}")
        state.setdefault(slot_name, {})[decode_slot_key(encoded)] = (
            np.asarray(value)
        )
    return state


class Optimizer:
    """Base optimizer over a list of (params, grads) dict pairs."""

    def __init__(self, lr: float = 0.01, weight_decay: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.lr = lr
        self.weight_decay = weight_decay

    def step(self, param_groups) -> None:
        """Apply one update. ``param_groups`` is an iterable of
        ``(slot_key, param_array, grad_array)`` triples."""
        for key, param, grad in param_groups:
            if self.weight_decay and param.ndim > 1:
                grad = grad + self.weight_decay * param
            self._update(key, param, grad)

    def _update(self, key, param: np.ndarray, grad: np.ndarray) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # slot-state serialization
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """Copy of the per-slot moment state (empty when stateless)."""
        return {}

    def set_state(self, state: dict) -> None:
        """Restore state captured by :meth:`get_state`."""
        if state:
            raise ValueError(
                f"{type(self).__name__} is stateless but got state slots "
                f"{sorted(state)}"
            )


class SGD(Optimizer):
    """Vanilla stochastic gradient descent."""

    def _update(self, key, param: np.ndarray, grad: np.ndarray) -> None:
        param -= self.lr * grad


class Momentum(Optimizer):
    """SGD with classical momentum."""

    def __init__(
        self, lr: float = 0.01, momentum: float = 0.9, weight_decay: float = 0.0
    ) -> None:
        super().__init__(lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: dict = {}

    def _update(self, key, param: np.ndarray, grad: np.ndarray) -> None:
        v = self._velocity.get(key)
        if v is None:
            v = np.zeros_like(param)
        v = self.momentum * v - self.lr * grad
        self._velocity[key] = v
        param += v

    def get_state(self) -> dict:
        return {"velocity": {k: v.copy() for k, v in self._velocity.items()}}

    def set_state(self, state: dict) -> None:
        extra = set(state) - {"velocity"}
        if extra:
            raise ValueError(f"unknown Momentum state slots {sorted(extra)}")
        self._velocity = {
            k: np.array(v, dtype=np.float64)
            for k, v in state.get("velocity", {}).items()
        }


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(lr, weight_decay)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict = {}
        self._v: dict = {}
        self._t: dict = {}

    def _update(self, key, param: np.ndarray, grad: np.ndarray) -> None:
        m = self._m.get(key)
        if m is None:
            m = np.zeros_like(param)
            self._v[key] = np.zeros_like(param)
            self._t[key] = 0
        v = self._v[key]
        self._t[key] += 1
        t = self._t[key]

        m = self.beta1 * m + (1 - self.beta1) * grad
        v = self.beta2 * v + (1 - self.beta2) * grad * grad
        self._m[key] = m
        self._v[key] = v

        m_hat = m / (1 - self.beta1**t)
        v_hat = v / (1 - self.beta2**t)
        param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def get_state(self) -> dict:
        return {
            "m": {k: v.copy() for k, v in self._m.items()},
            "v": {k: v.copy() for k, v in self._v.items()},
            "t": dict(self._t),
        }

    def set_state(self, state: dict) -> None:
        extra = set(state) - {"m", "v", "t"}
        if extra:
            raise ValueError(f"unknown Adam state slots {sorted(extra)}")
        m = state.get("m", {})
        v = state.get("v", {})
        t = state.get("t", {})
        if not (set(m) == set(v) == set(t)):
            raise ValueError(
                "inconsistent Adam state: m/v/t slot keys differ"
            )
        self._m = {k: np.array(x, dtype=np.float64) for k, x in m.items()}
        self._v = {k: np.array(x, dtype=np.float64) for k, x in v.items()}
        self._t = {k: int(x) for k, x in t.items()}
