"""Numerical gradient checking used by the test suite.

Central differences on a handful of randomly chosen coordinates keep the
check cheap while still catching systematically wrong backward passes.
"""

from __future__ import annotations

import numpy as np

from .layers import Layer

__all__ = ["numeric_gradient", "check_layer_gradients"]


def numeric_gradient(fn, x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of scalar ``fn`` with respect to ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        plus = fn()
        x[idx] = orig - eps
        minus = fn()
        x[idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def check_layer_gradients(
    layer: Layer,
    x: np.ndarray,
    rng: np.random.Generator,
    eps: float = 1e-5,
    atol: float = 1e-6,
    rtol: float = 1e-4,
) -> None:
    """Assert analytic gradients of ``layer`` match numerical ones.

    Uses the scalar objective ``sum(forward(x) * r)`` with a fixed random
    ``r`` so every output coordinate contributes to the check.

    Raises :class:`AssertionError` with a diagnostic message on mismatch.
    """
    x = x.astype(np.float64)
    out = layer.forward(x, train=True)
    r = rng.normal(size=out.shape)

    def objective() -> float:
        return float((layer.forward(x, train=True) * r).sum())

    # analytic input gradient (re-run forward so caches match r's shape)
    layer.forward(x, train=True)
    grad_x = layer.backward(r.copy())
    analytic = {"__input__": grad_x}
    analytic.update({name: g.copy() for name, g in layer.grads().items()})

    num_x = numeric_gradient(objective, x, eps=eps)
    _assert_close("input", analytic["__input__"], num_x, atol, rtol)

    for name, param in layer.params().items():
        num_p = numeric_gradient(objective, param, eps=eps)
        # numeric perturbation invalidated caches; restore analytic state
        layer.forward(x, train=True)
        layer.backward(r.copy())
        _assert_close(name, layer.grads()[name], num_p, atol, rtol)


def _assert_close(
    name: str, analytic: np.ndarray, numeric: np.ndarray, atol: float, rtol: float
) -> None:
    diff = np.abs(analytic - numeric)
    tol = atol + rtol * np.abs(numeric)
    if not np.all(diff <= tol):
        worst = float(diff.max())
        raise AssertionError(
            f"gradient mismatch for {name}: max abs diff {worst:.3e} "
            f"(atol={atol}, rtol={rtol})"
        )
