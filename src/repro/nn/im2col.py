"""im2col / col2im transformations for fast convolution on CPU.

Convolution is implemented as one large matrix multiplication: the input
tensor is unfolded so every receptive field becomes a row (``im2col``), the
kernel bank becomes a matrix, and the product yields all output pixels at
once.  ``col2im`` is the exact adjoint used during backpropagation.

All tensors use the NCHW layout: ``(batch, channels, height, width)``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["conv_output_size", "im2col", "col2im"]


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution along one axis.

    Raises :class:`ValueError` when the configuration produces a
    non-positive or non-integral output extent.
    """
    if kernel <= 0 or stride <= 0:
        raise ValueError(f"kernel and stride must be positive, got {kernel}, {stride}")
    if pad < 0:
        raise ValueError(f"pad must be non-negative, got {pad}")
    span = size + 2 * pad - kernel
    if span < 0:
        raise ValueError(
            f"kernel {kernel} larger than padded input {size + 2 * pad}"
        )
    if span % stride != 0:
        raise ValueError(
            f"convolution does not tile: size={size} kernel={kernel} "
            f"stride={stride} pad={pad}"
        )
    return span // stride + 1


def im2col(
    images: np.ndarray, kernel_h: int, kernel_w: int, stride: int = 1, pad: int = 0
) -> np.ndarray:
    """Unfold ``images`` (N, C, H, W) into a 2-D matrix of receptive fields.

    Returns an array of shape ``(N * out_h * out_w, C * kernel_h * kernel_w)``
    where each row is one flattened receptive field.
    """
    n, c, h, w = images.shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)

    if pad > 0:
        images = np.pad(
            images, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant"
        )

    cols = np.empty((n, c, kernel_h, kernel_w, out_h, out_w), dtype=images.dtype)
    for ky in range(kernel_h):
        y_max = ky + stride * out_h
        for kx in range(kernel_w):
            x_max = kx + stride * out_w
            cols[:, :, ky, kx, :, :] = images[:, :, ky:y_max:stride, kx:x_max:stride]

    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, -1)


def col2im(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: fold column matrix back, summing overlaps."""
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)

    cols = cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w)
    cols = cols.transpose(0, 3, 4, 5, 1, 2)

    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for ky in range(kernel_h):
        y_max = ky + stride * out_h
        for kx in range(kernel_w):
            x_max = kx + stride * out_w
            padded[:, :, ky:y_max:stride, kx:x_max:stride] += cols[:, :, ky, kx, :, :]

    if pad > 0:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded
