"""im2col / col2im transformations for fast convolution on CPU.

Convolution is implemented as one large matrix multiplication: the input
tensor is unfolded so every receptive field becomes a row (``im2col``), the
kernel bank becomes a matrix, and the product yields all output pixels at
once.  ``col2im`` is the exact adjoint used during backpropagation.

``im2col`` gathers through a single strided-view copy (one pass over the
patch tensor instead of the seed's per-kernel-offset loop plus a transpose
copy) and can route its padded-input and column scratch through a
:class:`~repro.nn.runtime.WorkspaceArena` so repeated same-shape batches
reuse one allocation.  Values and row layout are bit-identical to the seed
kernel either way.

All tensors use the NCHW layout: ``(batch, channels, height, width)``.
"""

from __future__ import annotations

import numpy as np

from .runtime import ComputeRuntime

__all__ = ["conv_output_size", "im2col", "im2col_nhwc", "col2im"]


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution along one axis.

    Raises :class:`ValueError` when the configuration produces a
    non-positive or non-integral output extent.
    """
    if kernel <= 0 or stride <= 0:
        raise ValueError(f"kernel and stride must be positive, got {kernel}, {stride}")
    if pad < 0:
        raise ValueError(f"pad must be non-negative, got {pad}")
    span = size + 2 * pad - kernel
    if span < 0:
        raise ValueError(
            f"kernel {kernel} larger than padded input {size + 2 * pad}"
        )
    if span % stride != 0:
        raise ValueError(
            f"convolution does not tile: size={size} kernel={kernel} "
            f"stride={stride} pad={pad}"
        )
    return span // stride + 1


def _patch_view(
    padded: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Zero-copy ``(N, OH, OW, C, KH, KW)`` view of all receptive fields."""
    n, c = padded.shape[:2]
    sn, sc, sh, sw = padded.strides
    shape = (n, out_h, out_w, c, kernel_h, kernel_w)
    strides = (sn, sh * stride, sw * stride, sc, sh, sw)
    return np.lib.stride_tricks.as_strided(padded, shape=shape, strides=strides)


def im2col(
    images: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    pad: int = 0,
    runtime: ComputeRuntime | None = None,
    key=None,
) -> np.ndarray:
    """Unfold ``images`` (N, C, H, W) into a 2-D matrix of receptive fields.

    Returns an array of shape ``(N * out_h * out_w, C * kernel_h * kernel_w)``
    where each row is one flattened receptive field.

    With both ``runtime`` and ``key``, the padded input and the returned
    column matrix live in the runtime's workspace arena under ``key`` —
    the caller must treat the result as scratch that the next same-key
    call overwrites.  Without a key the result is a fresh allocation.
    """
    n, c, h, w = images.shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)
    pooled = runtime is not None and key is not None

    if pad > 0:
        if pooled:
            # borders are zeroed once at creation and never written again:
            # every call overwrites exactly the interior
            padded = runtime.buffer(
                (key, "pad"),
                (n, c, h + 2 * pad, w + 2 * pad),
                images.dtype,
                zero_on_create=True,
            )
            padded[:, :, pad:-pad, pad:-pad] = images
        else:
            padded = np.pad(
                images, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant"
            )
    else:
        padded = images

    patches = _patch_view(padded, kernel_h, kernel_w, stride, out_h, out_w)
    rows = n * out_h * out_w
    feat = c * kernel_h * kernel_w
    if pooled:
        cols = runtime.buffer((key, "cols"), (rows, feat), images.dtype)
    else:
        cols = np.empty((rows, feat), dtype=images.dtype)
    # one gather copy: (N, OH, OW, C, KH, KW) is exactly the row-major
    # layout of the (rows, feat) column matrix
    cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w)[...] = patches
    return cols


def im2col_nhwc(
    images: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    pad: int,
    runtime: ComputeRuntime,
    key,
) -> np.ndarray:
    """Unfold into columns ordered ``(KH, KW, C)`` via an NHWC scratch.

    The channels-last scratch keeps each gathered chunk ``C`` elements
    contiguous instead of the NCHW view's ``KW``-element slivers, which
    makes the gather several times faster on the small spatial extents
    of the DCT tensors.  The column order differs from :func:`im2col`
    (``(C, KH, KW)``), so the kernel matrix must be permuted to match —
    the summation order of the convolution gemm changes, which is why
    this path serves only the float32 fast policy, never the bit-exact
    float64 kernels.  Always arena-pooled: the result is scratch that
    the next same-key call overwrites.
    """
    n, c, h, w = images.shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)

    # borders are zeroed once at creation and never written again:
    # every call overwrites exactly the interior
    padded = runtime.buffer(
        (key, "pad"),
        (n, h + 2 * pad, w + 2 * pad, c),
        images.dtype,
        zero_on_create=True,
    )
    # a no-op-layout copy when ``images`` is an NCHW view over NHWC
    # memory, i.e. the output of the previous fast-path layer
    padded[:, pad : pad + h, pad : pad + w, :] = images.transpose(0, 2, 3, 1)

    sn, sh, sw, sc = padded.strides
    patches = np.lib.stride_tricks.as_strided(
        padded,
        shape=(n, out_h, out_w, kernel_h, kernel_w, c),
        strides=(sn, sh * stride, sw * stride, sh, sw, sc),
    )
    rows = n * out_h * out_w
    feat = kernel_h * kernel_w * c
    cols = runtime.buffer((key, "cols"), (rows, feat), images.dtype)
    cols.reshape(n, out_h, out_w, kernel_h, kernel_w, c)[...] = patches
    return cols


def col2im(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: fold column matrix back, summing overlaps."""
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, pad)
    out_w = conv_output_size(w, kernel_w, stride, pad)

    cols = cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w)
    cols = cols.transpose(0, 3, 4, 5, 1, 2)

    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for ky in range(kernel_h):
        y_max = ky + stride * out_h
        for kx in range(kernel_w):
            x_max = kx + stride * out_w
            padded[:, :, ky:y_max:stride, kx:x_max:stride] += cols[:, :, ky, kx, :, :]

    if pad > 0:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded
