"""Sequential network container.

A :class:`Sequential` chains layers, drives forward/backward passes, feeds
optimizers, and supports tapping intermediate activations — the active
learning diversity metric (Eq. (7)) needs the penultimate fully-connected
features, not the logits.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..analysis.contracts import contract
from .layers import Conv2D, Dense, Layer, ReLU
from .runtime import ComputeRuntime, get_runtime

__all__ = ["Sequential"]


class Sequential:
    """A plain feed-forward stack of :class:`~repro.nn.layers.Layer`.

    The forward pass fuses each ``Conv2D``/``Dense`` layer with a
    directly following ``ReLU`` into one kernel (an in-place rectify on
    the matmul output — bit-identical to the separate pass, see
    :meth:`~repro.nn.layers.ReLU.accept_fused`), unless a tap requests
    the pre-activation.  Workspace buffers and the compute dtype come
    from ``self.runtime`` (the owning classifier's) or the process
    default.
    """

    def __init__(
        self, layers: Sequence[Layer], runtime: ComputeRuntime | None = None
    ) -> None:
        if not layers:
            raise ValueError("Sequential requires at least one layer")
        self.layers: list[Layer] = list(layers)
        #: compute runtime used by forward passes (None → process default)
        self.runtime = runtime

    # ------------------------------------------------------------------
    # forward / backward
    # ------------------------------------------------------------------
    def _resolve_runtime(self) -> ComputeRuntime:
        return self.runtime if self.runtime is not None else get_runtime()

    def forward(
        self,
        x: np.ndarray,
        train: bool = False,
        taps: Sequence[int] | None = None,
    ) -> np.ndarray | tuple[np.ndarray, dict[int, np.ndarray]]:
        """Full forward pass, optionally tapping intermediate activations.

        Without ``taps`` the final output is returned as before.  With
        ``taps`` (layer indices, negative ok) the pass additionally
        records the output of each requested layer and returns
        ``(output, {tap: activation})`` — one sweep serves both the
        logits and any embedding features, instead of one pass per tap.
        """
        rt = self._resolve_runtime()
        wanted: dict[int, list[int]] = {}
        if taps is not None:
            for tap in taps:
                wanted.setdefault(self._normalize_index(tap), []).append(tap)
        tapped: dict[int, np.ndarray] = {}
        n_layers = len(self.layers)
        i = 0
        while i < n_layers:
            layer = self.layers[i]
            fused = (
                i + 1 < n_layers
                and type(self.layers[i + 1]) is ReLU
                and isinstance(layer, (Conv2D, Dense))
                and i not in wanted  # a tap wants the pre-activation
            )
            if fused:
                x = layer.forward(x, train=train, runtime=rt, fuse_relu=True)
                self.layers[i + 1].accept_fused(x, train=train)
                for tap in wanted.get(i + 1, ()):
                    tapped[tap] = x
                i += 2
                continue
            if isinstance(layer, (Conv2D, Dense)):
                x = layer.forward(x, train=train, runtime=rt)
            else:
                x = layer.forward(x, train=train)
            for tap in wanted.get(i, ()):
                tapped[tap] = x
            i += 1
        if taps is None:
            return x
        return x, tapped

    def _normalize_index(self, layer_index: int) -> int:
        n = len(self.layers)
        if not -n <= layer_index < n:
            raise IndexError(
                f"layer index {layer_index} out of range for {n} layers"
            )
        return layer_index % n

    def forward_to(self, x: np.ndarray, layer_index: int) -> np.ndarray:
        """Run inference up to and including ``layer_index`` (negative ok).

        Used to extract embedding features from an intermediate layer.
        """
        stop = self._normalize_index(layer_index)
        for i, layer in enumerate(self.layers):
            x = layer.forward(x, train=False)
            if i == stop:
                return x
        raise AssertionError("unreachable")  # pragma: no cover

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def __call__(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        return self.forward(x, train=train)

    # ------------------------------------------------------------------
    # parameters
    # ------------------------------------------------------------------
    def param_groups(self) -> Iterator[tuple[tuple[int, str], np.ndarray, np.ndarray]]:
        """Yield ``(slot_key, param, grad)`` triples for optimizers."""
        for i, layer in enumerate(self.layers):
            params = layer.params()
            grads = layer.grads()
            for name, param in params.items():
                yield (i, name), param, grads[name]

    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(p.size for _, p, _ in self.param_groups())

    def weights_spec(self) -> dict[str, tuple[int, ...]]:
        """``{weight key: shape}`` for every parameter and buffer —
        the schema a :meth:`set_weights` payload must satisfy (used in
        checkpoint-mismatch diagnostics)."""
        spec: dict[str, tuple[int, ...]] = {}
        for i, layer in enumerate(self.layers):
            for name, param in layer.params().items():
                spec[f"{i}.{name}"] = tuple(param.shape)
            for name, buf in layer.state().items():
                spec[f"{i}.state.{name}"] = tuple(buf.shape)
        return spec

    def get_weights(self) -> dict[str, np.ndarray]:
        """Copy all parameters and buffers into a flat dict."""
        out: dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            for name, param in layer.params().items():
                out[f"{i}.{name}"] = param.copy()
            for name, buf in layer.state().items():
                out[f"{i}.state.{name}"] = buf.copy()
        return out

    def set_weights(self, weights: dict[str, np.ndarray]) -> None:
        """Load parameters and buffers from :meth:`get_weights` output."""
        seen = set()
        for i, layer in enumerate(self.layers):
            for name, param in layer.params().items():
                key = f"{i}.{name}"
                if key not in weights:
                    raise KeyError(f"missing weight {key}")
                value = np.asarray(weights[key])
                if value.shape != param.shape:
                    raise ValueError(
                        f"shape mismatch for {key}: {value.shape} vs {param.shape}"
                    )
                param[...] = value
                seen.add(key)
            for name in layer.state():
                key = f"{i}.state.{name}"
                if key not in weights:
                    raise KeyError(f"missing buffer {key}")
                layer.state()[name][...] = np.asarray(weights[key])
                seen.add(key)
        extra = set(weights) - seen
        if extra:
            raise KeyError(f"unused weights: {sorted(extra)}")

    # ------------------------------------------------------------------
    # inference helpers
    # ------------------------------------------------------------------
    @contract(x="f8[N,...]|f4[N,...]", returns="f8[N,K]|f4[N,K]")
    def predict_logits(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Batched inference returning raw logits."""
        outputs = []
        for start in range(0, x.shape[0], batch_size):
            outputs.append(self.forward(x[start : start + batch_size], train=False))
        return np.concatenate(outputs, axis=0)

    def save(self, path) -> None:
        """Serialize all weights and buffers to an ``.npz`` archive."""
        np.savez_compressed(path, **self.get_weights())

    def load(self, path) -> None:
        """Restore weights saved by :meth:`save` into this architecture."""
        with np.load(path) as archive:
            self.set_weights({k: archive[k] for k in archive.files})

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential([{inner}])"
