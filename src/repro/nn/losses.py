"""Loss functions and numerically stable softmax utilities.

The softmax here is the *uncalibrated* training softmax (Eq. (4) of the
paper).  The temperature-scaled variant (Eq. (5)) lives in
:mod:`repro.calibration.temperature`, since calibration is a post-processing
step that never feeds back into training gradients.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "softmax",
    "log_softmax",
    "SoftmaxCrossEntropy",
]


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis`` (Eq. (4))."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


class SoftmaxCrossEntropy:
    """Softmax cross-entropy with optional per-class weights.

    Hotspot datasets are heavily imbalanced (Table I: ICCAD12 has a 1:43
    hotspot-to-non-hotspot ratio), so the loss supports class weighting to
    keep the minority class from being ignored during training.
    """

    def __init__(self, class_weights: np.ndarray | None = None) -> None:
        self.class_weights = (
            np.asarray(class_weights, dtype=np.float64)
            if class_weights is not None
            else None
        )
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        """Mean (weighted) cross-entropy of integer ``labels``."""
        # training is float64-only: the loss is the root of the backward
        # chain, so upcast here keeps every gradient f8 even if a caller
        # hands in fast-path (float32) logits
        logits = np.asarray(logits, dtype=np.float64)
        labels = np.asarray(labels)
        if logits.ndim != 2:
            raise ValueError(f"expected (N, C) logits, got {logits.shape}")
        if labels.shape != (logits.shape[0],):
            raise ValueError(
                f"labels shape {labels.shape} does not match batch {logits.shape[0]}"
            )
        n, c = logits.shape
        if labels.min() < 0 or labels.max() >= c:
            raise ValueError(f"labels out of range for {c} classes")

        log_p = log_softmax(logits)
        picked = log_p[np.arange(n), labels]
        if self.class_weights is not None:
            weights = self.class_weights[labels]
        else:
            weights = np.ones(n, dtype=np.float64)

        self._cache = (softmax(logits), labels, weights)
        return float(-(weights * picked).sum() / weights.sum())

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss with respect to the logits."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probs, labels, weights = self._cache
        n, _ = probs.shape
        grad = probs.copy()
        grad[np.arange(n), labels] -= 1.0
        grad *= weights[:, None]
        return grad / weights.sum()

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)
