"""Shared compute core: precision policy, workspace arena, runtime handle.

Every numeric hot path (im2col convolution, fused conv+ReLU, basis-matmul
DCT, scaler transforms) routes its scratch memory and compute dtype through
this module:

* :class:`PrecisionPolicy` selects between the repo's default bit-exact
  float64 kernels (``"exact"``) and a float32 fast path (``"fast"``).
  The fast path is an opt-in *inference* accelerator: training, feature
  caches and checkpoints always stay float64, and every public boundary
  (classifier logits/embeddings, encoded feature tensors) casts back up
  so downstream contracts keep seeing ``f8`` arrays.
* :class:`WorkspaceArena` is a thread-local, shape-keyed buffer pool:
  kernels that need the same scratch shape on every batch (padded inputs,
  im2col column matrices, downcast weight copies) reuse one allocation
  instead of churning the allocator per call.
* :class:`ComputeRuntime` bundles one policy with one arena; layers and
  networks resolve the runtime per call (explicit argument → owning
  network → process default).

This is the single sanctioned home of float32 in ``repro.nn`` /
``repro.features`` — reprolint rule R002 allowlists exactly this file, so
a stray downcast anywhere else in the kernel packages still fails lint.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

import numpy as np

from ..analysis.interleave import trace_point

__all__ = [
    "PRECISION_MODES",
    "PrecisionPolicy",
    "WorkspaceArena",
    "ComputeRuntime",
    "get_runtime",
    "set_runtime",
    "using_runtime",
]

#: supported precision modes: bit-exact float64 vs float32 fast compute
PRECISION_MODES = ("exact", "fast")


class PrecisionPolicy:
    """Chooses the compute dtype of the numeric kernels.

    ``"exact"`` (the default) keeps every kernel float64 and is
    bit-identical to the seed implementation — checkpoints, resume and
    the data plane's ``array_equal`` invariants are untouched.
    ``"fast"`` computes in float32 inside the kernels and casts back to
    float64 at the public boundaries; outputs agree with the exact path
    to float32 rounding (~1e-6 relative), which the parity tests and the
    Fig. 2 ECE bench bound explicitly.
    """

    __slots__ = ("mode",)

    def __init__(self, mode: str = "exact") -> None:
        if mode not in PRECISION_MODES:
            raise ValueError(
                f"precision mode must be one of {PRECISION_MODES}, "
                f"got {mode!r}"
            )
        self.mode = mode

    @property
    def is_exact(self) -> bool:
        return self.mode == "exact"

    @property
    def compute_dtype(self) -> np.dtype:
        """Dtype the kernels compute in (float64 exact, float32 fast)."""
        if self.mode == "exact":
            return np.dtype(np.float64)
        return np.dtype(np.float32)

    def compute(self, x: np.ndarray) -> np.ndarray:
        """Cast ``x`` into the compute dtype (no copy when already there)."""
        return np.asarray(x, dtype=self.compute_dtype)

    def boundary(self, x: np.ndarray) -> np.ndarray:
        """Cast a kernel result back to the public float64 boundary."""
        return np.asarray(x, dtype=np.float64)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrecisionPolicy) and other.mode == self.mode

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.mode))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PrecisionPolicy({self.mode!r})"


class WorkspaceArena:
    """Thread-local pool of reusable scratch buffers, keyed by
    ``(key, shape, dtype)``.

    Buffers are owned by the arena and may be overwritten by the *next*
    request for the same slot — callers must treat them as scratch that
    is dead once the kernel returns (kernel outputs that escape to the
    caller are always fresh allocations).  Each OS thread sees a private
    buffer set, so pooled data-plane workers never alias each other's
    scratch.
    """

    def __init__(self) -> None:
        self._local = threading.local()

    def _state(self) -> dict:
        state = getattr(self._local, "state", None)
        if state is None:
            state = {"buffers": {}, "hits": 0, "misses": 0}
            self._local.state = state
        return state

    def buffer(
        self,
        key,
        shape: tuple[int, ...],
        dtype,
        zero_on_create: bool = False,
    ) -> np.ndarray:
        """Return the reusable buffer for ``(key, shape, dtype)``.

        ``zero_on_create`` zero-fills the buffer only on first
        allocation — callers relying on it must never write the region
        they expect to stay zero (e.g. pad borders around an interior
        they fully overwrite each call).
        """
        state = self._state()
        trace_point("arena.buffer")
        slot = (key, tuple(shape), np.dtype(dtype))
        buf = state["buffers"].get(slot)
        if buf is None:
            if zero_on_create:
                buf = np.zeros(slot[1], dtype=slot[2])
            else:
                buf = np.empty(slot[1], dtype=slot[2])
            state["buffers"][slot] = buf
            state["misses"] += 1
        else:
            state["hits"] += 1
        return buf

    def stats(self) -> dict:
        """Hit/miss counters and pool size for the *calling thread*."""
        state = self._state()
        nbytes = sum(b.nbytes for b in state["buffers"].values())
        return {
            "hits": state["hits"],
            "misses": state["misses"],
            "buffers": len(state["buffers"]),
            "bytes": nbytes,
        }

    def clear(self) -> None:
        """Drop the calling thread's buffers (counters reset too)."""
        self._local.state = {"buffers": {}, "hits": 0, "misses": 0}


class ComputeRuntime:
    """One precision policy plus one workspace arena.

    The process-wide default runtime (``get_runtime()``) is exact-mode;
    a :class:`~repro.model.classifier.HotspotClassifier` owns its own
    runtime so per-model precision never leaks across models.
    """

    def __init__(
        self,
        policy: PrecisionPolicy | None = None,
        arena: WorkspaceArena | None = None,
    ) -> None:
        self.policy = policy if policy is not None else PrecisionPolicy()
        self.arena = arena if arena is not None else WorkspaceArena()

    def buffer(self, key, shape, dtype, zero_on_create: bool = False):
        """Shorthand for ``runtime.arena.buffer(...)``."""
        return self.arena.buffer(key, shape, dtype, zero_on_create)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ComputeRuntime(policy={self.policy!r})"


_DEFAULT_RUNTIME = ComputeRuntime()
_ACTIVE = threading.local()


def get_runtime() -> ComputeRuntime:
    """The runtime kernels use when no explicit one is supplied."""
    override = getattr(_ACTIVE, "runtime", None)
    return override if override is not None else _DEFAULT_RUNTIME


def set_runtime(runtime: ComputeRuntime | None) -> ComputeRuntime | None:
    """Set (or clear, with ``None``) this thread's runtime override;
    returns the previous override."""
    previous = getattr(_ACTIVE, "runtime", None)
    _ACTIVE.runtime = runtime
    return previous


@contextmanager
def using_runtime(runtime: ComputeRuntime) -> Iterator[ComputeRuntime]:
    """Scoped :func:`set_runtime` — restores the previous override."""
    previous = set_runtime(runtime)
    try:
        yield runtime
    finally:
        set_runtime(previous)
