"""Neural-network layers with explicit forward/backward passes.

Each layer caches whatever it needs during ``forward`` and consumes the
cache in ``backward``.  Parameters and their gradients are exposed through
``params()`` / ``grads()`` so optimizers can update them in place.

Layers distinguish training and inference through the ``train`` flag on
``forward`` (Dropout and BatchNorm change behaviour; the rest ignore it).
"""

from __future__ import annotations

import itertools

import numpy as np

from ..analysis.contracts import contract
from .im2col import col2im, conv_output_size, im2col, im2col_nhwc
from .initializers import get_initializer
from .runtime import ComputeRuntime, get_runtime

#: unique workspace-key counter shared by all layers — every layer gets a
#: distinct arena slot so one layer's scratch never clobbers another's
_WS_IDS = itertools.count()

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAveragePool2D",
    "Flatten",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Dropout",
    "BatchNorm",
]


def _params_as(layer, dtype, runtime: ComputeRuntime | None):
    """``(weight, bias)`` of ``layer`` in the compute dtype.

    Float64 (the parameters' own dtype) passes the live arrays through
    untouched; a downcast compute dtype fills arena-pooled copies so the
    per-batch cast reuses one buffer.  Weights move every optimizer step,
    so the copies are refreshed on every call.
    """
    weight, bias = layer.weight, layer.bias
    if weight.dtype == dtype:
        return weight, bias
    rt = runtime if runtime is not None else get_runtime()
    wbuf = rt.buffer(("param", layer._ws_id, "w"), weight.shape, dtype)
    wbuf[...] = weight
    bbuf = rt.buffer(("param", layer._ws_id, "b"), bias.shape, dtype)
    bbuf[...] = bias
    return wbuf, bbuf


class Layer:
    """Base class: stateless identity layer."""

    #: human-readable layer kind used in reprs and serialization
    kind = "identity"

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        del train
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out

    def params(self) -> dict[str, np.ndarray]:
        """Trainable parameters by name (possibly empty)."""
        return {}

    def grads(self) -> dict[str, np.ndarray]:
        """Gradients matching :meth:`params` keys (valid after backward)."""
        return {}

    def state(self) -> dict[str, np.ndarray]:
        """Non-trainable buffers that must survive save/load."""
        return {}

    def output_dim(self, input_dim):
        """Propagate a symbolic input shape (without batch axis)."""
        return input_dim

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class Dense(Layer):
    """Fully-connected layer ``y = x W + b``."""

    kind = "dense"

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
        init: str = "he_normal",
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Dense dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = get_initializer(init)((in_features, out_features), rng)
        self.bias = np.zeros(out_features, dtype=np.float64)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._x: np.ndarray | None = None
        self._ws_id = next(_WS_IDS)

    @contract(x="f8[N,F]|f4[N,F]", returns="f8[N,K]|f4[N,K]")
    def forward(
        self,
        x: np.ndarray,
        train: bool = False,
        runtime: ComputeRuntime | None = None,
        fuse_relu: bool = False,
    ) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense expected (N, {self.in_features}), got {x.shape}"
            )
        self._x = x if train else None
        weight, bias = _params_as(self, x.dtype, runtime)
        out = x @ weight
        out += bias
        if fuse_relu:
            np.maximum(out, 0, out=out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called without a training forward pass")
        self.grad_weight = self._x.T @ grad_out
        self.grad_bias = grad_out.sum(axis=0)
        return grad_out @ self.weight.T

    def params(self) -> dict[str, np.ndarray]:
        return {"weight": self.weight, "bias": self.bias}

    def grads(self) -> dict[str, np.ndarray]:
        return {"weight": self.grad_weight, "bias": self.grad_bias}

    def output_dim(self, input_dim):
        return (self.out_features,)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dense({self.in_features}, {self.out_features})"


class Conv2D(Layer):
    """2-D convolution over NCHW tensors, implemented with im2col."""

    kind = "conv2d"

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        pad: int = 0,
        rng: np.random.Generator | None = None,
        init: str = "he_normal",
    ) -> None:
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("Conv2D channel counts must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.pad = pad
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = get_initializer(init)(shape, rng)
        self.bias = np.zeros(out_channels, dtype=np.float64)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._cols: np.ndarray | None = None
        self._input_shape: tuple[int, int, int, int] | None = None
        self._ws_id = next(_WS_IDS)

    @contract(x="f8[N,C,H,W]|f4[N,C,H,W]", returns="f8[N,K,OH,OW]|f4[N,K,OH,OW]")
    def forward(
        self,
        x: np.ndarray,
        train: bool = False,
        runtime: ComputeRuntime | None = None,
        fuse_relu: bool = False,
    ) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2D expected (N, {self.in_channels}, H, W), got {x.shape}"
            )
        n, _, h, w = x.shape
        k, s, p = self.kernel_size, self.stride, self.pad
        out_h = conv_output_size(h, k, s, p)
        out_w = conv_output_size(w, k, s, p)
        rt = runtime if runtime is not None else get_runtime()

        # downcast inference rides the channels-last kernel: same values
        # to compute-dtype rounding, but a different gemm summation
        # order, so the bit-exact float64 path never takes it
        if not train and x.dtype != np.float64:
            return self._forward_fast_nhwc(
                x, rt, n, out_h, out_w, fuse_relu
            )

        # train and inference use distinct arena slots so a validation
        # forward between a training forward and its backward cannot
        # clobber the cached training columns
        cols = im2col(
            x, k, k, s, p,
            runtime=rt,
            key=("conv2d", self._ws_id, "train" if train else "infer", k, s, p),
        )
        weight, bias = _params_as(self, x.dtype, rt)
        flat_w = weight.reshape(self.out_channels, -1)
        out = cols @ flat_w.T
        out += bias
        if fuse_relu:
            np.maximum(out, 0, out=out)
        out = out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

        if train:
            self._cols = cols
            self._input_shape = x.shape
        else:
            self._cols = None
            self._input_shape = None
        return out

    def _forward_fast_nhwc(
        self,
        x: np.ndarray,
        rt: ComputeRuntime,
        n: int,
        out_h: int,
        out_w: int,
        fuse_relu: bool,
    ) -> np.ndarray:
        """Channels-last inference kernel for downcast compute dtypes."""
        k, s, p = self.kernel_size, self.stride, self.pad
        f = self.out_channels
        cols = im2col_nhwc(
            x, k, k, s, p,
            runtime=rt,
            key=("conv2d_nhwc", self._ws_id, k, s, p),
        )
        weight, bias = _params_as(self, x.dtype, rt)
        # kernel matrix permuted to the (KH, KW, C) column order
        wp = rt.buffer(
            ("param", self._ws_id, "w_nhwc"), (f, k * k * self.in_channels),
            x.dtype,
        )
        wp[...] = weight.transpose(0, 2, 3, 1).reshape(f, -1)
        out = cols @ wp.T
        out += bias
        if fuse_relu:
            np.maximum(out, 0, out=out)
        self._cols = None
        self._input_shape = None
        # NCHW view over NHWC memory — the next fast-path layer's
        # channels-last scratch write is then a contiguous copy
        return out.reshape(n, out_h, out_w, f).transpose(0, 3, 1, 2)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None or self._input_shape is None:
            raise RuntimeError("backward called without a training forward pass")
        k, s, p = self.kernel_size, self.stride, self.pad
        # (N, F, OH, OW) -> (N*OH*OW, F) matching the im2col row order
        grad_flat = grad_out.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
        self.grad_bias = grad_flat.sum(axis=0)
        self.grad_weight = (grad_flat.T @ self._cols).reshape(self.weight.shape)
        grad_cols = grad_flat @ self.weight.reshape(self.out_channels, -1)
        return col2im(grad_cols, self._input_shape, k, k, s, p)

    def params(self) -> dict[str, np.ndarray]:
        return {"weight": self.weight, "bias": self.bias}

    def grads(self) -> dict[str, np.ndarray]:
        return {"weight": self.grad_weight, "bias": self.grad_bias}

    def output_dim(self, input_dim):
        c, h, w = input_dim
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {c}")
        k, s, p = self.kernel_size, self.stride, self.pad
        return (
            self.out_channels,
            conv_output_size(h, k, s, p),
            conv_output_size(w, k, s, p),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Conv2D({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.pad})"
        )


class MaxPool2D(Layer):
    """Max pooling with square window; window must tile the input."""

    kind = "maxpool2d"

    def __init__(self, pool_size: int = 2, stride: int | None = None) -> None:
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.pool_size = pool_size
        self.stride = stride if stride is not None else pool_size
        self._argmax: np.ndarray | None = None
        self._input_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        k, s = self.pool_size, self.stride
        out_h = conv_output_size(h, k, s, 0)
        out_w = conv_output_size(w, k, s, 0)

        # Inference needs only the max values, not their positions: a
        # reshape-max avoids the im2col gather and the argmax sweep
        # entirely and picks bit-identical values (ties share the value).
        if not train and s == k and h % k == 0 and w % k == 0:
            xt = x.transpose(0, 2, 3, 1)
            if xt.flags.c_contiguous:
                # NCHW view over NHWC memory (fast-path conv output):
                # reduce channels-last so the reshape stays a view, and
                # hand the next layer NHWC memory again
                out = xt.reshape(n, out_h, k, out_w, k, c).max(axis=(2, 4))
                return out.transpose(0, 3, 1, 2)
            return x.reshape(n, c, out_h, k, out_w, k).max(axis=(3, 5))

        # Treat channels as independent images so im2col rows are per-channel
        cols = im2col(x.reshape(n * c, 1, h, w), k, k, s, 0)
        argmax = cols.argmax(axis=1)
        out = cols[np.arange(cols.shape[0]), argmax]
        out = out.reshape(n, c, out_h, out_w)

        if train:
            self._argmax = argmax
            self._cols_shape = cols.shape
            self._input_shape = x.shape
        else:
            self._argmax = None
            self._input_shape = None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._argmax is None or self._input_shape is None:
            raise RuntimeError("backward called without a training forward pass")
        n, c, h, w = self._input_shape
        k, s = self.pool_size, self.stride

        grad_cols = np.zeros(self._cols_shape, dtype=grad_out.dtype)
        grad_cols[np.arange(grad_cols.shape[0]), self._argmax] = grad_out.reshape(-1)
        grad = col2im(grad_cols, (n * c, 1, h, w), k, k, s, 0)
        return grad.reshape(n, c, h, w)

    def output_dim(self, input_dim):
        c, h, w = input_dim
        k, s = self.pool_size, self.stride
        return (c, conv_output_size(h, k, s, 0), conv_output_size(w, k, s, 0))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MaxPool2D({self.pool_size})"


class AvgPool2D(Layer):
    """Average pooling with a square window; window must tile the input."""

    kind = "avgpool2d"

    def __init__(self, pool_size: int = 2) -> None:
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.pool_size = pool_size
        self._input_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.pool_size
        if h % k or w % k:
            raise ValueError(
                f"pool size {k} does not tile input {h}x{w}"
            )
        if train:
            self._input_shape = x.shape
        return x.reshape(n, c, h // k, k, w // k, k).mean(axis=(3, 5))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called without a training forward pass")
        n, c, h, w = self._input_shape
        k = self.pool_size
        grad = grad_out[:, :, :, None, :, None] / float(k * k)
        grad = np.broadcast_to(grad, (n, c, h // k, k, w // k, k))
        return grad.reshape(n, c, h, w).copy()

    def output_dim(self, input_dim):
        c, h, w = input_dim
        k = self.pool_size
        return (c, h // k, w // k)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AvgPool2D({self.pool_size})"


class GlobalAveragePool2D(Layer):
    """Average each channel's spatial plane down to one value."""

    kind = "gap2d"

    def __init__(self) -> None:
        self._input_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if train:
            self._input_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called without a training forward pass")
        n, c, h, w = self._input_shape
        grad = grad_out[:, :, None, None] / float(h * w)
        return np.broadcast_to(grad, (n, c, h, w)).copy()

    def output_dim(self, input_dim):
        c, _, _ = input_dim
        return (c,)


class Flatten(Layer):
    """Collapse all non-batch axes into one."""

    kind = "flatten"

    def __init__(self) -> None:
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if train:
            self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called without a training forward pass")
        return grad_out.reshape(self._input_shape)

    def output_dim(self, input_dim):
        return (int(np.prod(input_dim)),)


class ReLU(Layer):
    kind = "relu"

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        mask = x > 0
        if train:
            self._mask = mask
        return np.where(mask, x, 0.0)

    def accept_fused(self, out: np.ndarray, train: bool = False) -> None:
        """Record backward state when an upstream Conv2D/Dense already
        applied this ReLU in its own kernel (``fuse_relu=True``).

        The mask recovered from the *rectified* output equals the mask
        of the pre-activation: ``max(x, 0) > 0`` iff ``x > 0``.
        """
        self._mask = (out > 0) if train else None

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called without a training forward pass")
        return grad_out * self._mask


class LeakyReLU(Layer):
    kind = "leaky_relu"

    def __init__(self, alpha: float = 0.01) -> None:
        self.alpha = alpha
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        mask = x > 0
        if train:
            self._mask = mask
        return np.where(mask, x, self.alpha * x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called without a training forward pass")
        return grad_out * np.where(self._mask, 1.0, self.alpha)


class Sigmoid(Layer):
    kind = "sigmoid"

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        out = np.empty_like(x, dtype=np.float64)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        expx = np.exp(x[~pos])
        out[~pos] = expx / (1.0 + expx)
        if train:
            self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called without a training forward pass")
        return grad_out * self._out * (1.0 - self._out)


class Tanh(Layer):
    kind = "tanh"

    def __init__(self) -> None:
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        out = np.tanh(x)
        if train:
            self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called without a training forward pass")
        return grad_out * (1.0 - self._out**2)


class Dropout(Layer):
    """Inverted dropout: identity at inference, scaled mask during training."""

    kind = "dropout"

    def __init__(self, rate: float, rng: np.random.Generator | None = None) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if not train or self.rate == 0.0:
            self._mask = None if not train else np.ones_like(x)
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called without a training forward pass")
        return grad_out * self._mask


class BatchNorm(Layer):
    """Batch normalization over the feature axis of 2-D inputs.

    For 4-D inputs the statistics are taken per channel over (N, H, W).
    """

    kind = "batchnorm"

    def __init__(self, num_features: int, momentum: float = 0.9, eps: float = 1e-5):
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = np.ones(num_features, dtype=np.float64)
        self.beta = np.zeros(num_features, dtype=np.float64)
        self.grad_gamma = np.zeros_like(self.gamma)
        self.grad_beta = np.zeros_like(self.beta)
        self.running_mean = np.zeros(num_features, dtype=np.float64)
        self.running_var = np.ones(num_features, dtype=np.float64)
        self._cache = None

    def _reshape_params(self, ndim: int) -> tuple[np.ndarray, np.ndarray]:
        if ndim == 4:
            return (
                self.gamma.reshape(1, -1, 1, 1),
                self.beta.reshape(1, -1, 1, 1),
            )
        return self.gamma, self.beta

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        axes = (0,) if x.ndim == 2 else (0, 2, 3)
        gamma, beta = self._reshape_params(x.ndim)
        if train:
            mean = x.mean(axis=axes, keepdims=True)
            var = x.var(axis=axes, keepdims=True)
            norm = (x - mean) / np.sqrt(var + self.eps)
            count = x.size // self.num_features
            unbiased = var * count / max(count - 1, 1)
            self.running_mean = (
                self.momentum * self.running_mean
                + (1 - self.momentum) * mean.reshape(-1)
            )
            self.running_var = (
                self.momentum * self.running_var
                + (1 - self.momentum) * unbiased.reshape(-1)
            )
            self._cache = (norm, var, axes, x.shape)
            return gamma * norm + beta
        shape = [1] * x.ndim
        shape[1 if x.ndim == 4 else -1] = self.num_features
        mean = self.running_mean.reshape(shape)
        var = self.running_var.reshape(shape)
        return gamma * (x - mean) / np.sqrt(var + self.eps) + beta

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called without a training forward pass")
        norm, var, axes, shape = self._cache
        gamma, _ = self._reshape_params(grad_out.ndim)
        m = float(np.prod([shape[a] for a in axes]))

        self.grad_gamma = (grad_out * norm).sum(axis=axes).reshape(-1)
        self.grad_beta = grad_out.sum(axis=axes).reshape(-1)

        grad_norm = grad_out * gamma
        inv_std = 1.0 / np.sqrt(var + self.eps)
        grad = (
            grad_norm
            - grad_norm.mean(axis=axes, keepdims=True)
            - norm * (grad_norm * norm).mean(axis=axes, keepdims=True)
        ) * inv_std
        return grad

    def params(self) -> dict[str, np.ndarray]:
        return {"gamma": self.gamma, "beta": self.beta}

    def grads(self) -> dict[str, np.ndarray]:
        return {"gamma": self.grad_gamma, "beta": self.grad_beta}

    def state(self) -> dict[str, np.ndarray]:
        return {"running_mean": self.running_mean, "running_var": self.running_var}
