"""Learning-rate schedules.

Schedulers mutate an optimizer's ``lr`` in place at epoch boundaries;
``step()`` advances the internal epoch counter and returns the new rate.
"""

from __future__ import annotations

import numpy as np

from .optim import Optimizer

__all__ = ["Scheduler", "StepDecay", "CosineAnnealing", "LinearWarmup"]


class Scheduler:
    """Base scheduler bound to one optimizer."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch; returns the learning rate now in effect."""
        self.epoch += 1
        lr = self._rate(self.epoch)
        if lr <= 0:
            raise ValueError(f"scheduler produced non-positive lr {lr}")
        self.optimizer.lr = lr
        return lr

    def _rate(self, epoch: int) -> float:
        raise NotImplementedError


class StepDecay(Scheduler):
    """Multiply the rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int = 10,
                 gamma: float = 0.5) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.step_size = step_size
        self.gamma = gamma

    def _rate(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineAnnealing(Scheduler):
    """Cosine decay from the base rate to ``min_lr`` over ``t_max``."""

    def __init__(self, optimizer: Optimizer, t_max: int,
                 min_lr: float = 1e-6) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError(f"t_max must be positive, got {t_max}")
        if min_lr <= 0:
            raise ValueError(f"min_lr must be positive, got {min_lr}")
        self.t_max = t_max
        self.min_lr = min_lr

    def _rate(self, epoch: int) -> float:
        progress = min(epoch, self.t_max) / self.t_max
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + np.cos(np.pi * progress)
        )


class LinearWarmup(Scheduler):
    """Ramp linearly from ``start_factor * base`` to the base rate over
    ``warmup_epochs``, then hold."""

    def __init__(self, optimizer: Optimizer, warmup_epochs: int = 5,
                 start_factor: float = 0.1) -> None:
        super().__init__(optimizer)
        if warmup_epochs <= 0:
            raise ValueError("warmup_epochs must be positive")
        if not 0.0 < start_factor <= 1.0:
            raise ValueError("start_factor must be in (0, 1]")
        self.warmup_epochs = warmup_epochs
        self.start_factor = start_factor

    def _rate(self, epoch: int) -> float:
        if epoch >= self.warmup_epochs:
            return self.base_lr
        frac = epoch / self.warmup_epochs
        return self.base_lr * (self.start_factor + (1 - self.start_factor) * frac)
