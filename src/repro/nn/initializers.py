"""Weight initialization schemes.

Every initializer takes an explicit :class:`numpy.random.Generator` so that
training runs are reproducible end to end; nothing in this package touches
numpy's global random state.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "normal_init",
    "xavier_uniform",
    "xavier_normal",
    "he_uniform",
    "he_normal",
    "zeros_init",
]


def _fan(shape: tuple[int, ...]) -> tuple[int, int]:
    """Fan-in / fan-out for dense ``(in, out)`` or conv ``(F, C, KH, KW)``."""
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def normal_init(
    shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.01
) -> np.ndarray:
    """Plain Gaussian init, the w ~ N(0, sigma) of Algorithm 2 line 3."""
    return rng.normal(0.0, std, size=shape).astype(np.float64)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, fan_out = _fan(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, fan_out = _fan(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(np.float64)


def he_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, _ = _fan(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He init, the default for ReLU networks in this package."""
    fan_in, _ = _fan(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float64)


def zeros_init(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    del rng  # signature kept uniform with the random initializers
    return np.zeros(shape, dtype=np.float64)


INITIALIZERS = {
    "normal": normal_init,
    "xavier_uniform": xavier_uniform,
    "xavier_normal": xavier_normal,
    "he_uniform": he_uniform,
    "he_normal": he_normal,
    "zeros": zeros_init,
}


def get_initializer(name: str):
    """Look up an initializer by name, raising with the known names on miss."""
    try:
        return INITIALIZERS[name]
    except KeyError:
        raise ValueError(
            f"unknown initializer {name!r}; known: {sorted(INITIALIZERS)}"
        ) from None
