"""Pure-numpy neural-network engine (substrate S1).

The paper trains its hotspot CNN with TensorFlow on a GPU; this package
provides the equivalent mathematical machinery — convolutional and dense
layers with exact backpropagation, losses, and optimizers — with no
dependency beyond numpy.  See DESIGN.md §2 for the substitution rationale.
"""

from .im2col import col2im, conv_output_size, im2col
from .initializers import get_initializer
from .layers import (
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAveragePool2D,
    Layer,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Tanh,
)
from .losses import SoftmaxCrossEntropy, log_softmax, softmax
from .network import Sequential
from .optim import SGD, Adam, Momentum, Optimizer
from .runtime import (
    PRECISION_MODES,
    ComputeRuntime,
    PrecisionPolicy,
    WorkspaceArena,
    get_runtime,
    set_runtime,
    using_runtime,
)
from .schedulers import CosineAnnealing, LinearWarmup, Scheduler, StepDecay

__all__ = [
    "im2col",
    "col2im",
    "conv_output_size",
    "get_initializer",
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAveragePool2D",
    "Flatten",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Dropout",
    "BatchNorm",
    "softmax",
    "log_softmax",
    "SoftmaxCrossEntropy",
    "Sequential",
    "Optimizer",
    "SGD",
    "Momentum",
    "Adam",
    "Scheduler",
    "StepDecay",
    "CosineAnnealing",
    "LinearWarmup",
    "PRECISION_MODES",
    "PrecisionPolicy",
    "WorkspaceArena",
    "ComputeRuntime",
    "get_runtime",
    "set_runtime",
    "using_runtime",
]
