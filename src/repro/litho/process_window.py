"""Process-window analysis.

A pattern's *process window* is the region of (dose, defocus) space in
which it prints within specification.  Hotspots are precisely the
patterns with small or empty windows, so the window area is a graded
severity measure that complements the binary hotspot verdict — useful
for ranking fixes and for generating graded benchmark labels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..layout.clip import Clip
from .simulator import LithoSimulator, ProcessCorner

__all__ = ["ProcessWindow", "analyze_process_window"]


@dataclass
class ProcessWindow:
    """Pass/fail map over a (dose, defocus) grid."""

    doses: np.ndarray          # (D,)
    defocus_nm: np.ndarray     # (F,)
    passes: np.ndarray         # (D, F) bool, True = prints clean

    @property
    def window_fraction(self) -> float:
        """Fraction of the sampled grid that prints clean (0..1)."""
        return float(self.passes.mean())

    @property
    def dose_latitude(self) -> float:
        """Widest contiguous passing dose range at best focus, as a
        fraction of the sampled dose span."""
        if not self.passes.any():
            return 0.0
        best_focus = int(self.passes.sum(axis=0).argmax())
        column = self.passes[:, best_focus]
        best = run = 0
        for ok in column:
            run = run + 1 if ok else 0
            best = max(best, run)
        span = len(self.doses)
        return best / span

    @property
    def depth_of_focus_nm(self) -> float:
        """Widest contiguous passing defocus range at nominal dose."""
        if not self.passes.any():
            return 0.0
        nominal = int(np.argmin(np.abs(self.doses - 1.0)))
        row = self.passes[nominal]
        if not row.any():
            return 0.0
        best = run = 0
        start = best_start = 0
        for i, ok in enumerate(row):
            if ok:
                if run == 0:
                    start = i
                run += 1
                if run > best:
                    best = run
                    best_start = start
            else:
                run = 0
        lo = self.defocus_nm[best_start]
        hi = self.defocus_nm[best_start + best - 1]
        return float(hi - lo)


def analyze_process_window(
    simulator: LithoSimulator,
    clip: Clip,
    dose_range: tuple[float, float] = (0.85, 1.15),
    dose_steps: int = 7,
    defocus_range_nm: tuple[float, float] = (0.0, 60.0),
    defocus_steps: int = 5,
) -> ProcessWindow:
    """Sample the (dose, defocus) grid and record where ``clip`` prints.

    Builds per-point single-corner simulators from the base simulator's
    optics/resist/defect settings, so the pass criterion is identical to
    the hotspot criterion at each grid point.
    """
    if dose_steps < 1 or defocus_steps < 1:
        raise ValueError("grid steps must be >= 1")
    doses = np.linspace(dose_range[0], dose_range[1], dose_steps)
    defocuses = np.linspace(
        defocus_range_nm[0], defocus_range_nm[1], defocus_steps
    )
    passes = np.zeros((dose_steps, defocus_steps), dtype=bool)
    for i, dose in enumerate(doses):
        for j, defocus in enumerate(defocuses):
            point = LithoSimulator(
                optical=simulator.optical,
                resist=simulator.resist,
                corners=(ProcessCorner(float(dose), float(defocus), "pw"),),
                grid=simulator.grid,
                epe_tolerance_px=simulator.epe_tolerance_px,
                morph_margin_px=simulator.morph_margin_px,
                min_defect_px=simulator.min_defect_px,
            )
            passes[i, j] = not point.is_hotspot(clip)
    return ProcessWindow(doses=doses, defocus_nm=defocuses, passes=passes)
