"""DRC-lite: geometric minimum-width / minimum-spacing checking.

Design-rule checking is the classic *geometric* pre-filter for
printability: rules catch gross violations cheaply, but lithographic
hotspots are by definition patterns that pass DRC yet fail to print —
which is why learning-based detection exists.  This module provides a
raster-based width/spacing scanner used (a) as a cheap screening
baseline and (b) in tests to confirm that generated hotspots are
DRC-clean at the drawn rules, i.e. genuinely lithographic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from ..layout.clip import Clip

__all__ = ["DRCRules", "DRCViolation", "check_clip", "drc_screen"]


@dataclass(frozen=True)
class DRCRules:
    """Minimum drawn dimensions in nm."""

    min_width_nm: float
    min_spacing_nm: float

    def __post_init__(self) -> None:
        if self.min_width_nm <= 0 or self.min_spacing_nm <= 0:
            raise ValueError("DRC rules must be positive")


@dataclass(frozen=True)
class DRCViolation:
    """One rule violation: kind is ``"width"`` or ``"spacing"``."""

    kind: str
    row: int
    col: int


def _opening_survivors(mask: np.ndarray, size_px: int) -> np.ndarray:
    """Morphological opening with a ``size_px`` square element."""
    if size_px <= 1:
        return mask
    structure = np.ones((size_px, size_px), dtype=bool)
    return ndimage.binary_opening(mask, structure=structure)


def check_clip(
    clip: Clip, rules: DRCRules, grid: int = 192
) -> list[DRCViolation]:
    """Scan one clip for width/spacing violations inside its core.

    Raster-morphology approach: metal that disappears under an opening
    with the min-width element is narrower than the rule; background
    that disappears under an opening with the min-spacing element is a
    spacing violation.  Resolution is ``grid`` pixels per clip side, so
    rules finer than ~2 pixels need a larger grid.
    """
    width_nm, _ = clip.size
    pixel_nm = width_nm / grid
    width_px = max(int(round(rules.min_width_nm / pixel_nm)), 1)
    spacing_px = max(int(round(rules.min_spacing_nm / pixel_nm)), 1)

    mask = clip.raster(grid, antialias=False).astype(bool)
    core = clip.core_local()
    row0 = int(np.floor(core.y0 / width_nm * grid))
    row1 = int(np.ceil(core.y1 / width_nm * grid))
    col0 = int(np.floor(core.x0 / width_nm * grid))
    col1 = int(np.ceil(core.x1 / width_nm * grid))
    core_mask = np.zeros_like(mask)
    core_mask[row0:row1, col0:col1] = True

    violations: list[DRCViolation] = []

    narrow = mask & ~_opening_survivors(mask, width_px) & core_mask
    violations.extend(_centroids(narrow, "width"))

    gaps = ~mask & ~_opening_survivors(~mask, spacing_px) & core_mask
    violations.extend(_centroids(gaps, "spacing"))
    return violations


def _centroids(region: np.ndarray, kind: str) -> list[DRCViolation]:
    labels, count = ndimage.label(region)
    if count == 0:
        return []
    centers = ndimage.center_of_mass(region, labels, np.arange(1, count + 1))
    return [DRCViolation(kind, int(round(r)), int(round(c)))
            for r, c in centers]


def drc_screen(
    clips, rules: DRCRules, grid: int = 192
) -> np.ndarray:
    """Vector of per-clip DRC verdicts (True = has a violation).

    The screening baseline: flagging DRC-dirty clips costs no litho at
    all, but misses every DRC-clean hotspot — quantified in the tests.
    """
    return np.array(
        [bool(check_clip(clip, rules, grid)) for clip in clips], dtype=bool
    )
