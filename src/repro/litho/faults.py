"""Fault injection for the lithography oracle.

Real labeling campaigns run for hours against simulation farms that
fail transiently — license blips, preempted workers, NFS hiccups.  The
robustness layer in :class:`repro.litho.labeler.LithoLabeler` retries
:class:`TransientSimulationError` with bounded exponential backoff; the
harness here produces those failures deterministically so the retry
path, per-chunk verdict commits, and checkpoint/resume flows can be
tested without a flaky farm.

:class:`FaultPlan` scripts *which* simulation calls fail by 0-based
global call index; :class:`FlakySimulator` wraps any object with an
``is_hotspot`` method and executes the plan while counting calls and
injected faults.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..layout.clip import Clip

__all__ = ["TransientSimulationError", "FaultPlan", "FlakySimulator"]


class TransientSimulationError(RuntimeError):
    """A retryable simulator failure (the request may succeed if re-run)."""


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic schedule of injected failures.

    ``fail_calls`` holds the 0-based *global call indices* at which the
    wrapped simulator raises :class:`TransientSimulationError` instead
    of answering.  Retries advance the call counter, so e.g.
    ``FaultPlan.fail_first(2)`` makes the first clip fail twice and then
    succeed on its third attempt.
    """

    fail_calls: frozenset[int] = frozenset()

    @classmethod
    def fail_first(cls, n: int) -> "FaultPlan":
        """Fail the first ``n`` calls (then succeed forever)."""
        return cls(frozenset(range(n)))

    @classmethod
    def at(cls, *call_indices: int) -> "FaultPlan":
        """Fail exactly the given call indices."""
        return cls(frozenset(call_indices))

    def should_fail(self, call_index: int) -> bool:
        return call_index in self.fail_calls


class FlakySimulator:
    """Wrap a simulator and inject :class:`TransientSimulationError`.

    ``inner`` is anything with an ``is_hotspot(clip)`` method (a
    :class:`~repro.litho.simulator.LithoSimulator` or a test stub).
    ``calls`` counts every attempt, ``faults`` the injected failures —
    both observable after the fact for retry-accounting assertions.
    """

    def __init__(self, inner, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.calls = 0
        self.faults = 0

    def is_hotspot(self, clip: Clip) -> bool:
        call_index = self.calls
        self.calls += 1
        if self.plan.should_fail(call_index):
            self.faults += 1
            raise TransientSimulationError(
                f"injected transient fault at call {call_index}"
            )
        return bool(self.inner.is_hotspot(clip))
