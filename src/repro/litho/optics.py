"""Compact optical model for aerial-image simulation.

The paper labels clips with commercial DUV/EUV lithography models.  Those
are proprietary, so we substitute the standard compact form used in
academic OPC/hotspot literature: a single-kernel (rank-1 SOCS) partially
coherent imaging model.  The mask transmission is convolved with a
Gaussian point-spread function whose width follows the Rayleigh resolution
``k1 * wavelength / NA`` and grows with defocus; the aerial-image intensity
is the squared magnitude of the filtered amplitude.

This preserves the two behaviours active learning depends on:

* marginal geometries (narrow necks, tight gaps near the resolution limit)
  print marginally, so hotspot labels correlate with geometry; and
* labeling is deterministic and expensive relative to inference, so the
  litho-clip count (Definition 3) is the meaningful cost metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["OpticalModel", "duv_model", "euv_model"]


@dataclass(frozen=True)
class OpticalModel:
    """Rank-1 partially coherent imaging model.

    Parameters
    ----------
    wavelength_nm:
        Source wavelength (193 for DUV immersion, 13.5 for EUV).
    na:
        Numerical aperture of the projection optics.
    k1:
        Process difficulty factor; sets the PSF width together with
        ``wavelength_nm / na``.
    defocus_blur_nm_per_nm:
        Extra PSF sigma added per nanometre of defocus.
    """

    wavelength_nm: float
    na: float
    k1: float = 0.61
    defocus_blur_nm_per_nm: float = 0.35

    def __post_init__(self) -> None:
        if self.wavelength_nm <= 0 or self.na <= 0 or self.k1 <= 0:
            raise ValueError("optical parameters must be positive")

    @property
    def resolution_nm(self) -> float:
        """Rayleigh resolution ``k1 * lambda / NA``."""
        return self.k1 * self.wavelength_nm / self.na

    def psf_sigma_nm(self, defocus_nm: float = 0.0) -> float:
        """Gaussian PSF sigma in nm at the given defocus."""
        base = self.resolution_nm / 2.0
        return float(
            np.hypot(base, self.defocus_blur_nm_per_nm * abs(defocus_nm))
        )

    def psf_kernel(self, pixel_nm: float, defocus_nm: float = 0.0) -> np.ndarray:
        """Normalized Gaussian PSF sampled on the raster grid.

        The kernel is truncated at 4 sigma and normalized to unit sum so a
        fully dark/bright mask maps to intensity 0/1.
        """
        if pixel_nm <= 0:
            raise ValueError(f"pixel size must be positive, got {pixel_nm}")
        sigma_px = self.psf_sigma_nm(defocus_nm) / pixel_nm
        sigma_px = max(sigma_px, 1e-3)
        radius = max(int(np.ceil(4.0 * sigma_px)), 1)
        axis = np.arange(-radius, radius + 1, dtype=np.float64)
        gauss = np.exp(-0.5 * (axis / sigma_px) ** 2)
        kernel = np.outer(gauss, gauss)
        return kernel / kernel.sum()

    def aerial_image(
        self,
        mask: np.ndarray,
        pixel_nm: float,
        defocus_nm: float = 0.0,
        dose: float = 1.0,
    ) -> np.ndarray:
        """Aerial-image intensity of ``mask`` (values in [0, 1]).

        Amplitude = PSF * mask (FFT convolution, reflective padding to
        avoid dark halos at clip borders); intensity = dose * amplitude^2.
        """
        if mask.ndim != 2:
            raise ValueError(f"mask must be 2-D, got shape {mask.shape}")
        if dose <= 0:
            raise ValueError(f"dose must be positive, got {dose}")
        kernel = self.psf_kernel(pixel_nm, defocus_nm)
        pad = kernel.shape[0] // 2
        padded = np.pad(mask.astype(np.float64), pad, mode="reflect")
        amplitude = _fft_convolve_valid(padded, kernel)
        return dose * amplitude**2


def _fft_convolve_valid(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """'Valid'-mode FFT convolution of a padded image with a kernel."""
    out_h = image.shape[0] - kernel.shape[0] + 1
    out_w = image.shape[1] - kernel.shape[1] + 1
    shape = (
        image.shape[0] + kernel.shape[0] - 1,
        image.shape[1] + kernel.shape[1] - 1,
    )
    f_image = np.fft.rfft2(image, shape)
    f_kernel = np.fft.rfft2(kernel, shape)
    full = np.fft.irfft2(f_image * f_kernel, shape)
    start_h = kernel.shape[0] - 1
    start_w = kernel.shape[1] - 1
    return full[start_h : start_h + out_h, start_w : start_w + out_w]


def duv_model() -> OpticalModel:
    """193 nm immersion lithography (ICCAD'12-era 28 nm metal)."""
    return OpticalModel(wavelength_nm=193.0, na=1.35, k1=0.35)


def euv_model() -> OpticalModel:
    """13.5 nm EUV lithography (ICCAD'16-era 7 nm metal)."""
    return OpticalModel(wavelength_nm=13.5, na=0.33, k1=0.45)
