"""Printability checking: EPE, pinch and bridge defect detection.

Given the intended pattern (the rasterized mask target) and the printed
image from the resist model, this module finds manufacturing defects in a
clip's core region:

* **pinch** — a target feature thins away or breaks: printed resist is
  missing well inside a target shape;
* **bridge** — two separate features merge: resist prints well outside any
  target shape;
* **EPE violation** — the printed contour lands farther than a tolerance
  from the target edge (computed with distance transforms).

A clip is a hotspot when any defect occurs inside its core region at any
process corner (Definition 1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

__all__ = ["Defect", "find_defects", "edge_placement_error"]


@dataclass(frozen=True)
class Defect:
    """A single printability violation.

    ``kind`` is ``"pinch"``, ``"bridge"`` or ``"epe"``; ``row``/``col`` are
    pixel coordinates in the clip raster; ``severity`` is in pixels of
    placement error (or 0 area-threshold overflow units for pinch/bridge).
    """

    kind: str
    row: int
    col: int
    severity: float


def _interior(mask: np.ndarray, margin_px: int) -> np.ndarray:
    """Erode ``mask`` by ``margin_px`` (8-connected square element)."""
    if margin_px <= 0:
        return mask
    structure = np.ones((2 * margin_px + 1, 2 * margin_px + 1), dtype=bool)
    return ndimage.binary_erosion(mask, structure=structure)


def _exterior(mask: np.ndarray, margin_px: int) -> np.ndarray:
    """Dilate ``mask`` by ``margin_px``."""
    if margin_px <= 0:
        return mask
    structure = np.ones((2 * margin_px + 1, 2 * margin_px + 1), dtype=bool)
    return ndimage.binary_dilation(mask, structure=structure)


def edge_placement_error(
    target: np.ndarray, printed: np.ndarray
) -> np.ndarray:
    """Per-pixel edge placement error field in pixels.

    For every pixel on the target contour, the distance to the nearest
    printed contour pixel.  Returns an array of shape ``target.shape``
    that is 0 away from target edges.
    """
    target = target.astype(bool)
    printed = printed.astype(bool)
    target_edge = target ^ ndimage.binary_erosion(target)
    printed_edge = printed ^ ndimage.binary_erosion(printed)

    field = np.zeros(target.shape, dtype=np.float64)
    if not target_edge.any():
        return field
    if not printed_edge.any():
        # nothing printed at all: every target edge is maximally misplaced
        field[target_edge] = float(max(target.shape))
        return field
    distance = ndimage.distance_transform_edt(~printed_edge)
    field[target_edge] = distance[target_edge]
    return field


def find_defects(
    target: np.ndarray,
    printed: np.ndarray,
    core: tuple[int, int, int, int],
    epe_tolerance_px: float = 2.0,
    morph_margin_px: int = 2,
    min_defect_px: int = 2,
) -> list[Defect]:
    """Locate pinch/bridge/EPE defects inside the core region.

    Parameters
    ----------
    target, printed:
        Binary images of intended and printed patterns (same shape).
    core:
        ``(row0, col0, row1, col1)`` half-open pixel bounds of the core.
    epe_tolerance_px:
        Maximum allowed contour displacement.
    morph_margin_px:
        Erosion/dilation margin defining "well inside"/"well outside";
        shields ordinary corner rounding from being flagged.
    min_defect_px:
        Connected components smaller than this are ignored (noise guard).
    """
    if target.shape != printed.shape:
        raise ValueError(
            f"shape mismatch: target {target.shape} vs printed {printed.shape}"
        )
    row0, col0, row1, col1 = core
    if not (0 <= row0 < row1 <= target.shape[0]) or not (
        0 <= col0 < col1 <= target.shape[1]
    ):
        raise ValueError(f"core {core} outside image {target.shape}")

    target = target.astype(bool)
    printed = printed.astype(bool)
    core_mask = np.zeros(target.shape, dtype=bool)
    core_mask[row0:row1, col0:col1] = True

    defects: list[Defect] = []

    # pinch: target interior that failed to print
    pinch_region = _interior(target, morph_margin_px) & ~printed & core_mask
    defects.extend(_component_defects(pinch_region, "pinch", min_defect_px))

    # bridge: printed resist well outside any target shape
    bridge_region = printed & ~_exterior(target, morph_margin_px) & core_mask
    defects.extend(_component_defects(bridge_region, "bridge", min_defect_px))

    # EPE: contour displacement beyond tolerance
    epe_field = edge_placement_error(target, printed)
    epe_region = (epe_field > epe_tolerance_px) & core_mask
    for defect in _component_defects(epe_region, "epe", min_defect_px):
        severity = float(epe_field[defect.row, defect.col])
        defects.append(Defect("epe", defect.row, defect.col, severity))

    return defects


def _component_defects(
    region: np.ndarray, kind: str, min_defect_px: int
) -> list[Defect]:
    """One defect per connected component of ``region`` above size cutoff."""
    labels, count = ndimage.label(region)
    defects = []
    if count == 0:
        return defects
    sizes = ndimage.sum_labels(region, labels, index=np.arange(1, count + 1))
    centers = ndimage.center_of_mass(region, labels, np.arange(1, count + 1))
    for size, (row, col) in zip(sizes, centers):
        if size >= min_defect_px:
            defects.append(Defect(kind, int(round(row)), int(round(col)), float(size)))
    return defects
