"""Litho-clip accounting: the labeling oracle with a cost meter.

Definition 3 of the paper makes the count of lithography-simulated clips
(the "litho-clips") the cost currency of PSHD.  :class:`LithoLabeler`
wraps a simulator, memoizes verdicts per clip, and counts every *distinct*
clip sent to simulation — re-querying a cached clip is free, matching how
a real flow would reuse stored simulation results.
"""

from __future__ import annotations

from ..layout.clip import Clip
from .simulator import LithoSimulator

__all__ = ["LithoLabeler"]

#: wall-clock charge per simulated clip used by the paper's runtime model
#: (Section IV-C: "10s of penalty on each litho-clip").
SECONDS_PER_LITHO_CLIP = 10.0


class LithoLabeler:
    """Counting, caching front-end to a :class:`LithoSimulator`.

    ``label(clip)`` returns 1 for hotspot and 0 for non-hotspot, charging
    one litho-clip on first query of each clip.
    """

    def __init__(self, simulator: LithoSimulator) -> None:
        self.simulator = simulator
        self._cache: dict[int, int] = {}
        self.query_count = 0

    @staticmethod
    def _key(clip: Clip) -> int:
        if clip.index < 0:
            raise ValueError(
                "clip has no stable index; assign Clip.index before labeling"
            )
        return clip.index

    def label(self, clip: Clip) -> int:
        """Hotspot verdict for ``clip`` (1 = hotspot), cached."""
        key = self._key(clip)
        if key not in self._cache:
            self.query_count += 1
            self._cache[key] = int(self.simulator.is_hotspot(clip))
        return self._cache[key]

    def label_many(self, clips) -> list[int]:
        """Label a batch of clips, charging only uncached ones."""
        return [self.label(clip) for clip in clips]

    def is_cached(self, clip: Clip) -> bool:
        return self._key(clip) in self._cache

    @property
    def simulated_seconds(self) -> float:
        """Runtime-model cost of all litho queries so far."""
        return self.query_count * SECONDS_PER_LITHO_CLIP

    def reset(self) -> None:
        """Clear the cache and the cost meter."""
        self._cache.clear()
        self.query_count = 0
