"""Litho-clip accounting: the labeling oracle with a cost meter.

Definition 3 of the paper makes the count of lithography-simulated clips
(the "litho-clips") the cost currency of PSHD.  :class:`LithoLabeler`
wraps a simulator, memoizes verdicts per *clip geometry*, and counts
every distinct geometry sent to simulation — re-querying a cached
pattern is free, matching how a real flow would reuse stored simulation
results.

Caching is content-addressed through
:meth:`repro.layout.clip.Clip.content_key`: two ``Clip`` instances with
equal geometry share a verdict regardless of their ``index``, absolute
placement, or which extraction pass produced them.  The batched
:meth:`LithoLabeler.label_batch` path additionally dedupes a whole
request before simulating and can fan simulation out over a
``concurrent.futures`` pool.
"""

from __future__ import annotations

import time
from functools import partial

from ..dataplane.pool import map_chunks
from ..engine.events import EventBus
from ..layout.clip import Clip
from .simulator import LithoSimulator

__all__ = ["LithoLabeler"]

#: wall-clock charge per simulated clip used by the paper's runtime model
#: (Section IV-C: "10s of penalty on each litho-clip").
SECONDS_PER_LITHO_CLIP = 10.0


def _simulate_chunk(clips: list[Clip], simulator: LithoSimulator) -> list[int]:
    """Simulate one chunk (module-level so process pools can pickle it)."""
    return [int(simulator.is_hotspot(clip)) for clip in clips]


class LithoLabeler:
    """Counting, caching front-end to a :class:`LithoSimulator`.

    ``label(clip)`` returns 1 for hotspot and 0 for non-hotspot, charging
    one litho-clip on first query of each distinct clip geometry.  An
    optional :class:`~repro.engine.events.EventBus` receives one
    ``labels_computed`` event per :meth:`label_batch` request.
    """

    def __init__(
        self, simulator: LithoSimulator, bus: EventBus | None = None
    ) -> None:
        self.simulator = simulator
        self.bus = bus
        self._cache: dict[str, int] = {}
        self.query_count = 0

    @staticmethod
    def _key(clip: Clip) -> str:
        return clip.content_key()

    def label(self, clip: Clip) -> int:
        """Hotspot verdict for ``clip`` (1 = hotspot), cached."""
        key = self._key(clip)
        if key not in self._cache:
            self.query_count += 1
            self._cache[key] = int(self.simulator.is_hotspot(clip))
        return self._cache[key]

    def label_many(self, clips) -> list[int]:
        """Label a batch of clips, charging only uncached geometry.

        Serial convenience wrapper; prefer :meth:`label_batch` which
        dedupes up front, can run the simulator over a pool, and reports
        cache statistics on the event bus.
        """
        return [self.label(clip) for clip in clips]

    def label_batch(
        self,
        clips,
        chunk_size: int = 16,
        workers: int = 0,
        executor: str = "thread",
    ) -> list[int]:
        """Verdicts for many clips with request-level deduplication.

        Distinct uncached geometries are simulated once each — in chunks,
        optionally over a thread/process pool — then every position is
        served from the cache.  Charges ``query_count`` only for the
        simulated geometries, exactly like repeated :meth:`label` calls
        would.
        """
        started = time.perf_counter()
        clips = list(clips)
        keys = [self._key(clip) for clip in clips]

        pending: dict[str, Clip] = {}
        for key, clip in zip(keys, clips):
            if key not in self._cache and key not in pending:
                pending[key] = clip
        n_cached = sum(1 for key in keys if key in self._cache)

        verdict_chunks = map_chunks(
            partial(_simulate_chunk, simulator=self.simulator),
            list(pending.values()),
            chunk_size=chunk_size,
            workers=workers,
            executor=executor,
        )
        verdicts = [v for chunk in verdict_chunks for v in chunk]
        for key, verdict in zip(pending, verdicts):
            self._cache[key] = verdict
        self.query_count += len(pending)

        if self.bus is not None:
            self.bus.emit(
                "labels_computed",
                n_clips=len(clips),
                cache_hits=n_cached,
                cache_misses=len(pending),
                deduped=len(clips) - n_cached - len(pending),
                simulated_seconds=len(pending) * SECONDS_PER_LITHO_CLIP,
                label_seconds=time.perf_counter() - started,
            )
        return [self._cache[key] for key in keys]

    def is_cached(self, clip: Clip) -> bool:
        return self._key(clip) in self._cache

    @property
    def simulated_seconds(self) -> float:
        """Runtime-model cost of all litho queries so far."""
        return self.query_count * SECONDS_PER_LITHO_CLIP

    def reset(self) -> None:
        """Clear the cache and the cost meter."""
        self._cache.clear()
        self.query_count = 0
