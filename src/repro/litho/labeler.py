"""Litho-clip accounting: the labeling oracle with a cost meter.

Definition 3 of the paper makes the count of lithography-simulated clips
(the "litho-clips") the cost currency of PSHD.  :class:`LithoLabeler`
wraps a simulator, memoizes verdicts per *clip geometry*, and counts
every distinct geometry sent to simulation — re-querying a cached
pattern is free, matching how a real flow would reuse stored simulation
results.

Caching is content-addressed through
:meth:`repro.layout.clip.Clip.content_key`: two ``Clip`` instances with
equal geometry share a verdict regardless of their ``index``, absolute
placement, or which extraction pass produced them.  The batched
:meth:`LithoLabeler.label_batch` path additionally dedupes a whole
request before simulating and can fan simulation out over a
``concurrent.futures`` pool.

Robustness: a simulator raising
:class:`~repro.litho.faults.TransientSimulationError` is retried per
clip with bounded exponential backoff, and verdicts are committed to
the cache *per completed chunk* — a failure in chunk ``N`` never
discards the already-paid-for verdicts of chunks ``0..N-1``, which is
what makes long labeling campaigns resumable (see
:mod:`repro.engine.checkpoint`).
"""

from __future__ import annotations

import time
from functools import partial

from ..dataplane.pool import chunked, imap_chunks
from ..engine.events import EventBus
from ..layout.clip import Clip
from .faults import TransientSimulationError
from .simulator import LithoSimulator

__all__ = ["LithoBudgetExceeded", "LithoLabeler"]

#: wall-clock charge per simulated clip used by the paper's runtime model
#: (Section IV-C: "10s of penalty on each litho-clip").
SECONDS_PER_LITHO_CLIP = 10.0


class LithoBudgetExceeded(RuntimeError):
    """Labeling would overrun the configured litho-clip budget.

    Raised *before* the offending simulations run, so no paid-for work
    is discarded and the meter never exceeds the budget.  The run
    supervisor (:mod:`repro.engine.guard`) turns this into a graceful
    early stop that still runs the final detect stage.
    """

    def __init__(
        self, budget: int, used: int, requested: int
    ) -> None:
        super().__init__(
            f"litho budget exhausted: {used} of {budget} clips spent, "
            f"{requested} more requested"
        )
        self.budget = budget
        self.used = used
        self.requested = requested


def _simulate_clip(
    simulator: LithoSimulator,
    clip: Clip,
    max_retries: int,
    base_delay: float,
    max_delay: float,
) -> tuple[int, int]:
    """One verdict with bounded-backoff retry; returns ``(verdict,
    retries_used)``.  Only :class:`TransientSimulationError` is retried;
    anything else is a real bug and propagates immediately."""
    attempt = 0
    while True:
        try:
            return int(simulator.is_hotspot(clip)), attempt
        except TransientSimulationError:
            attempt += 1
            if attempt > max_retries:
                raise
            delay = min(base_delay * 2.0 ** (attempt - 1), max_delay)
            if delay > 0:
                time.sleep(delay)


def _simulate_chunk(
    clips: list[Clip],
    simulator: LithoSimulator,
    max_retries: int = 0,
    base_delay: float = 0.0,
    max_delay: float = 0.0,
) -> tuple[list[int], int]:
    """Simulate one chunk (module-level so process pools can pickle it).

    Returns ``(verdicts, total_retries)``; retries happen per clip, so
    a transient failure never re-simulates clips that already answered.
    """
    verdicts: list[int] = []
    retries = 0
    for clip in clips:
        verdict, used = _simulate_clip(
            simulator, clip, max_retries, base_delay, max_delay
        )
        verdicts.append(verdict)
        retries += used
    return verdicts, retries


class LithoLabeler:
    """Counting, caching front-end to a :class:`LithoSimulator`.

    ``label(clip)`` returns 1 for hotspot and 0 for non-hotspot, charging
    one litho-clip on first query of each distinct clip geometry.  An
    optional :class:`~repro.engine.events.EventBus` receives one
    ``labels_computed`` event per :meth:`label_batch` request, plus one
    ``simulation_retry`` event per chunk that needed transient-failure
    retries.

    ``max_retries`` bounds the per-clip retry budget for
    :class:`~repro.litho.faults.TransientSimulationError`;
    ``retry_base_delay`` doubles on each attempt up to
    ``retry_max_delay`` seconds.  ``max_queries`` caps the number of
    distinct geometries ever simulated (the litho budget of
    Definition 3) — exceeding it raises :class:`LithoBudgetExceeded`
    before any over-budget simulation is paid for.
    """

    def __init__(
        self,
        simulator: LithoSimulator,
        bus: EventBus | None = None,
        max_retries: int = 2,
        retry_base_delay: float = 0.1,
        retry_max_delay: float = 2.0,
        max_queries: int | None = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if retry_base_delay < 0 or retry_max_delay < 0:
            raise ValueError("retry delays must be non-negative")
        if max_queries is not None and max_queries <= 0:
            raise ValueError(
                f"max_queries must be positive or None, got {max_queries}"
            )
        self.simulator = simulator
        self.bus = bus
        self.max_retries = max_retries
        self.retry_base_delay = retry_base_delay
        self.retry_max_delay = retry_max_delay
        self.max_queries = max_queries
        self._cache: dict[str, int] = {}
        self.query_count = 0

    @staticmethod
    def _key(clip: Clip) -> str:
        return clip.content_key()

    def _check_budget(self, n_new: int) -> None:
        if (
            self.max_queries is not None
            and self.query_count + n_new > self.max_queries
        ):
            raise LithoBudgetExceeded(
                self.max_queries, self.query_count, n_new
            )

    def label(self, clip: Clip) -> int:
        """Hotspot verdict for ``clip`` (1 = hotspot), cached."""
        key = self._key(clip)
        if key not in self._cache:
            self._check_budget(1)
            verdict, _ = _simulate_clip(
                self.simulator,
                clip,
                self.max_retries,
                self.retry_base_delay,
                self.retry_max_delay,
            )
            self.query_count += 1
            self._cache[key] = verdict
        return self._cache[key]

    def label_many(self, clips) -> list[int]:
        """Label a batch of clips, charging only uncached geometry.

        Serial convenience wrapper; prefer :meth:`label_batch` which
        dedupes up front, can run the simulator over a pool, and reports
        cache statistics on the event bus.
        """
        return [self.label(clip) for clip in clips]

    def _watchdog_fired(self, chunk_index: int, timeout: float) -> None:
        """A pooled simulation chunk hung past the deadline and was
        re-run serially; surface it as a guard event pair."""
        if self.bus is None:
            return
        self.bus.emit(
            "health_alert",
            sentinel="pool_watchdog",
            stage="label",
            detail=f"chunk {chunk_index} exceeded {timeout}s deadline",
            chunk=chunk_index,
        )
        self.bus.emit(
            "recovery_applied",
            policy="serial_fallback",
            sentinel="pool_watchdog",
            stage="label",
            chunk=chunk_index,
        )

    def label_batch(
        self,
        clips,
        chunk_size: int = 16,
        workers: int = 0,
        executor: str = "thread",
        timeout: float | None = None,
    ) -> list[int]:
        """Verdicts for many clips with request-level deduplication.

        Distinct uncached geometries are simulated once each — in chunks,
        optionally over a thread/process pool — then every position is
        served from the cache.  Charges ``query_count`` only for the
        simulated geometries, exactly like repeated :meth:`label` calls
        would.

        Verdicts commit to the cache (and charge the meter) *per
        completed chunk*: if chunk ``N`` fails, the verdicts of chunks
        ``0..N-1`` survive and are free on the next request — mid-batch
        failures never discard paid-for simulation work.  A litho
        budget (``max_queries``) is likewise enforced per chunk, so an
        overrun mid-batch keeps every already-committed verdict.

        ``timeout`` arms the pool watchdog: a pooled chunk that does
        not answer within the deadline is cancelled and re-run serially
        (one ``health_alert``/``recovery_applied`` event pair per
        cancelled chunk).
        """
        started = time.perf_counter()
        clips = list(clips)
        keys = [self._key(clip) for clip in clips]

        pending: dict[str, Clip] = {}
        for key, clip in zip(keys, clips):
            if key not in self._cache and key not in pending:
                pending[key] = clip
        n_cached = sum(1 for key in keys if key in self._cache)

        key_chunks = chunked(list(pending), chunk_size)
        results = imap_chunks(
            partial(
                _simulate_chunk,
                simulator=self.simulator,
                max_retries=self.max_retries,
                base_delay=self.retry_base_delay,
                max_delay=self.retry_max_delay,
            ),
            list(pending.values()),
            chunk_size=chunk_size,
            workers=workers,
            executor=executor,
            timeout=timeout,
            on_timeout=(
                None
                if timeout is None
                else partial(self._watchdog_fired, timeout=timeout)
            ),
        )
        total_retries = 0
        for chunk_index, chunk_keys in enumerate(key_chunks):
            # budget check first: an over-budget chunk never commits or
            # charges, so the meter can never exceed max_queries
            self._check_budget(len(chunk_keys))
            verdicts, retries = next(results)
            for key, verdict in zip(chunk_keys, verdicts):
                self._cache[key] = int(verdict)
            self.query_count += len(chunk_keys)
            total_retries += retries
            if retries and self.bus is not None:
                self.bus.emit(
                    "simulation_retry",
                    chunk=chunk_index,
                    retries=retries,
                    n_clips=len(chunk_keys),
                )

        if self.bus is not None:
            self.bus.emit(
                "labels_computed",
                n_clips=len(clips),
                cache_hits=n_cached,
                cache_misses=len(pending),
                deduped=len(clips) - n_cached - len(pending),
                retries=total_retries,
                simulated_seconds=len(pending) * SECONDS_PER_LITHO_CLIP,
                label_seconds=time.perf_counter() - started,
            )
        return [self._cache[key] for key in keys]

    def is_cached(self, clip: Clip) -> bool:
        return self._key(clip) in self._cache

    @property
    def simulated_seconds(self) -> float:
        """Runtime-model cost of all litho queries so far."""
        return self.query_count * SECONDS_PER_LITHO_CLIP

    # ------------------------------------------------------------------
    # checkpoint persistence
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """JSON-serializable verdict cache + cost meter (for
        :mod:`repro.engine.checkpoint`)."""
        return {
            "cache": {key: int(v) for key, v in self._cache.items()},
            "query_count": int(self.query_count),
        }

    def set_state(self, state: dict) -> None:
        """Restore state captured by :meth:`get_state`."""
        cache = {str(k): int(v) for k, v in state["cache"].items()}
        if not all(v in (0, 1) for v in cache.values()):
            raise ValueError("labeler cache verdicts must be 0/1")
        self._cache = cache
        self.query_count = int(state["query_count"])

    def reset(self) -> None:
        """Clear the cache and the cost meter."""
        self._cache.clear()
        self.query_count = 0
