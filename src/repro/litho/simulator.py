"""Litho simulation across process corners and hotspot decision.

:class:`LithoSimulator` ties the optical model, resist model and defect
checker together: a clip is rasterized, imaged at every process corner
(nominal plus dose/defocus excursions — the "process window"), and flagged
hotspot when any corner produces a defect inside the core region.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..layout.clip import Clip
from .epe import Defect, find_defects
from .optics import OpticalModel, duv_model, euv_model
from .resist import ThresholdResist

__all__ = ["ProcessCorner", "LithoResult", "LithoSimulator"]


@dataclass(frozen=True)
class ProcessCorner:
    """One (dose, defocus) condition of the process window."""

    dose: float = 1.0
    defocus_nm: float = 0.0
    name: str = "nominal"

    def __post_init__(self) -> None:
        if self.dose <= 0:
            raise ValueError(f"dose must be positive, got {self.dose}")


def default_corners(dose_delta: float = 0.05, defocus_nm: float = 25.0):
    """Nominal plus the four standard process-window excursions."""
    return (
        ProcessCorner(1.0, 0.0, "nominal"),
        ProcessCorner(1.0 + dose_delta, 0.0, "over-dose"),
        ProcessCorner(1.0 - dose_delta, 0.0, "under-dose"),
        ProcessCorner(1.0, defocus_nm, "defocus"),
    )


@dataclass
class LithoResult:
    """Full output of simulating one clip."""

    hotspot: bool
    defects: list[Defect] = field(default_factory=list)
    corner_names: list[str] = field(default_factory=list)

    @property
    def defect_count(self) -> int:
        return len(self.defects)


class LithoSimulator:
    """Process-window lithography simulation of layout clips.

    Parameters
    ----------
    optical:
        Imaging model; pick :func:`~repro.litho.optics.duv_model` or
        :func:`~repro.litho.optics.euv_model` per tech node.
    resist:
        Threshold resist model.
    corners:
        Process corners to simulate; a clip is hotspot if defective at any.
    grid:
        Raster resolution (pixels per clip side).
    epe_tolerance_px / morph_margin_px:
        Defect-checker settings (see :func:`repro.litho.epe.find_defects`).
    """

    def __init__(
        self,
        optical: OpticalModel | None = None,
        resist: ThresholdResist | None = None,
        corners=None,
        grid: int = 96,
        epe_tolerance_px: float = 2.0,
        morph_margin_px: int = 2,
        min_defect_px: int = 2,
    ) -> None:
        self.optical = optical if optical is not None else duv_model()
        self.resist = resist if resist is not None else ThresholdResist()
        self.corners = tuple(corners) if corners is not None else default_corners()
        if not self.corners:
            raise ValueError("at least one process corner required")
        if grid <= 0:
            raise ValueError(f"grid must be positive, got {grid}")
        self.grid = grid
        self.epe_tolerance_px = epe_tolerance_px
        self.morph_margin_px = morph_margin_px
        self.min_defect_px = min_defect_px

    @classmethod
    def for_tech(cls, tech_nm: int, **kwargs) -> "LithoSimulator":
        """Simulator configured for a technology node (28 → DUV, 7 → EUV)."""
        if tech_nm <= 10:
            return cls(optical=euv_model(), **kwargs)
        return cls(optical=duv_model(), **kwargs)

    def _core_bounds_px(self, clip: Clip) -> tuple[int, int, int, int]:
        """Core region in raster pixel coordinates (row0, col0, row1, col1)."""
        width_nm, height_nm = clip.size
        core = clip.core_local()
        row0 = int(np.floor(core.y0 / height_nm * self.grid))
        row1 = int(np.ceil(core.y1 / height_nm * self.grid))
        col0 = int(np.floor(core.x0 / width_nm * self.grid))
        col1 = int(np.ceil(core.x1 / width_nm * self.grid))
        return row0, col0, row1, col1

    def simulate(self, clip: Clip) -> LithoResult:
        """Run the full process window on one clip."""
        width_nm, _ = clip.size
        pixel_nm = width_nm / self.grid
        mask = clip.raster(self.grid, antialias=True)
        target = mask >= 0.5
        core = self._core_bounds_px(clip)

        all_defects: list[Defect] = []
        bad_corners: list[str] = []
        for corner in self.corners:
            intensity = self.optical.aerial_image(
                mask, pixel_nm, defocus_nm=corner.defocus_nm, dose=corner.dose
            )
            printed = self.resist.develop(intensity)
            defects = find_defects(
                target,
                printed,
                core,
                epe_tolerance_px=self.epe_tolerance_px,
                morph_margin_px=self.morph_margin_px,
                min_defect_px=self.min_defect_px,
            )
            if defects:
                all_defects.extend(defects)
                bad_corners.append(corner.name)

        return LithoResult(
            hotspot=bool(all_defects),
            defects=all_defects,
            corner_names=bad_corners,
        )

    def is_hotspot(self, clip: Clip) -> bool:
        """Convenience wrapper returning only the hotspot verdict."""
        return self.simulate(clip).hotspot
