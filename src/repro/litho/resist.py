"""Constant-threshold resist model with optional acid-diffusion blur.

The industry-standard compact resist abstraction: resist develops
wherever the aerial-image intensity exceeds a fixed threshold.  Dose
variation is modelled upstream (it scales intensity), so the threshold
itself is a process constant.  Chemically amplified resists additionally
blur the latent image by acid diffusion during post-exposure bake;
``diffusion_px`` adds that Gaussian blur before thresholding, which
rounds corners and further suppresses sub-resolution features.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

__all__ = ["ThresholdResist"]


@dataclass(frozen=True)
class ThresholdResist:
    """Develops a binary printed image from an aerial image.

    ``threshold`` is expressed relative to the clear-field intensity of a
    unit-dose exposure; typical compact models sit near 0.3–0.5 of the
    open-frame intensity.  ``diffusion_px`` is the acid-diffusion sigma
    in raster pixels (0 disables the blur, the pre-PEB behaviour).
    """

    threshold: float = 0.35
    diffusion_px: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold < 1.5:
            raise ValueError(
                f"threshold must be in (0, 1.5), got {self.threshold}"
            )
        if self.diffusion_px < 0:
            raise ValueError(
                f"diffusion_px must be non-negative, got {self.diffusion_px}"
            )

    def latent_image(self, intensity: np.ndarray) -> np.ndarray:
        """Post-bake latent image (intensity after acid diffusion)."""
        if intensity.ndim != 2:
            raise ValueError(f"intensity must be 2-D, got {intensity.shape}")
        if self.diffusion_px > 0:
            return ndimage.gaussian_filter(intensity, self.diffusion_px)
        return intensity

    def develop(self, intensity: np.ndarray) -> np.ndarray:
        """Binary printed image: True where resist prints."""
        return self.latent_image(intensity) >= self.threshold

    def contour_offset(self, intensity: np.ndarray) -> np.ndarray:
        """Signed margin ``latent - threshold`` (useful diagnostics)."""
        return self.latent_image(intensity) - self.threshold
