"""Sum-of-coherent-systems (SOCS) optics: rank-N partially coherent
imaging.

The single-Gaussian model in :mod:`repro.litho.optics` is a rank-1
approximation.  Real partially coherent imaging decomposes the Hopkins
transmission-cross-coefficient operator into a sum of coherent kernels:

    I(x) = sum_k  w_k * | (h_k * m)(x) |^2

This module provides a compact rank-N model built from Gaussian-Hermite
kernels (the analytic eigenbasis of a Gaussian TCC), useful when a
benchmark needs closer-to-real proximity behaviour — higher-order
kernels add the oscillatory sidelobes a single Gaussian lacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .optics import OpticalModel, _fft_convolve_valid

__all__ = ["SOCSModel", "gauss_hermite_kernel"]


def gauss_hermite_kernel(
    order_x: int, order_y: int, sigma_px: float, radius: int
) -> np.ndarray:
    """Separable Gaussian-Hermite kernel of the given orders.

    Order (0, 0) is the plain Gaussian; higher orders multiply in
    (physicists') Hermite polynomials, producing the sidelobe structure
    of higher SOCS kernels.  The kernel is L2-normalized.
    """
    if order_x < 0 or order_y < 0:
        raise ValueError("Hermite orders must be non-negative")
    if sigma_px <= 0:
        raise ValueError(f"sigma must be positive, got {sigma_px}")
    axis = np.arange(-radius, radius + 1, dtype=np.float64) / sigma_px
    gauss = np.exp(-0.5 * axis**2)
    hx = np.polynomial.hermite.hermval(axis, [0.0] * order_x + [1.0])
    hy = np.polynomial.hermite.hermval(axis, [0.0] * order_y + [1.0])
    kernel = np.outer(gauss * hy, gauss * hx)
    norm = np.sqrt((kernel**2).sum())
    return kernel / norm


@dataclass
class SOCSModel:
    """Rank-N SOCS imaging model on top of an :class:`OpticalModel`.

    Parameters
    ----------
    base:
        Supplies wavelength/NA/k1 (and hence the kernel width).
    rank:
        Number of coherent kernels; 1 reduces to (a normalized version
        of) the base model.  Kernel weights decay geometrically with
        ``weight_decay`` per order, mimicking TCC eigenvalue decay.
    """

    base: OpticalModel
    rank: int = 3
    weight_decay: float = 0.25
    _kernels: list | None = field(default=None, init=False, repr=False)
    _weights: np.ndarray | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise ValueError(f"rank must be >= 1, got {self.rank}")
        if not 0.0 < self.weight_decay < 1.0:
            raise ValueError("weight_decay must be in (0, 1)")

    def kernels(self, pixel_nm: float, defocus_nm: float = 0.0):
        """(weights, kernels) of the decomposition at this sampling."""
        sigma_px = max(self.base.psf_sigma_nm(defocus_nm) / pixel_nm, 1e-3)
        radius = max(int(np.ceil(4.0 * sigma_px)), 1)
        orders = [(0, 0), (1, 0), (0, 1), (1, 1), (2, 0), (0, 2)][: self.rank]
        kernels = [
            gauss_hermite_kernel(ox, oy, sigma_px, radius) for ox, oy in orders
        ]
        weights = np.array(
            [self.weight_decay ** (ox + oy) for ox, oy in orders]
        )
        return weights / weights.sum(), kernels

    def aerial_image(
        self,
        mask: np.ndarray,
        pixel_nm: float,
        defocus_nm: float = 0.0,
        dose: float = 1.0,
    ) -> np.ndarray:
        """Rank-N aerial image, normalized so clear field ~ ``dose``."""
        if mask.ndim != 2:
            raise ValueError(f"mask must be 2-D, got {mask.shape}")
        if dose <= 0:
            raise ValueError(f"dose must be positive, got {dose}")
        weights, kernels = self.kernels(pixel_nm, defocus_nm)

        intensity = np.zeros_like(mask, dtype=np.float64)
        clear_field = 0.0
        for weight, kernel in zip(weights, kernels):
            pad = kernel.shape[0] // 2
            padded = np.pad(mask.astype(np.float64), pad, mode="reflect")
            amplitude = _fft_convolve_valid(padded, kernel)
            intensity += weight * amplitude**2
            clear_field += weight * kernel.sum() ** 2
        if clear_field <= 0:
            raise RuntimeError("degenerate SOCS normalization")
        return dose * intensity / clear_field
