"""OPC-lite: pixel-based optical proximity correction.

Hotspots are *found* by the paper's flow; fixing them is the job of
resolution-enhancement technology (RET) that the introduction motivates.
This module implements the standard inverse-lithography baby step:
iterative pixel-domain mask correction.  Each iteration simulates the
aerial image, compares a soft print estimate with the target, and nudges
the (gray-scale) mask against the error:

    m <- clip( m + eta * blur(target - sigma((I - thr) / slope)) )

The soft print estimate makes the update a smooth proxy of gradient
descent on the print error; the blur keeps corrections within the
optics' resolution so the mask stays manufacturable-ish.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from .optics import OpticalModel
from .resist import ThresholdResist

__all__ = ["OPCConfig", "OPCResult", "optimize_mask", "print_error"]


@dataclass(frozen=True)
class OPCConfig:
    """Correction-loop settings.

    ``step`` is the update rate; ``slope`` the softness of the print
    estimate (smaller = harder threshold); ``blur_px`` the correction
    smoothing radius; ``iterations`` the loop length.
    """

    iterations: int = 20
    step: float = 0.6
    slope: float = 0.05
    blur_px: float = 1.0

    def __post_init__(self) -> None:
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")
        if self.step <= 0:
            raise ValueError("step must be positive")
        if self.slope <= 0:
            raise ValueError("slope must be positive")
        if self.blur_px < 0:
            raise ValueError("blur_px must be non-negative")


@dataclass
class OPCResult:
    """Corrected mask plus the error trace."""

    mask: np.ndarray            # final gray-scale mask in [0, 1]
    error_trace: list           # per-iteration print error
    initial_error: float
    final_error: float

    @property
    def improved(self) -> bool:
        return self.final_error < self.initial_error


def print_error(
    printed: np.ndarray, target: np.ndarray
) -> float:
    """Print error: fraction of pixels where print and target disagree."""
    if printed.shape != target.shape:
        raise ValueError("shape mismatch")
    return float(np.mean(printed.astype(bool) ^ target.astype(bool)))


def optimize_mask(
    target: np.ndarray,
    optical: OpticalModel,
    resist: ThresholdResist,
    pixel_nm: float,
    config: OPCConfig | None = None,
) -> OPCResult:
    """Iteratively correct a mask so the printed image matches ``target``.

    Parameters
    ----------
    target:
        Binary (or antialiased) target pattern; also the initial mask.
    optical / resist / pixel_nm:
        The imaging stack to correct against.
    """
    config = config if config is not None else OPCConfig()
    target_f = np.clip(np.asarray(target, dtype=np.float64), 0.0, 1.0)
    target_b = target_f >= 0.5
    mask = target_f.copy()

    def simulate(m: np.ndarray) -> np.ndarray:
        return optical.aerial_image(m, pixel_nm)

    initial_error = print_error(resist.develop(simulate(mask)), target_b)
    trace: list[float] = []
    best_mask = mask.copy()
    best_error = initial_error

    for _ in range(config.iterations):
        intensity = simulate(mask)
        soft_print = 1.0 / (
            1.0 + np.exp(-(intensity - resist.threshold) / config.slope)
        )
        correction = target_f - soft_print
        if config.blur_px > 0:
            correction = ndimage.gaussian_filter(correction, config.blur_px)
        mask = np.clip(mask + config.step * correction, 0.0, 1.0)

        error = print_error(resist.develop(simulate(mask)), target_b)
        trace.append(error)
        if error < best_error:
            best_error = error
            best_mask = mask.copy()

    return OPCResult(
        mask=best_mask,
        error_trace=trace,
        initial_error=initial_error,
        final_error=best_error,
    )
