"""Printed-contour extraction and critical-dimension metrology.

SEM-style analysis of simulated prints: extract the resist contour at
sub-pixel precision (linear interpolation of the intensity field at the
resist threshold) and measure critical dimensions along cutlines — the
measurements a litho engineer uses to quantify how marginally a feature
printed, beyond the binary defect verdict.
"""

from __future__ import annotations

import numpy as np

__all__ = ["contour_crossings", "measure_cd", "cd_uniformity"]


def contour_crossings(
    intensity: np.ndarray, threshold: float, row: int
) -> np.ndarray:
    """Sub-pixel x positions where ``intensity[row]`` crosses threshold.

    Linear interpolation between samples; returns positions in pixel
    units, sorted ascending.  An empty array means the row is entirely
    above or below threshold.
    """
    if intensity.ndim != 2:
        raise ValueError(f"expected 2-D intensity, got {intensity.shape}")
    if not 0 <= row < intensity.shape[0]:
        raise IndexError(f"row {row} outside image of {intensity.shape[0]}")
    line = intensity[row].astype(np.float64)
    diff = line - threshold
    sign_change = np.flatnonzero(np.diff(np.signbit(diff)))
    crossings = []
    for i in sign_change:
        y0, y1 = diff[i], diff[i + 1]
        crossings.append(i + y0 / (y0 - y1))
    return np.array(crossings)


def measure_cd(
    intensity: np.ndarray,
    threshold: float,
    row: int,
    near_px: float,
    pixel_nm: float = 1.0,
) -> float | None:
    """Critical dimension of the printed feature nearest ``near_px``.

    Finds the pair of contour crossings that bracket ``near_px`` on the
    given row and returns their separation in nm, or ``None`` when no
    printed feature covers that position.
    """
    crossings = contour_crossings(intensity, threshold, row)
    if len(crossings) < 2:
        return None
    line = intensity[row]
    for left, right in zip(crossings[:-1], crossings[1:]):
        if left <= near_px <= right:
            mid = int(round((left + right) / 2))
            mid = min(max(mid, 0), len(line) - 1)
            if line[mid] >= threshold:  # it is a feature, not a gap
                return float((right - left) * pixel_nm)
    return None


def cd_uniformity(
    intensity: np.ndarray,
    threshold: float,
    rows,
    near_px: float,
    pixel_nm: float = 1.0,
) -> dict:
    """CD statistics of one feature across several cutline rows.

    Returns ``{"mean", "std", "min", "max", "count"}`` over the rows
    where the feature printed; count < len(rows) flags pinching.
    """
    values = []
    for row in rows:
        cd = measure_cd(intensity, threshold, int(row), near_px, pixel_nm)
        if cd is not None:
            values.append(cd)
    if not values:
        return {"mean": 0.0, "std": 0.0, "min": 0.0, "max": 0.0, "count": 0}
    array = np.array(values)
    return {
        "mean": float(array.mean()),
        "std": float(array.std()),
        "min": float(array.min()),
        "max": float(array.max()),
        "count": len(values),
    }
