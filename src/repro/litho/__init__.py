"""Lithography simulation substrate (S3): optics, resist, defect
detection, process-window simulation, and the counting labeler that acts
as the expensive labeling oracle of the PSHD problem."""

from .contour import cd_uniformity, contour_crossings, measure_cd
from .drc import DRCRules, DRCViolation, check_clip, drc_screen
from .epe import Defect, edge_placement_error, find_defects
from .faults import FaultPlan, FlakySimulator, TransientSimulationError
from .opc import OPCConfig, OPCResult, optimize_mask, print_error
from .labeler import SECONDS_PER_LITHO_CLIP, LithoBudgetExceeded, LithoLabeler
from .optics import OpticalModel, duv_model, euv_model
from .process_window import ProcessWindow, analyze_process_window
from .resist import ThresholdResist
from .simulator import LithoResult, LithoSimulator, ProcessCorner, default_corners
from .socs import SOCSModel, gauss_hermite_kernel

__all__ = [
    "OpticalModel",
    "duv_model",
    "euv_model",
    "SOCSModel",
    "gauss_hermite_kernel",
    "ThresholdResist",
    "Defect",
    "find_defects",
    "edge_placement_error",
    "ProcessCorner",
    "default_corners",
    "LithoResult",
    "LithoSimulator",
    "LithoLabeler",
    "LithoBudgetExceeded",
    "SECONDS_PER_LITHO_CLIP",
    "TransientSimulationError",
    "FaultPlan",
    "FlakySimulator",
    "ProcessWindow",
    "analyze_process_window",
    "DRCRules",
    "DRCViolation",
    "check_clip",
    "drc_screen",
    "OPCConfig",
    "OPCResult",
    "optimize_mask",
    "print_error",
    "contour_crossings",
    "measure_cd",
    "cd_uniformity",
]
