"""Batched hotspot-detection daemon (the request-facing serving layer).

:class:`DetectionServer` keeps warm per-model
:class:`~repro.engine.session.InferenceSession`\\ s, one shared
:class:`~repro.dataplane.cache.FeatureCache`, and a micro-batching
request queue: concurrent :meth:`~DetectionServer.submit` calls are
coalesced into batched extract → scale → predict → calibrate pipeline
passes, with admission control tied to the litho budget and the
:class:`~repro.engine.guard.RunSupervisor` machinery.  See
:mod:`repro.serve.server` for the full design notes, and
:mod:`repro.serve.transport` for the out-of-process socket layer
(framed protocol, :class:`SocketTransport`, :class:`DetectionClient`).
"""

from .server import (
    AdmissionError,
    DetectionServer,
    RequestTimeout,
    ServeConfig,
    ServeError,
    ServeResult,
    ServerClosed,
)

__all__ = [
    "AdmissionError",
    "DetectionServer",
    "RequestTimeout",
    "ServeConfig",
    "ServeError",
    "ServeResult",
    "ServerClosed",
]
