"""Typed failure taxonomy of the network transport.

Every way a remote detection request can fail maps onto exactly one
exception type, and every type is either **retryable** (the request is
a pure function of its clips, so re-running it on a fresh connection
is safe and yields a bit-identical result) or **terminal** (retrying
cannot help; surface it to the caller immediately):

====================  =========  =======================================
error                 retryable  meaning
====================  =========  =======================================
``ConnectionLost``    yes        connect refused, reset, or EOF mid-frame
``FrameCorrupt``      yes        bad magic / CRC mismatch / truncated or
                                 oversized frame — the *channel* is bad,
                                 not the protocol; reconnect and retry
``ReadTimeout``       yes        the peer stayed silent past the socket
                                 deadline
``RemoteOverloaded``  yes        server error frame: admission shed or
                                 connection cap — back off and retry
``RemoteTimeout``     yes        server error frame: the server-side
                                 batch wait missed the propagated
                                 deadline
``ProtocolMismatch``  no         a CRC-valid frame carries a different
                                 protocol version (or the server said
                                 so) — no retry can fix a version skew
``RemoteClosed``      no         server error frame: draining or closed
                                 (:class:`~repro.serve.ServerClosed`)
``RemoteError``       no         server error frame: bad request or an
                                 internal pipeline failure
``DeadlineExceeded``  no         the *client* deadline ran out across
                                 all retry attempts (carries the last
                                 underlying error as ``__cause__``)
``CircuitOpenError``  no         the client's circuit breaker is open —
                                 failing fast instead of hammering a
                                 known-bad endpoint
====================  =========  =======================================

``RemoteClosed`` subclasses :class:`~repro.serve.ServerClosed`, so
callers that already handle the in-process daemon's shutdown semantics
handle the remote flavour for free.
"""

from __future__ import annotations

from ..server import ServeError, ServerClosed

__all__ = [
    "CircuitOpenError",
    "ConnectionLost",
    "DeadlineExceeded",
    "FrameCorrupt",
    "ProtocolMismatch",
    "ReadTimeout",
    "RemoteClosed",
    "RemoteError",
    "RemoteOverloaded",
    "RemoteTimeout",
    "RetryableTransportError",
    "TransportError",
]


class TransportError(ServeError):
    """Base error of the socket transport layer."""


class RetryableTransportError(TransportError):
    """A failure the client may safely retry on a fresh connection."""


class ConnectionLost(RetryableTransportError):
    """Connect refused, connection reset, or EOF inside a frame."""


class FrameCorrupt(RetryableTransportError):
    """Bad magic, CRC mismatch, or truncated/oversized frame."""


class ReadTimeout(RetryableTransportError):
    """The peer sent nothing within the socket read deadline."""


class RemoteOverloaded(RetryableTransportError):
    """Server-reported shed: admission control or the connection cap."""


class RemoteTimeout(RetryableTransportError):
    """Server-reported deadline miss on the propagated request budget."""


class ProtocolMismatch(TransportError):
    """CRC-valid frame with an incompatible protocol version."""


class RemoteClosed(ServerClosed, TransportError):
    """Server-reported shutdown/drain: it will never run the request."""


class RemoteError(TransportError):
    """Server-reported terminal failure (bad request, pipeline error)."""


class DeadlineExceeded(TransportError):
    """The client's end-to-end deadline elapsed across all attempts."""


class CircuitOpenError(TransportError):
    """The circuit breaker is open; the call failed fast by design."""
