"""Out-of-process transport for the detection daemon.

The wire layer in front of :class:`~repro.serve.DetectionServer`:

* :mod:`~repro.serve.transport.frames` — length-prefixed, versioned,
  CRC32-checked binary frames with npz clip/score payloads.
* :class:`SocketTransport` — threaded socket server: connection cap
  with shedding, per-connection deadlines, typed error frames,
  SIGTERM-triggered graceful drain, health/stats introspection.
* :class:`DetectionClient` — pooled client with end-to-end deadline
  propagation, bounded retry + seeded-jitter backoff on retryable
  faults, and a closed→open→half-open :class:`CircuitBreaker`.
* :mod:`~repro.serve.transport.faults` — deterministic
  :class:`TransportFaultPlan` injection for the chaos suite.

See :mod:`repro.serve.transport.errors` for the full retryable vs
terminal failure taxonomy.
"""

from .client import CircuitBreaker, ClientConfig, DetectionClient
from .errors import (
    CircuitOpenError,
    ConnectionLost,
    DeadlineExceeded,
    FrameCorrupt,
    ProtocolMismatch,
    ReadTimeout,
    RemoteClosed,
    RemoteError,
    RemoteOverloaded,
    RemoteTimeout,
    RetryableTransportError,
    TransportError,
)
from .faults import FaultInjector, TransportFaultPlan
from .frames import PROTOCOL_VERSION
from .server import SocketTransport, TransportConfig

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "ClientConfig",
    "ConnectionLost",
    "DeadlineExceeded",
    "DetectionClient",
    "FaultInjector",
    "FrameCorrupt",
    "PROTOCOL_VERSION",
    "ProtocolMismatch",
    "ReadTimeout",
    "RemoteClosed",
    "RemoteError",
    "RemoteOverloaded",
    "RemoteTimeout",
    "RetryableTransportError",
    "SocketTransport",
    "TransportConfig",
    "TransportError",
    "TransportFaultPlan",
]
