"""Threaded socket front door for the in-process detection daemon.

:class:`SocketTransport` turns a :class:`~repro.serve.DetectionServer`
into a network service: one accept thread plus one handler thread per
live connection, speaking the framed protocol of
:mod:`repro.serve.transport.frames`.  Design points, in the order the
bytes hit them:

* **connection cap** — beyond ``max_connections`` live connections the
  accept loop *sheds*: the new peer gets one retryable ``overloaded``
  error frame and is closed, the supervisor's ``transport_overload``
  sentinel trips, and a ``transport_conn_rejected`` event fires.  The
  cap bounds handler threads the same way ``max_pending_clips`` bounds
  queued clips one layer down.
* **per-connection deadlines** — reads run under ``read_timeout_s``
  (an idle peer is disconnected, never accumulated), writes under
  ``write_timeout_s`` (a peer that stops reading cannot wedge a
  handler).
* **deadline propagation** — a request frame's ``deadline_ms`` becomes
  the ``timeout=`` bound on :meth:`DetectionServer.submit`, so the
  batch queue never holds a request longer than its client will wait;
  a server-side miss comes back as a retryable ``timeout`` error frame.
* **typed error frames** — every failure is reported with a code and a
  retryable bit (see ``_ERROR_MAP``): shed/timeout are retryable,
  drain/closed/protocol/bad-request are terminal.  A corrupt inbound
  frame gets a best-effort error frame and the connection is dropped —
  a byte stream cannot be resynchronized past a bad length field.
* **graceful drain** — ``close(drain=True)`` (the SIGTERM path via
  :meth:`run_until_signalled`) stops accepting, half-closes idle
  connections (``SHUT_RD`` → handlers finish any in-flight request,
  then see EOF), joins every thread, and finally drains the wrapped
  :class:`DetectionServer` itself.

Lock discipline (PR 8): connection registry, lifecycle flags and
counters are ``guarded_by`` one tracked lock; blocking calls (accept,
frame I/O, ``submit``, joins) and event emission all happen outside it.
"""

from __future__ import annotations

import socket
import threading
from dataclasses import dataclass

from ...analysis.concurrency import TrackedLock, guarded_by
from ..server import AdmissionError, DetectionServer, RequestTimeout, ServerClosed
from . import frames
from .errors import ConnectionLost, FrameCorrupt, ProtocolMismatch, ReadTimeout

__all__ = ["SocketTransport", "TransportConfig"]

#: server exception -> (wire error code, retryable) for request frames
_ERROR_MAP = (
    (AdmissionError, ("admission", True)),
    (RequestTimeout, ("timeout", True)),
    (ServerClosed, ("closed", False)),
)


@dataclass(frozen=True)
class TransportConfig:
    """Socket-level policy of one :class:`SocketTransport`."""

    #: interface to bind (loopback by default — this daemon has no
    #: authentication layer yet)
    host: str = "127.0.0.1"
    #: port to bind (0 = ephemeral; read the bound port off ``address``)
    port: int = 0
    #: live-connection cap; connection N+1 is shed with ``overloaded``
    max_connections: int = 32
    #: per-connection read deadline in seconds (idle peers are dropped)
    read_timeout_s: float = 30.0
    #: per-connection write deadline in seconds
    write_timeout_s: float = 30.0
    #: listen(2) backlog of the accept queue
    accept_backlog: int = 64

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port must be in [0, 65535], got {self.port}")
        if self.max_connections <= 0:
            raise ValueError(
                f"max_connections must be positive, got "
                f"{self.max_connections}"
            )
        if self.read_timeout_s <= 0:
            raise ValueError(
                f"read_timeout_s must be positive, got {self.read_timeout_s}"
            )
        if self.write_timeout_s <= 0:
            raise ValueError(
                f"write_timeout_s must be positive, got "
                f"{self.write_timeout_s}"
            )
        if self.accept_backlog <= 0:
            raise ValueError(
                f"accept_backlog must be positive, got {self.accept_backlog}"
            )


class SocketTransport:
    """Network front door: accept loop + per-connection frame handlers.

    Parameters
    ----------
    server:
        The wrapped in-process daemon; ``owns_server=True`` (default)
        means :meth:`close` also closes it.
    config:
        Socket policy (:class:`TransportConfig`).
    bus:
        Optional event bus for the ``transport_*`` events.
    supervisor:
        Optional :class:`~repro.engine.guard.RunSupervisor`; shed
        connections trip its ``transport_overload`` sentinel.
    wrap_socket:
        Optional hook applied to every accepted connection — the chaos
        suite passes :meth:`FaultInjector.wrap` here to fault the
        response path.
    """

    _connections = guarded_by("_lock")
    _handlers = guarded_by("_lock")
    _closed = guarded_by("_lock")
    _draining = guarded_by("_lock")
    _counters = guarded_by("_lock")

    def __init__(
        self,
        server: DetectionServer,
        config: TransportConfig | None = None,
        bus=None,
        supervisor=None,
        wrap_socket=None,
        owns_server: bool = True,
    ) -> None:
        self.server = server
        self.config = config if config is not None else TransportConfig()
        self.bus = bus
        self.supervisor = supervisor
        self.wrap_socket = wrap_socket
        self.owns_server = owns_server
        self._lock = TrackedLock("socket-transport")
        with self._lock:
            self._connections = {}  #: guarded_by: _lock
            self._handlers = []  #: guarded_by: _lock
            self._closed = False  #: guarded_by: _lock
            self._draining = False  #: guarded_by: _lock
            self._counters = {  #: guarded_by: _lock
                "accepted": 0, "rejected": 0, "requests": 0,
                "errors_sent": 0, "corrupt_frames": 0,
            }
        self._shutdown = threading.Event()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        # rebinding the advertised port must work immediately after a
        # crash/SIGKILL restart (the kill-and-reconnect guarantee)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((self.config.host, self.config.port))
        self._listener.listen(self.config.accept_backlog)
        #: the bound ``(host, port)`` — resolves ``port=0`` requests
        self.address = self._listener.getsockname()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="transport-accept", daemon=True
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SocketTransport":
        """Start accepting connections (idempotent per instance)."""
        if not self._accept_thread.is_alive():
            self._accept_thread.start()
            if self.bus is not None:
                self.bus.emit(
                    "transport_listening",
                    host=self.address[0],
                    port=self.address[1],
                    max_connections=self.config.max_connections,
                )
        return self

    def close(self, drain: bool = True) -> None:
        """Stop accepting and shut down.

        ``drain=True`` lets every in-flight request finish (handlers
        see EOF after ``SHUT_RD`` and exit); ``drain=False`` severs
        connections outright.  Both paths join all threads, then close
        the wrapped :class:`DetectionServer` when ``owns_server``.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._draining = drain
            live = list(self._connections.values())
            handlers = list(self._handlers)
            n_live = len(live)
        self._listener.close()
        for conn in live:
            try:
                if drain:
                    # half-close: the handler finishes its in-flight
                    # request, then reads EOF and exits cleanly
                    conn.shutdown(socket.SHUT_RD)
                else:
                    conn.close()
            except OSError:
                pass  # peer already gone
        if self.bus is not None:
            self.bus.emit(
                "transport_drain", n_connections=n_live, drain=drain
            )
        if self._accept_thread.is_alive():
            self._accept_thread.join(timeout=10.0)
        for thread in handlers:
            thread.join(timeout=self.config.read_timeout_s + 10.0)
        if self.owns_server:
            self.server.close(drain=drain)

    def run_until_signalled(self) -> None:
        """Block until SIGTERM/SIGINT, then drain gracefully.

        Installs handlers that set an event; the actual drain runs on
        this (the calling) thread, never inside the signal handler.
        Only callable from the main thread (a Python signal rule).
        """
        import signal

        def _trigger(signum, frame):  # noqa: ARG001 - signal signature
            self._shutdown.set()

        previous = {
            sig: signal.signal(sig, _trigger)
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            self._shutdown.wait()
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
        self.close(drain=True)

    def __enter__(self) -> "SocketTransport":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close(drain=exc_info[0] is None)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Transport counters + live-connection gauge."""
        with self._lock:
            counters = dict(self._counters)
            counters["connections"] = len(self._connections)
        counters["max_connections"] = self.config.max_connections
        return counters

    # ------------------------------------------------------------------
    # accept loop
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, peer = self._listener.accept()
            except OSError:
                return  # listener closed — shutdown
            if self.wrap_socket is not None:
                conn = self.wrap_socket(conn)
            shed = None
            with self._lock:
                if self._closed:
                    shed = "closing"
                elif len(self._connections) >= self.config.max_connections:
                    self._counters["rejected"] += 1
                    shed = (
                        f"connection cap reached "
                        f"({self.config.max_connections} live)"
                    )
                else:
                    self._counters["accepted"] += 1
                    key = id(conn)
                    self._connections[key] = conn
            if shed is not None:
                self._reject(conn, peer, shed)
                continue
            thread = threading.Thread(
                target=self._handle,
                args=(conn, key),
                name=f"transport-conn-{key:x}",
                daemon=True,
            )
            with self._lock:
                self._handlers.append(thread)
            thread.start()

    def _reject(self, conn, peer, detail: str) -> None:
        """Shed one connection: best-effort retryable error, close."""
        try:
            conn.settimeout(self.config.write_timeout_s)
            frames.write_frame(
                conn, frames.T_ERROR, 0,
                frames.encode_error("overloaded", detail, retryable=True),
            )
        except (ConnectionLost, ReadTimeout):
            pass  # the peer will see the close instead
        finally:
            try:
                conn.close()
            except OSError:
                pass
        if self.supervisor is not None:
            self.supervisor.connection_shed(detail, peer=str(peer))
        if self.bus is not None:
            self.bus.emit(
                "transport_conn_rejected",
                peer=str(peer),
                detail=detail,
                max_connections=self.config.max_connections,
            )

    # ------------------------------------------------------------------
    # per-connection handler
    # ------------------------------------------------------------------
    def _handle(self, conn, key: int) -> None:
        try:
            while True:
                try:
                    conn.settimeout(self.config.read_timeout_s)
                except OSError:
                    return  # connection torn down by close()
                try:
                    frame = frames.read_frame(conn)
                except (ConnectionLost, ReadTimeout):
                    return  # peer gone or idle past deadline
                except ProtocolMismatch as exc:
                    self._send_error(conn, 0, "version", str(exc), False)
                    return
                except FrameCorrupt as exc:
                    # the stream cannot be resynced past a corrupt
                    # length field — report (best effort) and drop
                    with self._lock:
                        self._counters["corrupt_frames"] += 1
                    self._send_error(conn, 0, "corrupt", str(exc), True)
                    return
                if not self._serve_frame(conn, frame):
                    return
        finally:
            try:
                conn.close()
            except OSError:
                pass
            with self._lock:
                self._connections.pop(key, None)
                self._handlers = [
                    t for t in self._handlers
                    if t is not threading.current_thread()
                ]

    def _serve_frame(self, conn, frame: frames.Frame) -> bool:
        """Handle one decoded frame; ``False`` ends the connection."""
        rid = frame.request_id
        if frame.ftype == frames.T_HEALTH:
            return self._send(
                conn, frames.T_HEALTH_REPLY, rid,
                frames.encode_json(self._health()),
            )
        if frame.ftype == frames.T_STATS:
            return self._send(
                conn, frames.T_STATS_REPLY, rid,
                frames.encode_json(self._full_stats()),
            )
        if frame.ftype != frames.T_REQUEST:
            return self._send_error(
                conn, rid, "bad_request",
                f"unexpected frame type {frame.ftype}", False,
            )
        try:
            clips, model, want_labels = frames.decode_clips(frame.payload)
        except FrameCorrupt as exc:
            # the CRC passed, so this is a malformed request, not line
            # noise — terminal for the sender
            return self._send_error(conn, rid, "bad_request", str(exc), False)
        with self._lock:
            self._counters["requests"] += 1
        timeout = frame.deadline_ms / 1e3 if frame.deadline_ms else None
        try:
            result = self.server.submit(
                clips, model=model, want_labels=want_labels, timeout=timeout
            )
        except BaseException as exc:  # noqa: BLE001 - routed to the peer
            for exc_type, (code, retryable) in _ERROR_MAP:
                if isinstance(exc, exc_type):
                    return self._send_error(
                        conn, rid, code, str(exc), retryable
                    )
            return self._send_error(conn, rid, "internal", str(exc), False)
        return self._send(
            conn, frames.T_RESPONSE, rid, frames.encode_result(result)
        )

    def _send(self, conn, ftype: int, rid: int, payload: bytes) -> bool:
        conn.settimeout(self.config.write_timeout_s)
        try:
            frames.write_frame(conn, ftype, rid, payload)
        except (ConnectionLost, ReadTimeout):
            return False  # peer gone mid-reply; the client will retry
        return True

    def _send_error(
        self, conn, rid: int, code: str, detail: str, retryable: bool
    ) -> bool:
        with self._lock:
            self._counters["errors_sent"] += 1
        return self._send(
            conn, frames.T_ERROR, rid,
            frames.encode_error(code, detail, retryable),
        )

    # ------------------------------------------------------------------
    # health / stats payloads
    # ------------------------------------------------------------------
    def _health(self) -> dict:
        with self._lock:
            draining = self._draining or self._closed
            n_connections = len(self._connections)
        return {
            "status": "draining" if draining else "ok",
            "protocol": frames.PROTOCOL_VERSION,
            "models": self.server.models(),
            "connections": n_connections,
        }

    def _full_stats(self) -> dict:
        guard = (
            self.supervisor.report().as_dict()
            if self.supervisor is not None else None
        )
        return {
            "transport": self.stats(),
            "server": self.server.stats(),
            "guard": guard,
        }
