"""Length-prefixed, versioned, checksummed frames for the detection wire.

One frame is a 28-byte big-endian header followed by ``payload_len``
payload bytes::

    offset  size  field
    ------  ----  --------------------------------------------------
         0     4  magic            b"RHSD"
         4     2  protocol version (PROTOCOL_VERSION)
         6     1  frame type       (T_* constants)
         7     1  flags            (reserved, 0)
         8     8  request id       (client-chosen, echoed in replies)
        16     4  deadline_ms      remaining client budget (0 = none)
        20     4  payload_len
        24     4  crc32            over header[0:24] + payload

The CRC covers the header *and* the payload, so a decoded frame is
either trustworthy end to end or rejected as :class:`FrameCorrupt`;
only after the checksum passes is the version field compared, which is
what lets the client tell genuine protocol skew
(:class:`ProtocolMismatch`, terminal) apart from line corruption that
happened to hit the version bytes (retryable).

``deadline_ms`` is how the client's deadline rides the wire: the server
turns it back into a ``timeout=`` bound on
:meth:`~repro.serve.DetectionServer.submit`, so a request never waits
in the server's batch queue longer than its submitter is still
listening.

Payloads are ``numpy.savez`` archives (clips and scored results — the
same npz encoding the feature cache trusts on disk, bit-exact for
float64 scores) or UTF-8 JSON (errors, health, stats).  Everything here
is stdlib + numpy; no sockets — byte-level helpers only, shared by both
endpoints and by the fault injector.
"""

from __future__ import annotations

import io
import json
import socket
import struct
import zlib

import numpy as np

from ...layout.clip import Clip
from ...layout.geometry import Rect
from ..server import ServeResult
from .errors import ConnectionLost, FrameCorrupt, ProtocolMismatch, ReadTimeout

__all__ = [
    "FRAME_TYPES",
    "Frame",
    "HEADER_SIZE",
    "MAGIC",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "T_ERROR",
    "T_HEALTH",
    "T_HEALTH_REPLY",
    "T_REQUEST",
    "T_RESPONSE",
    "T_STATS",
    "T_STATS_REPLY",
    "decode_clips",
    "decode_error",
    "decode_json",
    "decode_result",
    "encode_clips",
    "encode_error",
    "encode_frame",
    "encode_json",
    "encode_result",
    "read_frame",
    "write_frame",
]

MAGIC = b"RHSD"
PROTOCOL_VERSION = 1

#: frame types (u8)
T_REQUEST = 1
T_RESPONSE = 2
T_ERROR = 3
T_HEALTH = 4
T_HEALTH_REPLY = 5
T_STATS = 6
T_STATS_REPLY = 7

FRAME_TYPES = frozenset(
    {T_REQUEST, T_RESPONSE, T_ERROR, T_HEALTH, T_HEALTH_REPLY, T_STATS,
     T_STATS_REPLY}
)

_HEADER = struct.Struct(">4sHBBQIII")
HEADER_SIZE = _HEADER.size  # 28

#: decode-side guard: a header claiming a larger payload is corrupt
#: (64 MiB comfortably holds the largest coalesced response)
MAX_FRAME_BYTES = 64 * 1024 * 1024


class Frame:
    """One decoded frame: header fields + raw payload bytes."""

    __slots__ = ("ftype", "request_id", "deadline_ms", "payload")

    def __init__(self, ftype: int, request_id: int, deadline_ms: int,
                 payload: bytes) -> None:
        self.ftype = ftype
        self.request_id = request_id
        self.deadline_ms = deadline_ms
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Frame(type={self.ftype}, id={self.request_id}, "
            f"deadline_ms={self.deadline_ms}, {len(self.payload)}B)"
        )


# ----------------------------------------------------------------------
# frame encode / decode
# ----------------------------------------------------------------------

def encode_frame(
    ftype: int,
    request_id: int,
    payload: bytes = b"",
    deadline_ms: int = 0,
) -> bytes:
    """One wire-ready frame (header + payload) as a single byte string."""
    if ftype not in FRAME_TYPES:
        raise ValueError(f"unknown frame type {ftype}")
    deadline_ms = max(0, min(int(deadline_ms), 0xFFFFFFFF))
    prefix = _HEADER.pack(
        MAGIC, PROTOCOL_VERSION, ftype, 0, request_id, deadline_ms,
        len(payload), 0,
    )[:-4]
    crc = zlib.crc32(payload, zlib.crc32(prefix)) & 0xFFFFFFFF
    header = prefix + struct.pack(">I", crc)
    return header + payload


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise a typed transport error."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        try:
            chunk = sock.recv(min(n - got, 1 << 20))
        except socket.timeout as exc:
            raise ReadTimeout(
                f"peer silent after {got}/{n} bytes"
            ) from exc
        except OSError as exc:
            raise ConnectionLost(f"connection lost: {exc}") from exc
        if not chunk:
            if got == 0:
                raise ConnectionLost("connection closed by peer")
            raise ConnectionLost(
                f"connection closed mid-frame ({got}/{n} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame(
    sock: socket.socket, max_bytes: int = MAX_FRAME_BYTES
) -> Frame:
    """Read one frame off ``sock`` (honouring its ``settimeout``).

    Raises :class:`ConnectionLost` on EOF, :class:`ReadTimeout` on a
    socket timeout, :class:`FrameCorrupt` on any checksum/framing
    damage, and :class:`ProtocolMismatch` on a CRC-valid frame whose
    version differs from :data:`PROTOCOL_VERSION`.
    """
    header = _recv_exact(sock, HEADER_SIZE)
    magic, version, ftype, _flags, request_id, deadline_ms, length, crc = (
        _HEADER.unpack(header)
    )
    if magic != MAGIC:
        raise FrameCorrupt(f"bad magic {magic!r}")
    if length > max_bytes:
        raise FrameCorrupt(
            f"frame claims {length} payload bytes (cap {max_bytes})"
        )
    payload = _recv_exact(sock, length) if length else b""
    expected = zlib.crc32(payload, zlib.crc32(header[:-4])) & 0xFFFFFFFF
    if crc != expected:
        raise FrameCorrupt(
            f"checksum mismatch (got {crc:#010x}, want {expected:#010x})"
        )
    if version != PROTOCOL_VERSION:
        raise ProtocolMismatch(
            f"peer speaks protocol v{version}, this end v"
            f"{PROTOCOL_VERSION}"
        )
    if ftype not in FRAME_TYPES:
        raise FrameCorrupt(f"unknown frame type {ftype}")
    return Frame(ftype, request_id, deadline_ms, payload)


def write_frame(
    sock: socket.socket,
    ftype: int,
    request_id: int,
    payload: bytes = b"",
    deadline_ms: int = 0,
) -> None:
    """Encode and send one frame as a single ``sendall`` (one frame ==
    one send call, which is what lets the fault injector count frames)."""
    data = encode_frame(ftype, request_id, payload, deadline_ms)
    try:
        sock.sendall(data)
    except socket.timeout as exc:
        raise ReadTimeout("peer stopped reading (send deadline)") from exc
    except OSError as exc:
        raise ConnectionLost(f"connection lost on send: {exc}") from exc


# ----------------------------------------------------------------------
# payload codecs
# ----------------------------------------------------------------------

def encode_clips(
    clips: list[Clip], model: str | None, want_labels: bool
) -> bytes:
    """npz-encode a detection request (geometry at exact nm ints)."""
    windows = np.array(
        [c.window.as_tuple() for c in clips], dtype=np.int64
    ).reshape(len(clips), 4)
    cores = np.array(
        [c.core.as_tuple() for c in clips], dtype=np.int64
    ).reshape(len(clips), 4)
    counts = np.array([len(c.rects) for c in clips], dtype=np.int64)
    flat = [r for c in clips for r in c.rects]
    rects = np.array(
        [(r.x0, r.y0, r.x1, r.y1) for r in flat], dtype=np.int64
    ).reshape(len(flat), 4)
    names = np.array([c.layout_name for c in clips])
    indices = np.array([c.index for c in clips], dtype=np.int64)
    buffer = io.BytesIO()
    np.savez(
        buffer,
        windows=windows, cores=cores, counts=counts, rects=rects,
        names=names, indices=indices,
        model=np.array(model if model is not None else ""),
        want_labels=np.array(bool(want_labels)),
    )
    return buffer.getvalue()


def decode_clips(payload: bytes) -> tuple[list[Clip], str | None, bool]:
    """Rebuild ``(clips, model, want_labels)`` from a request payload."""
    try:
        with np.load(io.BytesIO(payload), allow_pickle=False) as data:
            windows = data["windows"]
            cores = data["cores"]
            counts = data["counts"]
            rects = data["rects"]
            names = data["names"]
            indices = data["indices"]
            model = str(data["model"][()])
            want_labels = bool(data["want_labels"][()])
    except (OSError, ValueError, KeyError, zlib.error) as exc:
        raise FrameCorrupt(f"undecodable request payload: {exc}") from exc
    clips: list[Clip] = []
    offset = 0
    for i in range(len(windows)):
        n = int(counts[i])
        clip_rects = [
            Rect(int(x0), int(y0), int(x1), int(y1))
            for x0, y0, x1, y1 in rects[offset : offset + n]
        ]
        offset += n
        clips.append(
            Clip(
                window=Rect(*(int(v) for v in windows[i])),
                core=Rect(*(int(v) for v in cores[i])),
                rects=clip_rects,
                layout_name=str(names[i]),
                index=int(indices[i]),
            )
        )
    return clips, (model or None), want_labels


def encode_result(result: ServeResult) -> bytes:
    """npz-encode a :class:`ServeResult` (float64 arrays round-trip
    bit-exactly through npz, so remote scores == in-process scores)."""
    arrays = {
        "scores": result.scores,
        "verdicts": result.verdicts,
        "logits": result.logits,
        "embeddings": result.embeddings,
        "model": np.array(result.model),
        "coalesced": np.array(int(result.coalesced), dtype=np.int64),
        "has_labels": np.array(result.labels is not None),
    }
    if result.labels is not None:
        arrays["labels"] = result.labels
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


def decode_result(payload: bytes) -> ServeResult:
    try:
        with np.load(io.BytesIO(payload), allow_pickle=False) as data:
            labels = (
                data["labels"] if bool(data["has_labels"][()]) else None
            )
            return ServeResult(
                scores=data["scores"],
                verdicts=data["verdicts"],
                logits=data["logits"],
                embeddings=data["embeddings"],
                model=str(data["model"][()]),
                coalesced=int(data["coalesced"][()]),
                labels=labels,
            )
    except (OSError, ValueError, KeyError, zlib.error) as exc:
        raise FrameCorrupt(f"undecodable result payload: {exc}") from exc


def encode_json(obj: dict) -> bytes:
    return json.dumps(obj, sort_keys=True).encode("utf-8")


def decode_json(payload: bytes) -> dict:
    try:
        decoded = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameCorrupt(f"undecodable JSON payload: {exc}") from exc
    if not isinstance(decoded, dict):
        raise FrameCorrupt(
            f"JSON payload is {type(decoded).__name__}, expected object"
        )
    return decoded


def encode_error(code: str, detail: str, retryable: bool) -> bytes:
    """Typed error payload: which failure, and whether retrying helps."""
    return encode_json(
        {"code": code, "detail": detail, "retryable": bool(retryable)}
    )


def decode_error(payload: bytes) -> tuple[str, str, bool]:
    decoded = decode_json(payload)
    return (
        str(decoded.get("code", "internal")),
        str(decoded.get("detail", "")),
        bool(decoded.get("retryable", False)),
    )
